"""Heuristic-vs-optimal gap: how much schedule length the greedy list
scheduler leaves on the table.

The branch-and-bound exact scheduler (``repro.exact``) proves minimum
schedule lengths for small blocks over the same compiled description
the heuristic queries, which turns "the list scheduler is good enough"
from folklore into a measured number: per machine, the total cycles the
heuristic booked vs the proven optimum, the per-block gap distribution,
and the price paid in search time.  Every list backend produces the
same schedule (the differential fuzzer's invariant), so one heuristic
column covers them all.

Blocks are capped at the exact backend's registered ``max_block_ops``
(12): the workload generator is told to stay under it, so every block
is actually searched rather than falling back to the heuristic seed.
"""

import time

from conftest import write_result

from repro.analysis.reporting import format_table
from repro.machines import MACHINE_NAMES, get_machine
from repro.workloads import WorkloadConfig, generate_blocks

#: Small on purpose: exact search is exponential in block size.
OPTIMALITY_OPS = 96
#: Body size range; +1 terminating branch keeps every block <= 11 ops,
#: under the exact backend's 12-op cap.
OPTIMALITY_BLOCK_RANGE = (3, 10)
OPTIMALITY_SEED = 20161202


def _machine_row(machine_name):
    from repro.api import schedule_exact

    machine = get_machine(machine_name)
    blocks = generate_blocks(machine, WorkloadConfig(
        total_ops=OPTIMALITY_OPS, seed=OPTIMALITY_SEED,
        block_size_range=OPTIMALITY_BLOCK_RANGE,
    ))
    started = time.perf_counter()
    run = schedule_exact(machine, blocks)
    elapsed = time.perf_counter() - started
    per_block = [
        {
            "ops": len(result.schedule.block),
            "heuristic": result.heuristic_length,
            "exact": result.length,
            "gap": result.gap,
            "lower_bound": result.lower_bound,
            "optimal": result.optimal,
            "reason": result.reason,
            "nodes": result.nodes,
            "seconds": result.seconds,
        }
        for result in run.results
    ]
    return {
        "machine": machine_name,
        "blocks": len(run.results),
        "ops": run.total_ops,
        "heuristic_cycles": run.heuristic_cycles,
        "exact_cycles": run.total_cycles,
        "gap_cycles": run.gap_cycles,
        "optimal_blocks": run.optimal_blocks,
        "nodes": run.nodes,
        "solve_seconds": elapsed,
        "per_block": per_block,
    }


def test_optimality_gap(results_dir, benchmark):
    def build_rows():
        return [_machine_row(name) for name in MACHINE_NAMES]

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    text = format_table(
        ("MDES", "Blocks", "Ops", "Heur", "Exact", "Gap",
         "Optimal", "Seconds"),
        [
            (
                row["machine"],
                row["blocks"],
                row["ops"],
                row["heuristic_cycles"],
                row["exact_cycles"],
                row["gap_cycles"],
                f"{row['optimal_blocks']}/{row['blocks']}",
                f"{row['solve_seconds']:.3f}",
            )
            for row in rows
        ],
        title=(
            "List-scheduler optimality gap vs the branch-and-bound "
            "exact scheduler (blocks <= 12 ops)"
        ),
    )
    payload = {
        "ops_per_machine": OPTIMALITY_OPS,
        "seed": OPTIMALITY_SEED,
        "block_size_range": list(OPTIMALITY_BLOCK_RANGE),
        "machines": rows,
    }
    write_result(results_dir, "optimality.txt", text, payload=payload)
    # The gap is one-sided by construction: exact never books more
    # cycles than its own heuristic seed, and a proven-optimal block's
    # length is bracketed by its lower bound.
    for row in rows:
        assert row["exact_cycles"] <= row["heuristic_cycles"]
        assert 0 <= row["optimal_blocks"] <= row["blocks"]
        for entry in row["per_block"]:
            assert entry["exact"] <= entry["heuristic"]
            assert entry["lower_bound"] <= entry["exact"]
