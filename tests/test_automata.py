"""Tests for the finite-state-automata baseline."""

import pytest

from repro.transforms.pipeline import staged_mdes
from repro.automata import (
    AutomatonBackend,
    SchedulingAutomaton,
    TableBackend,
    cycle_schedule_workload,
)
from repro.automata.collision import (
    collision_matrix,
    forbidden_latencies,
    mdes_options,
)
from repro.core.tables import ReservationTable
from repro.core.usage import ResourceUsage
from repro.errors import MdesError
from repro.lowlevel.compiled import compile_mdes
from repro.machines import MACHINE_NAMES, get_machine
from repro.workloads import WorkloadConfig, generate_blocks


def u(resource, time):
    return ResourceUsage(time, resource)


class TestForbiddenLatencies:
    def test_same_resource_same_time(self, resources):
        m = resources.lookup("M")
        option = ReservationTable((u(m, 0),))
        assert forbidden_latencies(option, option) == frozenset({0})

    def test_pipeline_distance(self, resources):
        m = resources.lookup("M")
        first = ReservationTable((u(m, 3),))
        second = ReservationTable((u(m, 0),))
        # second issued t after first collides when 3 - 0 = t.
        assert forbidden_latencies(first, second) == frozenset({3})
        assert forbidden_latencies(second, first) == frozenset()

    def test_disjoint_resources_never_collide(self, resources):
        a = ReservationTable((u(resources.lookup("D0"), 0),))
        b = ReservationTable((u(resources.lookup("D1"), 0),))
        assert forbidden_latencies(a, b) == frozenset()

    def test_multi_usage(self, resources):
        m = resources.lookup("M")
        busy = ReservationTable((u(m, 0), u(m, 1), u(m, 2)))
        assert forbidden_latencies(busy, busy) == frozenset({0, 1, 2})

    def test_collision_matrix_covers_all_pairs(self, toy_mdes):
        options = mdes_options(toy_mdes)
        matrix = collision_matrix(options)
        assert len(matrix) == len(options) ** 2


@pytest.fixture(scope="module")
def shifted_compiled():
    machine = get_machine("SuperSPARC")
    return machine, compile_mdes(
        staged_mdes(machine.build_andor(), 4), bitvector=True
    )


class TestAutomaton:
    def test_rejects_negative_times(self, toy_mdes):
        with pytest.raises(MdesError, match="non-negative"):
            SchedulingAutomaton(compile_mdes(toy_mdes))

    def test_issue_and_capacity(self, shifted_compiled):
        _, compiled = shifted_compiled
        automaton = SchedulingAutomaton(compiled)
        state = automaton.start_state
        # One memory unit: two loads cannot issue in the same cycle.
        result = automaton.try_issue(state, "load")
        assert result is not None
        state = result[0]
        assert automaton.try_issue(state, "load") is None
        state = automaton.advance(state)
        assert automaton.try_issue(state, "load") is not None

    def test_memoization(self, shifted_compiled):
        _, compiled = shifted_compiled
        automaton = SchedulingAutomaton(compiled)
        state = automaton.start_state
        automaton.try_issue(state, "load")
        misses_before = automaton.stats.misses
        automaton.try_issue(state, "load")
        assert automaton.stats.misses == misses_before
        assert automaton.stats.hit_ratio > 0

    def test_advance_shifts_window(self, shifted_compiled):
        _, compiled = shifted_compiled
        automaton = SchedulingAutomaton(compiled)
        state, _ = automaton.try_issue(automaton.start_state, "idiv")
        assert state[0] != 0
        drained = state
        for _ in range(automaton.horizon):
            drained = automaton.advance(drained)
        assert drained == automaton.start_state

    def test_accounting(self, shifted_compiled):
        _, compiled = shifted_compiled
        automaton = SchedulingAutomaton(compiled)
        automaton.try_issue(automaton.start_state, "load")
        assert automaton.transition_count == 1
        assert automaton.state_count() == 2
        assert automaton.memory_bytes() > 0


class TestBackendEquivalence:
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_identical_schedules(self, machine_name):
        machine = get_machine(machine_name)
        compiled = compile_mdes(
            staged_mdes(machine.build_andor(), 4), bitvector=True
        )
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=400))
        table_result, table_work = cycle_schedule_workload(
            machine, TableBackend(compiled), blocks
        )
        automaton_result, automaton_lookups = cycle_schedule_workload(
            machine, AutomatonBackend(compiled), blocks
        )
        assert table_result.signature() == automaton_result.signature()
        assert automaton_lookups <= table_work

    def test_table_backend_counts_checks(self):
        machine = get_machine("SuperSPARC")
        compiled = compile_mdes(
            staged_mdes(machine.build_andor(), 4), bitvector=True
        )
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=200))
        backend = TableBackend(compiled)
        _, work = cycle_schedule_workload(machine, backend, blocks)
        assert work == backend.stats.resource_checks
        assert work > 0
