"""Pluggable MDES query engines (the paper's fixed scheduler query
pattern, section 3, over interchangeable low-level representations).

Every constraint-check path of the reproduction -- scalar compiled
tables, bit-vector compiled tables, the finite-state automaton, and the
Eichenberger-Davidson reduced tables -- conforms to one
:class:`QueryEngine` protocol (``try_reserve`` / ``release`` /
``stats``), so all four schedulers (list, operation, modulo, cycle) run
against any backend and every backend emits the same
:class:`~repro.lowlevel.checker.CheckStats`.

Backends are looked up by name through a registry::

    from repro.engine import create_engine
    engine = create_engine("automata", get_machine("SuperSPARC"))
    schedule_workload(machine, None, blocks, engine=engine)

Compiled descriptions are memoized in an LRU
:class:`~repro.engine.cache.DescriptionCache`, keyed by (machine,
representation, transformation stage, compile options), so repeated
bench/analysis runs stop re-translating and re-compiling HMDES.
"""

from repro.engine.base import QueryEngine, Reservation
from repro.engine.cache import CacheStats, DescriptionCache, GLOBAL_CACHE
from repro.engine.diskcache import (
    DiskDescriptionCache,
    description_digest,
    machine_content_token,
)
from repro.engine.table import EichenbergerEngine, TableEngine
from repro.engine.automaton import AutomatonEngine
from repro.engine.registry import (
    EngineSpec,
    create_engine,
    engine_names,
    get_engine_spec,
    register_engine,
)
from repro.engine.shared import SharedDescriptionSpec

__all__ = [
    "AutomatonEngine",
    "CacheStats",
    "DescriptionCache",
    "DiskDescriptionCache",
    "EichenbergerEngine",
    "EngineSpec",
    "GLOBAL_CACHE",
    "QueryEngine",
    "Reservation",
    "SharedDescriptionSpec",
    "TableEngine",
    "create_engine",
    "description_digest",
    "engine_names",
    "machine_content_token",
    "get_engine_spec",
    "register_engine",
]
