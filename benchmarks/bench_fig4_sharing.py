"""Figure 4: OR-tree sharing across AND/OR-trees after cleanup."""

from conftest import write_result

from repro.machines import get_machine
from repro.transforms import eliminate_redundancy


def test_fig4_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.fig4_sharing())
    assert "shared" in text
    write_result(results_dir, "fig4_sharing.txt", text)


def test_fig4_bench_sharing_discovery(benchmark):
    """Time sharing analysis (or_tree_sharers) on the cleaned K5."""
    mdes = eliminate_redundancy(get_machine("K5").build_andor())
    sharers = benchmark(mdes.or_tree_sharers)
    assert max(sharers.values()) >= 2
