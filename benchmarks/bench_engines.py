"""Cross-backend comparison through the unified query-engine layer.

Every registered backend schedules the same seeded workload on every
machine through the same :class:`QueryEngine` protocol, so the paper's
per-attempt statistics and wall-clock time are directly comparable --
the comparison sections 6 and 10 make by hand, regenerated in one table.
"""

import time

from conftest import write_result

from repro.analysis.reporting import format_table
from repro.engine import create_engine, engine_names
from repro.machines import MACHINE_NAMES, get_machine
from repro.scheduler import schedule_workload
from repro.workloads import WorkloadConfig, generate_blocks

BENCH_OPS = 4000


def test_engines_regenerate(results_dir, benchmark):
    def build_rows():
        rows = []
        for machine_name in MACHINE_NAMES:
            machine = get_machine(machine_name)
            blocks = generate_blocks(
                machine, WorkloadConfig(total_ops=BENCH_OPS)
            )
            for backend in engine_names(scheduler="list"):
                engine = create_engine(backend, machine)
                started = time.perf_counter()
                run = schedule_workload(
                    machine, None, blocks, engine=engine
                )
                elapsed = time.perf_counter() - started
                rows.append(
                    (
                        machine_name,
                        backend,
                        run.total_ops,
                        run.stats.options_per_attempt,
                        run.stats.checks_per_attempt,
                        elapsed,
                    )
                )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    text = format_table(
        ("MDES", "Backend", "Ops", "Opt/Att", "Chk/Att", "Seconds"),
        [
            (name, backend, ops, opt, chk, f"{seconds:.3f}")
            for name, backend, ops, opt, chk, seconds in rows
        ],
        title=(
            "Cross-backend scheduling characteristics through the "
            "query-engine layer"
        ),
    )
    payload = [
        {
            "machine": name,
            "backend": backend,
            "ops": ops,
            "options_per_attempt": opt,
            "checks_per_attempt": chk,
            "wall_seconds": seconds,
        }
        for name, backend, ops, opt, chk, seconds in rows
    ]
    write_result(results_dir, "engines.txt", text, payload=payload)
    # Protocol sanity: every backend scheduled the full workload, and
    # every backend saw the same ops for one machine.
    expected = len(MACHINE_NAMES) * len(engine_names(scheduler="list"))
    assert len(rows) == expected
    for machine_name in MACHINE_NAMES:
        per_machine = {
            ops for name, _, ops, _, _, _ in rows if name == machine_name
        }
        assert len(per_machine) == 1


def test_engines_bench_automata_warm(benchmark, kernel_workloads):
    """Steady-state automaton engine: every attempt is a DFA hit."""
    machine = get_machine("SuperSPARC")
    blocks = kernel_workloads("SuperSPARC")
    engine = create_engine("automata", machine)
    schedule_workload(machine, None, blocks, engine=engine)  # warm up

    def run():
        return schedule_workload(machine, None, blocks, engine=engine)

    result = benchmark(run)
    assert result.total_ops == sum(len(block) for block in blocks)


def test_engines_bench_table_bitvector(benchmark, kernel_workloads):
    """The paper's stage-4 bit-vector tables, same workload as above."""
    machine = get_machine("SuperSPARC")
    blocks = kernel_workloads("SuperSPARC")
    engine = create_engine("bitvector", machine)

    def run():
        return schedule_workload(machine, None, blocks, engine=engine)

    result = benchmark(run)
    assert result.total_ops == sum(len(block) for block in blocks)
