"""The Sun SuperSPARC machine description (paper section 2, Table 1).

A 3-issue in-order superscalar: three decoders, four integer register read
ports, two write ports, two IALUs, one shifter, one memory unit, one
branch unit, and one floating-point issue slot per cycle.  Branches are
modeled as always using the last decoder to maximize scheduling freedom.

Two flow-dependent IALU operations may execute in the same cycle: the
second (*cascaded*) operation has only one IALU available to it, so its
classes have half the options of the normal IALU classes.  The scheduler
selects the cascaded classes based on incoming dependence distances.

Option counts per class reproduce Table 1 exactly:

====================================  =======
class                                 options
====================================  =======
branch, serial, imul, idiv              1
fp_alu, fp_mul, fp_div                  3
load                                    6
store                                  12
shift_1src, cascade_1src               24
shift_2src, cascade_2src               36
ialu_1src                              48
ialu_2src                              72
====================================  =======

The description deliberately contains the kind of redundancy real
descriptions accrete (section 5): the memory/FP classes carry inline
copies of the decoder OR-tree instead of referencing the shared one, and
a few trees inherited from an "earlier description" are never referenced.
"""

from __future__ import annotations

from repro.ir.operation import Operation
from repro.machines.base import (
    KIND_BRANCH,
    KIND_FP,
    KIND_INT,
    KIND_LOAD,
    KIND_SERIAL,
    KIND_STORE,
    Machine,
    OpcodeSpec,
)

HMDES_SOURCE = """
mdes SuperSPARC;

section resource {
    Decoder[0..2];
    RP[0..3];
    IALU[0..1];
    Shifter;
    M;
    WrPt[0..1];
    FPU;
    FMUL;
    FDIVU;
    DIVU;
    BRU;
}

section table {
    RT_mem    { use M at 0; }
    RT_shift  { use Shifter at 0; }
    RT_casc   { use IALU[1] at 0; }
    RT_fpu    { use FPU at 0; }
    RT_fpmul  { use FPU at 0; use FMUL at 0; }
    RT_fpdiv  {
        use FPU at 0;
        $for c in 0..5 { use FDIVU at $c; }
    }
}

section ortree {
    OT_decoder { $for d in 0..2 { option { use Decoder[$d] at -1; } } }
    OT_rp1     { $for r in 0..3 { option { use RP[$r] at -1; } } }
    OT_rp2 {
        option { use RP[0] at -1; use RP[1] at -1; }
        option { use RP[0] at -1; use RP[2] at -1; }
        option { use RP[0] at -1; use RP[3] at -1; }
        option { use RP[1] at -1; use RP[2] at -1; }
        option { use RP[1] at -1; use RP[3] at -1; }
        option { use RP[2] at -1; use RP[3] at -1; }
    }
    OT_ialu  { $for u in 0..1 { option { use IALU[$u] at 0; } } }
    OT_wrpt  { $for w in 0..1 { option { use WrPt[$w] at 1; } } }

    // Inherited from an earlier description; nothing references these.
    OT_legacy_rp   { $for r in 0..3 { option { use RP[$r] at -1; } } }
    OT_legacy_wrpt { $for w in 0..1 { option { use WrPt[$w] at 1; } } }
}

section andortree {
    // Integer ALU / shifter classes reference the shared trees.
    AOT_ialu_1src {
        ortree OT_decoder; ortree OT_rp1; ortree OT_ialu; ortree OT_wrpt;
    }
    AOT_ialu_2src {
        ortree OT_decoder; ortree OT_rp2; ortree OT_ialu; ortree OT_wrpt;
    }
    AOT_shift_1src {
        ortree OT_decoder; ortree OT_rp1; ortree RT_shift; ortree OT_wrpt;
    }
    AOT_shift_2src {
        ortree OT_decoder; ortree OT_rp2; ortree RT_shift; ortree OT_wrpt;
    }
    AOT_cascade_1src {
        ortree OT_decoder; ortree OT_rp1; ortree RT_casc; ortree OT_wrpt;
    }
    AOT_cascade_2src {
        ortree OT_decoder; ortree OT_rp2; ortree RT_casc; ortree OT_wrpt;
    }

    // The memory and FP classes were copied from older entries: their
    // decoder trees are private duplicates of OT_decoder.
    AOT_load {
        ortree { $for d in 0..2 { option { use Decoder[$d] at -1; } } }
        ortree OT_wrpt;
        ortree RT_mem;
    }
    AOT_store {
        ortree { $for d in 0..2 { option { use Decoder[$d] at -1; } } }
        ortree OT_rp1;
        ortree RT_mem;
    }
    AOT_fp_alu {
        ortree { $for d in 0..2 { option { use Decoder[$d] at -1; } } }
        ortree RT_fpu;
    }
    AOT_fp_mul {
        ortree { $for d in 0..2 { option { use Decoder[$d] at -1; } } }
        ortree RT_fpmul;
    }
    AOT_fp_div {
        ortree { $for d in 0..2 { option { use Decoder[$d] at -1; } } }
        ortree RT_fpdiv;
    }

    // Dead entry for the never-shipped cascaded-shift experiment.
    AOT_legacy_cshift {
        ortree OT_legacy_rp; ortree RT_shift; ortree OT_legacy_wrpt;
    }
}

section opclass {
    branch { resv ortree {
        option { use Decoder[2] at -1; use BRU at 0; }
    }; latency 1; }
    serial { resv ortree {
        option {
            use Decoder[0] at -1; use Decoder[1] at -1;
            use Decoder[2] at -1;
            use IALU[0] at 0; use IALU[1] at 0;
        }
    }; latency 1; }
    imul { resv ortree {
        option {
            use Decoder[0] at -1; use Decoder[1] at -1;
            use Decoder[2] at -1;
            use IALU[0] at 0; use IALU[1] at 0;
            $for c in 0..2 { use DIVU at $c; }
        }
    }; latency 4; }
    idiv { resv ortree {
        option {
            use Decoder[0] at -1; use Decoder[1] at -1;
            use Decoder[2] at -1;
            use IALU[0] at 0; use IALU[1] at 0;
            $for c in 0..7 { use DIVU at $c; }
        }
    }; latency 9; }

    fp_alu { resv AOT_fp_alu; latency 3; }
    fp_mul { resv AOT_fp_mul; latency 3; }
    fp_div { resv AOT_fp_div; latency 6; }

    // Address operands are consumed by the dedicated address
    // generation unit during decode (read -1): a producer feeding an
    // address is visible one cycle later -- the address generation
    // interlock of section 2.
    load  { resv AOT_load;  latency 1; read -1; }
    store { resv AOT_store; latency 1; read -1; }

    shift_1src { resv AOT_shift_1src; latency 1; }
    shift_2src { resv AOT_shift_2src; latency 1; }
    cascade_1src { resv AOT_cascade_1src; latency 1; }
    cascade_2src { resv AOT_cascade_2src; latency 1; }
    ialu_1src { resv AOT_ialu_1src; latency 1; }
    ialu_2src { resv AOT_ialu_2src; latency 1; }
}

// Cascaded IALU pairs: the second of two flow-dependent IALU
// operations may execute in the same cycle (distance 0), but only one
// IALU serves the cascade path, so the consumer switches to the
// cascade_* classes with half the options (section 2).
section bypass {
    ialu_1src -> ialu_1src: latency 0 class cascade_1src;
    ialu_1src -> ialu_2src: latency 0 class cascade_2src;
    ialu_2src -> ialu_1src: latency 0 class cascade_1src;
    ialu_2src -> ialu_2src: latency 0 class cascade_2src;
}

section operation {
    BA: branch; BE: branch; BNE: branch; BG: branch; BLE: branch;
    BGE: branch; BL: branch; CALL: branch; JMPL: branch;
    SAVE: serial; RESTORE: serial;
    UMUL: imul; SMUL: imul; UDIV: idiv; SDIV: idiv;
    FADD: fp_alu; FSUB: fp_alu; FCMP: fp_alu;
    FMULS: fp_mul; FDIVS: fp_div;
    LD: load; LDUB: load; LDSB: load; LDUH: load; LDSH: load; LDD: load;
    ST: store; STB: store; STH: store; STD: store;
    SLL: shift_2src; SRL: shift_2src; SRA: shift_2src;
    ADD: ialu_2src; SUB: ialu_2src; AND: ialu_2src; OR: ialu_2src;
    XOR: ialu_2src; XNOR: ialu_2src; ADDCC: ialu_2src; SUBCC: ialu_2src;
    SETHI: ialu_2src; MOV: ialu_2src; CMP: ialu_2src;
}
"""

#: Base class per opcode, before operand-count/cascade refinement.
_BASE_CLASS = {
    "BA": "branch", "BE": "branch", "BNE": "branch", "BG": "branch",
    "BLE": "branch", "BGE": "branch", "BL": "branch", "CALL": "branch",
    "JMPL": "branch",
    "SAVE": "serial", "RESTORE": "serial",
    "UMUL": "imul", "SMUL": "imul", "UDIV": "idiv", "SDIV": "idiv",
    "FADD": "fp_alu", "FSUB": "fp_alu", "FCMP": "fp_alu",
    "FMULS": "fp_mul", "FDIVS": "fp_div",
    "LD": "load", "LDUB": "load", "LDSB": "load", "LDUH": "load",
    "LDSH": "load", "LDD": "load",
    "ST": "store", "STB": "store", "STH": "store", "STD": "store",
    "SLL": "shift", "SRL": "shift", "SRA": "shift",
    "ADD": "ialu", "SUB": "ialu", "AND": "ialu", "OR": "ialu",
    "XOR": "ialu", "XNOR": "ialu", "ADDCC": "ialu", "SUBCC": "ialu",
    "SETHI": "ialu", "MOV": "ialu", "CMP": "ialu",
}


def classify(op: Operation, cascaded: bool) -> str:
    """SuperSPARC dynamic class selection.

    IALU and shifter classes split on register source count (one register
    read port versus a pair), and flow-dependent IALU pairs issuing in the
    same cycle use the cascaded classes (section 2).
    """
    base = _BASE_CLASS[op.opcode]
    if base == "ialu":
        suffix = "_1src" if op.reg_src_count <= 1 else "_2src"
        return ("cascade" if cascaded else "ialu") + suffix
    if base == "shift":
        suffix = "_1src" if op.reg_src_count <= 1 else "_2src"
        return "shift" + suffix
    return base


#: Only the simple add/logical forms use the cascade path; condition-code
#: setters, SETHI, and moves through the cascade unit are not supported.
_CASCADE_OPCODES = frozenset({"ADD", "SUB", "AND", "OR", "XOR"})


def cascade_ok(producer: Operation, consumer: Operation) -> bool:
    """Only simple IALU -> IALU flow pairs may cascade."""
    return (
        producer.opcode in _CASCADE_OPCODES
        and consumer.opcode in _CASCADE_OPCODES
    )


#: Synthetic SPEC CINT92 instruction mix (weights calibrated against the
#: Table 1 "% of scheduling attempts" column).
OPCODE_PROFILE = (
    # Branches (always end a block) and serial operations.
    OpcodeSpec("BE", 3.4, (1,), False, KIND_BRANCH),
    OpcodeSpec("BNE", 3.4, (1,), False, KIND_BRANCH),
    OpcodeSpec("BG", 1.0, (1,), False, KIND_BRANCH),
    OpcodeSpec("BLE", 1.0, (1,), False, KIND_BRANCH),
    OpcodeSpec("BGE", 0.6, (1,), False, KIND_BRANCH),
    OpcodeSpec("BL", 0.6, (1,), False, KIND_BRANCH),
    OpcodeSpec("BA", 0.8, (0,), False, KIND_BRANCH),
    OpcodeSpec("CALL", 1.7, (0,), False, KIND_BRANCH),
    OpcodeSpec("JMPL", 0.4, (1,), False, KIND_BRANCH),
    OpcodeSpec("SAVE", 1.0, (1,), True, KIND_SERIAL),
    OpcodeSpec("RESTORE", 1.0, (1,), True, KIND_SERIAL),
    OpcodeSpec("UMUL", 0.25, (2,), True, KIND_SERIAL),
    OpcodeSpec("SDIV", 0.1, (2,), True, KIND_SERIAL),
    # Floating point (CINT92: very little).
    OpcodeSpec("FADD", 0.2, (2,), True, KIND_FP),
    OpcodeSpec("FSUB", 0.1, (2,), True, KIND_FP),
    OpcodeSpec("FCMP", 0.1, (2,), True, KIND_FP),
    OpcodeSpec("FMULS", 0.15, (2,), True, KIND_FP),
    OpcodeSpec("FDIVS", 0.05, (2,), True, KIND_FP),
    # Memory.
    OpcodeSpec("LD", 9.0, (1, 2), True, KIND_LOAD),
    OpcodeSpec("LDUB", 1.6, (1,), True, KIND_LOAD),
    OpcodeSpec("LDSH", 1.0, (1,), True, KIND_LOAD),
    OpcodeSpec("LDD", 0.6, (1,), True, KIND_LOAD),
    OpcodeSpec("ST", 3.4, (2,), False, KIND_STORE),
    OpcodeSpec("STB", 0.7, (2,), False, KIND_STORE),
    OpcodeSpec("STH", 0.4, (2,), False, KIND_STORE),
    # Shifts (mostly by-immediate, one register source).
    OpcodeSpec("SLL", 1.0, (1,), True, KIND_INT),
    OpcodeSpec("SRL", 0.6, (1,), True, KIND_INT),
    OpcodeSpec("SRA", 0.5, (1, 2), True, KIND_INT),
    # Integer ALU: immediate forms dominate (one register source).
    OpcodeSpec("ADD", 13.0, (1,), True, KIND_INT),
    OpcodeSpec("SUB", 5.0, (1,), True, KIND_INT),
    OpcodeSpec("OR", 5.0, (1,), True, KIND_INT),
    OpcodeSpec("AND", 3.5, (1,), True, KIND_INT),
    OpcodeSpec("XOR", 1.5, (1,), True, KIND_INT),
    OpcodeSpec("SETHI", 3.0, (0,), True, KIND_INT),
    OpcodeSpec("MOV", 5.5, (1,), True, KIND_INT),
    OpcodeSpec("ADDCC", 1.5, (1,), True, KIND_INT),
    OpcodeSpec("SUBCC", 1.0, (1,), True, KIND_INT),
    OpcodeSpec("CMP", 2.0, (2,), True, KIND_INT),
    OpcodeSpec("ADDX", 0.0, (2,), True, KIND_INT),  # placeholder weight
    OpcodeSpec("XNOR", 0.6, (2,), True, KIND_INT),
)


def build_machine() -> Machine:
    """Construct the SuperSPARC machine."""
    profile = tuple(spec for spec in OPCODE_PROFILE if spec.weight > 0)
    return Machine(
        name="SuperSPARC",
        hmdes_source=HMDES_SOURCE,
        opcode_profile=profile,
        classifier=classify,
        cascade_fn=cascade_ok,
        scheduling_mode="prepass",
        register_pool=128,
        block_size_range=(4, 14),
        flow_probability=0.45,
    )
