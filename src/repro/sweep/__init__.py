"""``repro.sweep`` -- description-space sweeps over machine fleets.

The design-space-exploration tier: schedule one fixed workload shape
across hundreds-to-thousands of synthetic machine variants
(:mod:`repro.machines.synth`) in a single batched run, and aggregate
per-variant schedule lengths, transform effect columns, oracle
verdicts, and exact-gap samples into a :class:`SweepReport` -- the
paper's transform-effectiveness story measured as a function of
machine complexity instead of at four fixed points.

::

    from repro.sweep import SweepConfig, run_sweep

    report = run_sweep(SweepConfig(
        family="superscalar-wide", count=200, seed=7, workers=4,
    ))
    assert report.ok
    report.write_jsonl("sweep.jsonl")
    print(report.summary_table())

CLI: ``repro sweep --family superscalar-wide --count 200 --workers 4``.
"""

from repro.sweep.driver import (
    SWEEP_CACHE_SIZE,
    SweepConfig,
    run_sweep,
    transform_effects_for,
)
from repro.sweep.report import REPORT_VERSION, SweepReport, VariantResult

__all__ = [
    "REPORT_VERSION",
    "SWEEP_CACHE_SIZE",
    "SweepConfig",
    "SweepReport",
    "VariantResult",
    "run_sweep",
    "transform_effects_for",
]
