"""The paper's reported numbers, transcribed for comparison.

Values come from the MICRO-29 paper's tables.  The available scan is
imperfect; entries whose digits could not be read with confidence are
marked ``approx=True`` and should be compared by magnitude only.  Byte
counts use the authors' 1996 C-struct layout and are *not* expected to
match our documented layout model absolutely -- the reproduction compares
ratios (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class PaperValue:
    """One number from the paper, possibly flagged as hard to read."""

    value: float
    approx: bool = False

    def __str__(self) -> str:
        prefix = "~" if self.approx else ""
        if self.value == int(self.value):
            return f"{prefix}{int(self.value)}"
        return f"{prefix}{self.value:g}"


def v(value: float, approx: bool = False) -> PaperValue:
    """Shorthand constructor."""
    return PaperValue(value, approx)


#: Table 1: SuperSPARC option breakdown -> % of scheduling attempts.
TABLE1_ATTEMPT_SHARES: Dict[int, PaperValue] = {
    1: v(13.41), 3: v(0.72), 6: v(14.37), 12: v(4.92),
    24: v(9.24), 36: v(3.00), 48: v(50.29), 72: v(4.05),
}

#: Table 2: PA7100 (as published, post-cleanup: no 3-option row).
TABLE2_ATTEMPT_SHARES: Dict[int, PaperValue] = {
    1: v(18.81), 2: v(81.19),
}

#: Table 3: Pentium.
TABLE3_ATTEMPT_SHARES: Dict[int, PaperValue] = {
    1: v(45.42), 2: v(54.58),
}

#: Table 4: K5.
TABLE4_ATTEMPT_SHARES: Dict[int, PaperValue] = {
    16: v(14.72), 24: v(0.14), 32: v(74.72), 48: v(5.91),
    64: v(2.56), 96: v(0.19), 128: v(0.66), 192: v(0.15),
    256: v(0.37), 384: v(0.43), 768: v(0.15),
}

#: Table 5: ops scheduled, attempts/op, OR and AND/OR options & checks
#: per attempt, and the % check reduction.
TABLE5: Dict[str, Dict[str, PaperValue]] = {
    "PA7100": {
        "ops": v(201011), "attempts_per_op": v(1.95, True),
        "or_options": v(1.56), "or_checks": v(2.47),
        "andor_options": v(1.45), "andor_checks": v(1.96, True),
        "checks_reduced_pct": v(20.6, True),
    },
    "Pentium": {
        "ops": v(207341), "attempts_per_op": v(1.47),
        "or_options": v(1.49), "or_checks": v(3.99),
        "andor_options": v(1.49), "andor_checks": v(3.99),
        "checks_reduced_pct": v(0.0),
    },
    "SuperSPARC": {
        "ops": v(282219), "attempts_per_op": v(2.05),
        "or_options": v(21.48), "or_checks": v(31.09, True),
        "andor_options": v(4.83, True), "andor_checks": v(4.82, True),
        "checks_reduced_pct": v(84.5),
    },
    "K5": {
        "ops": v(203094), "attempts_per_op": v(1.66, True),
        "or_options": v(19.59), "or_checks": v(35.49),
        "andor_options": v(5.20, True), "andor_checks": v(5.73),
        "checks_reduced_pct": v(83.9, True),
    },
}

#: Table 6: original memory requirements (bytes) and size reduction.
TABLE6: Dict[str, Dict[str, PaperValue]] = {
    "PA7100": {
        "or_bytes": v(2504), "andor_bytes": v(2504, True),
        "size_reduced_pct": v(0.0, True),
    },
    "Pentium": {
        "or_bytes": v(14824), "andor_bytes": v(15415, True),
        "size_reduced_pct": v(-4.0),
    },
    "SuperSPARC": {
        "or_bytes": v(17124), "andor_bytes": v(2624, True),
        "size_reduced_pct": v(84.7),
    },
    "K5": {
        "trees": v(33), "or_options": v(4424),
        "or_bytes": v(312640), "andor_bytes": v(4316),
        "size_reduced_pct": v(98.6),
    },
}

#: Table 7: memory after redundancy elimination (bytes + % reduction).
TABLE7: Dict[str, Dict[str, PaperValue]] = {
    "PA7100": {
        "or_bytes": v(1712), "or_reduced_pct": v(31.6, True),
        "andor_bytes": v(1232), "andor_reduced_pct": v(11.0),
    },
    "Pentium": {
        "or_bytes": v(10814), "or_reduced_pct": v(27.0),
        "andor_bytes": v(11296), "andor_reduced_pct": v(26.4),
    },
    "SuperSPARC": {
        "or_bytes": v(14752), "or_reduced_pct": v(13.8),
        "andor_bytes": v(1896), "andor_reduced_pct": v(2.7, True),
    },
    "K5": {
        "or_bytes": v(266034), "or_reduced_pct": v(14.9),
        "andor_bytes": v(3502, True), "andor_reduced_pct": v(17.0, True),
    },
}

#: Table 8: PA7100 option removal (OR representation row).
TABLE8: Dict[str, PaperValue] = {
    "options_before": v(1.46, True), "options_after": v(1.38),
    "checks_before": v(2.42, True), "checks_after": v(2.30, True),
}

#: Table 9: size before/after bit-vectors (bytes).
TABLE9: Dict[str, Dict[str, PaperValue]] = {
    "PA7100": {
        "or_before": v(1712), "or_after": v(1404),
        "or_diff_pct": v(18.0), "andor_before": v(1232),
        "andor_after": v(1128), "andor_diff_pct": v(8.4),
    },
    "Pentium": {
        "or_before": v(10814), "or_after": v(3224),
        "or_diff_pct": v(70.2), "andor_before": v(11296),
        "andor_after": v(3704), "andor_diff_pct": v(67.2, True),
    },
    "SuperSPARC": {
        "or_before": v(14752), "or_after": v(11152),
        "or_diff_pct": v(24.4), "andor_before": v(1896),
        "andor_after": v(1640), "andor_diff_pct": v(13.5),
    },
    "K5": {
        "or_before": v(266034), "or_after": v(183280),
        "or_diff_pct": v(31.1), "andor_before": v(3562, True),
        "andor_after": v(3136), "andor_diff_pct": v(12.0, True),
    },
}

#: Table 10: checks per attempt before/after bit-vectors.
TABLE10: Dict[str, Dict[str, PaperValue]] = {
    "PA7100": {
        "or_before": v(2.32), "or_after": v(2.18),
        "or_diff_pct": v(6.0), "andor_before": v(1.89),
        "andor_after": v(1.76, True), "andor_diff_pct": v(6.9, True),
    },
    "Pentium": {
        "or_before": v(3.99), "or_after": v(2.31),
        "or_diff_pct": v(42.1), "andor_before": v(3.99),
        "andor_after": v(2.31), "andor_diff_pct": v(42.1),
    },
    "SuperSPARC": {
        "or_before": v(31.09), "or_after": v(26.69),
        "or_diff_pct": v(14.2), "andor_before": v(4.83),
        "andor_after": v(4.62), "andor_diff_pct": v(4.3),
    },
    "K5": {
        "or_before": v(35.49), "or_after": v(34.35),
        "or_diff_pct": v(3.2), "andor_before": v(5.13, True),
        "andor_after": v(5.80, True), "andor_diff_pct": v(-7.0, True),
    },
}

#: Table 11: size before/after the usage-time transformation (bytes).
TABLE11: Dict[str, Dict[str, PaperValue]] = {
    "PA7100": {
        "or_before": v(1404), "or_after": v(1168),
        "or_diff_pct": v(17.0), "andor_before": v(1128),
        "andor_after": v(1032), "andor_diff_pct": v(8.5),
    },
    "Pentium": {
        "or_before": v(3224), "or_after": v(3080),
        "or_diff_pct": v(4.5), "andor_before": v(3704),
        "andor_after": v(3560), "andor_diff_pct": v(3.9),
    },
    "SuperSPARC": {
        "or_before": v(11152), "or_after": v(7016),
        "or_diff_pct": v(37.1), "andor_before": v(1640),
        "andor_after": v(1584), "andor_diff_pct": v(3.4),
    },
    "K5": {
        "or_before": v(183280), "or_after": v(125488),
        "or_diff_pct": v(31.5), "andor_before": v(3136),
        "andor_after": v(3096), "andor_diff_pct": v(1.3),
    },
}

#: Table 12: checks before/after time shift + zero-first sorting, with
#: checks per option after.
TABLE12: Dict[str, Dict[str, PaperValue]] = {
    "PA7100": {
        "or_before": v(2.18), "or_after": v(1.59),
        "or_checks_per_option": v(1.12, True),
        "andor_before": v(1.76), "andor_after": v(1.55),
        "andor_checks_per_option": v(1.12, True),
    },
    "Pentium": {
        "or_before": v(2.31), "or_after": v(1.57),
        "or_checks_per_option": v(1.05),
        "andor_before": v(2.31, True), "andor_after": v(1.57, True),
        "andor_checks_per_option": v(1.05, True),
    },
    "SuperSPARC": {
        "or_before": v(26.69), "or_after": v(21.59),
        "or_checks_per_option": v(1.01, True),
        "andor_before": v(4.62), "andor_after": v(4.49),
        "andor_checks_per_option": v(1.03),
    },
    "K5": {
        "or_before": v(34.35), "or_after": v(19.87),
        "or_checks_per_option": v(1.01, True),
        "andor_before": v(5.80), "andor_after": v(5.25),
        "andor_checks_per_option": v(1.01),
    },
}

#: Table 13: AND/OR conflict-detection optimization.
TABLE13: Dict[str, Dict[str, PaperValue]] = {
    "PA7100": {
        "options_before": v(1.38), "options_after": v(1.38),
        "checks_before": v(1.55), "checks_after": v(1.55),
    },
    "Pentium": {
        "options_before": v(1.44, True), "options_after": v(1.44, True),
        "checks_before": v(1.57), "checks_after": v(1.57),
    },
    "SuperSPARC": {
        "options_before": v(4.38), "options_after": v(2.97),
        "checks_before": v(4.49), "checks_after": v(3.08),
    },
    "K5": {
        "options_before": v(5.20), "options_after": v(4.32),
        "checks_before": v(5.25), "checks_after": v(4.38),
    },
}

#: Table 14: aggregate sizes (bytes).
TABLE14: Dict[str, Dict[str, PaperValue]] = {
    "PA7100": {
        "unopt_or": v(2504), "opt_or": v(1168),
        "opt_or_reduction_pct": v(53.4), "opt_andor": v(1032),
        "opt_andor_reduction_pct": v(58.4),
    },
    "Pentium": {
        "unopt_or": v(14824), "opt_or": v(3080),
        "opt_or_reduction_pct": v(79.2), "opt_andor": v(3560),
        "opt_andor_reduction_pct": v(76.4),
    },
    "SuperSPARC": {
        "unopt_or": v(17124), "opt_or": v(7016),
        "opt_or_reduction_pct": v(59.0), "opt_andor": v(1584),
        "opt_andor_reduction_pct": v(90.1),
    },
    "K5": {
        "unopt_or": v(312640), "opt_or": v(125488),
        "opt_or_reduction_pct": v(59.9), "opt_andor": v(3096),
        "opt_andor_reduction_pct": v(99.0),
    },
}

#: Table 15: aggregate checks per attempt.
TABLE15: Dict[str, Dict[str, PaperValue]] = {
    "PA7100": {
        "unopt_or": v(2.47, True), "opt_or": v(1.59),
        "opt_or_reduction_pct": v(35.6), "opt_andor": v(1.55),
        "opt_andor_reduction_pct": v(37.2, True),
    },
    "Pentium": {
        "unopt_or": v(3.99), "opt_or": v(1.57),
        "opt_or_reduction_pct": v(60.7), "opt_andor": v(1.57),
        "opt_andor_reduction_pct": v(60.7),
    },
    "SuperSPARC": {
        "unopt_or": v(31.09), "opt_or": v(21.59),
        "opt_or_reduction_pct": v(30.6), "opt_andor": v(3.08),
        "opt_andor_reduction_pct": v(90.1),
    },
    "K5": {
        "unopt_or": v(35.49), "opt_or": v(19.87),
        "opt_or_reduction_pct": v(44.0), "opt_andor": v(4.38),
        "opt_andor_reduction_pct": v(87.4, True),
    },
}

#: Figure 2's headline statistics (prose of section 2).
FIGURE2: Dict[str, PaperValue] = {
    "share_one_option": v(38.02),
    "share_48_options": v(30.05),
    "share_24_to_72": v(45.52),
    "success_first_option_pct": v(73.75),
}
