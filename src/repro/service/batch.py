"""The parallel batch-scheduling driver.

This is the first piece of the "serve many scheduling requests fast"
architecture: a workload of basic blocks is split into chunks, the
chunks are dispatched across a ``concurrent.futures`` process pool, and
the results are reassembled in the input order with every worker's
:class:`CheckStats` and :class:`CacheStats` folded back through their
``__iadd__`` merges.

Determinism is the design center, because the differential harness
asserts bit-for-bit identical schedules and identical summed statistics
for 1 worker, N workers, and the plain serial path:

* Chunks are formed purely from the input order and ``chunk_size``;
  results come back keyed by chunk index, so the reassembled schedule
  list is independent of worker scheduling.
* Every chunk gets a **fresh engine instance** over the (shared)
  compiled description.  Engine-level memo state -- the automaton
  backend's transition table -- therefore starts empty per chunk, which
  makes the summed stats a pure function of the chunk partition rather
  than of how chunks happened to land on workers.
* Workers warm up from the persistent disk cache
  (:class:`~repro.engine.diskcache.DiskDescriptionCache`): a fresh
  process ``load_lmdes``'s the compiled description instead of
  re-parsing HMDES and re-running the transformation pipeline, which is
  the paper's ship-the-low-level-file workflow applied to our own pool.
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.engine.base import QueryEngine
from repro.engine.cache import CacheStats, DescriptionCache
from repro.engine.diskcache import (
    DiskDescriptionCache,
    machine_content_token,
)
from repro.engine.registry import create_engine
from repro.engine.table import TableEngine
from repro.ir.block import BasicBlock
from repro.lowlevel.checker import CheckStats
from repro.machines import get_machine
from repro.scheduler import BlockSchedule, schedule_workload
from repro.transforms.pipeline import FINAL_STAGE

logger = logging.getLogger("repro.service.batch")

#: Backend used when a config names neither a backend nor an LMDES file.
DEFAULT_BACKEND = "bitvector"


@dataclass(frozen=True)
class BatchConfig:
    """One batch-scheduling request's knobs.

    Attributes:
        backend: Registered query-engine backend; mutually exclusive
            with ``lmdes_path``.  ``None`` means :data:`DEFAULT_BACKEND`
            (unless ``lmdes_path`` is given).
        lmdes_path: Schedule against a pre-compiled LMDES file instead
            of a registry backend.
        stage: Transformation stage for registry backends.
        workers: Process count; 1 runs in-process (no pool).
        chunk_size: Blocks per dispatched task.  Part of the result's
            deterministic identity: the summed stats of engine-memoizing
            backends depend on the partition, never on ``workers``.
        cache_dir: Directory for the persistent description cache;
            ``None`` disables the disk tier.
        direction: Scheduling direction, as in the list scheduler.
    """

    backend: Optional[str] = None
    lmdes_path: Optional[str] = None
    stage: int = FINAL_STAGE
    workers: int = 1
    chunk_size: int = 32
    cache_dir: Optional[str] = None
    direction: str = "forward"

    def validate(self) -> None:
        if self.backend and self.lmdes_path:
            raise ValueError(
                "BatchConfig backend and lmdes_path are mutually exclusive"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {self.chunk_size}")

    @property
    def backend_label(self) -> str:
        """What the run's constraint checks came from, for reports."""
        if self.lmdes_path:
            return f"lmdes:{self.lmdes_path}"
        return self.backend or DEFAULT_BACKEND


@dataclass
class BatchResult:
    """Aggregate outcome of one batch run, in input block order."""

    machine_name: str
    backend: str
    workers: int
    chunk_count: int = 0
    total_ops: int = 0
    total_cycles: int = 0
    schedules: List[BlockSchedule] = field(default_factory=list)
    stats: CheckStats = field(default_factory=CheckStats)
    cache_stats: CacheStats = field(default_factory=CacheStats)

    @property
    def attempts_per_op(self) -> float:
        """Average scheduling attempts per operation."""
        return self.stats.attempts / self.total_ops if self.total_ops else 0.0

    def signature(self) -> tuple:
        """Digest of every block schedule, in input order."""
        return tuple(schedule.signature() for schedule in self.schedules)


@dataclass
class _ChunkOutcome:
    """What one chunk sends back to the driver (picklable).

    ``spans`` carries the chunk's trace as plain dicts (live spans hold
    thread-local parent pointers and must not cross the pickle
    boundary); the driver grafts them back in chunk order, so the merged
    trace is identical for 1 and N workers.
    """

    index: int
    schedules: List[BlockSchedule]
    stats: CheckStats
    cache_stats: CacheStats
    spans: List[Dict[str, Any]] = field(default_factory=list)


def _chunk_blocks(
    blocks: Sequence[BasicBlock], chunk_size: int
) -> List[List[BasicBlock]]:
    return [
        list(blocks[start : start + chunk_size])
        for start in range(0, len(blocks), chunk_size)
    ]


# ----------------------------------------------------------------------
# Per-chunk execution (runs in the parent or in a pool worker)
# ----------------------------------------------------------------------

#: Per-process description cache for pool workers, created by
#: :func:`_init_worker`.  Forked workers deliberately build their own
#: cache rather than inheriting the parent's, so the disk tier (not a
#: copy-on-write accident) is what makes restarts warm.
_WORKER_CACHE: Optional[DescriptionCache] = None

#: Per-process memo of LMDES files already loaded (path -> compiled).
_LMDES_FILES: dict = {}


def _init_worker(cache_dir: Optional[str], obs_enabled: bool = False) -> None:
    global _WORKER_CACHE
    if obs_enabled:
        # Spawned workers start with a fresh module flag; forked ones
        # inherit it.  Either way, make the worker match the parent.
        obs.enable()
    disk = DiskDescriptionCache(cache_dir) if cache_dir else None
    _WORKER_CACHE = DescriptionCache(disk=disk)


def _make_engine(
    machine, config: BatchConfig, cache: DescriptionCache
) -> QueryEngine:
    if config.lmdes_path:
        compiled = _LMDES_FILES.get(config.lmdes_path)
        if compiled is None:
            from repro.lowlevel.serialize import load_lmdes

            with open(config.lmdes_path) as handle:
                compiled = load_lmdes(handle.read())
            _LMDES_FILES[config.lmdes_path] = compiled
        return TableEngine(compiled)
    return create_engine(
        config.backend or DEFAULT_BACKEND,
        machine,
        stage=config.stage,
        cache=cache,
    )


def _schedule_chunk(
    machine,
    index: int,
    blocks: List[BasicBlock],
    config: BatchConfig,
    cache: DescriptionCache,
) -> _ChunkOutcome:
    cache_before = cache.stats.copy()
    # The chunk's trace is captured against a detached stack -- also on
    # the serial path -- so driver-side grafting produces one tree shape
    # regardless of the worker count.
    with obs.capture() as captured:
        with obs.span(
            "batch:chunk", index=index, blocks=len(blocks)
        ) as sp:
            engine = _make_engine(machine, config, cache)
            run = schedule_workload(
                machine,
                None,
                blocks,
                keep_schedules=True,
                direction=config.direction,
                engine=engine,
            )
            if obs.enabled():
                sp.set(ops=run.total_ops, attempts=run.stats.attempts)
    return _ChunkOutcome(
        index=index,
        schedules=run.schedules or [],
        stats=run.stats,
        cache_stats=cache.stats.since(cache_before),
        spans=captured.spans,
    )


def _pool_chunk(
    payload: Tuple[int, str, List[BasicBlock], BatchConfig]
) -> _ChunkOutcome:
    index, machine_name, blocks, config = payload
    assert _WORKER_CACHE is not None, "worker initializer did not run"
    try:
        return _schedule_chunk(
            get_machine(machine_name), index, blocks, config, _WORKER_CACHE
        )
    except Exception:
        # The pool surfaces only the pickled exception; log the chunk's
        # identity on the worker side before it propagates.
        logger.exception(
            "batch chunk %d (%d blocks, machine %s) failed in worker",
            index, len(blocks), machine_name,
        )
        raise


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------


def _resolve_machine(machine: Union[str, object], parallel: bool):
    if isinstance(machine, str):
        return get_machine(machine)
    if parallel:
        # Workers rebuild the machine from the registry by name; an
        # unregistered (or same-named but different) machine would
        # silently schedule against the wrong description.
        try:
            registered = get_machine(machine.name)
        except KeyError:
            registered = None
        if registered is None or machine_content_token(
            registered
        ) != machine_content_token(machine):
            raise ValueError(
                "parallel batch scheduling needs a registered machine "
                f"name; {machine.name!r} does not match the registry"
            )
    return machine


def schedule_batch(
    machine: Union[str, object],
    blocks: Sequence[BasicBlock],
    config: Optional[BatchConfig] = None,
) -> BatchResult:
    """Schedule a workload of blocks, sharded across a process pool.

    ``machine`` is a registered machine name or a
    :class:`~repro.machines.base.Machine`; parallel runs require it to
    resolve through the registry so workers can rebuild it.  Results
    come back in input block order regardless of worker count, and the
    summed statistics are identical for any ``workers`` value.
    """
    config = config or BatchConfig()
    config.validate()
    machine = _resolve_machine(machine, parallel=config.workers > 1)
    block_list = list(blocks)
    chunks = _chunk_blocks(block_list, config.chunk_size)

    with obs.span(
        "service:batch", machine=machine.name,
        backend=config.backend_label, workers=config.workers,
        chunks=len(chunks),
    ) as sp:
        if config.workers == 1:
            disk = (
                DiskDescriptionCache(config.cache_dir)
                if config.cache_dir
                else None
            )
            cache = DescriptionCache(disk=disk)
            outcomes = [
                _schedule_chunk(machine, index, chunk, config, cache)
                for index, chunk in enumerate(chunks)
            ]
        else:
            payloads = [
                (index, machine.name, chunk, config)
                for index, chunk in enumerate(chunks)
            ]
            try:
                with ProcessPoolExecutor(
                    max_workers=config.workers,
                    initializer=_init_worker,
                    initargs=(config.cache_dir, obs.enabled()),
                ) as pool:
                    outcomes = list(pool.map(_pool_chunk, payloads))
            except Exception:
                logger.exception(
                    "batch run over %d chunks on %s failed in the pool",
                    len(chunks), machine.name,
                )
                raise

        result = BatchResult(
            machine_name=machine.name,
            backend=config.backend_label,
            workers=config.workers,
            chunk_count=len(chunks),
        )
        # Chunk order, not completion order: the stats fold, the
        # schedule list, and the grafted trace must not depend on pool
        # timing.
        for outcome in sorted(outcomes, key=lambda item: item.index):
            result.schedules.extend(outcome.schedules)
            result.stats += outcome.stats
            result.cache_stats += outcome.cache_stats
            obs.attach(outcome.spans)
        result.total_ops = sum(len(s.block) for s in result.schedules)
        result.total_cycles = sum(s.length for s in result.schedules)
        if obs.enabled():
            sp.set(ops=result.total_ops, cycles=result.total_cycles)
            obs.count(
                "repro_batch_chunks_total", len(chunks),
                help="Chunks dispatched by the batch service.",
                backend=config.backend_label,
            )
            obs.count(
                "repro_batch_runs_total",
                help="Batch-service runs.",
                backend=config.backend_label,
            )
    if obs.enabled():
        obs.observe(
            "repro_batch_seconds", sp.seconds,
            help="Wall seconds per batch-service run.",
            backend=config.backend_label,
        )
    return result
