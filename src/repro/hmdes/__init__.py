"""The high-level machine description (HMDES) language.

The paper's model has compiler writers author machine descriptions in a
high-level language that a translator turns into the low-level form.  This
subpackage is that language:

* :mod:`~repro.hmdes.preprocess` -- ``$define`` macros and generative
  ``$for`` loops (the paper notes option enumeration via preprocessor
  directives as a source of redundant options).
* :mod:`~repro.hmdes.lexer` / :mod:`~repro.hmdes.parser` -- tokenizer and
  recursive-descent parser producing the :mod:`~repro.hmdes.ast` nodes.
* :mod:`~repro.hmdes.translate` -- semantic analysis producing a
  :class:`~repro.core.mdes.Mdes`, with name-based sharing: referencing a
  named OR-tree from two AND/OR-trees shares one object, exactly the
  sharing the paper says "is entirely specified by the external MDES
  representation".
* :mod:`~repro.hmdes.writer` -- pretty-print an :class:`Mdes` back to
  HMDES source (round-trips structurally).

Grammar sketch::

    mdes SuperSPARC;
    section resource  { Decoder[0..2]; M; WrPt[0..1]; }
    section table     { RT_mem { use M at 0; } }
    section ortree    {
        OT_decoder { $for d in 0..2 { option { use Decoder[$d] at -1; } } }
    }
    section andortree { AOT_load { ortree RT_mem; ortree OT_decoder; } }
    section opclass   { load { resv AOT_load; latency 1; } }
    section operation { LD: load; }
"""

from repro.hmdes.preprocess import preprocess
from repro.hmdes.parser import parse_source
from repro.hmdes.translate import load_mdes, translate
from repro.hmdes.writer import write_mdes

__all__ = ["load_mdes", "parse_source", "preprocess", "translate", "write_mdes"]
