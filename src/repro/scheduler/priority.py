"""Scheduling priorities: critical-path height.

The list scheduler picks among ready operations by dependence height --
the longest latency-weighted path from the operation to any leaf.  Ties
break on original program order, which keeps every run deterministic (a
property the reproduction relies on: the paper's tables compare the same
schedule across representations).
"""

from __future__ import annotations

from typing import Dict

from repro.ir.dependence import DependenceGraph


def compute_heights(graph: DependenceGraph) -> Dict[int, int]:
    """Latency-weighted height of every operation in the block.

    Operations are indexed in program order and edges always point
    forward, so one reverse sweep suffices.
    """
    heights: Dict[int, int] = {}
    for op in reversed(graph.block.operations):
        best = 0
        for edge in graph.succs_of(op.index):
            candidate = edge.latency + heights[edge.succ]
            if candidate > best:
                best = candidate
        heights[op.index] = best
    return heights
