"""The curated ``repro bench`` kernel suite.

One driver, one schema, one history file.  Each kernel is a named
``setup(smoke) -> run()`` pair: setup builds the workload (excluded
from timing), ``run()`` executes the measured region and may return a
dict of extra metrics (speedups, node counts).  The driver times
``run()`` wall-clock over N repeats after one warmup, normalizes
everything into :class:`~repro.obs.perf.BenchRecord` rows, and hands
them to :mod:`repro.obs.perf` for history/baseline/regression work.

The kernels deliberately cover every paper-relevant hot path the repo
has grown: description compilation, list scheduling on two machines,
the vectorized first-fit batch query (the PR 6 5x win), the exact
branch-and-bound backend, the independent verification oracle, and the
warm-cache synthetic-fleet sweep.

Two environment knobs the CI gate relies on:

* ``REPRO_BENCH_SMOKE=1`` -- reduced op counts and 3 repeats, so the
  whole suite finishes in well under a minute on a CI runner.
* ``REPRO_BENCH_INJECT="<substr>=<seconds>"`` -- sleeps inside the
  timed region of every kernel whose name contains ``<substr>``.  This
  is the acceptance test for the regression gate itself: an injected
  slowdown must flip ``repro bench --check`` to a nonzero exit.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import perf

#: Repeats per kernel (after one untimed warmup).
DEFAULT_REPEATS = 5
SMOKE_REPEATS = 3


def _env_truthy(value: str) -> bool:
    return value.strip().lower() in ("1", "true", "yes", "on")


def smoke_mode() -> bool:
    return _env_truthy(os.environ.get("REPRO_BENCH_SMOKE", ""))


def parse_injection(
    text: Optional[str] = None,
) -> Optional[Tuple[str, float]]:
    """``"exact.pentium=0.2"`` -> ``("exact.pentium", 0.2)``."""
    if text is None:
        text = os.environ.get("REPRO_BENCH_INJECT", "")
    text = text.strip()
    if not text:
        return None
    pattern, _, seconds = text.partition("=")
    if not pattern or not seconds:
        raise ValueError(
            f"REPRO_BENCH_INJECT must be '<substr>=<seconds>': {text!r}"
        )
    return pattern, float(seconds)


class KernelUnavailable(Exception):
    """Raised by a kernel's setup when its prerequisites are missing."""


@dataclass(frozen=True)
class MetricMeta:
    """How one metric is compared against the baseline."""

    unit: str = "s"
    direction: str = "lower"
    tolerance: float = 0.35  # CI runners are noisy; stats confirm the rest


@dataclass(frozen=True)
class Kernel:
    """One curated benchmark: setup once, run the measured region N times."""

    name: str
    description: str
    setup: Callable[[bool], Callable[[], Optional[Dict[str, float]]]]
    seconds: Optional[MetricMeta] = MetricMeta()
    extra: Mapping[str, MetricMeta] = field(default_factory=dict)

    def metrics(self) -> List[str]:
        out = []
        if self.seconds is not None:
            out.append(f"{self.name}.seconds")
        out.extend(f"{self.name}.{key}" for key in self.extra)
        return out


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------


def _k_compile(smoke: bool):
    """Full description pipeline: transforms + compile, PA7100."""
    from repro.lowlevel.compiled import compile_mdes
    from repro.machines import get_machine
    from repro.transforms import FINAL_STAGE, staged_mdes

    machine = get_machine("PA7100")
    base = machine.build_andor()

    def run():
        mdes = staged_mdes(base, FINAL_STAGE)
        compile_mdes(mdes, bitvector=True)

    return run


def _schedule_setup(machine_name: str, full_ops: int, smoke_ops: int):
    def setup(smoke: bool):
        from repro.engine import create_engine
        from repro.machines import get_machine
        from repro.scheduler import schedule_workload
        from repro.workloads import WorkloadConfig, generate_blocks

        machine = get_machine(machine_name)
        ops = smoke_ops if smoke else full_ops
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=ops))
        engine = create_engine("bitvector", machine)

        def run():
            schedule_workload(machine, None, blocks, engine=engine)

        return run

    return setup


def _k_first_fit(smoke: bool):
    """Congested first-fit scan: vectorized vs forced-scalar (PR 6)."""
    from repro.engine import create_engine
    from repro.lowlevel.packed import numpy_available
    from repro.machines import get_machine

    if not numpy_available():
        raise KernelUnavailable("vectorized path requires numpy")

    machine = get_machine("SuperSPARC")
    fast = create_engine("bitvector", machine)
    slow = type(fast)(fast.compiled, name="bitvector", vectorized=False)

    # The class whose saturation is cheapest to scan: fewest slots.
    probe_state = fast.new_state()
    class_name, best_slots = None, None
    for candidate in sorted(fast.compiled.constraints):
        slots = 0
        while fast.try_reserve(probe_state, candidate, 0) is not None:
            slots += 1
        probe_state = fast.new_state()
        if best_slots is None or slots < best_slots:
            class_name, best_slots = candidate, slots

    congestion = 400 if smoke else 1200
    states = []
    for engine in (fast, slow):
        state = engine.new_state()
        for cycle in range(congestion):
            while engine.try_reserve(state, class_name, cycle) is not None:
                pass
        states.append(state)
    fast_state, slow_state = states
    window = range(0, congestion + 64)
    scans = 3 if smoke else 8

    def run():
        t0 = time.perf_counter()
        for _ in range(scans):
            handle = fast.try_reserve_many(fast_state, class_name, window)
            fast.release(handle)
        fast_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(scans):
            handle = slow.try_reserve_many(slow_state, class_name, window)
            slow.release(handle)
        scalar_seconds = time.perf_counter() - t0
        return {
            "vectorized_seconds": fast_seconds,
            "scalar_seconds": scalar_seconds,
            "speedup": scalar_seconds / fast_seconds,
        }

    return run


def _k_exact(smoke: bool):
    """Branch-and-bound exact scheduling on Pentium (PR 7)."""
    from repro.exact import schedule_workload_exact
    from repro.machines import get_machine
    from repro.workloads import WorkloadConfig, generate_blocks

    machine = get_machine("Pentium")
    ops = 40 if smoke else 90
    blocks = generate_blocks(machine, WorkloadConfig(total_ops=ops))

    def run():
        result = schedule_workload_exact(machine, blocks)
        return {"nodes": float(result.nodes)}

    return run


def _k_oracle(smoke: bool):
    """Independent schedule verification oracle replay (PR 5)."""
    from repro.engine import create_engine
    from repro.machines import get_machine
    from repro.scheduler import schedule_workload
    from repro.verify import verify_schedule
    from repro.workloads import WorkloadConfig, generate_blocks

    machine = get_machine("SuperSPARC")
    ops = 400 if smoke else 1200
    blocks = generate_blocks(machine, WorkloadConfig(total_ops=ops))
    engine = create_engine("bitvector", machine)
    result = schedule_workload(
        machine, None, blocks, keep_schedules=True, engine=engine
    )

    def run():
        report = verify_schedule(machine, result)
        if not report.ok:
            raise RuntimeError("oracle rejected a list schedule")

    return run


def _k_sweep(smoke: bool):
    """Description-space sweep across a synthetic fleet (PR 10)."""
    from repro.engine.cache import DescriptionCache
    from repro.sweep import SWEEP_CACHE_SIZE, SweepConfig, run_sweep

    count = 12 if smoke else 48
    config = SweepConfig(
        family="superscalar-wide", count=count, seed=7,
        ops=32, workers=1, verify=False,
    )
    # One cache across repeats: the warmup run pays the compiles, the
    # timed repeats measure warm fleet throughput -- the regime a
    # long-lived sweep or server actually runs in.
    cache = DescriptionCache(maxsize=SWEEP_CACHE_SIZE, name="bench-sweep")

    def run():
        report = run_sweep(config, cache=cache)
        if not report.ok:
            raise RuntimeError("bench sweep quarantined a variant")
        hits = report.cache.get("memory_hits", 0)
        misses = report.cache.get("memory_misses", 0)
        total = hits + misses
        return {
            "variants_per_second": (
                count / report.wall_seconds if report.wall_seconds else 0.0
            ),
            "cache_hit_rate": hits / total if total else 0.0,
        }

    return run


KERNELS: Tuple[Kernel, ...] = (
    Kernel(
        "compile.pa7100",
        "transform pipeline + bit-vector compile of the PA7100 description",
        _k_compile,
    ),
    Kernel(
        "schedule.list.supersparc",
        "list scheduler over a generated SuperSPARC workload",
        _schedule_setup("SuperSPARC", full_ops=2500, smoke_ops=700),
    ),
    Kernel(
        "schedule.list.pa7100",
        "list scheduler over a generated PA7100 workload",
        _schedule_setup("PA7100", full_ops=2500, smoke_ops=700),
    ),
    Kernel(
        "query.first_fit",
        "congested first-fit batch query, vectorized vs forced scalar",
        _k_first_fit,
        seconds=MetricMeta(direction="info"),
        extra={
            "vectorized_seconds": MetricMeta(tolerance=0.5),
            "scalar_seconds": MetricMeta(direction="info"),
            "speedup": MetricMeta(
                unit="x", direction="higher", tolerance=0.35
            ),
        },
    ),
    Kernel(
        "exact.pentium",
        "branch-and-bound exact scheduler over a Pentium workload",
        _k_exact,
        extra={"nodes": MetricMeta(unit="count", direction="info")},
    ),
    Kernel(
        "verify.oracle.supersparc",
        "independent oracle replay of a scheduled SuperSPARC workload",
        _k_oracle,
    ),
    Kernel(
        "sweep.fleet",
        "fixed workload swept across a seeded superscalar-wide synth fleet",
        _k_sweep,
        extra={
            "variants_per_second": MetricMeta(
                unit="1/s", direction="higher", tolerance=0.5
            ),
            "cache_hit_rate": MetricMeta(unit="ratio", direction="info"),
        },
    ),
)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def select_kernels(
    only: Optional[Sequence[str]] = None,
    kernels: Sequence[Kernel] = KERNELS,
) -> List[Kernel]:
    """Kernels whose name contains any requested substring (all by
    default); unknown patterns raise rather than silently running
    nothing."""
    if not only:
        return list(kernels)
    out: List[Kernel] = []
    for kernel in kernels:
        if any(pattern in kernel.name for pattern in only):
            out.append(kernel)
    if not out:
        raise ValueError(
            f"no kernel matches {list(only)!r}; "
            f"known: {[k.name for k in kernels]}"
        )
    return out


def run_suite(
    only: Optional[Sequence[str]] = None,
    repeats: Optional[int] = None,
    smoke: Optional[bool] = None,
    inject: Optional[Tuple[str, float]] = None,
    kernels: Sequence[Kernel] = KERNELS,
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[List[perf.BenchRecord], List[Tuple[str, str]]]:
    """Run the curated suite; returns (records, skipped-with-reason).

    Every kernel runs under a ``bench:<name>`` obs span (a no-op unless
    observability is enabled), gets one untimed warmup, then
    ``repeats`` timed runs.  Wall seconds become ``<name>.seconds``;
    extra metrics returned by the kernel become ``<name>.<key>``.
    """
    from repro import obs

    if smoke is None:
        smoke = smoke_mode()
    if repeats is None:
        repeats = SMOKE_REPEATS if smoke else DEFAULT_REPEATS
    if inject is None:
        inject = parse_injection()
    env = perf.env_fingerprint()
    # Stamp the workload scale: smoke and full runs time different
    # workloads, so comparing across them is meaningless and
    # compare_records() neutralizes such pairs as "scale-mismatch".
    env["smoke"] = smoke
    records: List[perf.BenchRecord] = []
    skipped: List[Tuple[str, str]] = []
    for kernel in select_kernels(only, kernels):
        if progress:
            progress(kernel.name)
        delay = (
            inject[1]
            if inject is not None and inject[0] in kernel.name
            else 0.0
        )
        with obs.span(f"bench:{kernel.name}", repeats=repeats) as sp:
            try:
                run = kernel.setup(smoke)
            except KernelUnavailable as exc:
                skipped.append((kernel.name, str(exc)))
                sp.set(skipped=str(exc))
                continue
            run()  # warmup: caches, JIT-ish lazy imports, page faults
            seconds: List[float] = []
            extras: Dict[str, List[float]] = {}
            for _ in range(repeats):
                started = time.perf_counter()
                out = run() or {}
                if delay:
                    time.sleep(delay)
                seconds.append(time.perf_counter() - started)
                for key, value in out.items():
                    extras.setdefault(key, []).append(float(value))
            sp.set(best_seconds=min(seconds))
        now = time.time()
        if kernel.seconds is not None:
            meta = kernel.seconds
            records.append(perf.make_record(
                kernel.name, f"{kernel.name}.seconds", seconds,
                unit=meta.unit, direction=meta.direction,
                tolerance=meta.tolerance, env=env, timestamp=now,
            ))
        for key, meta in kernel.extra.items():
            if key not in extras:
                continue
            records.append(perf.make_record(
                kernel.name, f"{kernel.name}.{key}", extras[key],
                unit=meta.unit, direction=meta.direction,
                tolerance=meta.tolerance, env=env, timestamp=now,
            ))
    return records, skipped


__all__ = [
    "DEFAULT_REPEATS",
    "SMOKE_REPEATS",
    "Kernel",
    "KernelUnavailable",
    "MetricMeta",
    "KERNELS",
    "smoke_mode",
    "parse_injection",
    "select_kernels",
    "run_suite",
]
