"""Ablation: per-stage contribution of each transformation.

DESIGN.md calls out the pipeline order; this bench measures, for the
SuperSPARC and K5 AND/OR descriptions, what each stage alone contributes
on top of the previous ones -- the incremental story of Tables 7-13 in a
single view -- and verifies the schedule never changes.
"""

from conftest import write_result

from repro.analysis.reporting import format_table
from repro.lowlevel.compiled import compile_mdes
from repro.lowlevel.layout import mdes_size_bytes
from repro.machines import get_machine
from repro.scheduler import schedule_workload
from repro.transforms import run_pipeline
from repro.workloads import WorkloadConfig, generate_blocks


def test_ablation_stage_order_regenerate(results_dir, benchmark):
    def build_rows():
        rows = []
        for name in ("SuperSPARC", "K5"):
            machine = get_machine(name)
            blocks = generate_blocks(
                machine, WorkloadConfig(total_ops=4000)
            )
            pipeline = run_pipeline(machine.build_andor())
            baseline = None
            for stage_name, mdes in zip(
                pipeline.stage_names, pipeline.stages
            ):
                compiled = compile_mdes(mdes, bitvector=True)
                result = schedule_workload(
                    machine, compiled, blocks, keep_schedules=True
                )
                if baseline is None:
                    baseline = result.signature()
                assert result.signature() == baseline
                rows.append(
                    (
                        name,
                        stage_name,
                        mdes_size_bytes(compiled),
                        result.stats.options_per_attempt,
                        result.stats.checks_per_attempt,
                    )
                )
        return rows

    rows = benchmark(build_rows)
    text = format_table(
        ("MDES", "Stage", "Bytes", "Opt/Att", "Chk/Att"),
        rows,
        title=(
            "Ablation: incremental effect of each pipeline stage "
            "(AND/OR form, bit-vectors; schedules verified identical)"
        ),
    )
    write_result(results_dir, "ablation_stage_order.txt", text)
