"""The independent verification layer (``repro.verify``).

Three claims under test, matching the subsystem's three instruments:

* the **oracle** is a real referee -- hand-built schedules with planted
  resource conflicts and latency violations produce exactly the typed
  diagnostics they should, on every paper machine, and clean schedules
  produce none;
* the **differential harness** finds nothing on the shipped machines
  (every backend and every transform stage agrees), and the service /
  API integration points expose the oracle correctly;
* the **golden corpus** is both current (``check_corpus`` is clean) and
  regenerable (a fresh ``write_corpus`` reproduces the checked-in
  bytes), and -- the mutation smoke test -- a deliberately broken
  description is caught by BOTH the oracle and the corpus digests.
"""

import json
from pathlib import Path

import pytest

from repro.core.tables import AndOrTree, OrTree, ReservationTable
from repro.engine.registry import engine_names, get_engine_spec
from repro.engine.table import TableEngine
from repro.ir.block import BasicBlock
from repro.ir.dependence import FLOW, build_dependence_graph
from repro.ir.operation import Operation
from repro.lowlevel.compiled import compile_mdes
from repro.machines import MACHINE_NAMES, get_machine
from repro.scheduler import schedule_workload
from repro.scheduler.schedule import BlockSchedule
from repro.service import BatchConfig, schedule_batch
from repro.transforms.pipeline import staged_mdes
from repro.verify import (
    CORPUS_STAGE,
    LATENCY_VIOLATION,
    RESOURCE_CONFLICT,
    UNKNOWN_CLASS,
    UNPLACED_OPERATION,
    check_corpus,
    corpus_workload,
    differential_runs,
    schedule_digest,
    verify_schedule,
    verify_transform_stages,
    write_corpus,
)

from tests.conftest import shared_oracle, shared_workload

GOLDEN_DIR = Path(__file__).parent / "golden"
STAGE = CORPUS_STAGE


# ----------------------------------------------------------------------
# Hand-built schedule helpers
# ----------------------------------------------------------------------


def plain_opcode(mdes):
    """A non-branch, non-memory opcode and its class."""
    for opcode, class_name in sorted(mdes.opcode_map.items()):
        if opcode == "BR" or "br" in class_name.lower():
            continue
        if "ld" in opcode.lower() or "st" in opcode.lower():
            continue
        return opcode, class_name
    raise AssertionError("machine has no plain ALU opcode")


def capacity(constraint):
    """Per-cycle issue capacity: the narrowest OR-tree's option count."""
    trees = (
        constraint.or_trees
        if isinstance(constraint, AndOrTree)
        else (constraint,)
    )
    return min(len(tree.options) for tree in trees)


def independent_ops(opcode, count):
    """``count`` ops with disjoint registers: a dependence-free block."""
    return [
        Operation(i, opcode, dests=(f"r{i}",), srcs=(f"s{i}", f"t{i}"))
        for i in range(count)
    ]


class TestOracleDiagnostics:
    """Planted faults produce exactly the right typed diagnostics."""

    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_pigeonhole_resource_conflict(self, machine_name):
        """capacity+1 independent same-class ops in one cycle: at least
        two must share an option, whose usages then collide."""
        oracle = shared_oracle(machine_name)
        opcode, class_name = plain_opcode(oracle.mdes)
        n = capacity(oracle.mdes.op_classes[class_name].constraint) + 1
        block = BasicBlock("conflict", independent_ops(opcode, n))
        schedule = BlockSchedule(
            block,
            {i: 0 for i in range(n)},
            {i: class_name for i in range(n)},
        )
        diagnostics = oracle.verify_block(schedule)
        assert {d.code for d in diagnostics} == {RESOURCE_CONFLICT}
        # The conflict diagnostic names a cycle and a resource.
        assert any(d.resource for d in diagnostics)

    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_clean_schedule_has_no_diagnostics(self, machine_name):
        """The same ops spaced far apart replay without conflicts."""
        oracle = shared_oracle(machine_name)
        opcode, class_name = plain_opcode(oracle.mdes)
        n = capacity(oracle.mdes.op_classes[class_name].constraint) + 1
        block = BasicBlock("clean", independent_ops(opcode, n))
        schedule = BlockSchedule(
            block,
            {i: 32 * i for i in range(n)},
            {i: class_name for i in range(n)},
        )
        assert oracle.verify_block(schedule) == []

    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_latency_violation_one_cycle_short(self, machine_name):
        """A consumer placed at distance L-1 under a flow edge of
        latency L >= 2 (no forwarding shortcut) must be flagged."""
        machine = get_machine(machine_name)
        oracle = shared_oracle(machine_name)
        _, consumer_class = plain_opcode(oracle.mdes)
        consumer_opcode, _ = plain_opcode(oracle.mdes)

        for producer_opcode, producer_class in sorted(
            oracle.mdes.opcode_map.items()
        ):
            producer = Operation(
                0, producer_opcode, dests=("r0",), srcs=("a", "b")
            )
            consumer = Operation(
                1, consumer_opcode, dests=("r1",), srcs=("r0",)
            )
            block = BasicBlock("lat", [producer, consumer])
            graph = build_dependence_graph(
                block,
                machine.latency,
                flow_latency_of=machine.flow_latency,
                bypass_of=machine.bypass,
            )
            edge = next(
                (
                    e
                    for edges in graph.preds.values()
                    for e in edges
                    if e.kind == FLOW
                    and e.latency >= 2
                    and not (
                        e.is_cascade_eligible
                        and e.min_latency == e.latency - 1
                    )
                ),
                None,
            )
            if edge is None:
                continue
            schedule = BlockSchedule(
                block,
                {0: 0, 1: edge.latency - 1},
                {0: producer_class, 1: consumer_class},
            )
            codes = {d.code for d in oracle.verify_block(schedule)}
            assert LATENCY_VIOLATION in codes, (
                f"{machine_name}: {producer_opcode}->{consumer_opcode} "
                f"at distance {edge.latency - 1} not flagged"
            )
            return
        pytest.fail(f"{machine_name}: no flow edge with latency >= 2")

    def test_unknown_class_is_flagged(self):
        oracle = shared_oracle("K5")
        opcode, _ = plain_opcode(oracle.mdes)
        block = BasicBlock("unknown", independent_ops(opcode, 1))
        schedule = BlockSchedule(block, {0: 0}, {0: "no_such_class"})
        codes = [d.code for d in oracle.verify_block(schedule)]
        assert codes == [UNKNOWN_CLASS]

    def test_unplaced_and_phantom_operations_are_flagged(self):
        oracle = shared_oracle("K5")
        opcode, class_name = plain_opcode(oracle.mdes)
        block = BasicBlock("unplaced", independent_ops(opcode, 2))
        # Op 1 never scheduled; index 7 scheduled but not in the block.
        schedule = BlockSchedule(
            block, {0: 0, 7: 3}, {0: class_name, 7: class_name}
        )
        codes = [d.code for d in oracle.verify_block(schedule)]
        assert codes.count(UNPLACED_OPERATION) == 2

    def test_diagnostic_renders_location(self):
        oracle = shared_oracle("K5")
        opcode, class_name = plain_opcode(oracle.mdes)
        n = capacity(oracle.mdes.op_classes[class_name].constraint) + 1
        block = BasicBlock("render", independent_ops(opcode, n))
        schedule = BlockSchedule(
            block,
            {i: 0 for i in range(n)},
            {i: class_name for i in range(n)},
        )
        (first, *_rest) = oracle.verify_block(schedule)
        text = str(first)
        assert text.startswith(f"[{RESOURCE_CONFLICT}] render")
        assert "@cycle" in text


# ----------------------------------------------------------------------
# Real schedules: every backend, every machine, both directions
# ----------------------------------------------------------------------


class TestAcceptanceMatrix:
    @pytest.mark.parametrize("backend", engine_names(scheduler="list"))
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_every_backend_schedule_verifies(self, machine_name, backend):
        from repro.engine.registry import create_engine

        machine, blocks = shared_workload(machine_name, 160, 20161202)
        stage = max(STAGE, get_engine_spec(backend).min_stage)
        engine = create_engine(backend, machine, stage=stage)
        run = schedule_workload(
            machine, None, blocks, keep_schedules=True, engine=engine
        )
        report = verify_schedule(machine, run)
        assert report.ok, report.diagnostics
        assert report.blocks_checked == len(blocks)
        assert report.ops_checked == run.total_ops

    @pytest.mark.parametrize("machine_name", ["K5", "SuperSPARC"])
    def test_backward_schedules_verify(self, machine_name):
        from repro.engine.registry import create_engine

        machine, blocks = shared_workload(machine_name, 160, 20161202)
        engine = create_engine("bitvector", machine, stage=STAGE)
        run = schedule_workload(
            machine, None, blocks,
            keep_schedules=True, direction="backward", engine=engine,
        )
        report = verify_schedule(machine, run, direction="backward")
        assert report.ok, report.diagnostics

    def test_differential_finds_nothing_on_paper_machine(self):
        machine, blocks = shared_workload("SuperSPARC", 120, 7)
        assert differential_runs(machine, blocks) == []

    def test_transform_stages_find_nothing_on_paper_machine(self):
        machine, blocks = shared_workload("SuperSPARC", 120, 7)
        assert verify_transform_stages(machine, blocks) == []


# ----------------------------------------------------------------------
# API and service surfaces
# ----------------------------------------------------------------------


class TestVerifySurface:
    def test_api_reexports_verify_schedule(self):
        from repro import api

        assert api.verify_schedule is verify_schedule
        assert "verify_schedule" in api.__all__
        assert "VerificationError" in api.__all__

    @staticmethod
    def _run(machine, blocks, **kwargs):
        from repro.engine.registry import create_engine

        engine = create_engine("bitvector", machine, stage=STAGE)
        return schedule_workload(
            machine, None, blocks, engine=engine, **kwargs
        )

    def test_accepts_name_result_single_schedule_and_iterable(self):
        machine, blocks = shared_workload("K5", 120, 7)
        run = self._run(machine, blocks, keep_schedules=True)
        by_name = verify_schedule("K5", run)
        assert by_name.ok and by_name.blocks_checked == len(blocks)
        single = verify_schedule(machine, run.schedules[0])
        assert single.blocks_checked == 1
        subset = verify_schedule(machine, run.schedules[:3])
        assert subset.blocks_checked == 3

    def test_rejects_results_without_schedules(self):
        machine, blocks = shared_workload("K5", 120, 7)
        run = self._run(machine, blocks)  # schedules=None
        with pytest.raises(ValueError, match="keep_schedules"):
            verify_schedule(machine, run)

    def test_batch_service_attaches_verify_report(self):
        machine, blocks = shared_workload("K5", 120, 7)
        result = schedule_batch(
            "K5", blocks,
            BatchConfig(workers=1, stage=STAGE, verify=True),
        )
        assert result.verify_report is not None
        assert result.verify_report.ok
        assert result.verify_report.blocks_checked == len(blocks)

    def test_batch_service_skips_oracle_by_default(self):
        machine, blocks = shared_workload("K5", 120, 7)
        result = schedule_batch(
            "K5", blocks, BatchConfig(workers=1, stage=STAGE),
        )
        assert result.verify_report is None

    def test_oracle_counters_and_span(self):
        from repro import obs

        machine, blocks = shared_workload("K5", 120, 7)
        run = self._run(machine, blocks, keep_schedules=True)
        was_enabled = obs.enabled()
        obs.enable()
        try:
            obs.reset()
            verify_schedule(machine, run)
            assert obs.REGISTRY.value(
                "repro_verify_runs_total", machine="K5"
            ) == 1
            assert obs.REGISTRY.value(
                "repro_verify_blocks_total", machine="K5"
            ) == len(blocks)
            assert [r.name for r in obs.TRACER.roots] == ["verify:oracle"]
        finally:
            if not was_enabled:
                obs.disable()
            obs.reset()


# ----------------------------------------------------------------------
# Golden corpus
# ----------------------------------------------------------------------


class TestGoldenCorpus:
    def test_checked_in_corpus_is_current(self):
        assert check_corpus(GOLDEN_DIR) == []

    def test_checked_in_synth_fleet_is_current(self):
        """Seeded synth generation and scheduling both stay pinned:
        the fleet file digests the HMDES source (generation
        determinism) and the schedules (full-stack determinism)."""
        from repro.verify import check_synth_fleet

        assert check_synth_fleet(GOLDEN_DIR) == []

    def test_synth_fleet_regeneration_reproduces_checked_in_bytes(
        self, tmp_path
    ):
        from repro.verify import SYNTH_FLEET_FILE, write_synth_fleet

        written = write_synth_fleet(tmp_path)
        pinned = (GOLDEN_DIR / SYNTH_FLEET_FILE).read_text(
            encoding="utf-8"
        )
        assert written.read_text(encoding="utf-8") == pinned

    def test_regeneration_reproduces_checked_in_bytes(self, tmp_path):
        written = write_corpus(tmp_path)
        assert len(written) == len(MACHINE_NAMES)
        for path in written:
            pinned = (GOLDEN_DIR / path.name).read_text(encoding="utf-8")
            assert path.read_text(encoding="utf-8") == pinned, path.name

    def test_corpus_files_pin_every_backend(self):
        for machine_name in MACHINE_NAMES:
            document = json.loads(
                (GOLDEN_DIR / f"{machine_name.lower()}.json").read_text(
                    encoding="utf-8"
                )
            )
            assert [e["backend"] for e in document["entries"]] == list(
                engine_names(scheduler="list")
            )
            assert all(e["oracle_ok"] for e in document["entries"])
            exact = document["exact"]
            assert exact["backend"] == "exact"
            assert exact["oracle_ok"]
            assert exact["oracle_diagnostics"] == 0
            # The exact scheduler never books more cycles than its
            # list-scheduler seed.
            assert exact["total_cycles"] <= exact["heuristic_cycles"]
            assert 0 < exact["optimal_blocks"] <= exact["blocks"]

    def test_check_reports_a_planted_digest_mismatch(self, tmp_path):
        write_corpus(tmp_path, machines=["K5"])
        path = tmp_path / "k5.json"
        document = json.loads(path.read_text(encoding="utf-8"))
        document["entries"][0]["digest"] = "0" * 64
        path.write_text(json.dumps(document), encoding="utf-8")
        mismatches = check_corpus(tmp_path, machines=["K5"])
        assert any("digest changed" in m for m in mismatches)


# ----------------------------------------------------------------------
# Mutation smoke test: a planted description bug is caught twice
# ----------------------------------------------------------------------


def drop_first_usages(constraint):
    """Weaken a constraint: every option with >= 2 usages loses its
    first one, so the engine under-books resources."""

    def weaken(tree):
        return OrTree(
            tuple(
                ReservationTable(option.usages[1:])
                if len(option.usages) >= 2
                else option
                for option in tree.options
            ),
            name=tree.name,
        )

    if isinstance(constraint, AndOrTree):
        return AndOrTree(
            tuple(weaken(tree) for tree in constraint.or_trees),
            name=constraint.name,
        )
    return weaken(constraint)


class TestMutationSmoke:
    """The acceptance criterion: a seeded description bug must be caught
    by BOTH the oracle and the golden corpus."""

    @pytest.mark.parametrize("machine_name", ["PA7100", "SuperSPARC"])
    def test_planted_bug_caught_by_oracle_and_corpus(self, machine_name):
        machine, blocks = corpus_workload(machine_name)
        staged = staged_mdes(machine.build_andor(), STAGE)
        mutated = staged.map_constraints(drop_first_usages)
        # Build the engine directly from the mutated description so the
        # global compile cache never sees the broken machine.
        engine = TableEngine(compile_mdes(mutated, bitvector=True))
        run = schedule_workload(
            machine, None, blocks, keep_schedules=True, engine=engine
        )

        # Caught by the oracle: the under-booked engine packed ops the
        # raw description cannot admit.
        report = verify_schedule(machine, run)
        assert not report.ok
        assert report.codes().get(RESOURCE_CONFLICT, 0) >= 1

        # Caught by the corpus: the schedule digest no longer matches
        # the pinned bitvector entry.
        pinned = json.loads(
            (GOLDEN_DIR / f"{machine_name.lower()}.json").read_text(
                encoding="utf-8"
            )
        )
        pinned_digest = next(
            e["digest"]
            for e in pinned["entries"]
            if e["backend"] == "bitvector"
        )
        assert schedule_digest(run.signature()) != pinned_digest
