"""Batch-scheduling service throughput and disk-cache load time.

Two measurements back the service layer's claims:

* **Sharding**: the same 20k-op workload scheduled serially and through
  a 4-worker pool, with the differential invariant (identical
  signatures and stats) asserted on the timed runs themselves.  The
  speedup assertion is gated on actually having >= 4 usable cores --
  on smaller containers the pool can only add overhead, and the JSON
  artifact records ``cpu_count`` alongside the honest numbers.
* **Persistence**: median cold compile (HMDES parse + transform
  pipeline + compile) versus median warm ``load_lmdes`` from the disk
  tier, which is the paper's motivation for shipping the low-level
  file: loading must be much faster than regenerating.
"""

import os
import statistics
import time

from conftest import BENCH_OPS, write_result

from repro.analysis.reporting import format_table
from repro.engine.cache import DescriptionCache
from repro.engine.diskcache import DiskDescriptionCache
from repro.machines import get_machine, supersparc
from repro.service import BatchConfig, schedule_batch
from repro.workloads import WorkloadConfig, generate_blocks

PARALLEL_WORKERS = int(os.environ.get("REPRO_BATCH_WORKERS", "4"))
CHUNK_SIZE = 64
LOAD_REPS = 5
REP, STAGE, BITVECTOR = "andor", 4, True


def _usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _timed_batch(blocks, workers, cache_dir, shared=True):
    config = BatchConfig(
        backend="bitvector",
        workers=workers,
        chunk_size=CHUNK_SIZE,
        cache_dir=cache_dir,
        shared_descriptions=shared,
    )
    started = time.perf_counter()
    result = schedule_batch("SuperSPARC", blocks, config)
    return time.perf_counter() - started, result


def _median_load_times(tmp_path):
    """(cold compile, warm disk load) medians over fresh caches.

    Every rep rebuilds the Machine from scratch so the cold leg pays
    the full translate/transform/compile pipeline, exactly what a cold
    pool worker would.
    """
    disk_dir = tmp_path / "load-cache"
    cold, warm = [], []
    for _ in range(LOAD_REPS):
        machine = supersparc.build_machine()
        started = time.perf_counter()
        DescriptionCache().compiled(machine, REP, STAGE, BITVECTOR)
        cold.append(time.perf_counter() - started)
    # Publish once, then time pure disk loads from fresh caches.
    DescriptionCache(disk=DiskDescriptionCache(disk_dir)).compiled(
        supersparc.build_machine(), REP, STAGE, BITVECTOR
    )
    for _ in range(LOAD_REPS):
        machine = supersparc.build_machine()
        cache = DescriptionCache(disk=DiskDescriptionCache(disk_dir))
        started = time.perf_counter()
        cache.compiled(machine, REP, STAGE, BITVECTOR)
        warm.append(time.perf_counter() - started)
        assert cache.stats.disk_hits == 1
    return statistics.median(cold), statistics.median(warm)


def test_batch_service_regenerate(results_dir, benchmark, tmp_path):
    machine = get_machine("SuperSPARC")
    blocks = generate_blocks(
        machine, WorkloadConfig(total_ops=BENCH_OPS)
    )
    cache_dir = str(tmp_path / "batch-cache")

    def run_all():
        serial_s, serial = _timed_batch(blocks, 1, cache_dir)
        parallel_s, parallel = _timed_batch(
            blocks, PARALLEL_WORKERS, cache_dir
        )
        unshared_s, unshared = _timed_batch(
            blocks, PARALLEL_WORKERS, cache_dir, shared=False
        )
        return serial_s, serial, parallel_s, parallel, unshared_s, unshared

    serial_s, serial, parallel_s, parallel, unshared_s, unshared = (
        benchmark.pedantic(run_all, rounds=1, iterations=1)
    )
    # The timed runs themselves must satisfy the differential invariant.
    assert parallel.signature() == serial.signature()
    assert parallel.stats == serial.stats
    assert parallel.total_ops == serial.total_ops >= BENCH_OPS
    assert unshared.signature() == serial.signature()
    assert unshared.stats == serial.stats
    assert parallel.shared_descriptions
    assert not unshared.shared_descriptions

    cold_s, warm_s = _median_load_times(tmp_path)
    cpus = _usable_cpus()
    speedup = serial_s / parallel_s if parallel_s else 0.0
    warm_speedup = cold_s / warm_s if warm_s else 0.0
    # A pool on fewer cores than workers can only measure overhead;
    # say so in the artifact instead of publishing a junk speedup.
    speedup_meaningful = cpus >= 4 and PARALLEL_WORKERS >= 4

    text = format_table(
        ("Measure", "Value"),
        [
            ("machine / backend", "SuperSPARC / bitvector"),
            ("operations", str(serial.total_ops)),
            ("usable CPUs", str(cpus)),
            ("serial seconds", f"{serial_s:.3f}"),
            (f"{PARALLEL_WORKERS}-worker seconds", f"{parallel_s:.3f}"),
            ("parallel speedup", f"{speedup:.2f}x"),
            ("speedup meaningful", str(speedup_meaningful)),
            (
                "chunk setup seconds (shared)",
                f"{parallel.chunk_setup_seconds:.4f}",
            ),
            (
                "chunk setup seconds (unshared)",
                f"{unshared.chunk_setup_seconds:.4f}",
            ),
            ("cold compile seconds (median)", f"{cold_s:.4f}"),
            ("warm disk-load seconds (median)", f"{warm_s:.4f}"),
            ("warm load speedup", f"{warm_speedup:.1f}x"),
        ],
        title="Batch-scheduling service and persistent-cache timings",
    )
    payload = {
        "machine": "SuperSPARC",
        "backend": "bitvector",
        "ops": serial.total_ops,
        "chunk_size": CHUNK_SIZE,
        "cpu_count": cpus,
        "workers": PARALLEL_WORKERS,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "parallel_speedup": speedup,
        "speedup_meaningful": speedup_meaningful,
        "unshared_parallel_seconds": unshared_s,
        "shared_descriptions": True,
        "chunk_setup_seconds_shared": parallel.chunk_setup_seconds,
        "chunk_setup_seconds_unshared": unshared.chunk_setup_seconds,
        "cold_compile_seconds": cold_s,
        "warm_load_seconds": warm_s,
        "warm_load_speedup": warm_speedup,
        "signatures_identical": True,
        "stats_identical": True,
    }
    write_result(results_dir, "batch.txt", text, payload=payload)

    # Loading the shipped low-level file must beat regenerating it by a
    # wide margin (paper section 4); 5x is the acceptance floor.
    assert warm_speedup >= 5.0
    # Sharding only pays off when the cores exist; a 1-CPU container
    # measures pure pool overhead, so gate the floor on the hardware.
    if speedup_meaningful:
        assert speedup >= 2.0
