"""Tests for the resource usage map."""

import pytest

from repro.errors import SchedulingError
from repro.lowlevel.bitvector import RUMap


class TestRUMap:
    def test_initially_free(self):
        ru = RUMap()
        assert ru.is_free(0, 0xFF)
        assert ru.is_free(-5, 1)
        assert not ru

    def test_reserve_blocks_overlap(self):
        ru = RUMap()
        ru.reserve(3, 0b101)
        assert not ru.is_free(3, 0b001)
        assert not ru.is_free(3, 0b100)
        assert ru.is_free(3, 0b010)
        assert ru.is_free(4, 0b101)

    def test_double_reservation_raises(self):
        ru = RUMap()
        ru.reserve(0, 1)
        with pytest.raises(SchedulingError, match="double reservation"):
            ru.reserve(0, 1)

    def test_release_roundtrip(self):
        ru = RUMap()
        ru.reserve(2, 0b11)
        ru.release(2, 0b11)
        assert ru.is_free(2, 0b11)
        assert not ru  # cycle entry is garbage-collected

    def test_partial_release(self):
        ru = RUMap()
        ru.reserve(2, 0b11)
        ru.release(2, 0b01)
        assert ru.is_free(2, 0b01)
        assert not ru.is_free(2, 0b10)

    def test_release_unreserved_raises(self):
        ru = RUMap()
        with pytest.raises(SchedulingError, match="release"):
            ru.release(0, 1)

    def test_negative_cycles(self):
        ru = RUMap()
        ru.reserve(-1, 1)
        assert not ru.is_free(-1, 1)
        assert ru.is_free(0, 1)

    def test_clear(self):
        ru = RUMap()
        ru.reserve(0, 1)
        ru.clear()
        assert ru.is_free(0, 1)

    def test_copy_is_independent(self):
        ru = RUMap()
        ru.reserve(0, 1)
        duplicate = ru.copy()
        duplicate.reserve(0, 2)
        assert ru.is_free(0, 2)
        assert ru == RUMap() or not ru.is_free(0, 1)

    def test_word_and_busy_cycles(self):
        ru = RUMap()
        ru.reserve(1, 0b10)
        ru.reserve(0, 0b01)
        assert ru.word(1) == 0b10
        assert ru.word(9) == 0
        assert list(ru.busy_cycles()) == [(0, 0b01), (1, 0b10)]

    def test_wide_masks(self):
        ru = RUMap()
        ru.reserve(0, 1 << 200)
        assert not ru.is_free(0, 1 << 200)
        assert ru.is_free(0, 1 << 199)
