"""A dependency-free HTTP/1.1 host for the ASGI app.

``repro serve`` must run in environments with nothing but the standard
library, so this module is a minimal asyncio-streams HTTP server that
speaks just enough HTTP/1.1 to host :class:`repro.server.app.App`:
one request per connection turn, ``Content-Length`` bodies (the only
kind our clients send), no TLS, no websockets.  Deployments that
already run an ASGI server (uvicorn, hypercorn) can point it at
``repro.server.app:create_app()`` instead -- the app never knows the
difference.

``SIGTERM``/``SIGINT`` trigger the graceful-drain lifecycle: stop
accepting, run the app's shutdown (flush batch windows, wait for
in-flight work), then exit.
"""

from __future__ import annotations

import asyncio
import logging
import signal
from typing import Optional

logger = logging.getLogger("repro.server.http")

#: Largest request head (request line + headers) we will parse.
_MAX_HEAD = 64 * 1024

#: Largest request body we will buffer.
_MAX_BODY = 32 * 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


async def _read_request(reader: "asyncio.StreamReader"):
    """Parse one request; returns (method, path, headers, body) or None."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    except asyncio.LimitOverrunError:
        raise ValueError("request head too large")
    if len(head) > _MAX_HEAD:
        raise ValueError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise ValueError(f"malformed request line: {lines[0]!r}")
    headers = []
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers.append((name.strip().lower(), value.strip()))
    length = 0
    for name, value in headers:
        if name == "content-length":
            try:
                length = int(value)
            except ValueError:
                raise ValueError(f"bad Content-Length: {value!r}")
    if length > _MAX_BODY:
        raise ValueError("request body too large")
    body = await reader.readexactly(length) if length else b""
    path, _, query = target.partition("?")
    return method, path, query.encode("latin-1"), headers, body


def _write_response(writer, status: int, headers, body: bytes) -> None:
    reason = _REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}\r\n".encode("latin-1")]
    seen_length = False
    for name, value in headers:
        if name.lower() == b"content-length":
            seen_length = True
        head.append(name + b": " + value + b"\r\n")
    if not seen_length:
        head.append(f"content-length: {len(body)}\r\n".encode("latin-1"))
    head.append(b"connection: keep-alive\r\n\r\n")
    writer.write(b"".join(head) + body)


class Server:
    """The app bound to a socket, with lifespan + signal handling."""

    def __init__(self, app, host: str, port: int) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional["asyncio.base_events.Server"] = None
        self._stop = None

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                try:
                    parsed = await _read_request(reader)
                except ValueError as exc:
                    _write_response(
                        writer, 400, [],
                        f'{{"error": "BadRequest", "message": "{exc}"}}'
                        .encode(),
                    )
                    await writer.drain()
                    break
                if parsed is None:
                    break
                method, path, query, headers, body = parsed
                await self._respond(
                    writer, method, path, query, headers, body
                )
                await writer.drain()
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover - peer already gone
                pass

    async def _respond(
        self, writer, method, path, query, headers, body
    ) -> None:
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "raw_path": path.encode("latin-1"),
            "query_string": query,
            "headers": [
                (name.encode("latin-1"), value.encode("latin-1"))
                for name, value in headers
            ],
        }
        body_sent = {"done": False}

        async def _receive():
            if body_sent["done"]:
                return {"type": "http.disconnect"}
            body_sent["done"] = True
            return {"type": "http.request", "body": body, "more_body": False}

        state = {"status": 500, "headers": [], "body": b""}

        async def _send(message):
            if message["type"] == "http.response.start":
                state["status"] = message["status"]
                state["headers"] = list(message.get("headers", ()))
            elif message["type"] == "http.response.body":
                state["body"] += message.get("body", b"")

        try:
            await self.app(scope, _receive, _send)
        except Exception:  # pragma: no cover - app maps its own errors
            logger.exception("unhandled error serving %s %s", method, path)
            state.update(status=500, headers=[], body=b'{"error": "Internal"}')
        _write_response(
            writer, state["status"], state["headers"], state["body"]
        )

    async def serve(self) -> None:
        """Run until a termination signal, then drain and exit."""
        loop = asyncio.get_running_loop()
        self._stop = loop.create_future()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self._request_stop)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass

        lifespan_in: "asyncio.Queue" = asyncio.Queue()
        lifespan_out: "asyncio.Queue" = asyncio.Queue()
        lifespan = loop.create_task(self.app(
            {"type": "lifespan"}, lifespan_in.get, lifespan_out.put,
        ))
        await lifespan_in.put({"type": "lifespan.startup"})
        started = await lifespan_out.get()
        if started["type"] != "lifespan.startup.complete":
            raise RuntimeError(f"startup failed: {started}")

        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        logger.info("serving on http://%s:%s", self.host, self.port)
        try:
            await self._stop
        finally:
            self._server.close()
            await self._server.wait_closed()
            await lifespan_in.put({"type": "lifespan.shutdown"})
            await lifespan_out.get()
            await lifespan
            logger.info("drained and stopped")

    def _request_stop(self) -> None:
        if self._stop is not None and not self._stop.done():
            self._stop.set_result(None)


def serve(app, host: str = "127.0.0.1", port: int = 8181) -> None:
    """Blocking entry point: host ``app`` until SIGINT/SIGTERM."""
    asyncio.run(Server(app, host, port).serve())


__all__ = ["Server", "serve"]
