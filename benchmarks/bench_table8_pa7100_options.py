"""Table 8: PA7100 after removing the duplicated memory option."""

from conftest import write_result

from repro.machines import get_machine
from repro.transforms import remove_dominated_options


def test_table8_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.table8())
    rows = suite.table8_rows()
    or_row = rows[0]
    assert or_row[3] <= or_row[1]  # options per attempt drop
    write_result(results_dir, "table8_pa7100_options.txt", text)


def test_table8_bench_dominance_pruning(benchmark):
    """Time dominated-option removal over the PA7100 description."""
    mdes = get_machine("PA7100").build_andor()
    result = benchmark(remove_dominated_options, mdes)
    assert result.op_class("load").option_count() == 2
