#!/usr/bin/env python3
"""Quickstart: describe a machine, optimize the description, schedule code.

This walks the paper's whole two-tier flow on a small dual-issue machine:

1. write the execution constraints in the high-level MDES language;
2. translate and optimize them into the low-level representation;
3. drive the list scheduler with the compiled description.

Run:  python examples/quickstart.py
"""

from repro.hmdes import load_mdes
from repro.ir import BasicBlock, Operation
from repro.lowlevel import compile_mdes
from repro.machines.base import Machine, OpcodeSpec
from repro.scheduler import ListScheduler
from repro.transforms import optimize

# ----------------------------------------------------------------------
# 1. The high-level description: a dual-issue machine with one ALU pair,
#    one memory unit, and a shared result bus.
# ----------------------------------------------------------------------

HMDES = """
mdes DualIssue;

section resource {
    Issue[0..1];
    ALU[0..1];
    MEM;
    BUS;
}

section ortree {
    OT_issue { $for i in 0..1 { option { use Issue[$i] at 0; } } }
    OT_alu   { $for a in 0..1 { option { use ALU[$a] at 0; } } }
}

section table {
    RT_mem { use MEM at 0; use BUS at 2; }
}

section andortree {
    AOT_alu  { ortree OT_issue; ortree OT_alu; }
    AOT_load { ortree OT_issue; ortree RT_mem; }
}

section opclass {
    alu  { resv AOT_alu;  latency 1; }
    load { resv AOT_load; latency 3; }
    branch { resv ortree { option { use Issue[1] at 0; } }; latency 1; }
}

section operation {
    ADD: alu; SUB: alu; LD: load; BR: branch;
}
"""


def classify(op, cascaded):
    """One class per opcode on this machine."""
    return {"ADD": "alu", "SUB": "alu", "LD": "load", "BR": "branch"}[
        op.opcode
    ]


def main():
    mdes = load_mdes(HMDES)
    print(f"Loaded {mdes}")

    # 2. Optimize (sections 5-8) and compile with bit-vectors (section 6).
    optimized = optimize(mdes)
    compiled = compile_mdes(optimized, bitvector=True)

    machine = Machine(
        name="DualIssue",
        hmdes_source=HMDES,
        opcode_profile=(
            OpcodeSpec("ADD", 1.0), OpcodeSpec("LD", 1.0),
        ),
        classifier=classify,
    )

    # 3. Schedule a small block: two loads feeding an add chain.
    block = BasicBlock(
        "entry",
        [
            Operation(0, "LD", ("r1",), ("sp",), is_load=True),
            Operation(1, "LD", ("r2",), ("sp",), is_load=True),
            Operation(2, "ADD", ("r3",), ("r1", "r2")),
            Operation(3, "SUB", ("r4",), ("r3", "r2")),
            Operation(4, "BR", (), ("r4",), is_branch=True),
        ],
    )
    scheduler = ListScheduler(machine, compiled)
    schedule = scheduler.schedule_block(block)

    print("\nSchedule (cycle: operation [class]):")
    for op in block:
        cycle = schedule.times[op.index]
        used = schedule.classes[op.index]
        print(f"  {cycle:3d}: {op} [{used}]")
    print(f"\nSchedule length: {schedule.length} cycles")
    stats = scheduler.stats
    print(
        f"Scheduling attempts: {stats.attempts} "
        f"({stats.options_per_attempt:.2f} options, "
        f"{stats.checks_per_attempt:.2f} checks per attempt)"
    )


if __name__ == "__main__":
    main()
