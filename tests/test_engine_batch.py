"""Batched query-layer tests (``try_reserve_many`` / ``probe_window``).

The batch protocol's contract is *bit-for-bit* equivalence with the
scalar loop: same reservation (including the winning cycle), same
``CheckStats`` counters, same feasibility bitmasks.  These tests pin
that contract for the protocol-level scalar defaults, for the
vectorized :class:`TableEngine` override, and end-to-end through the
list scheduler.
"""

import random

import pytest

from repro.engine import create_engine, engine_names
from repro.lowlevel.checker import CheckStats
from repro.machines import MACHINE_NAMES, get_machine
from repro.scheduler import schedule_workload
from tests.conftest import shared_engine, shared_workload

SCALAR_BACKENDS = ["ortree", "andor", "automata"]
VECTOR_BACKENDS = ["bitvector", "eichenberger"]


def make_engine(backend, machine, vectorized=None):
    """A fresh engine; ``vectorized=False`` forces the scalar path."""
    engine = create_engine(backend, machine, stage=4)
    if vectorized is False and getattr(engine, "vectorized", False):
        engine = type(engine)(
            engine.compiled, name=backend, vectorized=False
        )
    return engine


def class_names_for(engine):
    return sorted(engine.compiled.constraints)


def dirty_state(engine, state, class_name, cycles):
    """Reserve a few slots so windows contain real conflicts."""
    for cycle in cycles:
        engine.try_reserve(state, class_name, cycle)


class TestBulkStats:
    def test_bulk_equals_scalar_loop(self):
        rng = random.Random(7)
        options = [rng.randrange(0, 6) for _ in range(40)]
        checks = [rng.randrange(0, 20) for _ in range(40)]
        flags = [rng.random() < 0.3 for _ in range(40)]

        scalar = CheckStats()
        for opts, n_checks, ok in zip(options, checks, flags):
            scalar.record_attempt(opts, n_checks, ok, class_name="alu")

        bulk = CheckStats()
        bulk.record_attempts_bulk(
            options, checks, sum(flags), class_name="alu"
        )
        assert bulk == scalar

    def test_bulk_empty_is_noop(self):
        stats = CheckStats()
        stats.record_attempts_bulk([], [], 0, class_name="alu")
        assert stats == CheckStats()


class TestProtocolDefaults:
    """Scalar backends get batch semantics from the protocol defaults."""

    @pytest.mark.parametrize("backend", SCALAR_BACKENDS)
    def test_try_reserve_many_matches_scalar_walk(self, backend):
        machine = get_machine("SuperSPARC")
        batch = create_engine(backend, machine, stage=4)
        loop = create_engine(backend, machine, stage=4)
        for class_name in class_names_for(batch):
            batch_state = batch.new_state()
            loop_state = loop.new_state()
            for engine, state in (
                (batch, batch_state), (loop, loop_state)
            ):
                dirty_state(engine, state, class_name, (0, 1, 2))
            batch.stats.__init__()
            loop.stats.__init__()

            got = batch.try_reserve_many(
                batch_state, class_name, range(0, 12)
            )
            want = None
            for cycle in range(0, 12):
                want = loop.try_reserve(loop_state, class_name, cycle)
                if want is not None:
                    break
            assert (got is None) == (want is None)
            if got is not None:
                assert got.cycle == want.cycle
                assert got.pairs == want.pairs
            assert batch.stats == loop.stats

    @pytest.mark.parametrize("backend", SCALAR_BACKENDS)
    def test_probe_window_is_read_only(self, backend):
        # Stats-insensitive: the shared engine memo is safe here.
        engine = shared_engine(backend, "K5")
        class_name = class_names_for(engine)[0]
        state = engine.new_state()
        dirty_state(engine, state, class_name, (0, 0, 1))

        before = state.copy()
        first = engine.probe_window(state, class_name, 0, 10)
        second = engine.probe_window(state, class_name, 0, 10)
        assert first == second
        assert state == before

    def test_probe_window_empty_range(self):
        engine = shared_engine("andor", "K5")
        state = engine.new_state()
        class_name = class_names_for(engine)[0]
        assert engine.probe_window(state, class_name, 5, 5) == 0
        assert engine.probe_window(state, class_name, 5, 2) == 0


class TestVectorizedEquivalence:
    """The numpy fast path must be indistinguishable from vectorized=False."""

    @pytest.mark.parametrize("backend", VECTOR_BACKENDS)
    @pytest.mark.parametrize(
        "machine_name", ["SuperSPARC", "K5", "Cydra_lite"]
    )
    def test_try_reserve_many_identical(self, machine_name, backend):
        machine = get_machine(machine_name)
        fast = create_engine(backend, machine, stage=4)
        slow = make_engine(backend, machine, vectorized=False)
        assert fast.vectorized
        assert not slow.vectorized

        rng = random.Random(13)
        for class_name in class_names_for(fast):
            fast_state = fast.new_state()
            slow_state = slow.new_state()
            for _ in range(120):
                lo = rng.randrange(0, 6)
                width = rng.randrange(1, 80)
                a = fast.try_reserve_many(
                    fast_state, class_name, range(lo, lo + width)
                )
                b = slow.try_reserve_many(
                    slow_state, class_name, range(lo, lo + width)
                )
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.cycle == b.cycle
                    assert a.pairs == b.pairs
                    if rng.random() < 0.25:
                        fast.release(a)
                        slow.release(b)
            assert fast_state == slow_state
            assert fast.stats == slow.stats

    @pytest.mark.parametrize("backend", VECTOR_BACKENDS)
    def test_probe_window_bitmasks_identical(self, backend):
        machine = get_machine("Pentium")
        fast = create_engine(backend, machine, stage=4)
        slow = make_engine(backend, machine, vectorized=False)
        for class_name in class_names_for(fast):
            fast_state = fast.new_state()
            slow_state = slow.new_state()
            for engine, state in (
                (fast, fast_state), (slow, slow_state)
            ):
                dirty_state(engine, state, class_name, (0, 1, 1, 2, 4))
            for lo, hi in ((0, 8), (-3, 5), (2, 66), (7, 7)):
                assert fast.probe_window(
                    fast_state, class_name, lo, hi
                ) == slow.probe_window(slow_state, class_name, lo, hi)
            assert fast.stats == slow.stats

    def test_generator_input_without_len(self):
        """Candidate iterables without __len__ still work."""
        engine = shared_engine("bitvector", "K5")
        class_name = class_names_for(engine)[0]
        state = engine.new_state()
        got = engine.try_reserve_many(
            state, class_name, (c for c in range(0, 6))
        )
        assert got is not None
        assert got.cycle == 0

    def test_modulo_state_windows(self):
        machine = get_machine("Cydra_lite")
        fast = create_engine("bitvector", machine, stage=4)
        slow = make_engine("bitvector", machine, vectorized=False)
        class_name = class_names_for(fast)[0]
        for ii in (2, 3, 5):
            fast_state = fast.new_state(ii=ii)
            slow_state = slow.new_state(ii=ii)
            for est in (0, 1, 4):
                a = fast.try_reserve_many(
                    fast_state, class_name, range(est, est + ii)
                )
                b = slow.try_reserve_many(
                    slow_state, class_name, range(est, est + ii)
                )
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.cycle == b.cycle
            assert fast_state == slow_state
            assert fast.stats == slow.stats


class TestSchedulerEquivalence:
    """End to end: schedules and stats identical with vectorization off."""

    @pytest.mark.parametrize("backend", sorted(engine_names()))
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_workload_identity(self, machine_name, backend):
        machine, blocks = shared_workload(machine_name, 120, 11)
        fast = schedule_workload(
            machine, None, blocks, keep_schedules=True,
            engine=create_engine(backend, machine, stage=4),
        )
        slow = schedule_workload(
            machine, None, blocks, keep_schedules=True,
            engine=make_engine(backend, machine, vectorized=False),
        )
        assert [s.signature() for s in fast.schedules] == \
            [s.signature() for s in slow.schedules]
        assert fast.stats == slow.stats
        assert fast.total_cycles == slow.total_cycles
