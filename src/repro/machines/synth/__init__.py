"""``repro.machines.synth`` -- first-class synthetic machine fleets.

Two generators behind one surface:

* :mod:`~repro.machines.synth.grammar` -- the seeded random-description
  grammar (previously ``repro.verify.generate``); arbitrary legal
  shapes, the differential fuzzer's case source.
* :mod:`~repro.machines.synth.families` -- *plausible* parameterized
  families (``vliw-narrow``, ``superscalar-wide``, ``cydra-like``, ...)
  varying issue width, unit counts, latencies, and option-tree shape,
  with deliberate transform fodder planted in every variant.

Variants are addressable by registry name --
``synth:<family>:<seed>:<index>`` resolves through
:func:`repro.machines.get_machine` like any hand-written machine, which
is what lets the batch pool, the server tier, and the sweep driver
(:mod:`repro.sweep`) treat a thousand-variant fleet exactly like the
paper's four processors.  Resolution is deterministic (same name, same
HMDES bytes, same content token in every process) and cached in a
bounded LRU here so unbounded fleets cannot leak memory.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.machines.base import Machine
from repro.machines.synth.families import (
    FAMILIES,
    FamilySpec,
    SYNTH_PREFIX,
    build_variant,
    describe_complexity,
    family_names,
    fleet_names,
    get_family,
    machine_name,
    parse_name,
)
from repro.machines.synth.grammar import (
    DEFAULT_GRAMMAR,
    FuzzGrammar,
    build_machine,
    generate_mdes,
)

#: Resolved-variant LRU bound.  Each entry holds a Machine plus its
#: parsed/compiled Mdes caches; 256 comfortably covers a sweep's warm
#: working set while keeping thousand-variant fleets bounded.
RESOLVE_CACHE_SIZE = 256

_cache: "OrderedDict[str, Machine]" = OrderedDict()
_cache_lock = threading.Lock()


def is_synth_name(name: str) -> bool:
    """Whether a registry name addresses a synthetic variant."""
    return name.startswith(SYNTH_PREFIX)


def resolve(name: str) -> Machine:
    """Build (or fetch) the variant a ``synth:`` name addresses.

    Raises KeyError for malformed names and unknown families, matching
    the machine registry's contract for unknown machines.
    """
    with _cache_lock:
        machine = _cache.get(name)
        if machine is not None:
            _cache.move_to_end(name)
            return machine
    family, seed, index = parse_name(name)
    machine = build_variant(family, seed, index)
    with _cache_lock:
        _cache[name] = machine
        _cache.move_to_end(name)
        while len(_cache) > RESOLVE_CACHE_SIZE:
            _cache.popitem(last=False)
    return machine


def resolve_cache_len() -> int:
    """Resident resolved variants (tests and ops dashboards)."""
    with _cache_lock:
        return len(_cache)


def clear_resolve_cache() -> None:
    """Drop every resolved variant (tests)."""
    with _cache_lock:
        _cache.clear()


__all__ = [
    "DEFAULT_GRAMMAR",
    "FAMILIES",
    "FamilySpec",
    "FuzzGrammar",
    "RESOLVE_CACHE_SIZE",
    "SYNTH_PREFIX",
    "build_machine",
    "build_variant",
    "clear_resolve_cache",
    "describe_complexity",
    "family_names",
    "fleet_names",
    "generate_mdes",
    "get_family",
    "is_synth_name",
    "machine_name",
    "parse_name",
    "resolve",
    "resolve_cache_len",
]
