"""Tests for the LMDES file format."""

import json

import pytest

from repro.transforms.pipeline import staged_mdes
from repro.errors import MdesError
from repro.lowlevel import compile_mdes, mdes_size_bytes
from repro.lowlevel.serialize import LMDES_VERSION, load_lmdes, save_lmdes
from repro.machines import MACHINE_NAMES, get_machine
from repro.scheduler import schedule_workload
from repro.workloads import WorkloadConfig, generate_blocks


def roundtrip(compiled):
    return load_lmdes(save_lmdes(compiled))


class TestRoundTrip:
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    @pytest.mark.parametrize("bitvector", [False, True])
    def test_sizes_exact(self, machine_name, bitvector):
        machine = get_machine(machine_name)
        compiled = compile_mdes(machine.build_andor(), bitvector)
        loaded = roundtrip(compiled)
        assert mdes_size_bytes(loaded) == mdes_size_bytes(compiled)
        assert loaded.bitvector == compiled.bitvector

    def test_sharing_topology_preserved(self):
        machine = get_machine("SuperSPARC")
        compiled = compile_mdes(machine.build_andor())
        loaded = roundtrip(compiled)
        originals = compiled.unique_objects()
        recovered = loaded.unique_objects()
        assert [len(group) for group in originals] == [
            len(group) for group in recovered
        ]

    def test_constraint_level_sharing_preserved(self):
        """PA7100's load and store share one AND/OR-tree."""
        machine = get_machine("PA7100")
        loaded = roundtrip(compile_mdes(machine.build_andor()))
        assert loaded.constraints["load"] is loaded.constraints["store"]

    def test_checks_identical(self):
        machine = get_machine("K5")
        compiled = compile_mdes(
            staged_mdes(machine.build_andor(), 4), bitvector=True
        )
        loaded = roundtrip(compiled)
        for class_name, constraint in compiled.constraints.items():
            recovered = loaded.constraints[class_name]
            assert type(recovered) is type(constraint)

    def test_scheduling_behaviour_identical(self):
        machine = get_machine("SuperSPARC")
        compiled = compile_mdes(
            staged_mdes(machine.build_andor(), 4), bitvector=True
        )
        loaded = roundtrip(compiled)
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=400))
        original = schedule_workload(machine, compiled, blocks,
                                     keep_schedules=True)
        recovered = schedule_workload(machine, loaded, blocks,
                                      keep_schedules=True)
        assert original.signature() == recovered.signature()
        assert (
            original.stats.resource_checks
            == recovered.stats.resource_checks
        )

    def test_metadata_preserved(self):
        machine = get_machine("SuperSPARC")
        loaded = roundtrip(compile_mdes(machine.build_andor()))
        source = loaded.source
        assert source.name == "SuperSPARC"
        assert source.op_class("load").read_time == -1
        assert source.bypass_for("ialu_1src", "ialu_1src") is not None
        assert source.opcode_map == machine.build().opcode_map


class TestFormatErrors:
    def test_not_lmdes(self):
        with pytest.raises(MdesError, match="not an LMDES"):
            load_lmdes(json.dumps({"format": "elf"}))

    def test_wrong_version(self):
        document = json.loads(
            save_lmdes(compile_mdes(get_machine("PA7100").build_andor()))
        )
        document["version"] = LMDES_VERSION + 1
        with pytest.raises(MdesError, match="version"):
            load_lmdes(json.dumps(document))

    def test_document_shape(self):
        text = save_lmdes(compile_mdes(get_machine("K5").build_andor()))
        document = json.loads(text)
        assert document["machine"] == "K5"
        assert document["options"]
        assert document["or_trees"]
        assert document["andor_trees"]
