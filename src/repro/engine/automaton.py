"""The finite-state-automaton backend behind the query-engine protocol.

The pure automaton (:mod:`repro.automata.automaton`) is cycle-driven:
issue tests apply to "now" and ``advance`` shifts the window, which is
why the related work cannot unschedule and why it cannot serve a
random-access list scheduler directly.  This adapter closes the gap with
a *windowed* formulation: the region's resource state lives in the same
RU map every other backend uses, and an issue test at an arbitrary cycle
re-derives the automaton state as the window of busy words at offsets
``0 .. horizon-1`` from that cycle, then answers it with one memoized
transition lookup.

The first-fit option walk used to construct a transition is identical to
the table checker's, so this backend produces bit-for-bit identical
schedules; after memoization an attempt costs zero resource checks,
which is the O(1) advantage the automata papers claim -- and what
:attr:`QueryEngine.stats` reports, keeping the cross-backend comparison
honest.

What the adapter cannot do is wrap state modulo an initiation interval
(``supports_modulo`` is False): reservations behind the current window
would alias into it, which is the section 10 capability gap the paper
holds against automata.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.base import QueryEngine, Reservation
from repro.lowlevel.bitvector import RUMap
from repro.lowlevel.checker import CheckStats
from repro.lowlevel.compiled import CompiledMdes


class AutomatonEngine(QueryEngine):
    """Memoized DFA transitions over a windowed RU-map state."""

    name = "automata"
    supports_modulo = False

    def __init__(
        self,
        compiled: CompiledMdes,
        stats: Optional[CheckStats] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(compiled, stats, name)
        # Imported lazily: repro.automata's package init pulls in the
        # cycle scheduler, which itself builds on repro.engine.
        from repro.automata.automaton import SchedulingAutomaton

        self.automaton = SchedulingAutomaton(compiled)

    def try_reserve(
        self, state: RUMap, class_name: str, cycle: int
    ) -> Optional[Reservation]:
        automaton = self.automaton
        word = state.word
        window = tuple(
            word(cycle + offset) for offset in range(automaton.horizon)
        )
        misses_before = automaton.stats.misses
        result = automaton.try_issue(window, class_name)
        if automaton.stats.misses != misses_before:
            options, checks = automaton.edge_cost(window, class_name)
        else:
            options = checks = 0
        if result is None:
            self.stats.record_attempt(options, checks, False, class_name)
            return None
        _, reserved = result
        pairs = tuple(
            (cycle + time, mask) for time, mask in reserved
        )
        for abs_cycle, mask in pairs:
            state.reserve(abs_cycle, mask)
        self.stats.record_attempt(options, checks, True, class_name)
        return Reservation(state, pairs, cycle)
