"""Cross-backend differential harness for the batch-scheduling service.

The paper's invariant is that changing how constraints are *checked*
never changes what gets *scheduled*.  This suite extends that invariant
to the service layer: for every machine x backend pair, the serial
chunked reference, ``schedule_batch`` with one worker, and
``schedule_batch`` with N workers must produce bit-for-bit identical
schedules and identical summed :class:`CheckStats`.

The reference implementation here is deliberately independent of
``repro.service``: it chunks the block list by hand and runs the plain
:func:`schedule_workload` path per chunk with a fresh engine, folding
stats with ``__iadd__`` -- exactly what a correct batch driver must be
equivalent to.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import ExperimentSuite
from repro.engine import create_engine, engine_names, get_engine_spec
from repro.lowlevel.checker import CheckStats
from repro.machines import MACHINE_NAMES, get_machine
from repro.scheduler import schedule_workload
from repro.service import BatchConfig, schedule_batch
from tests.conftest import shared_workload

#: Worker count for the parallel leg; CI sets REPRO_BATCH_WORKERS=2.
N_WORKERS = max(2, int(os.environ.get("REPRO_BATCH_WORKERS", "2")))
CHUNK = 8
STAGE = 4
BACKENDS = engine_names(scheduler="list")


def workload(machine_name, ops=220, seed=11):
    return shared_workload(machine_name, ops, seed)


def serial_chunked_reference(machine, blocks, backend, chunk=CHUNK):
    """Ground truth: plain schedule_workload per chunk, stats folded."""
    signature = []
    stats = CheckStats()
    total_ops = total_cycles = 0
    for start in range(0, len(blocks), chunk):
        engine = create_engine(backend, machine, stage=STAGE)
        run = schedule_workload(
            machine,
            None,
            blocks[start : start + chunk],
            keep_schedules=True,
            engine=engine,
        )
        signature.extend(s.signature() for s in run.schedules)
        stats += run.stats
        total_ops += run.total_ops
        total_cycles += run.total_cycles
    return tuple(signature), stats, total_ops, total_cycles


class TestDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_serial_one_worker_and_n_workers_agree(
        self, machine_name, backend
    ):
        machine, blocks = workload(machine_name)
        signature, stats, ops, cycles = serial_chunked_reference(
            machine, blocks, backend
        )

        results = {
            workers: schedule_batch(
                machine_name,
                blocks,
                BatchConfig(
                    backend=backend,
                    stage=STAGE,
                    workers=workers,
                    chunk_size=CHUNK,
                ),
            )
            for workers in (1, N_WORKERS)
        }
        for workers, result in results.items():
            label = f"{machine_name}/{backend}/workers={workers}"
            assert result.signature() == signature, label
            assert result.stats == stats, label
            assert result.total_ops == ops, label
            assert result.total_cycles == cycles, label
            assert result.workers == workers

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_unchunked_serial_run(self, backend):
        """One engine over the whole workload gives the same schedules.

        Schedules and attempt/success counts are partition-independent
        for every backend.  The automaton's options/checks counters are
        not -- its memo table spans the whole run when unchunked -- so
        those are only compared for the table backends.
        """
        machine, blocks = workload("SuperSPARC")
        engine = create_engine(backend, machine, stage=STAGE)
        serial = schedule_workload(
            machine, None, blocks, keep_schedules=True, engine=engine
        )
        batch = schedule_batch(
            "SuperSPARC",
            blocks,
            BatchConfig(backend=backend, stage=STAGE, workers=N_WORKERS,
                        chunk_size=CHUNK),
        )
        assert batch.signature() == tuple(
            s.signature() for s in serial.schedules
        )
        assert batch.stats.attempts == serial.stats.attempts
        assert batch.stats.successes == serial.stats.successes
        if get_engine_spec(backend).engine_cls.__name__ != "AutomatonEngine":
            assert batch.stats == serial.stats

    def test_matches_experiment_suite_run(self):
        """The analysis path and the service path agree end to end."""
        suite = ExperimentSuite(
            total_ops=220, seed=11, keep_schedules=True
        )
        reference = suite.run("SuperSPARC", "andor", STAGE, True)
        batch = schedule_batch(
            "SuperSPARC",
            suite.workload("SuperSPARC"),
            BatchConfig(backend="bitvector", stage=STAGE,
                        workers=N_WORKERS, chunk_size=CHUNK),
        )
        assert batch.signature() == tuple(
            s.signature() for s in reference.schedules
        )
        assert batch.total_ops == reference.total_ops
        assert batch.total_cycles == reference.total_cycles
        assert batch.stats == reference.stats

    def test_schedules_come_back_in_input_order(self):
        machine, blocks = workload("Pentium", ops=180, seed=3)
        batch = schedule_batch(
            "Pentium",
            blocks,
            BatchConfig(workers=N_WORKERS, chunk_size=5),
        )
        assert len(batch.schedules) == len(blocks)
        for schedule, block in zip(batch.schedules, blocks):
            assert schedule.block is not None
            assert len(schedule.block) == len(block)
            assert [op.opcode for op in schedule.block] == [
                op.opcode for op in block
            ]

    @pytest.mark.slow
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        ops=st.integers(min_value=20, max_value=160),
        chunk=st.integers(min_value=1, max_value=24),
    )
    def test_property_worker_count_is_unobservable(self, seed, ops, chunk):
        """For random workloads and chunkings, worker count never shows
        up in the result (automata included: fresh engine per chunk)."""
        machine, blocks = workload("K5", ops=ops, seed=seed)
        outcomes = [
            schedule_batch(
                "K5",
                blocks,
                BatchConfig(backend="automata", stage=STAGE,
                            workers=workers, chunk_size=chunk),
            )
            for workers in (1, N_WORKERS)
        ]
        assert outcomes[0].signature() == outcomes[1].signature()
        assert outcomes[0].stats == outcomes[1].stats
        assert outcomes[0].chunk_count == outcomes[1].chunk_count


class TestBatchConfig:
    def test_backend_and_lmdes_are_mutually_exclusive(self):
        config = BatchConfig(backend="andor", lmdes_path="x.lmdes.json")
        with pytest.raises(ValueError, match="mutually exclusive"):
            config.validate()

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            BatchConfig(workers=0).validate()

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValueError, match="chunk_size"):
            BatchConfig(chunk_size=0).validate()

    def test_unregistered_machine_rejected_for_parallel_runs(self):
        real = get_machine("K5")

        class Impostor:
            name = "K5"

            def build_andor(self):
                return real.build_andor()

        _, blocks = workload("K5", ops=20)
        with pytest.raises(ValueError, match="registry"):
            schedule_batch(Impostor(), blocks, BatchConfig(workers=2))


class TestSpanMergeDeterminism:
    """Worker-to-parent trace grafting obeys the determinism contract.

    The driver attaches each chunk's captured spans in chunk order, so
    the merged trace tree -- names, nesting, order, and every
    non-timing attribute -- must be identical for 1 and N workers, just
    like the schedules and the stats fold.  The disk cache is warmed
    first so compile work (which legitimately differs per process)
    collapses to disk hits in every process.
    """

    #: Attributes that legitimately differ between runs (timings carry
    #: none; the batch root records its own worker count).
    _VARYING = ("workers",)

    @classmethod
    def _shape(cls, span):
        attrs = tuple(sorted(
            (key, value) for key, value in span.attrs.items()
            if key not in cls._VARYING
        ))
        return (span.name, attrs,
                tuple(cls._shape(child) for child in span.children))

    @classmethod
    def _tree(cls, tracer):
        return tuple(cls._shape(root) for root in tracer.roots)

    def test_one_and_n_workers_merge_to_the_same_tree(self, tmp_path):
        from repro import obs

        machine_name = "PA7100"
        _, blocks = workload(machine_name, ops=120)
        knobs = dict(
            backend="bitvector", stage=STAGE, chunk_size=4,
            cache_dir=str(tmp_path),
        )
        # Warm the disk tier: every later process disk-hits its compile.
        schedule_batch(machine_name, blocks,
                       BatchConfig(workers=1, **knobs))

        was_enabled = obs.enabled()
        obs.enable()
        try:
            obs.reset()
            schedule_batch(machine_name, blocks,
                           BatchConfig(workers=1, **knobs))
            serial_tree = self._tree(obs.TRACER)
            obs.reset()
            schedule_batch(machine_name, blocks,
                           BatchConfig(workers=N_WORKERS, **knobs))
            parallel_tree = self._tree(obs.TRACER)
        finally:
            if not was_enabled:
                obs.disable()
            obs.reset()

        assert serial_tree == parallel_tree
        # The tree really is the batch structure: one service root whose
        # chunk children carry ascending indexes.
        (root,) = parallel_tree
        name, _, children = root
        assert name == "service:batch"
        chunk_indexes = [
            dict(attrs)["index"]
            for name, attrs, _ in children if name == "batch:chunk"
        ]
        assert chunk_indexes == sorted(chunk_indexes)
        assert len(chunk_indexes) == -(-len(blocks) // 4)
