"""``repro.api`` -- the stable, supported public surface.

Users were reaching into deep module paths (``repro.engine.registry``,
``repro.service.batch``, ``repro.transforms.pipeline``) for everyday
operations, which froze internal layout into downstream code.  This
facade is the supported contract instead: everything here is re-exported
from its canonical home, named in ``__all__``, and kept stable across
refactors -- import from ``repro.api`` and internal moves stop being
your problem::

    from repro import api

    machine = api.get_machine("SuperSPARC")
    compiled = api.compile_machine(machine)          # paper's LMDES form
    engine = api.get_engine("bitvector", machine)    # any backend

    response = api.schedule(                         # one workload
        api.ScheduleRequest(machine="SuperSPARC", blocks=blocks)
    )
    response = api.schedule_batch(                   # the service path
        api.BatchRequest(
            machine="SuperSPARC", blocks=blocks,
            config=api.BatchConfig(
                workers=4, retry=api.RetryPolicy(retries=2),
                on_error="report",
            ),
        )
    )
    for failure in response.errors:                  # typed quarantine
        print(failure.block_index, failure.error_type)
    report = api.verify_schedule(machine, response.schedules)
    assert report.ok, report.diagnostics

Every entry point takes one validated request object
(:class:`ScheduleRequest` / :class:`BatchRequest`) and returns the
uniform :class:`ScheduleResponse` envelope -- the same vocabulary the
CLI and the network tier (:mod:`repro.server`) speak.  The pre-redesign
kwarg signatures (``schedule(machine, blocks, backend=...)``) still
work but warn once per process with a :class:`DeprecationWarning` and
return the bare underlying result objects.

The error taxonomy is part of the surface: every exception the library
raises derives from :class:`ReproError`, service-layer failures from
:class:`ServiceError`, malformed requests raise :class:`RequestError`.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Union

from repro._compat import deprecated_call
from repro.engine.cache import DescriptionCache
from repro.engine.registry import create_engine, engine_names, get_engine_spec
from repro.errors import (
    BackpressureError,
    CacheCorruptionError,
    ChunkTimeoutError,
    DeadlineExceededError,
    HmdesError,
    MdesError,
    QueueFullError,
    QuotaExceededError,
    ReproError,
    RequestError,
    SchedulingError,
    ServiceError,
    ShuttingDownError,
    VerificationError,
    WorkerCrashError,
)
from repro.engine.shared import SharedDescriptionSpec
from repro.hmdes import load_mdes
from repro.ir.block import BasicBlock
from repro.lowlevel.compiled import CompiledMdes, compile_mdes
from repro.lowlevel.packed import (
    PACKED_WORD_BUDGET,
    numpy_available,
    packing_eligible,
)
from repro.machines import MACHINE_NAMES, get_machine
from repro.exact import (
    ExactBlockResult,
    ExactBudget,
    ExactRunResult,
    schedule_workload_exact,
)
from repro.scheduler import BlockSchedule, RunResult, schedule_workload
from repro.service import (
    DEFAULT_BACKEND,
    BatchConfig,
    BatchRequest,
    BatchResult,
    BatchSubmitter,
    BlockFailure,
    RetryPolicy,
    ScheduleRequest,
    ScheduleResponse,
    TimeoutPolicy,
)
from repro.service import schedule_batch as _service_schedule_batch
from repro.obs.bench import run_suite as run_bench_suite
from repro.obs.perf import (
    BenchRecord,
    Comparison,
    compare_records,
    env_fingerprint,
    load_baseline,
    write_baseline,
)
from repro.obs.prof import flamegraph, hot_spans, self_seconds
from repro.machines.synth import (
    family_names as synth_family_names,
)
from repro.machines.synth import (
    fleet_names as synth_fleet_names,
)
from repro.machines.synth import (
    machine_name as synth_machine_name,
)
from repro.sweep import SweepConfig, SweepReport, VariantResult, run_sweep
from repro.transforms.pipeline import FINAL_STAGE, staged_mdes
from repro.verify import (
    Diagnostic,
    VerifyReport,
    exact_oracle_divergences,
    verify_schedule,
)
from repro.workloads import WorkloadConfig, generate_blocks


def _resolve_machine(machine: Union[str, object]):
    """Accept a registered machine name or a machine object."""
    if isinstance(machine, str):
        return get_machine(machine)
    return machine


def compile_machine(
    machine: Union[str, object],
    stage: int = FINAL_STAGE,
    rep: str = "andor",
    bitvector: bool = True,
) -> CompiledMdes:
    """Compile a machine to its low-level (LMDES) form.

    The paper's two-tier workflow in one call: build the high-level
    description, run the transformation pipeline through ``stage``, and
    compile to the representation the schedulers query.
    """
    machine = _resolve_machine(machine)
    if rep not in ("or", "andor"):
        raise ValueError(f"rep must be 'or' or 'andor': {rep!r}")
    base = machine.build_or() if rep == "or" else machine.build_andor()
    return compile_mdes(staged_mdes(base, stage), bitvector=bitvector)


def get_engine(
    backend: str,
    machine: Union[str, object],
    stage: int = FINAL_STAGE,
    cache: Optional[DescriptionCache] = None,
):
    """Instantiate a registered query-engine backend for a machine.

    Accepts a machine name or object; otherwise identical to the
    registry's ``create_engine``.
    """
    return create_engine(
        backend, _resolve_machine(machine), stage=stage, cache=cache
    )


def _run_list_request(
    request: ScheduleRequest,
    cache: Optional[DescriptionCache] = None,
) -> RunResult:
    """Execute a validated list-scheduler request (no envelope)."""
    machine = request.resolve_machine()
    engine = create_engine(
        request.backend_name, machine, stage=request.stage, cache=cache
    )
    return schedule_workload(
        machine, None, request.resolve_blocks(),
        keep_schedules=request.keep_schedules,
        direction=request.direction, engine=engine,
    )


def _run_exact_request(
    request: ScheduleRequest,
    budget: Optional[ExactBudget] = None,
    max_block_ops: Optional[int] = None,
    cache: Optional[DescriptionCache] = None,
) -> ExactRunResult:
    """Execute a validated exact-scheduler request (no envelope)."""
    machine = request.resolve_machine()
    spec = get_engine_spec(request.backend_name)
    if spec.scheduler != "exact":
        raise RequestError(
            f"backend {request.backend_name!r} is not an exact scheduler"
        )
    engine = create_engine(
        request.backend_name, machine, stage=request.stage, cache=cache
    )
    return schedule_workload_exact(
        machine, request.resolve_blocks(), engine=engine,
        budget=budget, max_block_ops=max_block_ops,
    )


def _maybe_verify(request: ScheduleRequest, schedules):
    """Run the oracle over a response's schedules when asked to."""
    if not request.verify:
        return None
    return verify_schedule(
        request.resolve_machine(), list(schedules),
        direction=request.direction,
    )


def schedule(
    request: Union[ScheduleRequest, str, object],
    blocks: Optional[Sequence[BasicBlock]] = None,
    *,
    cache: Optional[DescriptionCache] = None,
    backend: Optional[str] = None,
    stage: Optional[int] = None,
    direction: Optional[str] = None,
    keep_schedules: Optional[bool] = None,
) -> Union[ScheduleResponse, RunResult, ExactRunResult]:
    """Schedule one workload in-process.

    The canonical form takes a :class:`ScheduleRequest` and returns the
    :class:`ScheduleResponse` envelope; backends registered with
    ``scheduler="exact"`` dispatch to the branch-and-bound exact
    scheduler behind the same surface.  The pre-redesign signature
    (``schedule(machine, blocks, backend=..., ...)``) still works,
    warns once per process, and returns the bare
    :class:`RunResult` / :class:`ExactRunResult`.
    """
    if not isinstance(request, ScheduleRequest):
        deprecated_call(
            "repro.api", "schedule",
            "schedule(machine, blocks, ...) is deprecated; pass a "
            "repro.api.ScheduleRequest instead",
        )
        legacy = ScheduleRequest(
            machine=request,
            blocks=tuple(blocks or ()),
            backend=backend,
            stage=FINAL_STAGE if stage is None else stage,
            direction=direction or "forward",
            keep_schedules=(
                True if keep_schedules is None else keep_schedules
            ),
        ).validate()
        if legacy.is_exact:
            return _run_exact_request(legacy, cache=cache)
        return _run_list_request(legacy, cache=cache)
    if blocks is not None or backend is not None or stage is not None \
            or direction is not None or keep_schedules is not None:
        raise TypeError(
            "schedule(ScheduleRequest) takes no separate "
            "blocks/backend/stage arguments"
        )
    request = request.validate().with_request_id()
    started = time.perf_counter()
    if request.is_exact:
        run = _run_exact_request(request, cache=cache)
        report = _maybe_verify(request, run.schedules)
        return ScheduleResponse.from_exact(
            request, run, wall_seconds=time.perf_counter() - started,
            verify_report=report,
        )
    run = _run_list_request(request, cache=cache)
    report = _maybe_verify(request, run.schedules or ())
    return ScheduleResponse.from_run(
        request, run, wall_seconds=time.perf_counter() - started,
        verify_report=report,
    )


def schedule_exact(
    request: Union[ScheduleRequest, str, object],
    blocks: Optional[Sequence[BasicBlock]] = None,
    backend: Optional[str] = None,
    stage: Optional[int] = None,
    budget: Optional[ExactBudget] = None,
    max_block_ops: Optional[int] = None,
    *,
    cache: Optional[DescriptionCache] = None,
) -> Union[ScheduleResponse, ExactRunResult]:
    """Schedule one workload with the branch-and-bound exact scheduler.

    The canonical form takes a :class:`ScheduleRequest` (its backend
    must be registered with ``scheduler="exact"``; the default
    ``None`` resolves to ``"exact"`` here) and returns a
    :class:`ScheduleResponse` whose ``exact`` block carries the
    proven-optimality counters behind the optimality-gap benchmark
    (``benchmarks/bench_optimality.py``).  The pre-redesign signature
    (``schedule_exact(machine, blocks, ...)``) warns once and returns
    the bare :class:`ExactRunResult`.
    """
    if not isinstance(request, ScheduleRequest):
        deprecated_call(
            "repro.api", "schedule_exact",
            "schedule_exact(machine, blocks, ...) is deprecated; pass "
            "a repro.api.ScheduleRequest instead",
        )
        legacy = ScheduleRequest(
            machine=request,
            blocks=tuple(blocks or ()),
            backend=backend or "exact",
            stage=FINAL_STAGE if stage is None else stage,
        ).validate()
        return _run_exact_request(
            legacy, budget=budget, max_block_ops=max_block_ops, cache=cache
        )
    if blocks is not None or backend is not None or stage is not None:
        raise TypeError(
            "schedule_exact(ScheduleRequest) takes no separate "
            "blocks/backend/stage arguments"
        )
    if request.backend is None:
        from dataclasses import replace

        request = replace(request, backend="exact")
    request = request.validate().with_request_id()
    started = time.perf_counter()
    run = _run_exact_request(
        request, budget=budget, max_block_ops=max_block_ops, cache=cache
    )
    report = _maybe_verify(request, run.schedules)
    return ScheduleResponse.from_exact(
        request, run, wall_seconds=time.perf_counter() - started,
        verify_report=report,
    )


def schedule_batch(
    request: Union[BatchRequest, str, object],
    blocks: Optional[Sequence[BasicBlock]] = None,
    config: Optional[BatchConfig] = None,
    *,
    cache: Optional[DescriptionCache] = None,
) -> Union[ScheduleResponse, BatchResult]:
    """Schedule a workload through the fault-tolerant batch service.

    The canonical form takes a :class:`BatchRequest` and returns the
    :class:`ScheduleResponse` envelope (resilience and cache summaries
    included).  The pre-redesign signature
    (``schedule_batch(machine, blocks, config)``) warns once and
    returns the bare :class:`BatchResult`; the service-layer entry
    point :func:`repro.service.schedule_batch` keeps that convention
    without any warning.
    """
    if not isinstance(request, BatchRequest):
        deprecated_call(
            "repro.api", "schedule_batch",
            "schedule_batch(machine, blocks, config) is deprecated; "
            "pass a repro.api.BatchRequest instead",
        )
        return _service_schedule_batch(
            request, list(blocks or ()), config, cache=cache
        )
    if blocks is not None or config is not None:
        raise TypeError(
            "schedule_batch(BatchRequest) takes no separate "
            "blocks/config arguments"
        )
    request = request.validate().with_request_id()
    started = time.perf_counter()
    result = _service_schedule_batch(request, cache=cache)
    return ScheduleResponse.from_batch(
        request, result, wall_seconds=time.perf_counter() - started,
    )


__all__ = [
    # Entry points
    "compile_machine",
    "get_engine",
    "schedule",
    "schedule_batch",
    "schedule_exact",
    "verify_schedule",
    # Machines and workloads
    "MACHINE_NAMES",
    "get_machine",
    "load_mdes",
    "WorkloadConfig",
    "generate_blocks",
    # Engines and compiled form
    "CompiledMdes",
    "DEFAULT_BACKEND",
    "FINAL_STAGE",
    "PACKED_WORD_BUDGET",
    "SharedDescriptionSpec",
    "engine_names",
    "numpy_available",
    "packing_eligible",
    # Request/response vocabulary
    "BatchRequest",
    "ScheduleRequest",
    "ScheduleResponse",
    # Service types
    "BatchConfig",
    "BatchResult",
    "BatchSubmitter",
    "BlockFailure",
    "RetryPolicy",
    "TimeoutPolicy",
    # Results
    "BlockSchedule",
    "RunResult",
    # Exact scheduling
    "ExactBlockResult",
    "ExactBudget",
    "ExactRunResult",
    # Synthetic fleets and sweeps
    "SweepConfig",
    "SweepReport",
    "VariantResult",
    "run_sweep",
    "synth_family_names",
    "synth_fleet_names",
    "synth_machine_name",
    # Verification
    "Diagnostic",
    "VerifyReport",
    "exact_oracle_divergences",
    # Continuous performance + profiling
    "BenchRecord",
    "Comparison",
    "run_bench_suite",
    "compare_records",
    "env_fingerprint",
    "load_baseline",
    "write_baseline",
    "flamegraph",
    "hot_spans",
    "self_seconds",
    # Error taxonomy
    "VerificationError",
    "ReproError",
    "MdesError",
    "HmdesError",
    "RequestError",
    "SchedulingError",
    "ServiceError",
    "ChunkTimeoutError",
    "WorkerCrashError",
    "CacheCorruptionError",
    "BackpressureError",
    "QueueFullError",
    "QuotaExceededError",
    "DeadlineExceededError",
    "ShuttingDownError",
]
