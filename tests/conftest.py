"""Shared fixtures for the test suite."""

import pytest

from repro.core.resource import ResourceTable
from repro.core.tables import AndOrTree, OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.core.mdes import Mdes, OperationClass


@pytest.fixture
def resources():
    """A small resource table: M, two decoders, two write ports."""
    table = ResourceTable()
    table.declare_many(["M", "D0", "D1", "W0", "W1"])
    return table


def usage(resource, time):
    """Shorthand usage constructor."""
    return ResourceUsage(time, resource)


@pytest.fixture
def load_and_or_tree(resources):
    """An AND/OR-tree shaped like the paper's integer load (figure 3b)."""
    m = resources.lookup("M")
    d0, d1 = resources.lookup("D0"), resources.lookup("D1")
    w0, w1 = resources.lookup("W0"), resources.lookup("W1")
    mem_tree = OrTree((ReservationTable((usage(m, 0),)),), name="OT_mem")
    dec_tree = OrTree(
        (
            ReservationTable((usage(d0, -1),)),
            ReservationTable((usage(d1, -1),)),
        ),
        name="OT_dec",
    )
    wr_tree = OrTree(
        (
            ReservationTable((usage(w0, 1),)),
            ReservationTable((usage(w1, 1),)),
        ),
        name="OT_wr",
    )
    return AndOrTree((dec_tree, wr_tree, mem_tree), name="AOT_load")


@pytest.fixture
def toy_mdes(resources, load_and_or_tree):
    """A one-class machine description around the load tree."""
    mdes = Mdes(
        name="Toy",
        resources=resources,
        op_classes={
            "load": OperationClass("load", load_and_or_tree, latency=1)
        },
        opcode_map={"LD": "load"},
    )
    mdes.validate()
    return mdes


#: Session-wide memo of generated workloads, keyed (machine, ops, seed).
_WORKLOAD_CACHE = {}


def shared_workload(machine_name, ops, seed):
    """Memoized (machine, blocks) for a deterministic workload key.

    Several suites regenerate identical workloads per test; the
    generator is pure, so one copy per key is safe to share as long as
    callers never mutate the blocks (copy-then-replace instead).
    """
    key = (machine_name, ops, seed)
    if key not in _WORKLOAD_CACHE:
        from repro.machines import get_machine
        from repro.workloads import WorkloadConfig, generate_blocks

        machine = get_machine(machine_name)
        _WORKLOAD_CACHE[key] = (
            machine,
            generate_blocks(
                machine, WorkloadConfig(total_ops=ops, seed=seed)
            ),
        )
    return _WORKLOAD_CACHE[key]


@pytest.fixture(scope="session")
def workload_factory():
    """The memoized workload builder, as a session-scoped fixture."""
    return shared_workload


#: Session-wide memo of replay oracles, keyed (machine, direction).
_ORACLE_CACHE = {}


def shared_oracle(machine_name, direction="forward"):
    """Memoized :class:`ScheduleOracle` for a registered machine.

    The oracle rebuilds the raw high-level description in its
    constructor and is read-only afterwards, so one instance per
    (machine, direction) can serve every test that needs one.
    """
    key = (machine_name, direction)
    if key not in _ORACLE_CACHE:
        from repro.machines import get_machine
        from repro.verify import ScheduleOracle

        _ORACLE_CACHE[key] = ScheduleOracle(
            get_machine(machine_name), direction=direction
        )
    return _ORACLE_CACHE[key]


@pytest.fixture(scope="session")
def oracle_factory():
    """The memoized oracle builder, as a session-scoped fixture."""
    return shared_oracle


#: Session-wide memo of query engines, keyed (backend, machine, stage).
_ENGINE_CACHE = {}


def shared_engine(backend, machine_name, stage=4):
    """Memoized query engine for stats-insensitive protocol tests.

    Scheduling state lives in caller-owned state objects, so sharing
    the engine is safe for tests that only exercise the query protocol.
    Tests that compare the engine's cumulative ``CheckStats`` against a
    fresh baseline must keep building their own engines.
    """
    key = (backend, machine_name, stage)
    if key not in _ENGINE_CACHE:
        from repro.engine import create_engine
        from repro.machines import get_machine

        _ENGINE_CACHE[key] = create_engine(
            backend, get_machine(machine_name), stage=stage
        )
    return _ENGINE_CACHE[key]


@pytest.fixture(scope="session")
def engine_factory():
    """The memoized engine builder, as a session-scoped fixture."""
    return shared_engine


@pytest.fixture(scope="session")
def small_suite():
    """A small-but-real experiment suite shared across analysis tests."""
    from repro.analysis import ExperimentSuite

    return ExperimentSuite(total_ops=1200, keep_schedules=True)
