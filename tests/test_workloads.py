"""Tests for the synthetic workload generator."""

import pytest

from repro.machines import MACHINE_NAMES, get_machine
from repro.workloads import WorkloadConfig, generate_blocks


class TestGeneration:
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_blocks_end_in_branches(self, machine_name):
        machine = get_machine(machine_name)
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=400))
        for block in blocks:
            assert block.operations[-1].is_branch
            for op in block.operations[:-1]:
                assert not op.is_branch

    def test_deterministic_for_same_seed(self):
        machine = get_machine("SuperSPARC")
        config = WorkloadConfig(total_ops=300, seed=7)
        a = generate_blocks(machine, config)
        b = generate_blocks(machine, config)
        assert [block.operations for block in a] == [
            block.operations for block in b
        ]

    def test_different_seeds_differ(self):
        machine = get_machine("SuperSPARC")
        a = generate_blocks(machine, WorkloadConfig(total_ops=300, seed=1))
        b = generate_blocks(machine, WorkloadConfig(total_ops=300, seed=2))
        assert [blk.operations for blk in a] != [
            blk.operations for blk in b
        ]

    def test_total_ops_reached(self):
        machine = get_machine("K5")
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=500))
        total = sum(len(block) for block in blocks)
        assert total >= 500
        assert total <= 500 + machine.block_size_range[1] + 1

    def test_block_sizes_within_range(self):
        machine = get_machine("SuperSPARC")
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=600))
        low, high = machine.block_size_range
        for block in blocks:
            assert low + 1 <= len(block) <= high + 1  # body + branch

    def test_opcodes_from_profile(self):
        machine = get_machine("Pentium")
        allowed = {spec.opcode for spec in machine.opcode_profile}
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=400))
        for block in blocks:
            for op in block.operations:
                assert op.opcode in allowed

    def test_postpass_uses_physical_pool(self):
        machine = get_machine("K5")
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=300))
        dests = {
            dest
            for block in blocks
            for op in block
            for dest in op.dests
        }
        assert dests  # some ops define registers
        assert all(dest.startswith("r") for dest in dests)
        assert len(dests) <= machine.register_pool

    def test_prepass_uses_virtual_registers(self):
        machine = get_machine("SuperSPARC")
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=300))
        dests = [
            dest for block in blocks for op in block for dest in op.dests
        ]
        assert all(dest.startswith("v") for dest in dests)
        assert len(set(dests)) == len(dests)  # never reused

    def test_mix_tracks_weights(self):
        """The dominant opcode in the profile dominates the stream."""
        machine = get_machine("SuperSPARC")
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=4000))
        from collections import Counter

        counts = Counter(
            op.opcode for block in blocks for op in block
        )
        assert counts["ADD"] > counts["XNOR"]
        assert counts["LD"] > counts["LDD"]
