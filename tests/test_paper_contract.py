"""The reproduction contract: every headline claim of the paper, asserted.

These tests encode the paper's *conclusions* (not its exact numbers) and
check them against a small-scale run.  If a refactor breaks any of the
qualitative results the paper rests on, this module is what fails.
"""

import pytest

from repro.machines import MACHINE_NAMES


@pytest.fixture(scope="module")
def suite():
    from repro.analysis import ExperimentSuite

    return ExperimentSuite(total_ops=2500)


class TestSection3AndOrTrees:
    """The AND/OR-tree representation (section 3)."""

    def test_reduces_checks_for_flexible_machines(self, suite):
        """Up to ~85% fewer checks before any transformation (Table 5)."""
        for name, minimum in (("SuperSPARC", 0.70), ("K5", 0.70)):
            or_run = suite.run(name, "or", 0, False)
            andor_run = suite.run(name, "andor", 0, False)
            cut = 1 - (
                andor_run.stats.checks_per_attempt
                / or_run.stats.checks_per_attempt
            )
            assert cut > minimum, name

    def test_no_benefit_without_flexible_constraints(self, suite):
        """The Pentium gains nothing (Table 5: 0.0%)."""
        or_run = suite.run("Pentium", "or", 0, False)
        andor_run = suite.run("Pentium", "andor", 0, False)
        assert or_run.stats.checks_per_attempt == pytest.approx(
            andor_run.stats.checks_per_attempt
        )

    def test_shrinks_representation_two_orders_of_magnitude(self, suite):
        """K5: ~98.6% smaller before any transformation (Table 6)."""
        or_size = suite.size("K5", "or", 0, False)
        andor_size = suite.size("K5", "andor", 0, False)
        assert andor_size < or_size / 50

    def test_costs_a_little_when_structure_is_flat(self, suite):
        """Pentium AND/OR is slightly LARGER (Table 6 footnote)."""
        assert suite.size("Pentium", "andor", 0, False) > suite.size(
            "Pentium", "or", 0, False
        )


class TestSection5Cleanup:
    """Redundancy elimination and dominated options (section 5)."""

    def test_every_description_carries_removable_fat(self, suite):
        for name in MACHINE_NAMES:
            for rep in ("or", "andor"):
                assert suite.size(name, rep, 1, False) < suite.size(
                    name, rep, 0, False
                ), (name, rep)

    def test_pa7100_duplicate_option_is_dead_weight(self, suite):
        before = suite.run("PA7100", "or", 0, False)
        after = suite.run("PA7100", "or", 1, False)
        assert (
            after.stats.options_per_attempt
            < before.stats.options_per_attempt
        )


class TestSection6BitVectors:
    """Bit-vector packing (section 6)."""

    def test_pentium_benefits_most(self, suite):
        """Its options check several resources every cycle (Table 10)."""
        cuts = {}
        for name in MACHINE_NAMES:
            before = suite.run(name, "or", 1, False)
            after = suite.run(name, "or", 1, True)
            cuts[name] = 1 - (
                after.stats.checks_per_attempt
                / before.stats.checks_per_attempt
            )
        assert cuts["Pentium"] == max(cuts.values())
        assert cuts["Pentium"] > 0.35


class TestSection7TimeShift:
    """Usage-time shifting and check sorting (section 7)."""

    def test_checks_per_option_near_one(self, suite):
        """The paper reaches 1.01-1.12 checks per option (Table 12)."""
        for name in MACHINE_NAMES:
            run = suite.run(name, "or", 3, True)
            assert run.stats.checks_per_option <= 1.15, name

    def test_or_form_sizes_shrink_most(self, suite):
        """Table 11: up to 37% for the OR form, little for AND/OR."""
        or_cut = 1 - suite.size("SuperSPARC", "or", 3, True) / suite.size(
            "SuperSPARC", "or", 1, True
        )
        andor_cut = 1 - suite.size(
            "SuperSPARC", "andor", 3, True
        ) / suite.size("SuperSPARC", "andor", 1, True)
        assert or_cut > 0.25
        assert andor_cut < 0.10


class TestSection8TreeOrdering:
    """AND/OR conflict-detection ordering (section 8)."""

    def test_reorders_only_the_flexible_machines(self, suite):
        for name in ("SuperSPARC", "K5"):
            before = suite.run(name, "andor", 3, True)
            after = suite.run(name, "andor", 4, True)
            assert (
                after.stats.options_per_attempt
                < before.stats.options_per_attempt * 0.85
            ), name
        for name in ("PA7100", "Pentium"):
            before = suite.run(name, "andor", 3, True)
            after = suite.run(name, "andor", 4, True)
            assert after.stats.options_per_attempt == pytest.approx(
                before.stats.options_per_attempt
            ), name


class TestSection9Aggregates:
    """The paper's two headline aggregates (Tables 14 and 15)."""

    def test_size_reduced_up_to_factor_hundred(self, suite):
        unopt = suite.size("K5", "or", 0, False)
        optimized = suite.size("K5", "andor", 4, True)
        assert optimized < unopt / 50

    def test_or_only_transforms_reach_factor_two_plus(self, suite):
        unopt = suite.size("K5", "or", 0, False)
        or_only = suite.size("K5", "or", 4, True)
        assert or_only < unopt / 2

    def test_checks_reduced_up_to_factor_ten(self, suite):
        for name in ("SuperSPARC", "K5"):
            unopt = suite.run(name, "or", 0, False)
            optimized = suite.run(name, "andor", 4, True)
            assert (
                optimized.stats.checks_per_attempt
                < unopt.stats.checks_per_attempt / 5
            ), name

    def test_final_representation_under_3_5kb(self, suite):
        """'requiring less than 3.5k bytes of compiler memory'
        (conclusions)."""
        for name in MACHINE_NAMES:
            assert suite.size(name, "andor", 4, True) < 3500, name


class TestSection4Invariant:
    """Every representation and stage yields the exact same schedule."""

    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_schedule_invariance(self, machine_name):
        from repro.analysis import ExperimentSuite

        suite = ExperimentSuite(total_ops=600, keep_schedules=True)
        assert suite.verify_schedule_invariance(machine_name)
