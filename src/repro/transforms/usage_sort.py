"""Usage-check sorting (paper section 7).

After usage-time shifting, the usages that cause most resource conflicts
sit at time zero; later usages are mostly conflict-free tails (they exist
to delay subsequent operations).  For a forward list scheduler the average
number of checks before a conflict is detected is therefore minimized by
testing time zero first.  The sort is stable, so usages sharing a time
keep their specified relative order.
"""

from __future__ import annotations

from repro.core.mdes import Mdes
from repro.core.tables import ReservationTable
from repro.transforms.base import TreeRewriter


def sort_option_usages(
    option: ReservationTable, preferred_time: int = 0
) -> ReservationTable:
    """Order usages so ``preferred_time`` is checked first, then by time."""
    usages = tuple(
        sorted(
            option.usages,
            key=lambda usage: (usage.time != preferred_time, usage.time),
        )
    )
    if usages == option.usages:
        return option
    return ReservationTable(usages, name=option.name)


def sort_usage_checks(mdes: Mdes, preferred_time: int = 0) -> Mdes:
    """Sort every option's checks so ``preferred_time`` is tested first."""
    rewriter = TreeRewriter(
        option_hook=lambda option: sort_option_usages(option, preferred_time)
    )
    return rewriter.rewrite_mdes(mdes)
