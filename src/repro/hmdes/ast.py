"""Abstract syntax tree for the HMDES language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


@dataclass(frozen=True)
class ResourceDecl:
    """``Name;`` or ``Name[lo..hi];`` in the resource section."""

    name: str
    low: Optional[int] = None
    high: Optional[int] = None

    @property
    def is_range(self) -> bool:
        """Whether the declaration expands to indexed resources."""
        return self.low is not None

    def expanded_names(self) -> List[str]:
        """The concrete resource names this declaration introduces."""
        if not self.is_range:
            return [self.name]
        assert self.low is not None and self.high is not None
        return [f"{self.name}[{i}]" for i in range(self.low, self.high + 1)]


@dataclass(frozen=True)
class UsageNode:
    """``use Resource at time;`` inside a table or option body."""

    resource: str
    time: int
    line: int = 0


@dataclass(frozen=True)
class TableNode:
    """A named reservation table in the table section."""

    name: str
    usages: List[UsageNode] = field(default_factory=list)


@dataclass(frozen=True)
class OptionNode:
    """One option of an OR-tree: inline usages or a named-table reference."""

    usages: Optional[List[UsageNode]] = None
    ref: Optional[str] = None
    line: int = 0


@dataclass(frozen=True)
class OrTreeNode:
    """An OR-tree: prioritized options."""

    name: str
    options: List[OptionNode] = field(default_factory=list)


@dataclass(frozen=True)
class OrTreeRef:
    """A by-name reference to a named OR-tree (or named table)."""

    name: str
    line: int = 0


@dataclass(frozen=True)
class AndOrTreeNode:
    """An AND/OR-tree: an ordered list of OR-tree children."""

    name: str
    children: List[Union[OrTreeRef, OrTreeNode]] = field(default_factory=list)


#: A constraint expression in an opclass: a reference or an inline tree.
ConstraintExpr = Union[OrTreeRef, OrTreeNode, AndOrTreeNode]


@dataclass(frozen=True)
class OpClassNode:
    """``name { resv <constraint>; latency n; read n; }``."""

    name: str
    constraint: ConstraintExpr
    latency: int = 1
    read_time: int = 0


@dataclass(frozen=True)
class BypassNode:
    """``producer -> consumer: latency n [class subst];`` entry."""

    producer: str
    consumer: str
    latency: int
    substitute: str = ""
    line: int = 0


@dataclass(frozen=True)
class OperationNode:
    """``OPCODE: classname;`` in the operation section."""

    opcode: str
    class_name: str
    line: int = 0


@dataclass
class MdesNode:
    """A whole parsed description."""

    name: str
    resources: List[ResourceDecl] = field(default_factory=list)
    tables: List[TableNode] = field(default_factory=list)
    or_trees: List[OrTreeNode] = field(default_factory=list)
    and_or_trees: List[AndOrTreeNode] = field(default_factory=list)
    op_classes: List[OpClassNode] = field(default_factory=list)
    operations: List[OperationNode] = field(default_factory=list)
    bypasses: List[BypassNode] = field(default_factory=list)
