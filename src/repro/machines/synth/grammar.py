"""Seeded grammar-driven generator of random-but-valid HMDES machines.

This is the unstructured half of :mod:`repro.machines.synth`: a small
grammar that draws *structurally diverse* descriptions (flat OR-trees
and AND/OR-trees, multi-cycle and negative usage times, shared and
unused trees, varied latencies and read times) that are always *legal*
(section 2's reservation-table model plus the library's
sibling-disjointness invariant).  Everything is drawn under one
``random.Random`` stream, so a description is fully reproducible from
its seed.

The generated :class:`~repro.machines.base.Machine` carries the
description as HMDES *source text* produced by the writer -- every
generated machine therefore also exercises the writer -> parser ->
translator round-trip before a single schedule is attempted.

Historically this code lived in :mod:`repro.verify.generate` as the
differential fuzzer's case generator; it moved here unchanged (same
draw order, bit-identical streams) when synthetic machines became a
first-class citizen.  The structured *family* presets layered on top
live in :mod:`repro.machines.synth.families`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.mdes import Mdes, OperationClass
from repro.core.resource import Resource, ResourceTable
from repro.core.tables import AndOrTree, Constraint, OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.hmdes.writer import write_mdes
from repro.machines.base import (
    KIND_BRANCH,
    KIND_INT,
    KIND_LOAD,
    KIND_STORE,
    Machine,
    OpcodeSpec,
)


@dataclass(frozen=True)
class FuzzGrammar:
    """Bounds of the description grammar.

    The defaults keep descriptions small enough that one case schedules
    in milliseconds across the whole backend x stage matrix, while still
    covering every structural feature the transforms rewrite.
    """

    min_resources: int = 2
    max_resources: int = 6
    min_classes: int = 1
    max_classes: int = 3
    max_or_trees: int = 3          # AND/OR fan-out (sub-OR-trees)
    max_options: int = 3           # options per OR-tree
    max_usages: int = 3            # usages per option
    min_time: int = -1
    max_time: int = 3
    max_latency: int = 3
    andor_probability: float = 0.6
    early_read_probability: float = 0.15
    unused_tree_probability: float = 0.25
    extra_opcode_probability: float = 0.35
    min_block_ops: int = 24
    max_block_ops: int = 60


DEFAULT_GRAMMAR = FuzzGrammar()


def _random_option(
    rng: random.Random,
    pool: Sequence[Tuple[int, Resource]],
    grammar: FuzzGrammar,
) -> ReservationTable:
    count = rng.randint(1, min(grammar.max_usages, len(pool)))
    picks = rng.sample(list(pool), count)
    # Deliberately unsorted: the usage-sort transform must have work.
    return ReservationTable(
        tuple(ResourceUsage(time, resource) for time, resource in picks)
    )


def _random_or_tree(
    rng: random.Random,
    resources: Sequence[Resource],
    grammar: FuzzGrammar,
) -> OrTree:
    pool = [
        (time, resource)
        for resource in resources
        for time in range(grammar.min_time, grammar.max_time + 1)
    ]
    options = tuple(
        _random_option(rng, pool, grammar)
        for _ in range(rng.randint(1, grammar.max_options))
    )
    return OrTree(options)


def _random_constraint(
    rng: random.Random,
    resources: Sequence[Resource],
    grammar: FuzzGrammar,
) -> Constraint:
    if (
        len(resources) >= 2
        and rng.random() < grammar.andor_probability
    ):
        # Partition the resources among the sub-OR-trees so siblings can
        # never reserve the same (resource, time) pair -- the AND/OR
        # disjointness invariant the translator enforces.
        fan_out = rng.randint(2, min(grammar.max_or_trees, len(resources)))
        shuffled = list(resources)
        rng.shuffle(shuffled)
        cuts = sorted(rng.sample(range(1, len(shuffled)), fan_out - 1))
        groups = [
            shuffled[start:stop]
            for start, stop in zip([0] + cuts, cuts + [len(shuffled)])
        ]
        return AndOrTree(tuple(
            _random_or_tree(rng, group, grammar) for group in groups
        ))
    return _random_or_tree(rng, resources, grammar)


def generate_mdes(
    rng: random.Random, name: str, grammar: FuzzGrammar = DEFAULT_GRAMMAR
) -> Mdes:
    """Draw one legal machine description from the grammar."""
    resources = ResourceTable()
    declared = resources.declare_many([
        f"R{i}"
        for i in range(
            rng.randint(grammar.min_resources, grammar.max_resources)
        )
    ])

    op_classes: Dict[str, OperationClass] = {}
    opcode_map: Dict[str, str] = {}
    class_count = rng.randint(grammar.min_classes, grammar.max_classes)
    for i in range(class_count):
        class_name = f"C{i}"
        op_classes[class_name] = OperationClass(
            name=class_name,
            constraint=_random_constraint(rng, declared, grammar),
            latency=rng.randint(1, grammar.max_latency),
            read_time=(
                -1 if rng.random() < grammar.early_read_probability else 0
            ),
        )
        opcode_map[f"OP{i}"] = class_name
        if rng.random() < grammar.extra_opcode_probability:
            opcode_map[f"OP{i}X"] = class_name
    # Every workload needs a block terminator.
    opcode_map["BR"] = rng.choice(sorted(op_classes))

    unused: Dict[str, Constraint] = {}
    if rng.random() < grammar.unused_tree_probability:
        # Dead declarations: the section 5 dead-code-removal fodder.
        unused["OT_dead"] = _random_or_tree(rng, declared, grammar)

    mdes = Mdes(
        name=name,
        resources=resources,
        op_classes=op_classes,
        opcode_map=opcode_map,
        unused_trees=unused,
    )
    mdes.validate()
    return mdes


def _profile_for(
    rng: random.Random, mdes: Mdes
) -> Tuple[OpcodeSpec, ...]:
    specs: List[OpcodeSpec] = []
    for opcode in mdes.opcode_map:
        if opcode == "BR":
            specs.append(OpcodeSpec(
                "BR", 1.0, src_choices=(1,), has_dest=False,
                kind=KIND_BRANCH,
            ))
            continue
        kind = rng.choices(
            [KIND_INT, KIND_LOAD, KIND_STORE], weights=[6, 2, 1], k=1
        )[0]
        if kind == KIND_STORE:
            specs.append(OpcodeSpec(
                opcode, rng.uniform(0.5, 2.0), src_choices=(2,),
                has_dest=False, kind=kind,
            ))
        else:
            specs.append(OpcodeSpec(
                opcode, rng.uniform(0.5, 2.0), src_choices=(1, 2),
                has_dest=True, kind=kind,
            ))
    return tuple(specs)


def build_machine(
    mdes: Mdes,
    rng: random.Random,
    grammar: FuzzGrammar = DEFAULT_GRAMMAR,
    profile: Tuple[OpcodeSpec, ...] = None,
) -> Machine:
    """Wrap a generated description into a schedulable Machine.

    The machine's ``hmdes_source`` is the *written-out* form of
    ``mdes``, so ``machine.build()`` re-parses generator output through
    the production front end rather than trusting the in-memory trees.
    """
    opcode_map = dict(mdes.opcode_map)

    def classify(op, cascaded: bool) -> str:
        return opcode_map[op.opcode]

    return Machine(
        name=mdes.name,
        hmdes_source=write_mdes(mdes),
        opcode_profile=(
            profile if profile is not None else _profile_for(rng, mdes)
        ),
        classifier=classify,
        scheduling_mode="prepass",
        block_size_range=(3, 9),
        flow_probability=0.5,
    )


__all__ = [
    "DEFAULT_GRAMMAR",
    "FuzzGrammar",
    "build_machine",
    "generate_mdes",
]
