"""The batch driver's async submission path.

:class:`BatchSubmitter` is the bridge between an asyncio event loop
(the server tier) and the synchronous, process-pool-backed
:func:`~repro.service.batch.schedule_batch`: requests are handed to a
small thread pool via ``run_in_executor`` so the loop never blocks on a
compile or a schedule, while every run schedules out of one long-lived
warm :class:`~repro.engine.cache.DescriptionCache` -- the paper's
compile-once-use-many story held open across requests instead of
rebuilt per invocation.

The submitter is deliberately loop-free state: it owns the warm cache
and the executor, nothing else.  Admission control, batching windows,
and deadlines live above it (:mod:`repro.server`); plain synchronous
callers can use :meth:`run` directly.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

from repro.engine.cache import DescriptionCache
from repro.engine.diskcache import DiskDescriptionCache
from repro.errors import ShuttingDownError
from repro.service.models import BatchRequest
from repro.service.batch import BatchResult, schedule_batch


class BatchSubmitter:
    """Run :class:`BatchRequest`\\ s against one warm description cache.

    Args:
        cache_dir: Disk tier for the warm cache; ``None`` keeps it
            memory-only.
        max_workers: Threads running batch drivers concurrently.  Each
            thread may itself own a process pool (``config.workers``),
            so this bounds *driver* concurrency, not total parallelism.
        cache: Lend an existing cache instead of building one (tests,
            or sharing with a prewarmed registry).
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_workers: int = 4,
        cache: Optional[DescriptionCache] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1: {max_workers}")
        if cache is None:
            disk = DiskDescriptionCache(cache_dir) if cache_dir else None
            cache = DescriptionCache(disk=disk, name="server")
        self.cache = cache
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-submit"
        )
        self._lock = threading.Lock()
        self._closed = False
        self._inflight = 0
        self._completed = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, request: BatchRequest) -> BatchResult:
        """Run one request synchronously on the caller's thread.

        The request's trace spans are captured (detached) rather than
        grafted into the calling thread's live trace: submitter runs
        may execute on any worker thread, and the server re-attaches
        the capture under its own ``server:*`` span.
        """
        with self._lock:
            if self._closed:
                raise ShuttingDownError(
                    "submitter is closed; no new batch runs"
                )
            self._inflight += 1
        try:
            return schedule_batch(request, cache=self.cache)
        finally:
            with self._lock:
                self._inflight -= 1
                self._completed += 1

    def run_captured(self, request: BatchRequest):
        """Like :meth:`run`, also returning the run's detached spans.

        The spans come back as plain dicts (``Span.to_dict`` form) so
        the server can graft them under its own ``server:request``
        node with :func:`repro.obs.attach`.
        """
        from repro import obs

        with obs.capture() as capture:
            result = self.run(request)
        return result, capture.spans

    async def submit(self, request: BatchRequest) -> BatchResult:
        """Run one request off-loop; awaitable from the event loop."""
        loop = asyncio.get_running_loop()
        with self._lock:
            if self._closed:
                raise ShuttingDownError(
                    "submitter is closed; no new batch runs"
                )
        return await loop.run_in_executor(self._executor, self.run, request)

    async def submit_captured(self, request: BatchRequest):
        """:meth:`run_captured`, awaitable from the event loop."""
        loop = asyncio.get_running_loop()
        with self._lock:
            if self._closed:
                raise ShuttingDownError(
                    "submitter is closed; no new batch runs"
                )
        return await loop.run_in_executor(
            self._executor, self.run_captured, request
        )

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        """Batch runs currently executing."""
        with self._lock:
            return self._inflight

    @property
    def completed(self) -> int:
        """Batch runs finished since construction."""
        with self._lock:
            return self._completed

    def prewarm(self, machine, backend: str, stage: int) -> None:
        """Compile one description into the warm cache ahead of traffic."""
        from repro.engine.registry import create_engine

        create_engine(backend, machine, stage=stage, cache=self.cache)

    def cache_summary(self) -> Dict[str, Any]:
        """The warm cache's counters, for ``/healthz`` and tests."""
        stats = self.cache.stats
        return {
            "entries": len(self.cache),
            "memory_hits": stats.hits,
            "memory_misses": stats.misses,
            "evictions": stats.evictions,
            "disk_hits": stats.disk_hits,
            "disk_misses": stats.disk_misses,
            "disk_stores": stats.disk_stores,
            "disk_quarantined": stats.disk_quarantined,
        }

    def close(self, wait: bool = True) -> None:
        """Refuse new runs and (optionally) wait out the in-flight ones."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "BatchSubmitter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["BatchSubmitter"]
