"""The metrics registry: counters, gauges, and fixed-bucket histograms.

The paper's evaluation is a set of counter tables -- options checked,
resource checks, representation sizes -- and before this module every
subsystem grew its own bespoke counter object (``CheckStats``,
``CacheStats``, ad-hoc ``perf_counter`` pairs).  The registry is the one
place those numbers live: subsystems create named metrics (optionally
labelled), exporters read them back out in a single pass, and *views*
let the existing stats dataclasses publish through the registry without
rewriting the hot paths that increment them.

Design rules:

* **Get-or-create.**  ``registry.counter(name, **labels)`` returns the
  same instrument for the same (name, labels) pair, so instrumentation
  sites never coordinate; the first caller wins on ``help`` text.
* **Hot paths stay dumb.**  Incrementing a counter is one attribute
  add under the GIL; no locks, no callbacks.  The registry lock guards
  only instrument *creation* and view registration.
* **Views, not parallel mechanisms.**  A view is a callback producing
  samples at collection time.  :class:`~repro.lowlevel.checker.CheckStats`
  and :class:`~repro.engine.cache.CacheStats` objects register as views
  (see :mod:`repro.obs.views`), so their counters appear in every export
  while ``try_reserve`` keeps its zero-overhead plain-int increments.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: One exported measurement: (name, labels, value, kind, help).
Sample = Tuple[str, Tuple[Tuple[str, str], ...], float, str, str]

#: Default histogram buckets for wall-clock seconds (upper bounds).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease: {amount}")
        self.value += amount

    def samples(self) -> Iterable[Tuple[str, Tuple, float]]:
        yield self.name, self.labels, self.value


class Gauge:
    """A value that can go up and down (pool sizes, last-run figures)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def samples(self) -> Iterable[Tuple[str, Tuple, float]]:
        yield self.name, self.labels, self.value


class Histogram:
    """Fixed-bucket histogram (cumulative, Prometheus ``le`` semantics).

    ``buckets`` are the finite upper bounds in increasing order; an
    implicit ``+Inf`` bucket always exists.  An observation lands in the
    first bucket whose bound is >= the value (bounds are inclusive, as
    in Prometheus).
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...],
        buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram buckets must ascend: {buckets!r}")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +Inf is last
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative (upper_bound, count) pairs, ending at +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def samples(self) -> Iterable[Tuple[str, Tuple, float]]:
        for bound, count in self.bucket_counts():
            le = "+Inf" if bound == float("inf") else _format_bound(bound)
            yield (
                self.name + "_bucket",
                tuple(sorted(self.labels + (("le", le),))),
                float(count),
            )
        yield self.name + "_sum", self.labels, self.sum
        yield self.name + "_count", self.labels, float(self.count)


def _format_bound(bound: float) -> str:
    text = repr(bound)
    return text[:-2] if text.endswith(".0") else text


class MetricsRegistry:
    """All instruments and views of one process, by (name, labels)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: "Dict[Tuple[str, Tuple], object]" = {}
        self._help: Dict[str, str] = {}
        self._views: "Dict[str, Callable[[], Iterable[Sample]]]" = {}

    # ------------------------------------------------------------------
    # Instrument creation (get-or-create)
    # ------------------------------------------------------------------

    def _get(self, cls, name: str, help: str, labels: Dict[str, str], **kwargs):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is not None:
            if not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], **kwargs)
                self._instruments[key] = instrument
                if help and name not in self._help:
                    self._help[name] = help
        return instrument

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def register_view(
        self, name: str, callback: Callable[[], Iterable[Sample]]
    ) -> None:
        """Register (or replace) a pull-time sample source."""
        with self._lock:
            self._views[name] = callback

    def unregister_view(self, name: str) -> None:
        with self._lock:
            self._views.pop(name, None)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def help_for(self, name: str) -> str:
        return self._help.get(name, "")

    def histograms(self) -> List[Histogram]:
        """Every histogram instrument, in (name, labels) order."""
        with self._lock:
            instruments = list(self._instruments.items())
        return [
            instrument
            for key, instrument in sorted(instruments, key=lambda kv: kv[0])
            if isinstance(instrument, Histogram)
        ]

    def collect(self) -> List[Sample]:
        """Every sample from every instrument and view, sorted.

        The sort (name, labels) makes exports deterministic regardless
        of registration order, which the round-trip tests rely on.
        """
        samples: List[Sample] = []
        with self._lock:
            instruments = list(self._instruments.values())
            views = list(self._views.values())
        for instrument in instruments:
            kind = instrument.kind
            base = instrument.name
            for name, labels, value in instrument.samples():
                samples.append(
                    (name, labels, value, kind, self._help.get(base, ""))
                )
        for view in views:
            for sample in view():
                samples.append(sample)
        samples.sort(key=lambda s: (s[0], s[1]))
        return samples

    def value(
        self, name: str, **labels: str
    ) -> Optional[float]:
        """The current value of one counter/gauge sample, or ``None``."""
        key = _label_key(labels)
        for sample_name, sample_labels, value, _, _ in self.collect():
            if sample_name == name and sample_labels == key:
                return value
        return None

    def reset(self) -> None:
        """Drop every instrument and view (tests and CLI runs)."""
        with self._lock:
            self._instruments.clear()
            self._help.clear()
            self._views.clear()

    def __len__(self) -> int:
        return len(self._instruments)
