"""Reproduction of *Optimization of Machine Descriptions for Efficient Use*.

Gyllenhaal, Hwu & Rau, MICRO-29, 1996.

The package implements the paper's full system:

* :mod:`repro.core` -- reservation tables, OR-trees, and the paper's
  AND/OR-tree representation of resource constraints.
* :mod:`repro.hmdes` -- a high-level machine description language with a
  macro preprocessor, parser, and translator to the core model.
* :mod:`repro.lowlevel` -- the compiled low-level representation: bit-vector
  resource-usage maps, constraint checkers, and a byte-level layout model.
* :mod:`repro.transforms` -- the MDES optimizations of sections 5-8.
* :mod:`repro.machines` -- detailed PA7100, Pentium, SuperSPARC, and AMD-K5
  machine descriptions.
* :mod:`repro.ir` / :mod:`repro.scheduler` -- a multi-platform,
  MDES-driven list scheduler.
* :mod:`repro.modulo` -- an iterative modulo scheduler built on the same
  reservation-table machinery.
* :mod:`repro.automata` / :mod:`repro.eichenberger` -- the related-work
  baselines (finite-state automata and reduced reservation tables).
* :mod:`repro.workloads` -- synthetic SPEC CINT92-shaped workload generator.
* :mod:`repro.analysis` -- experiment drivers for every table and figure.
* :mod:`repro.obs` -- pipeline-wide tracing spans and a metrics registry
  (off by default; enable with ``REPRO_OBS=1``).
"""

import logging

from repro.core.resource import Resource, ResourceTable
from repro.core.usage import ResourceUsage
from repro.core.tables import AndOrTree, OrTree, ReservationTable
from repro.core.mdes import Mdes, OperationClass

__version__ = "1.0.0"

# Library-style logging: the package never configures handlers; hosts
# opt in with ``logging.basicConfig`` (or the CLI's --verbose flag).
logging.getLogger("repro").addHandler(logging.NullHandler())

__all__ = [
    "AndOrTree",
    "Mdes",
    "OperationClass",
    "OrTree",
    "ReservationTable",
    "Resource",
    "ResourceTable",
    "ResourceUsage",
    "__version__",
]
