"""Batch-scheduling service layer.

Shards a workload of basic blocks across a process pool, with each
worker warming its compiled machine description from the persistent
on-disk LMDES cache instead of re-running the translate/transform
pipeline -- the paper's "load the shipped low-level file quickly"
workflow (section 4) applied to a pool of scheduling workers::

    from repro.service import BatchConfig, RetryPolicy, schedule_batch

    result = schedule_batch(
        "SuperSPARC", blocks,
        BatchConfig(backend="bitvector", workers=4,
                    cache_dir=".mdes-cache",
                    retry=RetryPolicy(retries=2)),
    )
    result.signature()     # bit-for-bit identical for any worker count
    result.stats           # CheckStats, folded across workers
    result.cache_stats     # LRU + disk-tier hit/miss counters
    result.errors          # typed BlockFailure quarantine records

The service is fault-tolerant by construction
(:mod:`repro.service.resilience`): worker crashes, chunk timeouts,
transient scheduling errors, and corrupt cache entries are retried or
recovered without changing the result, and the deterministic
fault-injection harness (:mod:`repro.service.faults`, gated by
``REPRO_FAULTS``) exists so tests can prove exactly that.
"""

from repro.service.batch import BatchResult, schedule_batch
from repro.service.faults import FaultPlan, FaultRule, parse_faults
from repro.service.models import (
    DEFAULT_BACKEND,
    ON_ERROR_MODES,
    BatchConfig,
    BatchRequest,
    ScheduleRequest,
    ScheduleResponse,
)
from repro.service.resilience import (
    BlockFailure,
    RetryPolicy,
    TimeoutPolicy,
    is_retryable,
)
from repro.service.submit import BatchSubmitter

__all__ = [
    "BatchConfig",
    "BatchRequest",
    "BatchResult",
    "BatchSubmitter",
    "BlockFailure",
    "DEFAULT_BACKEND",
    "FaultPlan",
    "FaultRule",
    "ON_ERROR_MODES",
    "RetryPolicy",
    "ScheduleRequest",
    "ScheduleResponse",
    "TimeoutPolicy",
    "is_retryable",
    "parse_faults",
    "schedule_batch",
]
