"""Machine resources.

Resources model the processor's scheduling rules, not necessarily real
hardware (paper, section 2): decoders, register read/write ports, function
units, issue slots, and so on.  Each resource owns a distinct bit index so
that one cycle's worth of usages can be packed into a single bit-vector
word (section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import MdesError


@dataclass(frozen=True)
class Resource:
    """One schedulable machine resource.

    Attributes:
        name: Human-readable resource name, e.g. ``"Decoder[1]"``.
        index: Bit position of this resource in bit-vector words.
    """

    name: str
    index: int

    @property
    def mask(self) -> int:
        """Single-bit mask for this resource in a bit-vector word."""
        return 1 << self.index

    def __lt__(self, other: "Resource") -> bool:
        if not isinstance(other, Resource):
            return NotImplemented
        return (self.index, self.name) < (other.index, other.name)

    def __repr__(self) -> str:
        return f"Resource({self.name!r}, bit={self.index})"


@dataclass
class ResourceTable:
    """An ordered registry of the resources declared by one MDES.

    The table assigns bit indices in declaration order, so the order in the
    high-level description determines the bit layout of the low-level
    representation.
    """

    _by_name: Dict[str, Resource] = field(default_factory=dict)
    _ordered: List[Resource] = field(default_factory=list)

    def declare(self, name: str) -> Resource:
        """Declare a new resource; raises :class:`MdesError` on duplicates."""
        if name in self._by_name:
            raise MdesError(f"resource {name!r} declared twice")
        resource = Resource(name, len(self._ordered))
        self._by_name[name] = resource
        self._ordered.append(resource)
        return resource

    def declare_many(self, names: List[str]) -> List[Resource]:
        """Declare several resources in order; convenience for builders."""
        return [self.declare(name) for name in names]

    def lookup(self, name: str) -> Resource:
        """Return the resource called ``name``; raise if undeclared."""
        try:
            return self._by_name[name]
        except KeyError:
            raise MdesError(f"unknown resource {name!r}") from None

    def get(self, name: str) -> Optional[Resource]:
        """Return the resource called ``name`` or ``None``."""
        return self._by_name.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self) -> Iterator[Resource]:
        return iter(self._ordered)

    @property
    def names(self) -> List[str]:
        """Resource names in declaration order."""
        return [resource.name for resource in self._ordered]
