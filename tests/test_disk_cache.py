"""Tests for the persistent on-disk description cache.

Covers the satellite guarantees: content-hash keys (no ``id()`` in
persistent lookups), cold-build versus disk-loaded equivalence,
quarantine-and-rebuild of corrupted or version-mismatched entries,
atomic publication under concurrent writers, and the in-place stats
reset on :meth:`DescriptionCache.clear`.
"""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.engine import create_engine
from repro.engine.cache import CacheStats, DescriptionCache
from repro.engine.diskcache import (
    DiskDescriptionCache,
    description_digest,
    is_persistent_token,
    machine_content_token,
)
from repro.lowlevel import mdes_size_bytes
from repro.machines import MACHINE_NAMES, get_machine
from repro.scheduler import schedule_workload
from repro.workloads import WorkloadConfig, generate_blocks

#: The configuration used throughout: stage-4 bit-vector AND/OR trees.
REP, STAGE, BITVECTOR = "andor", 4, True


def small_workload(machine, ops=150, seed=7):
    return generate_blocks(
        machine, WorkloadConfig(total_ops=ops, seed=seed)
    )


def fresh_machine(name="SuperSPARC"):
    """A new Machine object (same content, different identity)."""
    from repro.machines import amdk5, pa7100, pentium, supersparc

    builders = {
        "PA7100": pa7100.build_machine,
        "Pentium": pentium.build_machine,
        "SuperSPARC": supersparc.build_machine,
        "K5": amdk5.build_machine,
    }
    return builders[name]()


class TestContentKeys:
    def test_token_is_stable_across_objects(self):
        assert machine_content_token(fresh_machine()) == (
            machine_content_token(fresh_machine())
        )
        assert machine_content_token(get_machine("SuperSPARC")) == (
            machine_content_token(fresh_machine())
        )

    def test_token_differs_across_machines(self):
        tokens = {
            machine_content_token(get_machine(name))
            for name in MACHINE_NAMES
        }
        assert len(tokens) == len(MACHINE_NAMES)

    def test_equal_content_machines_share_cache_entries(self):
        """The old ``id(machine)`` key split these into two misses."""
        cache = DescriptionCache()
        first = cache.compiled(fresh_machine(), REP, STAGE, BITVECTOR)
        second = cache.compiled(fresh_machine(), REP, STAGE, BITVECTOR)
        assert second is first
        assert cache.stats.hits == 1

    def test_sourceless_machine_token_not_persistent(self):
        class Impostor:
            name = "K5"

        assert not is_persistent_token(machine_content_token(Impostor()))
        assert is_persistent_token(
            machine_content_token(get_machine("K5"))
        )

    def test_digest_changes_with_every_knob(self):
        token = machine_content_token(get_machine("K5"))
        digests = {
            description_digest(token, rep, stage, bitvector, reduce)
            for rep in ("or", "andor")
            for stage in (0, 4)
            for bitvector in (False, True)
            for reduce in (False, True)
        }
        assert len(digests) == 16

    def test_clear_resets_stats_in_place(self):
        """Holders of the stats object must see the reset, not a stale
        snapshot left behind by rebinding."""
        cache = DescriptionCache()
        held = cache.stats
        cache.mdes(get_machine("K5"), "or", 0)
        assert held.misses == 1
        cache.clear()
        assert cache.stats is held
        assert held.misses == 0 and held.hits == 0


class TestDiskTier:
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_cold_build_and_disk_load_are_equivalent(
        self, machine_name, tmp_path
    ):
        machine = get_machine(machine_name)
        cold_cache = DescriptionCache(disk=DiskDescriptionCache(tmp_path))
        cold = cold_cache.compiled(machine, REP, STAGE, BITVECTOR)
        assert cold_cache.stats.disk_misses == 1
        assert cold_cache.stats.disk_stores == 1

        warm_cache = DescriptionCache(disk=DiskDescriptionCache(tmp_path))
        warm = warm_cache.compiled(machine, REP, STAGE, BITVECTOR)
        assert warm_cache.stats.disk_hits == 1
        assert warm_cache.stats.disk_misses == 0
        assert warm is not cold

        assert mdes_size_bytes(warm) == mdes_size_bytes(cold)
        blocks = small_workload(machine)
        reference = schedule_workload(
            machine, cold, blocks, keep_schedules=True
        )
        loaded = schedule_workload(
            machine, warm, blocks, keep_schedules=True
        )
        assert loaded.signature() == reference.signature()
        assert loaded.stats == reference.stats

    def test_reduced_backend_round_trips_through_disk(self, tmp_path):
        """The Eichenberger reduction is baked into the artifact."""
        machine = get_machine("PA7100")
        blocks = small_workload(machine)
        cold_engine = create_engine(
            "eichenberger", machine,
            cache=DescriptionCache(disk=DiskDescriptionCache(tmp_path)),
        )
        warm_cache = DescriptionCache(disk=DiskDescriptionCache(tmp_path))
        warm_engine = create_engine(
            "eichenberger", machine, cache=warm_cache
        )
        assert warm_cache.stats.disk_hits == 1
        reference = schedule_workload(
            machine, None, blocks, keep_schedules=True, engine=cold_engine
        )
        loaded = schedule_workload(
            machine, None, blocks, keep_schedules=True, engine=warm_engine
        )
        assert loaded.signature() == reference.signature()
        assert loaded.stats == reference.stats

    def _entry_path(self, tmp_path):
        entries = list(tmp_path.glob("*.lmdes.json"))
        assert len(entries) == 1
        return entries[0]

    def test_truncated_entry_is_quarantined_and_rebuilt(self, tmp_path):
        machine = get_machine("K5")
        DescriptionCache(
            disk=DiskDescriptionCache(tmp_path)
        ).compiled(machine, REP, STAGE, BITVECTOR)
        path = self._entry_path(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])

        cache = DescriptionCache(disk=DiskDescriptionCache(tmp_path))
        rebuilt = cache.compiled(machine, REP, STAGE, BITVECTOR)
        assert cache.stats.disk_quarantined == 1
        assert cache.stats.disk_misses == 1
        assert cache.stats.disk_hits == 0
        assert cache.stats.disk_stores == 1  # re-published
        assert path.with_name(path.name + ".bad").exists()
        # The republished entry is whole again.
        assert self._entry_path(tmp_path).read_text() == text
        assert mdes_size_bytes(rebuilt) > 0

    def test_version_mismatched_entry_is_quarantined(self, tmp_path):
        machine = get_machine("K5")
        DescriptionCache(
            disk=DiskDescriptionCache(tmp_path)
        ).compiled(machine, REP, STAGE, BITVECTOR)
        path = self._entry_path(tmp_path)
        document = json.loads(path.read_text())
        document["version"] = document["version"] + 1
        path.write_text(json.dumps(document))

        cache = DescriptionCache(disk=DiskDescriptionCache(tmp_path))
        cache.compiled(machine, REP, STAGE, BITVECTOR)
        assert cache.stats.disk_quarantined == 1
        assert cache.stats.disk_hits == 0
        assert cache.stats.disk_stores == 1

    def test_sourceless_machine_never_touches_disk(self, tmp_path):
        real = get_machine("K5")

        class Impostor:
            name = "K5"

            def build_andor(self):
                return real.build_andor()

        cache = DescriptionCache(disk=DiskDescriptionCache(tmp_path))
        cache.compiled(Impostor(), REP, STAGE, BITVECTOR)
        assert list(tmp_path.iterdir()) == []
        assert cache.stats.disk_misses == 0
        assert cache.stats.disk_stores == 0

    def test_disk_survives_memory_clear(self, tmp_path):
        machine = get_machine("K5")
        cache = DescriptionCache(disk=DiskDescriptionCache(tmp_path))
        cache.compiled(machine, REP, STAGE, BITVECTOR)
        cache.clear()
        cache.compiled(machine, REP, STAGE, BITVECTOR)
        assert cache.stats.disk_hits == 1


def _publish_entry(args):
    """One concurrent writer (module-level so the pool can pickle it)."""
    cache_dir, machine_name = args
    cache = DescriptionCache(disk=DiskDescriptionCache(cache_dir))
    compiled = cache.compiled(
        get_machine(machine_name), REP, STAGE, BITVECTOR
    )
    return mdes_size_bytes(compiled)


class TestConcurrentWriters:
    def test_racing_writers_leave_a_loadable_entry(self, tmp_path):
        """Atomic rename: whoever wins, the entry is never torn."""
        tasks = [(str(tmp_path), "SuperSPARC")] * 6
        with ProcessPoolExecutor(max_workers=3) as pool:
            sizes = list(pool.map(_publish_entry, tasks))
        assert len(set(sizes)) == 1
        assert not list(tmp_path.glob("*.tmp"))
        assert not list(tmp_path.glob("*.bad"))
        disk = DiskDescriptionCache(tmp_path)
        assert len(disk) == 1

        machine = get_machine("SuperSPARC")
        token = machine_content_token(machine)
        digest = description_digest(token, REP, STAGE, BITVECTOR, False)
        loaded = disk.load(machine.name, digest)
        assert loaded is not None
        assert mdes_size_bytes(loaded) == sizes[0]


class TestSnapshotSemantics:
    """``copy``/``since``/``reset`` treat the disk tier like the memory
    tier: snapshots freeze every counter, deltas window every counter,
    and reset is bookkeeping only -- the artifacts stay warm."""

    def test_since_windows_disk_counters(self, tmp_path):
        machine = get_machine("K5")
        cache = DescriptionCache(disk=DiskDescriptionCache(tmp_path))
        cache.compiled(machine, REP, STAGE, BITVECTOR)  # miss + store
        snapshot = cache.stats.copy()

        warm = DescriptionCache(disk=DiskDescriptionCache(tmp_path))
        warm.compiled(machine, REP, STAGE, BITVECTOR)
        warm_delta = warm.stats.since(CacheStats())
        assert warm_delta.disk_hits == 1
        assert warm_delta.disk_misses == 0

        # The first cache saw no disk activity since its snapshot.
        delta = cache.stats.since(snapshot)
        assert (delta.disk_hits, delta.disk_misses, delta.disk_stores) \
            == (0, 0, 0)
        # ... and an LRU hit moves only the memory tier of the window.
        cache.compiled(machine, REP, STAGE, BITVECTOR)
        delta = cache.stats.since(snapshot)
        assert delta.hits == 1
        assert (delta.disk_hits, delta.disk_misses) == (0, 0)

    def test_reset_zeroes_disk_counters_but_keeps_artifacts(self, tmp_path):
        machine = get_machine("K5")
        cache = DescriptionCache(disk=DiskDescriptionCache(tmp_path))
        cache.compiled(machine, REP, STAGE, BITVECTOR)
        assert cache.stats.disk_stores == 1
        held = cache.stats
        cache.clear()  # resets in place, drops only the memory entries
        assert held.disk_misses == 0 and held.disk_stores == 0
        assert held.disk_hits == 0 and held.disk_quarantined == 0
        # Reset is not invalidation: the artifact still disk-hits, and
        # the counter starts moving again from zero.
        cache.compiled(machine, REP, STAGE, BITVECTOR)
        assert held.disk_hits == 1 and held.disk_misses == 0

    def test_mdes_lookups_never_move_disk_counters(self, tmp_path):
        machine = get_machine("K5")
        cache = DescriptionCache(disk=DiskDescriptionCache(tmp_path))
        before = cache.stats.copy()
        cache.mdes(machine, REP, STAGE)
        delta = cache.stats.since(before)
        assert delta.misses == 1
        assert (delta.disk_hits, delta.disk_misses, delta.disk_stores,
                delta.disk_quarantined) == (0, 0, 0, 0)
        assert list(tmp_path.iterdir()) == []

    def test_quarantine_counts_inside_a_since_window(self, tmp_path):
        machine = get_machine("K5")
        DescriptionCache(
            disk=DiskDescriptionCache(tmp_path)
        ).compiled(machine, REP, STAGE, BITVECTOR)
        (entry,) = tmp_path.glob("*.lmdes.json")
        entry.write_text(entry.read_text()[:40])

        cache = DescriptionCache(disk=DiskDescriptionCache(tmp_path))
        before = cache.stats.copy()
        cache.compiled(machine, REP, STAGE, BITVECTOR)
        delta = cache.stats.since(before)
        assert delta.disk_quarantined == 1
        assert delta.disk_misses == 1
        assert delta.disk_stores == 1  # rebuilt and republished
