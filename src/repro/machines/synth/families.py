"""Structured synthetic machine families.

Where :mod:`repro.machines.synth.grammar` draws arbitrary legal
descriptions, this module draws *plausible* ones: parameterized
processor families in the mold of the paper's four hand-written
machines.  A :class:`FamilySpec` bounds the draw -- issue width, unit
pool sizes per kind, latency ranges, option-tree shape (AND/OR
dimensions vs. flat cross-product OR-trees), tree sharing, wrap mode --
and ``build_variant(spec, seed, index)`` samples one concrete machine
from those bounds under a deterministic stream, so variant ``i`` of a
seeded fleet is reproducible forever from its name alone.

The structure mirrors :mod:`repro.machines.vliw`: one *issue* OR-tree
(slot choice) shared by every class, per-kind unit OR-trees, and an
optional writeback-bus dimension, combined as AND/OR-trees whose
dimensions reserve disjoint resource groups -- the translator's
sibling-disjointness invariant holds by construction.  Flat families
(``superscalar-*``) instead enumerate the slot x unit cross product as
one OR-tree per class, the shape the paper's Pentium description has.

Every family deliberately plants transform fodder: a duplicated issue
option (redundancy elimination, the Table 8 story), an occasionally
dominated option (dominated-option removal), shuffled usage lists
(usage sorting), and an unused tree (dead-code removal) -- so a sweep's
per-variant ``options_delta`` columns are non-trivial across the whole
fleet.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.mdes import Mdes, OperationClass
from repro.core.resource import Resource, ResourceTable
from repro.core.tables import AndOrTree, Constraint, OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.hmdes.writer import write_mdes
from repro.machines.base import (
    KIND_BRANCH,
    KIND_FP,
    KIND_INT,
    KIND_LOAD,
    KIND_STORE,
    Machine,
    OpcodeSpec,
)
from repro.machines.synth.grammar import (
    DEFAULT_GRAMMAR,
    FuzzGrammar,
    build_machine as _grammar_build_machine,
    generate_mdes as _grammar_generate_mdes,
)

#: Registry-visible name prefix; ``synth:<family>:<seed>:<index>``.
SYNTH_PREFIX = "synth:"

#: Seed-stream namespace (bumping it would re-roll every fleet).
_STREAM = "repro.machines.synth"


@dataclass(frozen=True)
class FamilySpec:
    """Bounds one structured family's draw.

    ``(lo, hi)`` pairs are inclusive ranges sampled per variant.  A
    ``structure`` of ``"andor"`` builds one AND/OR dimension per
    resource group; ``"flat"`` enumerates the slot x unit cross
    product as flat OR-trees; ``"grammar"`` delegates to the
    unstructured :class:`~repro.machines.synth.grammar.FuzzGrammar`
    (the differential fuzzer's shapes, under the family namespace).
    """

    name: str
    description: str
    structure: str = "andor"
    issue_width: Tuple[int, int] = (2, 4)
    int_units: Tuple[int, int] = (1, 2)
    mem_units: Tuple[int, int] = (1, 1)
    fp_units: Tuple[int, int] = (0, 0)
    wb_buses: Tuple[int, int] = (0, 0)
    int_latency: Tuple[int, int] = (1, 2)
    mem_latency: Tuple[int, int] = (2, 3)
    fp_latency: Tuple[int, int] = (2, 4)
    branch_latency: int = 1
    early_read_probability: float = 0.0
    fp_blocking_probability: float = 0.0
    redundant_option_probability: float = 0.5
    dominated_option_probability: float = 0.35
    dead_tree_probability: float = 0.4
    extra_opcode_probability: float = 0.3
    max_flat_options: int = 12
    wrap: bool = False
    grammar: Optional[FuzzGrammar] = None
    block_size_range: Tuple[int, int] = (4, 12)
    flow_probability: float = 0.55

    def validate(self) -> None:
        if self.structure not in ("andor", "flat", "grammar"):
            raise ValueError(
                f"family {self.name!r}: unknown structure "
                f"{self.structure!r}"
            )
        for label, (lo, hi) in (
            ("issue_width", self.issue_width),
            ("int_units", self.int_units),
            ("mem_units", self.mem_units),
            ("fp_units", self.fp_units),
            ("wb_buses", self.wb_buses),
        ):
            if lo > hi or lo < 0:
                raise ValueError(
                    f"family {self.name!r}: bad {label} range ({lo}, {hi})"
                )


#: The named presets.  Ordered narrow -> wide -> exotic so listings read
#: like the paper's machine tables.
FAMILIES: Dict[str, FamilySpec] = {}


def _register(spec: FamilySpec) -> FamilySpec:
    spec.validate()
    FAMILIES[spec.name] = spec
    return spec


_register(FamilySpec(
    name="vliw-narrow",
    description="2-3 issue VLIW, AND/OR dimensions, short latencies",
    structure="andor",
    issue_width=(2, 3),
    int_units=(1, 2),
    mem_units=(1, 1),
    wb_buses=(0, 2),
))

_register(FamilySpec(
    name="vliw-wide",
    description="6-8 issue VLIW with FP pipes and writeback buses",
    structure="andor",
    issue_width=(6, 8),
    int_units=(2, 4),
    mem_units=(1, 2),
    fp_units=(1, 2),
    wb_buses=(2, 3),
    fp_latency=(2, 5),
))

_register(FamilySpec(
    name="superscalar-narrow",
    description="Pentium-shaped 2-issue pairing rules, flat OR-trees",
    structure="flat",
    issue_width=(2, 2),
    int_units=(1, 2),
    mem_units=(1, 1),
    int_latency=(1, 1),
    mem_latency=(1, 3),
    wrap=True,
))

_register(FamilySpec(
    name="superscalar-wide",
    description="4-6 issue superscalar, flat slot x unit cross products",
    structure="flat",
    issue_width=(4, 6),
    int_units=(2, 3),
    mem_units=(1, 2),
    fp_units=(0, 1),
    mem_latency=(2, 3),
    wrap=True,
))

_register(FamilySpec(
    name="cydra-like",
    description="Cydra-shaped wide VLIW: early reads, blocking FP pipes",
    structure="andor",
    issue_width=(4, 6),
    int_units=(2, 3),
    mem_units=(1, 2),
    fp_units=(1, 2),
    wb_buses=(1, 2),
    int_latency=(1, 2),
    mem_latency=(3, 5),
    fp_latency=(3, 6),
    early_read_probability=0.6,
    fp_blocking_probability=0.7,
))

_register(FamilySpec(
    name="fuzz-small",
    description="unstructured grammar draws (the differential fuzzer's)",
    structure="grammar",
    grammar=DEFAULT_GRAMMAR,
))


def family_names() -> Tuple[str, ...]:
    """Registered family preset names, in registration order."""
    return tuple(FAMILIES)


def get_family(name: str) -> FamilySpec:
    """Look up a preset; raises KeyError with the known names."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown synth family {name!r}; "
            f"available: {', '.join(FAMILIES)}"
        ) from None


# ----------------------------------------------------------------------
# Naming
# ----------------------------------------------------------------------


def machine_name(family: str, seed: int, index: int) -> str:
    """The registry name of one variant: ``synth:<family>:<seed>:<i>``."""
    return f"{SYNTH_PREFIX}{family}:{seed}:{index}"


def parse_name(name: str) -> Tuple[str, int, int]:
    """Split a ``synth:`` name; raises KeyError on malformed input.

    KeyError (not ValueError) so callers see the same exception type
    the machine registry raises for unknown names.
    """
    if not name.startswith(SYNTH_PREFIX):
        raise KeyError(f"not a synth machine name: {name!r}")
    parts = name[len(SYNTH_PREFIX):].rsplit(":", 2)
    if len(parts) != 3:
        raise KeyError(
            f"malformed synth name {name!r}; expected "
            "synth:<family>:<seed>:<index>"
        )
    family, seed_text, index_text = parts
    try:
        seed, index = int(seed_text), int(index_text)
    except ValueError:
        raise KeyError(
            f"malformed synth name {name!r}; seed and index must be "
            "integers"
        ) from None
    if index < 0:
        raise KeyError(f"synth index must be >= 0: {name!r}")
    return family, seed, index


def _mdes_name(family: str, seed: int, index: int) -> str:
    """The HMDES-identifier form of a variant name (no ``:`` / ``-``)."""
    safe = family.replace("-", "_")
    return f"Synth_{safe}_{seed}_{index}"


# ----------------------------------------------------------------------
# Structured generation
# ----------------------------------------------------------------------


def _issue_options(
    rng: random.Random, slots: List[Resource], spec: FamilySpec
) -> List[ReservationTable]:
    options = [
        ReservationTable((ResourceUsage(0, slot),)) for slot in slots
    ]
    if rng.random() < spec.redundant_option_probability:
        # A duplicated option: the PA7100's Table 8 memory-op bug,
        # reproduced on purpose so redundancy elimination has work.
        options.append(options[rng.randrange(len(options))])
    rng.shuffle(options)
    return options


def _unit_tree(
    rng: random.Random,
    units: List[Resource],
    busy: int,
    spec: FamilySpec,
) -> OrTree:
    """One execution-unit dimension: pick a unit, hold it ``busy`` cycles.

    Usage lists are emitted latest-cycle-first so the zero-first
    usage-sort transform always has fodder on multi-cycle units.
    """
    options = [
        ReservationTable(tuple(
            ResourceUsage(time, unit)
            for time in range(busy - 1, -1, -1)
        ))
        for unit in units
    ]
    if len(units) >= 2 and rng.random() < spec.dominated_option_probability:
        # A strict superset of option 0: dominated-option-removal fodder.
        extra = units[rng.randrange(1, len(units))]
        first = options[0]
        options.append(ReservationTable(
            first.usages + (ResourceUsage(0, extra),)
        ))
    rng.shuffle(options)
    return OrTree(tuple(options))


def _flat_class_tree(
    rng: random.Random,
    slots: List[Resource],
    units: List[Resource],
    busy: int,
    spec: FamilySpec,
) -> OrTree:
    """Flat slot x unit cross product, capped and shuffled."""
    options: List[ReservationTable] = []
    for slot in slots:
        for unit in units:
            usages = [ResourceUsage(0, slot)]
            usages.extend(
                ResourceUsage(time, unit)
                for time in range(busy - 1, -1, -1)
            )
            options.append(ReservationTable(tuple(usages)))
    rng.shuffle(options)
    options = options[: spec.max_flat_options]
    if rng.random() < spec.redundant_option_probability:
        options.append(options[rng.randrange(len(options))])
    if rng.random() < spec.dominated_option_probability:
        first = options[0]
        spare = rng.choice(units)
        options.append(ReservationTable(
            first.usages + (ResourceUsage(1, spare),)
        ))
    return OrTree(tuple(options))


def _draw(rng: random.Random, bounds: Tuple[int, int]) -> int:
    return rng.randint(bounds[0], bounds[1])


def _structured_mdes(
    rng: random.Random, name: str, spec: FamilySpec
) -> Tuple[Mdes, Dict[str, str]]:
    """One structured draw; returns (mdes, opcode -> kind map)."""
    width = _draw(rng, spec.issue_width)
    n_int = max(1, _draw(rng, spec.int_units))
    n_mem = max(1, _draw(rng, spec.mem_units))
    n_fp = _draw(rng, spec.fp_units)
    n_wb = _draw(rng, spec.wb_buses) if spec.structure == "andor" else 0

    resources = ResourceTable()
    slots = resources.declare_many([f"Slot{i}" for i in range(width)])
    ints = resources.declare_many([f"IALU{i}" for i in range(n_int)])
    mems = resources.declare_many([f"MEM{i}" for i in range(n_mem)])
    fps = resources.declare_many([f"FPU{i}" for i in range(n_fp)])
    wbs = resources.declare_many([f"WB{i}" for i in range(n_wb)])
    branch_unit = resources.declare_many(["BRU"])

    int_lat = _draw(rng, spec.int_latency)
    mem_lat = _draw(rng, spec.mem_latency)
    fp_lat = _draw(rng, spec.fp_latency)
    fp_busy = (
        fp_lat if rng.random() < spec.fp_blocking_probability else 1
    )
    read = -1 if rng.random() < spec.early_read_probability else 0

    def constraint(units: List[Resource], busy: int) -> Constraint:
        if spec.structure == "flat":
            return _flat_class_tree(rng, slots, units, busy, spec)
        issue = OrTree(tuple(_issue_options(rng, slots, spec)))
        dims: List[OrTree] = [issue, _unit_tree(rng, units, busy, spec)]
        if wbs:
            dims.append(OrTree(tuple(
                ReservationTable((ResourceUsage(1, wb),)) for wb in wbs
            )))
        return AndOrTree(tuple(dims))

    op_classes: Dict[str, OperationClass] = {
        "IntOp": OperationClass(
            name="IntOp", constraint=constraint(ints, 1),
            latency=int_lat, read_time=read,
        ),
        "MemLoad": OperationClass(
            name="MemLoad", constraint=constraint(mems, 1),
            latency=mem_lat, read_time=read,
        ),
        "MemStore": OperationClass(
            name="MemStore", constraint=constraint(mems, 1),
            latency=1, read_time=read,
        ),
        "Branch": OperationClass(
            name="Branch", constraint=constraint(branch_unit, 1),
            latency=spec.branch_latency, read_time=0,
        ),
    }
    kinds = {
        "IADD": KIND_INT, "LD": KIND_LOAD, "ST": KIND_STORE,
        "BR": KIND_BRANCH,
    }
    opcode_map = {
        "IADD": "IntOp", "LD": "MemLoad", "ST": "MemStore",
        "BR": "Branch",
    }
    if fps:
        op_classes["FpOp"] = OperationClass(
            name="FpOp", constraint=constraint(fps, fp_busy),
            latency=fp_lat, read_time=read,
        )
        opcode_map["FADD"] = "FpOp"
        kinds["FADD"] = KIND_FP
    extras = {"IMUL": "IntOp", "LDX": "MemLoad", "FMUL": "FpOp"}
    for opcode, class_name in extras.items():
        if class_name in op_classes and (
            rng.random() < spec.extra_opcode_probability
        ):
            opcode_map[opcode] = class_name
            kinds[opcode] = kinds[
                {"IntOp": "IADD", "MemLoad": "LD", "FpOp": "FADD"}[
                    class_name
                ]
            ]

    unused: Dict[str, Constraint] = {}
    if rng.random() < spec.dead_tree_probability:
        unused["OT_dead"] = OrTree(tuple(
            ReservationTable((ResourceUsage(0, slot),)) for slot in slots
        ))

    mdes = Mdes(
        name=name,
        resources=resources,
        op_classes=op_classes,
        opcode_map=opcode_map,
        unused_trees=unused,
    )
    mdes.validate()
    return mdes, kinds


def _structured_profile(
    rng: random.Random, mdes: Mdes, kinds: Dict[str, str]
) -> Tuple[OpcodeSpec, ...]:
    specs: List[OpcodeSpec] = []
    for opcode in mdes.opcode_map:
        kind = kinds[opcode]
        if kind == KIND_BRANCH:
            specs.append(OpcodeSpec(
                opcode, 1.0, src_choices=(1,), has_dest=False, kind=kind,
            ))
        elif kind == KIND_STORE:
            specs.append(OpcodeSpec(
                opcode, rng.uniform(0.6, 1.2), src_choices=(2,),
                has_dest=False, kind=kind,
            ))
        else:
            weight = {
                KIND_INT: rng.uniform(2.0, 4.0),
                KIND_LOAD: rng.uniform(1.0, 2.0),
                KIND_FP: rng.uniform(0.4, 1.2),
            }.get(kind, 1.0)
            specs.append(OpcodeSpec(
                opcode, weight, src_choices=(1, 2), has_dest=True,
                kind=kind,
            ))
    return tuple(specs)


# ----------------------------------------------------------------------
# Variant construction
# ----------------------------------------------------------------------


def build_variant(family: str, seed: int, index: int) -> Machine:
    """Deterministically build variant ``index`` of a seeded fleet.

    The same ``(family, seed, index)`` triple always yields a machine
    with byte-identical HMDES source, so content tokens match across
    processes -- which is what lets batch-pool workers and the server
    rebuild a synth machine from its registry name alone.
    """
    spec = get_family(family)
    rng = random.Random(f"{_STREAM}:{family}:{seed}:{index}")
    public = machine_name(family, seed, index)
    internal = _mdes_name(family, seed, index)

    if spec.structure == "grammar":
        grammar = spec.grammar or DEFAULT_GRAMMAR
        mdes = _grammar_generate_mdes(rng, internal, grammar)
        machine = _grammar_build_machine(mdes, rng, grammar)
        machine.name = public
        return machine

    mdes, kinds = _structured_mdes(rng, internal, spec)
    opcode_map = dict(mdes.opcode_map)

    def classify(op, cascaded: bool) -> str:
        return opcode_map[op.opcode]

    return Machine(
        name=public,
        hmdes_source=write_mdes(mdes),
        opcode_profile=_structured_profile(rng, mdes, kinds),
        classifier=classify,
        scheduling_mode="prepass",
        block_size_range=spec.block_size_range,
        flow_probability=spec.flow_probability,
        wrap_or_trees=spec.wrap,
    )


def fleet_names(family: str, seed: int, count: int) -> Tuple[str, ...]:
    """The registry names of one seeded fleet, in index order."""
    get_family(family)
    return tuple(machine_name(family, seed, i) for i in range(count))


def describe_complexity(machine: Machine) -> Dict[str, int]:
    """Size axes of one description, for effectiveness-vs-complexity.

    The stored/flat option and usage counts are the paper's Table 6
    size columns, measured on the description *as written* (stage 0) --
    the x-axis a sweep plots transform effect columns against.
    """
    mdes = machine.build()
    options = 0
    usages = 0
    for tree in mdes.or_trees():
        for option in tree.options:
            options += 1
            usages += len(option.usages)
    return {
        "resources": len(mdes.resources),
        "classes": len(mdes.op_classes),
        "opcodes": len(mdes.opcode_map),
        "stored_options": options,
        "stored_usages": usages,
        "flat_options": mdes.expanded().stored_option_count(),
    }


__all__ = [
    "FAMILIES",
    "FamilySpec",
    "SYNTH_PREFIX",
    "build_variant",
    "describe_complexity",
    "family_names",
    "fleet_names",
    "get_family",
    "machine_name",
    "parse_name",
]
