"""Per-machine invariants: the option counts of Tables 1-4 are exact."""

import pytest

from repro.ir.operation import Operation
from repro.machines import MACHINE_NAMES, get_machine

#: Exact option counts per class, straight from the paper's tables.
TABLE1_SUPERSPARC = {
    "branch": 1, "serial": 1, "imul": 1, "idiv": 1,
    "fp_alu": 3, "fp_mul": 3, "fp_div": 3,
    "load": 6, "store": 12,
    "shift_1src": 24, "cascade_1src": 24,
    "shift_2src": 36, "cascade_2src": 36,
    "ialu_1src": 48, "ialu_2src": 72,
}

TABLE2_PA7100 = {
    "branch": 1, "branch_n": 1,
    "int": 2, "smu": 2,
    "fp_alu": 2, "fp_mul": 2, "fp_dbl": 2, "fp_div": 2,
    # Memory classes include the duplicated option (Table 8).
    "load": 3, "load_x": 3, "store": 3, "store_x": 3,
}

TABLE3_PENTIUM = {
    "alu_uv": 2, "mov_uv": 2, "load_uv": 2, "store_uv": 2, "alu_mem": 2,
    "shift_u": 1, "np": 1, "np_string": 1, "imul": 1, "cmp_br": 1,
    "jmp_v": 1, "fp": 1, "fxch_v": 1,
}

TABLE4_K5 = {
    "branch": 16, "store": 16, "push": 24,
    "alu": 32, "shift": 32, "test": 32, "mov": 32, "lea": 32,
    "load": 32,
    "cmp_br_1cyc": 48, "cmp_br_3rop_1cyc": 64, "alu_mem_1cyc": 96,
    "cmp_br_2cyc": 128, "two_rop_2cyc_subset": 192, "two_rop_2cyc": 256,
    "cmp_br_3rop_2cyc": 384, "three_rop_2cyc": 768,
}

EXPECTED = {
    "SuperSPARC": TABLE1_SUPERSPARC,
    "PA7100": TABLE2_PA7100,
    "Pentium": TABLE3_PENTIUM,
    "K5": TABLE4_K5,
}


class TestOptionCounts:
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_exact_table_counts(self, machine_name):
        mdes = get_machine(machine_name).build()
        counts = {
            name: op_class.option_count()
            for name, op_class in mdes.op_classes.items()
        }
        assert counts == EXPECTED[machine_name]


class TestMachineStructure:
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_description_validates(self, machine_name):
        get_machine(machine_name).build().validate()

    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_every_profile_opcode_is_mapped(self, machine_name):
        machine = get_machine(machine_name)
        mdes = machine.build()
        for spec in machine.opcode_profile:
            assert spec.opcode in mdes.opcode_map, spec.opcode

    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_classify_returns_known_classes(self, machine_name):
        machine = get_machine(machine_name)
        mdes = machine.build()
        for spec in machine.opcode_profile:
            for srcs in spec.src_choices:
                op = Operation(
                    0,
                    spec.opcode,
                    ("d0",) if spec.has_dest else (),
                    tuple(f"s{i}" for i in range(srcs)),
                )
                assert machine.classify(op, False) in mdes.op_classes

    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_latency_positive(self, machine_name):
        machine = get_machine(machine_name)
        for spec in machine.opcode_profile:
            op = Operation(0, spec.opcode, ("d",), ("s",))
            assert machine.latency(op) >= 1

    def test_build_is_cached(self):
        machine = get_machine("SuperSPARC")
        assert machine.build() is machine.build()

    def test_fresh_mdes_is_new_object(self):
        machine = get_machine("SuperSPARC")
        assert machine.fresh_mdes() is not machine.build()

    def test_registry_unknown_name(self):
        with pytest.raises(KeyError):
            get_machine("i860")


class TestSuperSparcSpecifics:
    def test_cascade_rules(self):
        machine = get_machine("SuperSPARC")
        ialu = Operation(0, "ADD", ("r1",), ("r2",))
        shift = Operation(1, "SLL", ("r3",), ("r1",))
        load = Operation(2, "LD", ("r4",), ("r1",), is_load=True)
        assert machine.cascade_ok(ialu, ialu)
        assert not machine.cascade_ok(shift, ialu)
        assert not machine.cascade_ok(ialu, shift)
        assert not machine.cascade_ok(load, ialu)

    def test_classify_source_count_variants(self):
        machine = get_machine("SuperSPARC")
        one_src = Operation(0, "ADD", ("r1",), ("r2",))
        two_src = Operation(0, "ADD", ("r1",), ("r2", "r3"))
        assert machine.classify(one_src, False) == "ialu_1src"
        assert machine.classify(two_src, False) == "ialu_2src"
        assert machine.classify(one_src, True) == "cascade_1src"
        assert machine.classify(two_src, True) == "cascade_2src"

    def test_cascaded_class_has_half_the_options(self):
        mdes = get_machine("SuperSPARC").build()
        assert (
            mdes.op_class("cascade_2src").option_count() * 2
            == mdes.op_class("ialu_2src").option_count()
        )

    def test_branch_uses_last_decoder_only(self):
        mdes = get_machine("SuperSPARC").build()
        branch = mdes.op_class("branch").constraint
        usages = branch.options[0].usages
        decoder_usages = [
            u for u in usages if u.resource.name.startswith("Decoder")
        ]
        assert [u.resource.name for u in decoder_usages] == ["Decoder[2]"]


class TestPentiumSpecifics:
    def test_wrap_flag_set(self):
        assert get_machine("Pentium").wrap_or_trees

    def test_andor_form_wraps_or_trees(self):
        from repro.core.tables import AndOrTree

        mdes = get_machine("Pentium").build_andor()
        for op_class in mdes.op_classes.values():
            assert isinstance(op_class.constraint, AndOrTree)
            assert len(op_class.constraint) == 1

    def test_andor_form_is_larger(self):
        """Table 6 footnote: the Pentium pays for the AND level."""
        from repro.lowlevel.compiled import compile_mdes
        from repro.lowlevel.layout import mdes_size_bytes

        machine = get_machine("Pentium")
        or_size = mdes_size_bytes(compile_mdes(machine.build_or()))
        andor_size = mdes_size_bytes(compile_mdes(machine.build_andor()))
        assert andor_size > or_size


class TestK5Specifics:
    def test_option_products_compose_from_subtrees(self):
        mdes = get_machine("K5").build()
        rmw = mdes.op_class("three_rop_2cyc").constraint
        assert [len(t) for t in rmw.or_trees] == [4, 6, 4, 2, 2, 2]

    def test_two_cycle_dispatch_uses_slot_times_0_and_1(self):
        mdes = get_machine("K5").build()
        tree = mdes.op_class("two_rop_2cyc").constraint
        times = sorted(
            {
                usage.time
                for or_tree in tree.or_trees
                for option in or_tree.options
                for usage in option.usages
                if usage.resource.name.startswith("S")
            }
        )
        assert times == [0, 1]
