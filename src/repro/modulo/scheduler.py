"""The iterative modulo scheduler.

Implements Rau's algorithm on top of the library's reservation-table
machinery: a *modulo reservation table* (an RU map indexed modulo the
initiation interval), slot search within one II window, and -- the part
that motivates reservation tables over automata (paper section 10) --
forced placement with *unscheduling*: when no slot is free, the operation
is placed anyway and every operation whose reservations or dependences it
tramples is evicted (``ConstraintChecker.release``) and rescheduled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.base import QueryEngine, Reservation
from repro.engine.table import TableEngine
from repro.errors import SchedulingError
from repro.lowlevel.checker import CheckStats
from repro.lowlevel.compiled import CompiledMdes
from repro.modulo.loop import Loop, LoopEdge

__all__ = [
    "ModuloRUMap",  # deprecated shim; lives in repro.lowlevel.bitvector
    "ModuloSchedule",
    "minimum_initiation_interval",
    "modulo_schedule",
]


def __getattr__(name):
    # Legacy import site: ModuloRUMap moved to repro.lowlevel.bitvector
    # (PR 1).  Served through a warning shim so downstream imports keep
    # working one more cycle before the alias is dropped.
    if name == "ModuloRUMap":
        from repro._compat import deprecated_reexport
        from repro.lowlevel.bitvector import ModuloRUMap

        return deprecated_reexport(
            __name__, name, "repro.lowlevel.bitvector", ModuloRUMap
        )
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


@dataclass
class ModuloSchedule:
    """A successful software pipeline."""

    loop: Loop
    ii: int
    times: Dict[int, int]
    stats: CheckStats
    evictions: int

    def validate(self) -> None:
        """Recheck every dependence: t_succ >= t_pred + lat - II*dist."""
        for edge in self.loop.edges:
            lower = self.times[edge.pred] + edge.latency \
                - self.ii * edge.distance
            if self.times[edge.succ] < lower:
                raise SchedulingError(
                    f"modulo schedule violates {edge}: "
                    f"{self.times[edge.succ]} < {lower}"
                )

    def __repr__(self) -> str:
        return (
            f"ModuloSchedule(II={self.ii}, {len(self.times)} ops, "
            f"{self.evictions} evictions)"
        )


# ----------------------------------------------------------------------
# Lower bounds
# ----------------------------------------------------------------------

def _resource_mii(loop: Loop, machine, source) -> int:
    """ResMII: demand over capacity per alternative pool.

    Each OR-tree defines a pool of interchangeable resources; its
    capacity is how many of its options can hold resources concurrently
    (total pool bits over bits per option).  An operation demands one
    slot of the pool per cycle its (first) option occupies it.  The
    bound is the classic ``max over pools ceil(demand / capacity)``.
    """
    from repro.lowlevel.compiled import CompiledAndOrTree

    demand: Dict[int, int] = {}
    capacity: Dict[int, int] = {}
    for op in loop.operations:
        constraint = source.constraint_for_class(
            machine.classify(op, False)
        )
        or_trees = (
            constraint.or_trees
            if isinstance(constraint, CompiledAndOrTree)
            else (constraint,)
        )
        for or_tree in or_trees:
            pool_mask = 0
            for option in or_tree.options:
                for _, mask in option.reserve_mask_by_time:
                    pool_mask |= mask
            first = or_tree.options[0]
            bits_per_option = max(
                1,
                sum(
                    bin(mask).count("1")
                    for _, mask in first.reserve_mask_by_time
                ) // max(1, len(first.reserve_mask_by_time)),
            )
            pool_capacity = max(
                1, bin(pool_mask).count("1") // bits_per_option
            )
            demand[pool_mask] = demand.get(pool_mask, 0) + len(
                first.reserve_mask_by_time
            )
            capacity[pool_mask] = pool_capacity
    best = 1
    for pool_mask, pool_demand in demand.items():
        pool_capacity = capacity[pool_mask]
        best = max(best, -(-pool_demand // pool_capacity))
    return best


def _has_positive_cycle(loop: Loop, ii: int) -> bool:
    """Whether some dependence cycle needs more than ``ii`` cycles/iter."""
    n = len(loop.operations)
    NEG = float("-inf")
    dist = [[NEG] * n for _ in range(n)]
    for edge in loop.edges:
        weight = edge.latency - ii * edge.distance
        if weight > dist[edge.pred][edge.succ]:
            dist[edge.pred][edge.succ] = weight
    for k in range(n):
        for i in range(n):
            dik = dist[i][k]
            if dik == NEG:
                continue
            row_k = dist[k]
            row_i = dist[i]
            for j in range(n):
                candidate = dik + row_k[j]
                if candidate > row_i[j]:
                    row_i[j] = candidate
    return any(dist[i][i] > 0 for i in range(n))


def _recurrence_mii(loop: Loop) -> int:
    ii = 1
    while _has_positive_cycle(loop, ii):
        ii += 1
        if ii > 1 + sum(edge.latency for edge in loop.edges):
            raise SchedulingError("dependence cycle with zero distance")
    return ii


def minimum_initiation_interval(
    loop: Loop, machine, source
) -> Tuple[int, int]:
    """(ResMII, RecMII) lower bounds.

    ``source`` is anything exposing ``constraint_for_class`` -- a
    compiled MDES or a query engine.
    """
    return _resource_mii(loop, machine, source), _recurrence_mii(loop)


# ----------------------------------------------------------------------
# The iterative scheduler
# ----------------------------------------------------------------------

def _heights(loop: Loop) -> Dict[int, int]:
    """Priority: latency-weighted height over distance-0 edges."""
    order = sorted(range(len(loop.operations)), reverse=True)
    heights = {index: 0 for index in order}
    intra = [edge for edge in loop.edges if edge.distance == 0]
    # Distance-0 edges always point forward in our loop bodies.
    for index in order:
        for edge in intra:
            if edge.pred == index:
                heights[index] = max(
                    heights[index], edge.latency + heights[edge.succ]
                )
    return heights


def _overlaps(handle: Reservation, other: Reservation,
              ii: int) -> bool:
    for cycle_a, mask_a in handle:
        for cycle_b, mask_b in other:
            if cycle_a % ii == cycle_b % ii and mask_a & mask_b:
                return True
    return False


def _try_schedule_at_ii(
    loop: Loop, machine, engine: QueryEngine, ii: int, budget: int
) -> Optional[ModuloSchedule]:
    mrt = engine.new_state(ii=ii)
    stats_before = engine.stats.copy()
    heights = _heights(loop)
    preds: Dict[int, List[LoopEdge]] = {}
    succs: Dict[int, List[LoopEdge]] = {}
    for edge in loop.edges:
        preds.setdefault(edge.succ, []).append(edge)
        succs.setdefault(edge.pred, []).append(edge)

    times: Dict[int, int] = {}
    handles: Dict[int, Reservation] = {}
    previous_time: Dict[int, int] = {}
    evictions = 0

    def unschedule(index: int) -> None:
        engine.release(handles.pop(index))
        previous_time[index] = times.pop(index)

    def earliest_start(index: int) -> int:
        est = 0
        for edge in preds.get(index, []):
            if edge.pred in times:
                est = max(
                    est,
                    times[edge.pred] + edge.latency - ii * edge.distance,
                )
        return est

    pending = sorted(
        range(len(loop.operations)),
        key=lambda index: (-heights[index], index),
    )
    steps = 0
    while pending:
        steps += 1
        if steps > budget:
            return None
        index = pending.pop(0)
        op = loop.operations[index]
        class_name = machine.classify(op, False)
        constraint = engine.constraint_for_class(class_name)
        est = earliest_start(index)
        if index in previous_time:
            est = max(est, previous_time[index] + 1)

        # One batched probe over the II window: every distinct modulo
        # slot reachable from ``est`` in one pass.
        handle = engine.try_reserve_many(
            mrt, class_name, range(est, est + ii)
        )
        if handle is not None:
            times[index] = handle.cycle

        if handle is None:
            # Forced placement: evict whatever stands at ``est``.
            forced = est
            desired = _first_choice_reservations(constraint, forced)
            for other in [i for i in list(times) if i != index]:
                if _overlaps(handles[other], desired, ii):
                    unschedule(other)
                    pending.append(other)
                    evictions += 1
            handle = engine.try_reserve(mrt, class_name, forced)
            if handle is None:
                # Residual interference through a non-first option:
                # evict everything sharing a resource with this class.
                resources = _constraint_mask(constraint)
                for other in [i for i in list(times) if i != index]:
                    if any(mask & resources for _, mask in handles[other]):
                        unschedule(other)
                        pending.append(other)
                        evictions += 1
                handle = engine.try_reserve(mrt, class_name, forced)
            if handle is None:
                return None
            times[index] = forced

        handles[index] = handle

        # Evict scheduled successors whose dependence is now violated.
        for edge in succs.get(index, []):
            if edge.succ in times and edge.succ != index:
                lower = times[index] + edge.latency - ii * edge.distance
                if times[edge.succ] < lower:
                    unschedule(edge.succ)
                    pending.append(edge.succ)
                    evictions += 1
        pending.sort(key=lambda i: (-heights[i], i))

    schedule = ModuloSchedule(
        loop, ii, dict(times), engine.stats.since(stats_before), evictions
    )
    schedule.validate()
    return schedule


def _first_choice_reservations(constraint, issue_cycle: int):
    from repro.lowlevel.compiled import CompiledAndOrTree

    or_trees = (
        constraint.or_trees
        if isinstance(constraint, CompiledAndOrTree)
        else (constraint,)
    )
    pairs = []
    for or_tree in or_trees:
        for time, mask in or_tree.options[0].reserve_mask_by_time:
            pairs.append((issue_cycle + time, mask))
    return tuple(pairs)


def _constraint_mask(constraint) -> int:
    from repro.lowlevel.compiled import CompiledAndOrTree

    or_trees = (
        constraint.or_trees
        if isinstance(constraint, CompiledAndOrTree)
        else (constraint,)
    )
    combined = 0
    for or_tree in or_trees:
        for option in or_tree.options:
            for _, mask in option.reserve_mask_by_time:
                combined |= mask
    return combined


def modulo_schedule(
    loop: Loop,
    machine,
    compiled: Optional[CompiledMdes] = None,
    max_ii: int = 64,
    budget_ratio: int = 16,
    engine: Optional[QueryEngine] = None,
) -> ModuloSchedule:
    """Software pipeline a loop: search IIs upward from the lower bound.

    Runs against any query engine that supports modulo-wrapped state;
    backends that cannot release or wrap reservations (the automaton)
    raise :class:`SchedulingError` from ``engine.new_state`` -- the
    section 10 capability gap, surfaced as a typed error.
    """
    from repro import obs

    if engine is None:
        if compiled is None:
            raise SchedulingError(
                "modulo_schedule needs a compiled MDES or an engine"
            )
        engine = TableEngine(compiled)
    schedule = None
    with obs.span(
        "schedule:modulo", machine=machine.name, backend=engine.name,
        ops=len(loop.operations),
    ) as span:
        res_mii, rec_mii = minimum_initiation_interval(
            loop, machine, engine
        )
        budget = budget_ratio * max(1, len(loop.operations))
        for ii in range(max(res_mii, rec_mii), max_ii + 1):
            schedule = _try_schedule_at_ii(loop, machine, engine, ii, budget)
            if schedule is not None:
                span.set(ii=ii, res_mii=res_mii, rec_mii=rec_mii)
                break
    if schedule is not None:
        if obs.enabled():
            obs.observe(
                "repro_schedule_seconds", span.seconds,
                help="Wall seconds per workload scheduling run.",
                scheduler="modulo", backend=engine.name,
            )
        return schedule
    raise SchedulingError(
        f"no modulo schedule found up to II={max_ii} "
        f"(ResMII={res_mii}, RecMII={rec_mii})"
    )
