"""Tests for common-usage factoring (section 8)."""

from repro.core.expand import expand_to_or_tree
from repro.core.tables import AndOrTree, OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.transforms.factor import factor_and_or_tree, factor_common_usages


def u(resource, time):
    return ResourceUsage(time, resource)


def make_tree(resources, with_one_option_sibling):
    """An AND/OR-tree whose second OR-tree has a common usage (M@0)."""
    m = resources.lookup("M")
    d0, d1 = resources.lookup("D0"), resources.lookup("D1")
    w0 = resources.lookup("W0")
    source = OrTree(
        (
            ReservationTable((u(d0, -1), u(m, 0))),
            ReservationTable((u(d1, -1), u(m, 0))),
        ),
        name="src",
    )
    children = [source]
    if with_one_option_sibling:
        children.insert(0, OrTree((ReservationTable((u(w0, 0),)),),
                                  name="sib"))
    return AndOrTree(tuple(children), name="AOT")


class TestFactorAndOrTree:
    def test_rule1_merge_into_same_time_sibling(self, resources):
        tree = make_tree(resources, with_one_option_sibling=True)
        factored = factor_and_or_tree(tree)
        sibling = factored.or_trees[0]
        assert len(sibling) == 1
        names = {usage.resource.name for usage in sibling.options[0]}
        assert names == {"W0", "M"}
        source = factored.or_trees[1]
        for option in source.options:
            assert all(usage.resource.name != "M" for usage in option)

    def test_rule2_new_tree_when_sole_usage_at_time(self, resources):
        tree = make_tree(resources, with_one_option_sibling=False)
        factored = factor_and_or_tree(tree)
        # M@0 is the only usage at time 0 in each option -> new tree.
        assert len(factored) == 2
        new_tree = factored.or_trees[-1]
        assert len(new_tree) == 1
        assert new_tree.options[0].usages[0].resource.name == "M"

    def test_rule2_suppressed_when_not_sole(self, resources):
        m = resources.lookup("M")
        d0, d1 = resources.lookup("D0"), resources.lookup("D1")
        source = OrTree(
            (
                ReservationTable((u(d0, 0), u(m, 0))),
                ReservationTable((u(d1, 0), u(m, 0))),
            )
        )
        tree = AndOrTree((source,))
        factored = factor_and_or_tree(tree)
        assert factored is tree  # heuristics forbid the hoist

    def test_semantics_preserved(self, resources):
        tree = make_tree(resources, with_one_option_sibling=True)
        factored = factor_and_or_tree(tree)
        original_flat = {
            option.usage_set
            for option in expand_to_or_tree(tree).options
        }
        factored_flat = {
            option.usage_set
            for option in expand_to_or_tree(factored).options
        }
        assert original_flat == factored_flat

    def test_never_empties_an_option(self, resources):
        m = resources.lookup("M")
        w0 = resources.lookup("W0")
        source = OrTree(
            (
                ReservationTable((u(m, 0),)),
                ReservationTable((u(m, 0), u(w0, 0))),
            )
        )
        tree = AndOrTree((source,))
        factored = factor_and_or_tree(tree)
        for or_tree in factored.or_trees:
            for option in or_tree.options:
                assert len(option) >= 1


class TestFactorMdes:
    def test_or_constraints_untouched_by_default(self, toy_mdes):
        flat = toy_mdes.expanded()
        result = factor_common_usages(flat)
        assert result.op_class("load").constraint is flat.op_class(
            "load"
        ).constraint

    def test_convert_or_trees_creates_structure(self, toy_mdes):
        flat = toy_mdes.expanded()
        result = factor_common_usages(flat, convert_or_trees=True)
        constraint = result.op_class("load").constraint
        # M@0 is common to all four flat options -> factored out.
        assert isinstance(constraint, AndOrTree)
        assert len(constraint) == 2

    def test_schedule_preserved(self, small_suite):
        assert small_suite.verify_schedule_invariance("Pentium")
