"""Machine registry: look up the paper's four processors by name."""

from __future__ import annotations

from typing import Callable, Dict

from repro.machines.base import Machine

#: Canonical machine names, in the order the paper's tables list them.
MACHINE_NAMES = ("PA7100", "Pentium", "SuperSPARC", "K5")

#: Additional targets beyond the paper's evaluation (retargeting demos).
EXTRA_MACHINE_NAMES = ("Cydra_lite",)

_BUILDERS: Dict[str, Callable[[], Machine]] = {}
_CACHE: Dict[str, Machine] = {}


def _builders() -> Dict[str, Callable[[], Machine]]:
    if not _BUILDERS:
        from repro.machines import amdk5, pa7100, pentium, supersparc, vliw

        _BUILDERS.update(
            {
                "PA7100": pa7100.build_machine,
                "Pentium": pentium.build_machine,
                "SuperSPARC": supersparc.build_machine,
                "K5": amdk5.build_machine,
                "Cydra_lite": vliw.build_machine,
            }
        )
    return _BUILDERS


def get_machine(name: str) -> Machine:
    """Return the named machine (cached); raises KeyError for unknowns."""
    builders = _builders()
    if name not in builders:
        available = ", ".join(MACHINE_NAMES + EXTRA_MACHINE_NAMES)
        raise KeyError(
            f"unknown machine {name!r}; available: {available}"
        )
    if name not in _CACHE:
        _CACHE[name] = builders[name]()
    return _CACHE[name]
