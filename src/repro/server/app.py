"""The ASGI application: routing, error mapping, request telemetry.

A deliberately small, dependency-free ASGI 3 implementation: the app is
``async def __call__(scope, receive, send)`` and nothing more, so it
runs identically under the in-process test client
(:mod:`repro.server.testing`), the stdlib socket host
(:mod:`repro.server.http`), or any external ASGI server a deployment
already has.

Error mapping is the error taxonomy itself: every exception carries an
``http_status`` (:func:`repro.errors.http_status_for`), backpressure
verdicts add a ``Retry-After`` header, and the JSON error body names
the exception type so clients can switch on it without parsing
messages.

Each request emits one ``server:request`` span -- built as a plain
span dict and grafted with :func:`repro.obs.attach` (never an active
context-manager span: handler awaits interleave on the loop thread, so
nesting through the tracer's thread-local stack would braid concurrent
requests together).  The batch run's own captured spans hang beneath
it, so a trace shows ``server:request -> service:batch -> ...`` per
request.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.errors import (
    BackpressureError,
    RequestError,
    http_status_for,
)
from repro.server.lifecycle import ServerConfig, ServerState
from repro.server.models import decode_batch_request, decode_schedule_request

_JSON = [(b"content-type", b"application/json")]
_TEXT = [(b"content-type", b"text/plain; version=0.0.4; charset=utf-8")]


class App:
    """The scheduling service as an ASGI 3 callable."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.state = ServerState(config)

    # ------------------------------------------------------------------
    # ASGI entry
    # ------------------------------------------------------------------

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            raise RuntimeError(f"unsupported scope type {scope['type']!r}")
        await self._http(scope, receive, send)

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                try:
                    await self.state.startup()
                except Exception as exc:  # pragma: no cover - config bug
                    await send({
                        "type": "lifespan.startup.failed",
                        "message": str(exc),
                    })
                    return
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await self.state.shutdown()
                await send({"type": "lifespan.shutdown.complete"})
                return

    # ------------------------------------------------------------------
    # HTTP dispatch
    # ------------------------------------------------------------------

    async def _http(self, scope, receive, send) -> None:
        method = scope["method"].upper()
        path = scope["path"].rstrip("/") or "/"
        started = time.perf_counter()
        start_ts = time.time()
        status, headers, body, attrs = await self._dispatch(
            method, path, receive
        )
        seconds = time.perf_counter() - started
        self._observe(method, path, status, seconds, start_ts, attrs)
        await send({
            "type": "http.response.start",
            "status": status,
            "headers": headers,
        })
        await send({"type": "http.response.body", "body": body})

    async def _dispatch(
        self, method: str, path: str, receive,
    ) -> Tuple[int, list, bytes, Dict[str, Any]]:
        """Route and execute; returns (status, headers, body, span attrs)."""
        attrs: Dict[str, Any] = {}
        try:
            if path == "/healthz" and method == "GET":
                payload = self.state.health()
                status = 200 if payload["status"] == "ok" else 503
                return status, list(_JSON), _dumps(payload), attrs
            if path == "/metrics" and method == "GET":
                text = obs.to_prometheus(obs.REGISTRY)
                return 200, list(_TEXT), text.encode(), attrs
            if path == "/v1/machines" and method == "GET":
                return 200, list(_JSON), _dumps(self.state.machines()), attrs
            if path == "/v1/engines" and method == "GET":
                return 200, list(_JSON), _dumps(self.state.engines()), attrs
            if path == "/v1/schedule" and method == "POST":
                return await self._schedule(receive, attrs)
            if path == "/v1/schedule/batch" and method == "POST":
                return await self._schedule_batch(receive, attrs)
            if path in (
                "/healthz", "/metrics", "/v1/machines", "/v1/engines",
                "/v1/schedule", "/v1/schedule/batch",
            ):
                return 405, list(_JSON), _dumps({
                    "error": "MethodNotAllowed",
                    "message": f"{method} is not supported on {path}",
                }), attrs
            return 404, list(_JSON), _dumps({
                "error": "NotFound",
                "message": f"no route for {path}",
            }), attrs
        except Exception as exc:
            return self._error(exc, attrs)

    async def _schedule(self, receive, attrs) -> Tuple[int, list, bytes, dict]:
        request, include = decode_schedule_request(
            await _read_json(receive)
        )
        attrs.update(
            machine=request.machine_name, backend=request.backend_name,
            client=request.client,
        )
        response = await self.state.handle_schedule(request)
        attrs.update(request_id=response.request_id, blocks=response.blocks)
        attrs["_spans"] = response.captured_spans
        return 200, list(_JSON), _dumps(
            response.to_dict(include_schedules=include)
        ), attrs

    async def _schedule_batch(
        self, receive, attrs
    ) -> Tuple[int, list, bytes, dict]:
        request, include = decode_batch_request(
            await _read_json(receive),
            base_config=self.state.config.batch_defaults(),
        )
        attrs.update(
            machine=request.machine_name, backend=request.backend_name,
            client=request.client,
        )
        response = await self.state.handle_batch(request)
        attrs.update(request_id=response.request_id, blocks=response.blocks)
        attrs["_spans"] = response.captured_spans
        return 200, list(_JSON), _dumps(
            response.to_dict(include_schedules=include)
        ), attrs

    # ------------------------------------------------------------------
    # Errors and telemetry
    # ------------------------------------------------------------------

    def _error(
        self, exc: Exception, attrs: Dict[str, Any]
    ) -> Tuple[int, list, bytes, Dict[str, Any]]:
        status = http_status_for(exc)
        headers = list(_JSON)
        payload: Dict[str, Any] = {
            "error": type(exc).__name__,
            "message": str(exc),
        }
        if isinstance(exc, BackpressureError):
            retry_after = exc.retry_after
            headers.append(
                (b"retry-after", f"{retry_after:g}".encode())
            )
            payload["retry_after_seconds"] = retry_after
        failures = getattr(exc, "failures", None)
        if failures:
            payload["failures"] = [f.to_dict() for f in failures]
        self.state.errors_total += 1
        attrs["error"] = type(exc).__name__
        if status >= 500 and not isinstance(exc, RequestError):
            obs.count(
                "repro_server_failures_total",
                help="Server responses with a 5xx status.",
                error=type(exc).__name__,
            )
        return status, headers, _dumps(payload), attrs

    def _observe(
        self, method: str, path: str, status: int, seconds: float,
        start_ts: float, attrs: Dict[str, Any],
    ) -> None:
        if not obs.enabled():
            return
        route = path if path.startswith("/v1") or path in (
            "/healthz", "/metrics"
        ) else "<other>"
        obs.count(
            "repro_server_requests_total",
            help="HTTP requests served, by route and status.",
            route=route, status=str(status),
        )
        obs.observe(
            "repro_server_request_seconds", seconds,
            help="Wall seconds per server request.",
            route=route,
        )
        obs.set_gauge(
            "repro_server_inflight", float(self.state.admission.inflight),
            help="Requests currently admitted.",
        )
        if route in ("/v1/schedule", "/v1/schedule/batch"):
            children = attrs.pop("_spans", [])
            span = {
                "name": "server:request",
                "start": start_ts,
                "seconds": seconds,
                "attrs": dict(
                    attrs, route=route, method=method, status=status
                ),
                "children": children,
            }
            obs.attach([span])


def create_app(config: Optional[ServerConfig] = None) -> App:
    """Build the service app (the ``repro serve`` entry point)."""
    return App(config)


def _dumps(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True).encode()


async def _read_json(receive) -> Any:
    """Drain the request body and parse it as JSON."""
    chunks = []
    while True:
        message = await receive()
        if message["type"] != "http.request":  # pragma: no cover
            raise RequestError("unexpected ASGI message before body end")
        chunks.append(message.get("body", b""))
        if not message.get("more_body"):
            break
    raw = b"".join(chunks)
    if not raw:
        raise RequestError("request body is empty")
    try:
        return json.loads(raw)
    except json.JSONDecodeError as exc:
        raise RequestError(f"request body is not valid JSON: {exc}") from None


__all__ = ["App", "create_app"]
