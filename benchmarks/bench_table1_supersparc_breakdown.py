"""Table 1: SuperSPARC option breakdown and attempt shares."""

from conftest import write_result

from repro.scheduler import schedule_workload
from repro.machines import get_machine


def test_table1_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.table_breakdown("SuperSPARC"))
    rows = suite.option_breakdown("SuperSPARC")
    assert [row[0] for row in rows] == [1, 3, 6, 12, 24, 36, 48, 72]
    write_result(results_dir, "table1_supersparc_breakdown.txt", text)


def test_table1_bench_prepass_scheduling(
    benchmark, kernel_workloads, kernel_compiled
):
    """Time prepass scheduling with the original AND/OR description."""
    machine = get_machine("SuperSPARC")
    compiled = kernel_compiled("SuperSPARC", "andor", 0, False)
    blocks = kernel_workloads("SuperSPARC")
    result = benchmark(schedule_workload, machine, compiled, blocks)
    assert result.total_ops == sum(len(b) for b in blocks)
