"""Iterative modulo scheduling (Rau, MICRO-27) on reservation tables.

The paper notes (section 10) that advanced scheduling techniques such as
iterative modulo scheduling must *unschedule* operations to clear the
resource conflicts blocking a placement -- straightforward with
reservation tables (reserve/release on the RU map) but unclear with the
finite-state-automata alternative.  This subpackage demonstrates that
capability: a software pipeliner that searches initiation intervals,
schedules against a modulo reservation table, and evicts conflicting
operations when forced.
"""

from repro.lowlevel.bitvector import ModuloRUMap
from repro.modulo.loop import Loop, LoopEdge, make_recurrence_loop
from repro.modulo.scheduler import (
    ModuloSchedule,
    minimum_initiation_interval,
    modulo_schedule,
)

__all__ = [
    "Loop",
    "LoopEdge",
    "ModuloRUMap",
    "ModuloSchedule",
    "make_recurrence_loop",
    "minimum_initiation_interval",
    "modulo_schedule",
]
