"""Operation-driven list scheduling against a compiled MDES.

Forward mode (the paper's default): ready operations are chosen by
critical-path height; each is tried at its dependence-earliest cycle and
then at successive cycles until its resource constraint admits it.  Every
(operation, cycle) trial is one *scheduling attempt* -- the unit all the
paper's per-attempt statistics are normalized to.

Backward mode schedules consumers before producers and probes cycles
downward; it exists to exercise the section 7 claim that the usage-time
transformation retunes a description for backward schedulers by shifting
each resource's *latest* usage to time zero.

Cascading: when a flow edge is cascade-eligible (SuperSPARC IALU pairs)
the consumer may issue in the producer's own cycle, but must then use its
cascaded operation class, which the machine's classifier supplies.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.engine.base import QueryEngine
from repro.engine.table import TableEngine
from repro.errors import SchedulingError
from repro.ir.block import BasicBlock
from repro.ir.dependence import build_dependence_graph
from repro.lowlevel.checker import CheckStats
from repro.lowlevel.compiled import CompiledMdes
from repro.scheduler.feasibility import (
    cycle_feasibility,
    earliest_cycle,
    stable_cycle,
)
from repro.scheduler.priority import compute_heights
from repro.scheduler.schedule import BlockSchedule, RunResult

#: Safety bound on how far past the earliest cycle an operation may slide.
MAX_PROBE_CYCLES = 4096


class ListScheduler:
    """Schedules basic blocks for one machine against one query engine.

    The engine defaults to a table backend over ``compiled``, which keeps
    the historical ``ListScheduler(machine, compiled)`` call shape; pass
    ``engine=`` to run the same search against any registered backend.
    """

    def __init__(
        self,
        machine,
        compiled: Optional[CompiledMdes] = None,
        stats: Optional[CheckStats] = None,
        direction: str = "forward",
        engine: Optional[QueryEngine] = None,
    ) -> None:
        if direction not in ("forward", "backward"):
            raise SchedulingError(f"unknown direction {direction!r}")
        if engine is None:
            if compiled is None:
                raise SchedulingError(
                    "ListScheduler needs either a compiled MDES or an engine"
                )
            engine = TableEngine(compiled, stats)
        elif stats is not None:
            engine.stats = stats
        self.machine = machine
        self.engine = engine
        self.direction = direction

    # ------------------------------------------------------------------
    # Forward scheduling
    # ------------------------------------------------------------------

    def _schedule_block_forward(self, block: BasicBlock) -> BlockSchedule:
        graph = build_dependence_graph(
            block,
            self.machine.latency,
            flow_latency_of=self.machine.flow_latency,
            bypass_of=self.machine.bypass,
        )
        heights = compute_heights(graph)
        remaining_preds = {
            op.index: len(graph.preds_of(op.index)) for op in block
        }
        ready: List[Tuple[int, int]] = [
            (-heights[op.index], op.index)
            for op in block
            if remaining_preds[op.index] == 0
        ]
        heapq.heapify(ready)
        ru_map = self.engine.new_state()
        result = BlockSchedule(block)
        ops_by_index = {op.index: op for op in block}

        scheduled = 0
        while ready:
            _, index = heapq.heappop(ready)
            op = ops_by_index[index]
            cycle = earliest_cycle(graph, result.times, index)
            limit = cycle + MAX_PROBE_CYCLES
            # Past every producer's full latency, dependence feasibility
            # is unconditional and the operation class stops varying
            # (cascades and bypasses only exist below this point), so the
            # scan splits into a scalar walk of the varying region and
            # one batched probe over the stable tail.
            stable = stable_cycle(graph, result.times, index)
            handle = None
            class_name = ""
            for attempt_cycle in range(cycle, min(stable, limit)):
                feasible = cycle_feasibility(
                    graph, result.times, index, attempt_cycle
                )
                if feasible is None:
                    continue
                cascaded, bypass_class = feasible
                if bypass_class:
                    class_name = bypass_class
                else:
                    class_name = self.machine.classify(op, cascaded)
                handle = self.engine.try_reserve(
                    ru_map, class_name, attempt_cycle
                )
                if handle is not None:
                    break
            if handle is None and stable < limit:
                class_name = self.machine.classify(op, False)
                handle = self.engine.try_reserve_many(
                    ru_map, class_name, range(max(cycle, stable), limit)
                )
            if handle is None:
                raise SchedulingError(
                    f"operation {op!r} found no cycle within "
                    f"{MAX_PROBE_CYCLES} probes"
                )
            result.times[index] = handle.cycle
            result.classes[index] = class_name
            scheduled += 1
            for edge in graph.succs_of(index):
                remaining_preds[edge.succ] -= 1
                if remaining_preds[edge.succ] == 0:
                    heapq.heappush(
                        ready, (-heights[edge.succ], edge.succ)
                    )
        if scheduled != len(block):
            raise SchedulingError(
                f"dependence cycle: scheduled {scheduled} of {len(block)}"
            )
        return result

    # ------------------------------------------------------------------
    # Backward scheduling
    # ------------------------------------------------------------------

    def _schedule_block_backward(self, block: BasicBlock) -> BlockSchedule:
        graph = build_dependence_graph(block, self.machine.latency)
        remaining_succs = {
            op.index: len(graph.succs_of(op.index)) for op in block
        }
        # Depth = latency-weighted distance from the entry; deeper first
        # mirrors forward height priority when scheduling bottom-up.
        depths: Dict[int, int] = {}
        for op in block.operations:
            best = 0
            for edge in graph.preds_of(op.index):
                candidate = depths[edge.pred] + edge.latency
                if candidate > best:
                    best = candidate
            depths[op.index] = best
        ready: List[Tuple[int, int]] = [
            (-depths[op.index], op.index)
            for op in block
            if remaining_succs[op.index] == 0
        ]
        heapq.heapify(ready)
        ru_map = self.engine.new_state()
        result = BlockSchedule(block)
        ops_by_index = {op.index: op for op in block}

        while ready:
            _, index = heapq.heappop(ready)
            op = ops_by_index[index]
            latest = 0
            for edge in graph.succs_of(index):
                candidate = result.times[edge.succ] - edge.latency
                if candidate < latest:
                    latest = candidate
            class_name = self.machine.classify(op, False)
            # One batched probe scanning downward from the latest cycle.
            handle = self.engine.try_reserve_many(
                ru_map, class_name,
                range(latest, latest - MAX_PROBE_CYCLES, -1),
            )
            if handle is None:
                raise SchedulingError(
                    f"operation {op!r} found no cycle within "
                    f"{MAX_PROBE_CYCLES} probes (backward)"
                )
            result.times[index] = handle.cycle
            result.classes[index] = class_name
            for edge in graph.preds_of(index):
                remaining_succs[edge.pred] -= 1
                if remaining_succs[edge.pred] == 0:
                    heapq.heappush(ready, (-depths[edge.pred], edge.pred))

        # Normalize so the schedule starts at cycle zero.
        if result.times:
            base = min(result.times.values())
            result.times = {
                index: cycle - base for index, cycle in result.times.items()
            }
        return result

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def schedule_block(self, block: BasicBlock) -> BlockSchedule:
        """Schedule one basic block."""
        if self.direction == "forward":
            return self._schedule_block_forward(block)
        return self._schedule_block_backward(block)

    @property
    def stats(self) -> CheckStats:
        """The constraint-check statistics accumulated so far."""
        return self.engine.stats


def schedule_workload(
    machine,
    compiled: Optional[CompiledMdes] = None,
    blocks: Iterable[BasicBlock] = (),
    keep_schedules: bool = False,
    direction: str = "forward",
    engine: Optional[QueryEngine] = None,
) -> RunResult:
    """Schedule every block and aggregate the paper's statistics."""
    from repro import obs

    scheduler = ListScheduler(
        machine, compiled, direction=direction, engine=engine
    )
    result = RunResult(machine_name=machine.name)
    if keep_schedules:
        result.schedules = []
    # Injected engines may carry prior work; report only this run's delta.
    before = scheduler.stats.copy()
    with obs.span(
        "schedule:list", memory=True, machine=machine.name,
        direction=direction, backend=scheduler.engine.name,
    ) as sp:
        for block in blocks:
            block_schedule = scheduler.schedule_block(block)
            result.total_ops += len(block)
            result.total_cycles += block_schedule.length
            if result.schedules is not None:
                result.schedules.append(block_schedule)
    result.stats = scheduler.stats.since(before)
    if obs.enabled():
        sp.set(ops=result.total_ops, cycles=result.total_cycles,
               attempts=result.stats.attempts)
        _record_run(obs, "list", scheduler.engine.name, result, sp.seconds)
    return result


def _record_run(obs, scheduler_name: str, backend: str, result: RunResult,
                seconds: float) -> None:
    """Fold one run's totals into the obs registry (enabled mode only)."""
    labels = {"scheduler": scheduler_name, "backend": backend}
    obs.count("repro_scheduled_ops_total", result.total_ops,
              help="Operations scheduled.", **labels)
    obs.count("repro_schedule_runs_total",
              help="Workload scheduling runs.", **labels)
    obs.count("repro_schedule_attempts_total", result.stats.attempts,
              help="Scheduling attempts, folded per run.", **labels)
    obs.observe("repro_schedule_seconds", seconds,
                help="Wall seconds per workload scheduling run.", **labels)
