"""The differential fuzzer driver.

One fuzz *case* is a seeded draw from the description grammar plus a
synthetic workload for it.  Running a case means scheduling that
workload through the full stage x backend matrix *and* after every
individual transform stage, comparing schedules, query answers, and the
independent oracle's verdicts (see :mod:`repro.verify.differential`).
Any disagreement is a failure; failures are shrunk to minimal HMDES
reproducers before they are reported.

Everything is deterministic in ``seed``: case ``i`` of a run seeded
with ``s`` is exactly ``generate_case(s + i)``, so a CI failure line
like ``case seed 20161234`` reproduces locally with one call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.mdes import Mdes
from repro.ir.block import BasicBlock
from repro.machines.base import Machine
from repro.verify.differential import (
    DEFAULT_STAGES,
    Divergence,
    differential_runs,
    verify_transform_stages,
)
from repro.verify.generate import (
    DEFAULT_GRAMMAR,
    FuzzGrammar,
    build_machine,
    generate_mdes,
)
from repro.verify.shrink import case_size, shrink_case
from repro.workloads.generator import WorkloadConfig, generate_blocks


@dataclass
class FuzzCase:
    """One generated description plus its workload."""

    seed: int
    mdes: Mdes
    machine: Machine
    blocks: List[BasicBlock]

    @property
    def source(self) -> str:
        """The HMDES source text of the case's description."""
        return self.machine.hmdes_source

    @property
    def total_ops(self) -> int:
        return sum(len(block) for block in self.blocks)


@dataclass
class FuzzFailure:
    """A diverging case, before and after shrinking."""

    seed: int
    divergences: List[Divergence]
    source: str                    # original HMDES source
    shrunk_source: str             # minimal reproducer HMDES source
    shrink_steps: int
    original_size: Tuple[int, int, int]
    shrunk_size: Tuple[int, int, int]
    case: FuzzCase                 # the minimal case

    def summary(self) -> dict:
        """A JSON-friendly digest (sources included -- they are small)."""
        return {
            "seed": self.seed,
            "divergences": [
                {
                    "kind": d.kind,
                    "where": d.where,
                    "reference": d.reference,
                    "detail": d.detail,
                }
                for d in self.divergences
            ],
            "shrink_steps": self.shrink_steps,
            "original_size": list(self.original_size),
            "shrunk_size": list(self.shrunk_size),
            "shrunk_hmdes": self.shrunk_source,
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int
    cases: int
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def generate_case(
    seed: int, grammar: FuzzGrammar = DEFAULT_GRAMMAR
) -> FuzzCase:
    """Deterministically build the fuzz case for one seed."""
    rng = random.Random(f"repro.verify.fuzz:{seed}")
    mdes = generate_mdes(rng, f"Fuzz{seed}", grammar)
    machine = build_machine(mdes, rng, grammar)
    blocks = generate_blocks(machine, WorkloadConfig(
        total_ops=rng.randint(
            grammar.min_block_ops, grammar.max_block_ops
        ),
        seed=seed,
    ))
    return FuzzCase(seed=seed, mdes=mdes, machine=machine, blocks=blocks)


def run_case(
    case: FuzzCase,
    stages: Sequence[int] = DEFAULT_STAGES,
    backends: Optional[Sequence[str]] = None,
) -> List[Divergence]:
    """All divergences one case exhibits (empty == the case passes)."""
    divergences = differential_runs(
        case.machine, case.blocks, stages=stages, backends=backends
    )
    divergences.extend(
        verify_transform_stages(case.machine, case.blocks)
    )
    return divergences


def fuzz(
    seed: int = 0,
    cases: int = 50,
    shrink: bool = True,
    grammar: FuzzGrammar = DEFAULT_GRAMMAR,
    stages: Sequence[int] = DEFAULT_STAGES,
    backends: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> FuzzReport:
    """Run ``cases`` seeded differential cases; shrink any failures.

    ``progress``, when given, is called as ``progress(done, failures)``
    after every case (the CLI uses it for a live line).
    """
    from repro import obs

    report = FuzzReport(seed=seed, cases=cases)
    with obs.span("verify:fuzz", seed=seed, cases=cases) as sp:
        for i in range(cases):
            case = generate_case(seed + i, grammar)
            with obs.span("verify:case", seed=case.seed):
                divergences = run_case(case, stages, backends)
            obs.count(
                "repro_verify_fuzz_cases_total",
                help="Differential fuzz cases executed.",
            )
            if divergences:
                report.failures.append(_build_failure(
                    case, divergences, shrink, stages, backends
                ))
                obs.count(
                    "repro_verify_fuzz_failures_total",
                    help="Fuzz cases that exhibited a divergence.",
                )
            if progress is not None:
                progress(i + 1, len(report.failures))
    if obs.enabled():
        sp.set(failures=len(report.failures))
    return report


def _build_failure(
    case: FuzzCase,
    divergences: List[Divergence],
    shrink: bool,
    stages: Sequence[int],
    backends: Optional[Sequence[str]],
) -> FuzzFailure:
    original_size = case_size(case)
    shrunk, steps = case, 0
    if shrink:
        shrunk, steps, _ = shrink_case(
            case, lambda candidate: bool(
                run_case(candidate, stages, backends)
            ),
        )
        # Report the divergences of the *minimal* case: that is what a
        # regression test will assert against.
        divergences = run_case(shrunk, stages, backends) or divergences
    return FuzzFailure(
        seed=case.seed,
        divergences=divergences,
        source=case.source,
        shrunk_source=shrunk.source,
        shrink_steps=steps,
        original_size=original_size,
        shrunk_size=case_size(shrunk),
        case=shrunk,
    )
