"""Tests for the Eichenberger-Davidson reduction baseline."""

import pytest

from repro.automata.collision import forbidden_latencies, mdes_options
from repro.core.tables import ReservationTable
from repro.core.usage import ResourceUsage
from repro.eichenberger import reduce_mdes_options, reduce_options
from repro.errors import MdesError
from repro.machines import get_machine


def u(resource, time):
    return ResourceUsage(time, resource)


class TestReduceOptions:
    def test_redundant_usage_dropped(self, resources):
        """Two single-unit resources always used together: one suffices."""
        a, b = resources.lookup("D0"), resources.lookup("D1")
        option = ReservationTable((u(a, 0), u(b, 0)))
        reduced = reduce_options([option])
        assert len(reduced[0]) == 1

    def test_distinguishing_usage_kept(self, resources):
        """A usage that separates two options cannot be dropped."""
        a, b = resources.lookup("D0"), resources.lookup("D1")
        first = ReservationTable((u(a, 0),))
        second = ReservationTable((u(a, 0), u(b, 1)))
        third = ReservationTable((u(b, 0),))
        reduced = reduce_options([first, second, third])
        # second's b@1 collides with third at distance 1; dropping it
        # would lose that constraint.
        assert u(b, 1) in reduced[1].usages

    def test_never_empties_option(self, resources):
        a = resources.lookup("D0")
        option = ReservationTable((u(a, 0),))
        reduced = reduce_options([option])
        assert len(reduced[0]) == 1

    def test_collision_vectors_preserved_small(self, resources):
        a, b, c = (resources.lookup(n) for n in ("D0", "D1", "M"))
        options = [
            ReservationTable((u(a, 0), u(b, 0), u(c, 1))),
            ReservationTable((u(a, 1), u(c, 0))),
            ReservationTable((u(b, 0), u(b, 2))),
        ]
        reduced = reduce_options(options)
        for i in range(3):
            for j in range(3):
                assert forbidden_latencies(
                    options[i], options[j]
                ) == forbidden_latencies(reduced[i], reduced[j])


class TestReduceMdes:
    def test_requires_flat_form(self):
        mdes = get_machine("SuperSPARC").build_andor()
        with pytest.raises(MdesError, match="flat"):
            reduce_mdes_options(mdes)

    def test_pa7100_collision_preservation(self):
        mdes = get_machine("PA7100").build_or()
        reduced = reduce_mdes_options(mdes)
        before = mdes_options(mdes)
        after = mdes_options(reduced)
        assert len(before) == len(after)
        for i in range(len(before)):
            for j in range(len(before)):
                assert forbidden_latencies(
                    before[i], before[j]
                ) == forbidden_latencies(after[i], after[j])

    def test_usage_count_never_grows(self):
        mdes = get_machine("Pentium").build_or()
        reduced = reduce_mdes_options(mdes)
        before = sum(len(option) for option in mdes_options(mdes))
        after = sum(len(option) for option in mdes_options(reduced))
        assert after <= before

    def test_pentium_reduces_substantially(self):
        """Pentium options carry correlated same-cycle usages -> big cut."""
        mdes = get_machine("Pentium").build_or()
        reduced = reduce_mdes_options(mdes)
        before = sum(len(option) for option in mdes_options(mdes))
        after = sum(len(option) for option in mdes_options(reduced))
        assert after < before * 0.7
