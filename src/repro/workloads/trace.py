"""A textual trace format for workloads.

The paper schedules platform assembly files; this library's equivalent is
a simple assembly-like trace format so workloads can be saved, inspected,
hand-edited, and re-scheduled::

    .machine SuperSPARC
    .block B0
      ADD v1 = li0 li1
      LD v2 = v1 !load
      ST = v2 v1 !store
      BE = v2 !branch
    .end

One operation per line: opcode, destination registers, ``=``, source
registers, and optional ``!load`` / ``!store`` / ``!branch`` attributes.
``#`` starts a comment.  :func:`write_trace` and :func:`read_trace`
round-trip exactly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.ir.block import BasicBlock
from repro.ir.operation import Operation


class TraceError(ReproError):
    """A malformed trace file."""

    def __init__(self, message: str, line: Optional[int] = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


def write_trace(
    blocks: Iterable[BasicBlock], machine_name: str = ""
) -> str:
    """Serialize blocks to trace text."""
    lines: List[str] = []
    if machine_name:
        lines.append(f".machine {machine_name}")
    for block in blocks:
        lines.append(f".block {block.label}")
        for op in block.operations:
            attributes = []
            if op.is_load:
                attributes.append("!load")
            if op.is_store:
                attributes.append("!store")
            if op.is_branch:
                attributes.append("!branch")
            dests = " ".join(op.dests)
            srcs = " ".join(op.srcs)
            suffix = (" " + " ".join(attributes)) if attributes else ""
            lines.append(
                f"  {op.opcode} {dests} = {srcs}{suffix}".rstrip()
            )
        lines.append(".end")
    return "\n".join(lines) + "\n"


def _parse_operation(index: int, text: str, line_no: int) -> Operation:
    tokens = text.split()
    if "=" not in tokens:
        raise TraceError(f"operation line lacks '=': {text!r}", line_no)
    split = tokens.index("=")
    opcode = tokens[0] if split >= 1 else ""
    if not opcode:
        raise TraceError("operation line lacks an opcode", line_no)
    dests = tuple(tokens[1:split])
    rest = tokens[split + 1 :]
    srcs: List[str] = []
    is_load = is_store = is_branch = False
    for token in rest:
        if token == "!load":
            is_load = True
        elif token == "!store":
            is_store = True
        elif token == "!branch":
            is_branch = True
        elif token.startswith("!"):
            raise TraceError(f"unknown attribute {token!r}", line_no)
        else:
            srcs.append(token)
    return Operation(
        index=index,
        opcode=opcode,
        dests=dests,
        srcs=tuple(srcs),
        is_load=is_load,
        is_store=is_store,
        is_branch=is_branch,
    )


def read_trace(text: str) -> Tuple[str, List[BasicBlock]]:
    """Parse trace text into (machine name, blocks)."""
    machine_name = ""
    blocks: List[BasicBlock] = []
    current: Optional[BasicBlock] = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".machine"):
            parts = line.split()
            if len(parts) != 2:
                raise TraceError(".machine needs one name", line_no)
            machine_name = parts[1]
        elif line.startswith(".block"):
            if current is not None:
                raise TraceError("nested .block", line_no)
            parts = line.split()
            if len(parts) != 2:
                raise TraceError(".block needs one label", line_no)
            current = BasicBlock(parts[1])
        elif line == ".end":
            if current is None:
                raise TraceError(".end without .block", line_no)
            blocks.append(current)
            current = None
        else:
            if current is None:
                raise TraceError(
                    f"operation outside a block: {line!r}", line_no
                )
            current.operations.append(
                _parse_operation(len(current.operations), line, line_no)
            )
    if current is not None:
        raise TraceError(f"unterminated block {current.label!r}")
    return machine_name, blocks
