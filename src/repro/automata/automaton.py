"""A lazily built scheduling automaton over a compiled description.

A state encodes the resource commitments of everything issued so far,
relative to the current cycle: one bit-vector word per future offset
``0 .. horizon-1``.  Issuing an operation class is a transition; advancing
a cycle shifts the window.  After memoization, an issue test costs one
dictionary lookup -- the advantage the related-work automata papers claim.

Construction requires every usage time to be non-negative (a state cannot
reach into the past), which is exactly what the forward usage-time
transformation (section 7) guarantees; callers normally feed this class a
stage-3+ description.

Limitations mirrored from the literature (paper section 10): there is no
way to *release* a previously issued operation's resources, so techniques
that unschedule operations -- iterative modulo scheduling in particular
(:mod:`repro.modulo`) -- cannot run on this backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import MdesError
from repro.lowlevel.compiled import (
    CompiledAndOrTree,
    CompiledMdes,
    CompiledOption,
)

#: A state: busy masks for offsets 0 .. horizon-1 from "now".
State = Tuple[int, ...]


@dataclass
class AutomatonStats:
    """Work and memory accounting for comparisons against tables."""

    lookups: int = 0
    misses: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of issue tests answered from the transition table."""
        if not self.lookups:
            return 0.0
        return 1.0 - self.misses / self.lookups


class SchedulingAutomaton:
    """Issue/advance automaton for one compiled machine description."""

    def __init__(self, compiled: CompiledMdes) -> None:
        self._compiled = compiled
        self.horizon = self._validate_and_measure(compiled)
        self._transitions: Dict[
            Tuple[State, str], Optional[Tuple[State, Tuple[Tuple[int, int], ...]]]
        ] = {}
        #: (state, class) -> (options walked, checks done) while the
        #: transition was first computed; zero for memoized hits.
        self._edge_costs: Dict[Tuple[State, str], Tuple[int, int]] = {}
        self.stats = AutomatonStats()

    @staticmethod
    def _validate_and_measure(compiled: CompiledMdes) -> int:
        horizon = 1
        _, _, options = compiled.unique_objects()
        for option in options:
            for time, _ in option.checks:
                if time < 0:
                    raise MdesError(
                        "automaton construction needs non-negative usage "
                        "times; run the usage-time transformation first "
                        "(section 7)"
                    )
                horizon = max(horizon, time + 1)
        return horizon

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    @property
    def start_state(self) -> State:
        """The all-idle state."""
        return (0,) * self.horizon

    def _try_option(
        self, state: State, option: CompiledOption, counters: List[int]
    ) -> Optional[State]:
        for time, mask in option.checks:
            counters[1] += 1
            if state[time] & mask:
                return None
        updated = list(state)
        for time, mask in option.reserve_mask_by_time:
            updated[time] |= mask
        return tuple(updated)

    def _compute_issue(
        self, state: State, class_name: str, counters: List[int]
    ) -> Optional[Tuple[State, Tuple[Tuple[int, int], ...]]]:
        constraint = self._compiled.constraint_for_class(class_name)
        if isinstance(constraint, CompiledAndOrTree):
            or_trees = constraint.or_trees
        else:
            or_trees = (constraint,)
        current = state
        reserved = []
        for or_tree in or_trees:
            chosen = None
            for option in or_tree.options:
                counters[0] += 1
                next_state = self._try_option(current, option, counters)
                if next_state is not None:
                    chosen = option
                    current = next_state
                    break
            if chosen is None:
                return None
            reserved.extend(chosen.reserve_mask_by_time)
        return current, tuple(reserved)

    def try_issue(
        self, state: State, class_name: str
    ) -> Optional[Tuple[State, Tuple[Tuple[int, int], ...]]]:
        """Issue test: the successor state and the reservations made.

        Returns ``None`` when the class cannot issue in this state.
        Memoized: repeated (state, class) queries are O(1).
        """
        key = (state, class_name)
        self.stats.lookups += 1
        if key not in self._transitions:
            self.stats.misses += 1
            counters = [0, 0]
            self._transitions[key] = self._compute_issue(
                state, class_name, counters
            )
            self._edge_costs[key] = (counters[0], counters[1])
        return self._transitions[key]

    def edge_cost(self, state: State, class_name: str) -> Tuple[int, int]:
        """(options walked, checks done) when the edge was constructed.

        Zero for edges never computed; memoized hits cost nothing, which
        is exactly the advantage the automata papers claim.
        """
        return self._edge_costs.get((state, class_name), (0, 0))

    @staticmethod
    def advance(state: State) -> State:
        """Move one cycle forward (shift the commitment window)."""
        return state[1:] + (0,)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def transition_count(self) -> int:
        """Memoized transitions (the automaton's memory footprint)."""
        return len(self._transitions)

    def state_count(self) -> int:
        """Distinct states seen so far."""
        states = {state for state, _ in self._transitions}
        for value in self._transitions.values():
            if value is not None:
                states.add(value[0])
        return len(states)

    def memory_bytes(self, word_bytes: int = 4) -> int:
        """Rough memory model: horizon words per state + 2 per edge."""
        return (
            self.state_count() * self.horizon + 2 * self.transition_count
        ) * word_bytes
