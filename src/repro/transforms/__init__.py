"""MDES transformations (paper sections 5-8).

Every transformation consumes an :class:`~repro.core.mdes.Mdes` and
returns a new one; none mutates its input, and all preserve the produced
schedule exactly (the paper's section 4 invariant, enforced by the test
suite).

* :func:`~repro.transforms.redundancy.eliminate_redundancy` --
  CSE/copy-propagation/dead-code adapted to the MDES domain (section 5).
* :func:`~repro.transforms.option_elim.remove_dominated_options` --
  drop options subsumed by a higher-priority option (section 5, Table 8).
* :func:`~repro.transforms.time_shift.shift_usage_times` --
  per-resource usage-time shifting toward time zero (section 7).
* :func:`~repro.transforms.usage_sort.sort_usage_checks` --
  check time zero first (section 7).
* :func:`~repro.transforms.factor.factor_common_usages` --
  hoist usages common to every option of an OR-tree (section 8).
* :func:`~repro.transforms.tree_sort.sort_and_or_trees` --
  order sub-OR-trees for early conflict detection (section 8).
* :mod:`~repro.transforms.pipeline` -- the full paper-order pipeline.
"""

from repro.transforms.base import TreeRewriter
from repro.transforms.redundancy import eliminate_redundancy
from repro.transforms.option_elim import remove_dominated_options
from repro.transforms.time_shift import compute_shift_constants, shift_usage_times
from repro.transforms.usage_sort import sort_usage_checks
from repro.transforms.factor import factor_common_usages
from repro.transforms.tree_sort import sort_and_or_trees
from repro.transforms.pipeline import (
    FINAL_STAGE,
    PIPELINE_STAGES,
    PipelineResult,
    optimize,
    run_pipeline,
    staged_mdes,
)

__all__ = [
    "FINAL_STAGE",
    "PIPELINE_STAGES",
    "PipelineResult",
    "TreeRewriter",
    "compute_shift_constants",
    "eliminate_redundancy",
    "factor_common_usages",
    "optimize",
    "remove_dominated_options",
    "run_pipeline",
    "shift_usage_times",
    "sort_and_or_trees",
    "sort_usage_checks",
    "staged_mdes",
]
