"""The differential fuzzer itself (marked ``fuzz``).

A small seeded run of the full machinery: the grammar-driven
description generator, the stage x backend differential harness, and
the shrinker.  The CI fuzz job runs the same driver at ~200 cases via
the CLI; this in-tree copy keeps the machinery exercised by the plain
test run at a fraction of the cost.
"""

import pytest

from repro.hmdes import load_mdes
from repro.verify import (
    DEFAULT_GRAMMAR,
    fuzz,
    generate_case,
    run_case,
    shrink_case,
)
from repro.verify.shrink import case_size

pytestmark = pytest.mark.fuzz


class TestGenerator:
    def test_case_generation_is_deterministic(self):
        first, second = generate_case(7), generate_case(7)
        assert first.source == second.source
        assert [repr(b.operations) for b in first.blocks] == [
            repr(b.operations) for b in second.blocks
        ]
        assert first.total_ops == second.total_ops

    def test_different_seeds_differ(self):
        assert generate_case(7).source != generate_case(8).source

    @pytest.mark.parametrize("seed", range(6))
    def test_generated_source_reparses_to_the_same_description(self, seed):
        """Every case's HMDES source (the writer's output) round-trips:
        the fuzzer therefore exercises writer -> parser -> translator on
        every single case."""
        case = generate_case(seed)
        again = load_mdes(case.source)
        again.validate()
        assert set(again.op_classes) == set(case.mdes.op_classes)
        assert again.opcode_map == case.mdes.opcode_map
        for name in case.mdes.op_classes:
            assert (
                again.op_class(name).constraint
                == case.mdes.op_class(name).constraint
            )

    def test_workload_respects_grammar_bounds(self):
        case = generate_case(11)
        assert (
            DEFAULT_GRAMMAR.min_block_ops
            <= case.total_ops
            <= DEFAULT_GRAMMAR.max_block_ops
        )
        assert len(case.mdes.resources) >= DEFAULT_GRAMMAR.min_resources


class TestSeededRun:
    def test_seeded_run_finds_no_divergences(self):
        """The acceptance invariant in miniature: 25 random machines,
        every backend, every stage, transform-by-transform -- zero
        divergences, zero oracle complaints."""
        report = fuzz(seed=42, cases=25, shrink=True)
        assert report.ok, [f.summary() for f in report.failures]
        assert report.cases == 25

    def test_single_case_runs_clean(self):
        assert run_case(generate_case(0)) == []


class TestShrinker:
    def test_shrinks_proxy_predicate_to_one_op(self):
        """With a predicate that only needs one opcode to survive, the
        shrinker must collapse the case to a single operation, a single
        option, and a single usage."""
        case = generate_case(3)
        target = next(
            op.opcode
            for op in case.blocks[0].operations
            if op.opcode != "BR"
        )

        def reproduces(candidate):
            return any(
                op.opcode == target
                for block in candidate.blocks
                for op in block
            )

        shrunk, accepted, attempts = shrink_case(case, reproduces)
        assert case_size(shrunk) == (1, 1, 1)
        assert accepted > 0
        assert attempts >= accepted
        # The minimal case is still a valid, serializable description.
        shrunk.mdes.validate()
        assert target in shrunk.source
        reparsed = load_mdes(shrunk.source)
        reparsed.validate()

    def test_shrink_honors_attempt_budget(self):
        case = generate_case(5)
        _, _, attempts = shrink_case(
            case, lambda candidate: True, max_attempts=5
        )
        assert attempts <= 5
