"""Schedule result objects."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.block import BasicBlock
from repro.lowlevel.checker import CheckStats


@dataclass
class BlockSchedule:
    """The placement the scheduler produced for one basic block.

    Attributes:
        block: The scheduled block.
        times: Operation index -> issue cycle.
        classes: Operation index -> the operation class actually used
            (differs from the static class when e.g. a SuperSPARC IALU
            operation issues cascaded).
    """

    block: BasicBlock
    times: Dict[int, int] = field(default_factory=dict)
    classes: Dict[int, str] = field(default_factory=dict)

    @property
    def length(self) -> int:
        """Schedule length in cycles (0 for an empty block)."""
        if not self.times:
            return 0
        low = min(self.times.values())
        high = max(self.times.values())
        return high - low + 1

    def signature(self) -> tuple:
        """A hashable digest used to assert schedule equality.

        Two runs produced "the exact same schedule" (paper section 4) when
        every operation landed in the same cycle with the same class.
        """
        return tuple(
            (index, self.times[index], self.classes[index])
            for index in sorted(self.times)
        )


@dataclass
class RunResult:
    """Aggregate outcome of scheduling a whole workload.

    Attributes:
        machine_name: Which machine description drove the run.
        total_ops: Operations scheduled.
        stats: Constraint-check statistics for the run.
        total_cycles: Sum of block schedule lengths.
        schedules: Per-block schedules (kept only when requested).
    """

    machine_name: str
    total_ops: int = 0
    stats: CheckStats = field(default_factory=CheckStats)
    total_cycles: int = 0
    schedules: Optional[List[BlockSchedule]] = None

    @property
    def attempts_per_op(self) -> float:
        """Average scheduling attempts per operation (Table 5 column)."""
        return self.stats.attempts / self.total_ops if self.total_ops else 0.0

    def signature(self) -> tuple:
        """Digest of every block schedule (requires ``schedules`` kept)."""
        if self.schedules is None:
            raise ValueError("run was executed without keep_schedules=True")
        return tuple(schedule.signature() for schedule in self.schedules)

    def __repr__(self) -> str:
        return (
            f"RunResult({self.machine_name!r}, ops={self.total_ops}, "
            f"attempts/op={self.attempts_per_op:.2f}, "
            f"options/attempt={self.stats.options_per_attempt:.2f}, "
            f"checks/attempt={self.stats.checks_per_attempt:.2f})"
        )
