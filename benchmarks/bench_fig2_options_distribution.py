"""Figure 2: distribution of options checked per scheduling attempt."""

from conftest import write_result

from repro.lowlevel.bitvector import RUMap
from repro.lowlevel.checker import ConstraintChecker


def test_fig2_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.fig2_options_distribution("SuperSPARC"))
    write_result(results_dir, "fig2_options_distribution.txt", text)
    run = suite.run("SuperSPARC", "or", 0, False)
    histogram = run.stats.options_histogram
    total = sum(histogram.values())
    # The paper's two peaks: cheap successes at 1 option checked, and
    # expensive failures clustered at 48 options (1-src IALU ops).
    assert histogram.get(1, 0) / total > 0.15
    assert histogram.get(48, 0) / total > 0.10
    assert max(histogram) <= 72


def test_fig2_bench_failed_attempt_cost(benchmark, kernel_compiled):
    """Time the worst case: a failing 72-option scheduling attempt."""
    compiled = kernel_compiled("SuperSPARC", "or", 0, False)
    constraint = compiled.constraint_for_class("ialu_2src")
    source = compiled.source
    decoders = [
        resource
        for resource in source.resources
        if resource.name.startswith("Decoder")
    ]
    ru = RUMap()
    for decoder in decoders:
        ru.reserve(-1, decoder.mask)  # no decoder -> every option fails

    def failing_attempt():
        checker = ConstraintChecker()
        assert checker.try_reserve(ru, constraint, 0) is None
        return checker.stats.options_checked

    options = benchmark(failing_attempt)
    assert options == 72
