"""A 4-wide VLIW target: the retargeting story, demonstrated.

The paper's introduction motivates the whole MDES model with the promise
of "a generic, high-quality scheduler and ILP optimizer driven by an
MDES that can be quickly targeted to a new processor".  This module is
that exercise: a processor that appears in none of the paper's tables,
described in an afternoon's worth of HMDES, and immediately schedulable
by the same toolchain.

The machine ("Cydra-lite", in the spirit of the Cydra 5 the paper's
reservation-table approach descends from):

* four issue slots per cycle;
* two integer ALUs with a forwarding path between them (distance-0
  bypass through the shared forwarding bus, modeled as a substitute
  class exactly like the SuperSPARC cascade);
* one pipelined memory port (address operands read during decode, so
  address producers suffer a one-cycle interlock -- the ``read -1``
  feature);
* one two-deep pipelined FP multiply-add unit and a shared writeback
  bus limited to three results per cycle.
"""

from __future__ import annotations

from repro.ir.operation import Operation
from repro.machines.base import (
    KIND_BRANCH,
    KIND_FP,
    KIND_INT,
    KIND_LOAD,
    KIND_STORE,
    Machine,
    OpcodeSpec,
)

HMDES_SOURCE = """
mdes Cydra_lite;

section resource {
    Slot[0..3];
    IALU[0..1];
    FWD;
    MEM;
    FPU;
    FPPIPE;
    WB[0..2];
    BRU;
}

section ortree {
    OT_slot { $for s in 0..3 { option { use Slot[$s] at 0; } } }
    OT_ialu { $for u in 0..1 { option { use IALU[$u] at 0; } } }
    OT_wb1  { $for w in 0..2 { option { use WB[$w] at 1; } } }
    OT_wb2  { $for w in 0..2 { option { use WB[$w] at 2; } } }
    OT_wb3  { $for w in 0..2 { option { use WB[$w] at 3; } } }
}

section table {
    RT_mem { use MEM at 0; }
    RT_fwd { use IALU[1] at 0; use FWD at 0; }
    RT_fp  { use FPU at 0; use FPPIPE at 0; use FPPIPE at 1; }
    RT_bru { use BRU at 0; }
}

section andortree {
    AOT_ialu     { ortree OT_slot; ortree OT_ialu; ortree OT_wb1; }
    AOT_ialu_fwd { ortree OT_slot; ortree RT_fwd;  ortree OT_wb1; }
    AOT_load     { ortree OT_slot; ortree RT_mem;  ortree OT_wb2; }
    AOT_store    { ortree OT_slot; ortree RT_mem; }
    AOT_fp       { ortree OT_slot; ortree RT_fp;   ortree OT_wb3; }
    AOT_branch   { ortree OT_slot; ortree RT_bru; }
}

section opclass {
    ialu     { resv AOT_ialu;     latency 1; }
    // Forwarded consumer: only IALU[1] sits on the forwarding bus.
    ialu_fwd { resv AOT_ialu_fwd; latency 1; }
    load     { resv AOT_load;     latency 2; read -1; }
    store    { resv AOT_store;    latency 1; read -1; }
    fp       { resv AOT_fp;       latency 3; }
    branch   { resv AOT_branch;   latency 1; }
}

section bypass {
    ialu -> ialu: latency 0 class ialu_fwd;
}

section operation {
    ADD: ialu; SUB: ialu; AND: ialu; OR: ialu; SHL: ialu; CMP: ialu;
    LD: load; ST: store;
    FMAC: fp; FADD: fp;
    BR: branch; CALL: branch;
}
"""

_BASE_CLASS = {
    "ADD": "ialu", "SUB": "ialu", "AND": "ialu", "OR": "ialu",
    "SHL": "ialu", "CMP": "ialu",
    "LD": "load", "ST": "store",
    "FMAC": "fp", "FADD": "fp",
    "BR": "branch", "CALL": "branch",
}


def classify(op: Operation, cascaded: bool) -> str:
    """Static class per opcode; forwarding is bypass-substituted."""
    base = _BASE_CLASS[op.opcode]
    if base == "ialu" and cascaded:
        return "ialu_fwd"
    return base


OPCODE_PROFILE = (
    OpcodeSpec("ADD", 14.0, (1, 2), True, KIND_INT),
    OpcodeSpec("SUB", 6.0, (1, 2), True, KIND_INT),
    OpcodeSpec("AND", 3.0, (1,), True, KIND_INT),
    OpcodeSpec("OR", 3.0, (1,), True, KIND_INT),
    OpcodeSpec("SHL", 3.0, (1,), True, KIND_INT),
    OpcodeSpec("CMP", 4.0, (2,), True, KIND_INT),
    OpcodeSpec("LD", 12.0, (1,), True, KIND_LOAD),
    OpcodeSpec("ST", 6.0, (2,), False, KIND_STORE),
    OpcodeSpec("FMAC", 2.0, (2,), True, KIND_FP),
    OpcodeSpec("FADD", 1.5, (2,), True, KIND_FP),
    OpcodeSpec("BR", 5.0, (1,), False, KIND_BRANCH),
    OpcodeSpec("CALL", 1.0, (0,), False, KIND_BRANCH),
)


def build_machine() -> Machine:
    """Construct the VLIW machine."""
    return Machine(
        name="Cydra_lite",
        hmdes_source=HMDES_SOURCE,
        opcode_profile=OPCODE_PROFILE,
        classifier=classify,
        scheduling_mode="prepass",
        register_pool=128,
        block_size_range=(5, 16),
        flow_probability=0.45,
    )
