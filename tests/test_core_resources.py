"""Tests for the resource table and resource masks."""

import pytest

from repro.core.resource import Resource, ResourceTable
from repro.errors import MdesError


class TestResource:
    def test_mask_is_single_bit(self):
        assert Resource("X", 0).mask == 1
        assert Resource("Y", 5).mask == 32

    def test_masks_are_disjoint_across_indices(self):
        table = ResourceTable()
        declared = table.declare_many([f"R{i}" for i in range(64)])
        combined = 0
        for resource in declared:
            assert combined & resource.mask == 0
            combined |= resource.mask

    def test_equality_is_structural(self):
        assert Resource("A", 1) == Resource("A", 1)
        assert Resource("A", 1) != Resource("A", 2)
        assert Resource("A", 1) != Resource("B", 1)


class TestResourceTable:
    def test_declare_assigns_indices_in_order(self):
        table = ResourceTable()
        a = table.declare("A")
        b = table.declare("B")
        assert (a.index, b.index) == (0, 1)

    def test_duplicate_declaration_rejected(self):
        table = ResourceTable()
        table.declare("A")
        with pytest.raises(MdesError, match="declared twice"):
            table.declare("A")

    def test_lookup_unknown_raises(self):
        with pytest.raises(MdesError, match="unknown resource"):
            ResourceTable().lookup("nope")

    def test_get_returns_none_for_unknown(self):
        assert ResourceTable().get("nope") is None

    def test_contains_len_iter_names(self):
        table = ResourceTable()
        table.declare_many(["A", "B", "C"])
        assert "B" in table
        assert "Z" not in table
        assert len(table) == 3
        assert [r.name for r in table] == ["A", "B", "C"]
        assert table.names == ["A", "B", "C"]

    def test_beyond_word_width_supported(self):
        # Python ints are arbitrary precision: >64 resources must work.
        table = ResourceTable()
        table.declare_many([f"R{i}" for i in range(100)])
        assert table.lookup("R99").mask == 1 << 99
