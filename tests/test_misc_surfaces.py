"""Coverage for smaller public surfaces: Machine, registry, figures,
validator W005, backward scheduling on real workloads."""

import pytest

from repro.analysis.figures import render_constraint
from repro.hmdes.validator import lint_source
from repro.lowlevel.compiled import compile_mdes
from repro.machines import MACHINE_NAMES, get_machine
from repro.machines.base import OpcodeSpec
from repro.machines.registry import EXTRA_MACHINE_NAMES
from repro.scheduler import schedule_workload
from repro.workloads import WorkloadConfig, generate_blocks


class TestMachineSurface:
    def test_spec_for_opcode(self):
        machine = get_machine("SuperSPARC")
        spec = machine.spec_for_opcode("LD")
        assert spec.kind == "load"
        with pytest.raises(KeyError):
            machine.spec_for_opcode("NOPE")

    def test_build_forms_cached(self):
        machine = get_machine("K5")
        assert machine.build_andor() is machine.build_andor()
        assert machine.build_or() is machine.build_or()

    def test_opcode_spec_defaults(self):
        spec = OpcodeSpec("X", 1.0)
        assert spec.src_choices == (2,)
        assert spec.has_dest
        assert spec.kind == "int"

    def test_registry_is_cached(self):
        assert get_machine("PA7100") is get_machine("PA7100")

    def test_extra_machines_disjoint_from_paper_set(self):
        assert not set(MACHINE_NAMES) & set(EXTRA_MACHINE_NAMES)


class TestRenderConstraint:
    def test_dispatches_on_kind(self, load_and_or_tree):
        from repro.core.expand import expand_to_or_tree

        as_andor = render_constraint(load_and_or_tree)
        as_or = render_constraint(expand_to_or_tree(load_and_or_tree))
        assert as_andor.startswith("AND/OR-tree")
        assert as_or.startswith("OR-tree")


class TestValidatorW005:
    def test_duplicate_andor_siblings_flagged(self):
        source = """
        mdes M;
        section resource { A[0..1]; B[0..1]; }
        section opclass {
            k { resv andortree {
                ortree { option { use A[0] at 0; }
                         option { use A[1] at 0; } }
                ortree { option { use B[0] at 0; }
                         option { use B[1] at 0; } }
            }; }
        }
        section operation { X: k; }
        """
        # A and B trees are NOT structurally identical (different
        # resources): no W005.
        codes = {d.code for d in lint_source(source)}
        assert "W005" not in codes

    def test_w005_fires_on_true_duplicates(self, resources):
        from repro.core.mdes import Mdes, OperationClass
        from repro.core.tables import AndOrTree, OrTree, ReservationTable
        from repro.core.usage import ResourceUsage
        from repro.hmdes.validator import lint_mdes

        d0 = resources.lookup("D0")
        # Two structurally identical one-option trees at different
        # times cannot coexist... use different times to stay disjoint
        # but same structure is impossible then; instead craft two
        # identical trees, which violates disjointness -- so W005 is
        # only reachable through equal-but-disjoint trees, i.e. never
        # for well-formed AND/OR-trees with usages.  Verify the checker
        # simply stays quiet on a well-formed description.
        tree = AndOrTree(
            (
                OrTree((ReservationTable((ResourceUsage(0, d0),)),)),
                OrTree(
                    (ReservationTable(
                        (ResourceUsage(1, d0),)
                    ),)
                ),
            ),
            name="x",
        )
        mdes = Mdes(
            "M",
            resources,
            {"k": OperationClass("k", tree)},
            {"X": "k"},
        )
        codes = {d.code for d in lint_mdes(mdes)}
        assert "W005" not in codes


class TestBackwardSchedulingWorkload:
    @pytest.mark.parametrize("machine_name", ["SuperSPARC", "PA7100"])
    def test_backward_schedules_whole_workload(self, machine_name):
        machine = get_machine(machine_name)
        compiled = compile_mdes(machine.build_andor())
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=300))
        result = schedule_workload(
            machine, compiled, blocks, direction="backward",
            keep_schedules=True,
        )
        assert result.total_ops == sum(len(b) for b in blocks)
        for schedule in result.schedules:
            assert min(schedule.times.values()) == 0

    def test_backward_deterministic(self):
        machine = get_machine("SuperSPARC")
        compiled = compile_mdes(machine.build_andor())
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=200))
        first = schedule_workload(machine, compiled, blocks,
                                  direction="backward",
                                  keep_schedules=True)
        second = schedule_workload(machine, compiled, blocks,
                                   direction="backward",
                                   keep_schedules=True)
        assert first.signature() == second.signature()
