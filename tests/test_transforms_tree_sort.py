"""Tests for AND/OR sub-tree ordering (section 8)."""

from repro.core.tables import AndOrTree
from repro.machines import get_machine
from repro.transforms.pipeline import run_pipeline
from repro.transforms.time_shift import shift_usage_times
from repro.transforms.tree_sort import sort_and_or_trees, sort_key


class TestSortKey:
    def test_orders_by_min_time_then_options(self, load_and_or_tree):
        dec, wr, mem = load_and_or_tree.or_trees
        # dec has min_time -1 -> first before shifting.
        keys = [
            sort_key(tree, 1, index)
            for index, tree in enumerate(load_and_or_tree.or_trees)
        ]
        assert sorted(keys)[0] == keys[0]

    def test_after_shift_fewest_options_first(self, toy_mdes):
        shifted = shift_usage_times(toy_mdes)
        result = sort_and_or_trees(shifted)
        constraint = result.op_class("load").constraint
        assert [len(t) for t in constraint.or_trees] == [1, 2, 2]
        assert constraint.or_trees[0].name == "OT_mem"


class TestSortMdes:
    def test_supersparc_load_reordered(self):
        """Figure 6: after shifting, the one-option memory tree leads."""
        machine = get_machine("SuperSPARC")
        shifted = shift_usage_times(machine.build_andor())
        result = sort_and_or_trees(shifted)
        load = result.op_class("load").constraint
        assert [len(t) for t in load.or_trees] == [1, 2, 3]

    def test_sharing_breaks_ties(self):
        """Among equal-size trees, the more widely shared one leads."""
        machine = get_machine("SuperSPARC")
        shifted = shift_usage_times(machine.build_andor())
        result = sort_and_or_trees(shifted)
        ialu = result.op_class("ialu_1src").constraint
        sizes = [len(t) for t in ialu.or_trees]
        assert sizes == sorted(sizes)

    def test_or_constraints_untouched(self, toy_mdes):
        flat = toy_mdes.expanded()
        result = sort_and_or_trees(flat)
        assert result.op_class("load").constraint is flat.op_class(
            "load"
        ).constraint

    def test_children_keep_identity(self, toy_mdes):
        shifted = shift_usage_times(toy_mdes)
        result = sort_and_or_trees(shifted)
        before = {id(t) for t in shifted.op_class("load")
                  .constraint.or_trees}
        after = {id(t) for t in result.op_class("load")
                 .constraint.or_trees}
        assert before == after


class TestPipeline:
    def test_stages_in_paper_order(self, toy_mdes):
        result = run_pipeline(toy_mdes)
        assert result.stage_names == [
            "input",
            "redundancy-elimination",
            "dominated-option-removal",
            "usage-time-shift",
            "usage-check-sort",
            "common-usage-factoring",
            "and-or-tree-sort",
            "final-sharing",
        ]
        assert isinstance(
            result.final.op_class("load").constraint, AndOrTree
        )

    def test_stage_lookup(self, toy_mdes):
        result = run_pipeline(toy_mdes)
        assert result.stage("input") is toy_mdes
        assert result.stage("final-sharing") is result.final

    def test_backward_direction_shifts_latest_to_zero(self, toy_mdes):
        from repro.core.expand import as_or_tree
        from repro.transforms.pipeline import optimize

        backward = optimize(toy_mdes, direction="backward")
        flat = as_or_tree(backward.op_class("load").constraint)
        for option in flat.options:
            assert option.max_time() <= 0
