"""Register, memory, and control dependence construction.

Edges carry two latencies:

* ``latency`` -- the normal cycles the consumer must wait after the
  producer issues (flow edges use the producer's MDES latency; anti and
  control edges use 0; output and memory serialization edges use 1).
* ``min_latency`` -- the latency when the machine supports a shortcut for
  this pair.  The SuperSPARC's *cascaded* IALU feature (paper section 2)
  lets a flow-dependent IALU pair issue in the same cycle, so such edges
  get ``min_latency=0``; the scheduler must then use the consumer's
  cascaded operation class, which has half the reservation table options.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.ir.block import BasicBlock
from repro.ir.operation import Operation

FLOW = "flow"
ANTI = "anti"
OUTPUT = "output"
MEMORY = "memory"
CONTROL = "control"


@dataclass(frozen=True)
class Edge:
    """A dependence from ``pred`` to ``succ`` (operation indices).

    ``bypass_class`` names the operation class the consumer must use
    when it issues at the shortcut distance (empty when the shortcut
    does not narrow the consumer's alternatives).
    """

    pred: int
    succ: int
    kind: str
    latency: int
    min_latency: int
    bypass_class: str = ""

    @property
    def is_cascade_eligible(self) -> bool:
        """Whether the pair may use the machine's forwarding shortcut."""
        return self.min_latency < self.latency


@dataclass
class DependenceGraph:
    """Dependences of one basic block, as predecessor/successor lists."""

    block: BasicBlock
    preds: Dict[int, List[Edge]] = field(default_factory=dict)
    succs: Dict[int, List[Edge]] = field(default_factory=dict)

    def add_edge(self, edge: Edge) -> None:
        """Insert one edge (duplicates between a pair are kept strongest)."""
        for existing in self.preds.setdefault(edge.succ, []):
            if existing.pred == edge.pred and existing.kind == edge.kind:
                return
        self.preds[edge.succ].append(edge)
        self.succs.setdefault(edge.pred, []).append(edge)

    def preds_of(self, index: int) -> List[Edge]:
        """Incoming dependences of an operation."""
        return self.preds.get(index, [])

    def succs_of(self, index: int) -> List[Edge]:
        """Outgoing dependences of an operation."""
        return self.succs.get(index, [])

    def edge_count(self) -> int:
        """Total number of dependence edges."""
        return sum(len(edges) for edges in self.succs.values())


CascadePredicate = Callable[[Operation, Operation], bool]
LatencyProvider = Callable[[Operation], int]
FlowLatencyProvider = Callable[[Operation, Operation], int]
BypassProvider = Callable[[Operation, Operation], Optional[object]]


def build_dependence_graph(
    block: BasicBlock,
    latency_of: LatencyProvider,
    cascade_ok: Optional[CascadePredicate] = None,
    flow_latency_of: Optional[FlowLatencyProvider] = None,
    bypass_of: Optional[BypassProvider] = None,
) -> DependenceGraph:
    """Build flow/anti/output/memory/control dependences for a block.

    Flow latency is the producer's ``latency_of`` value unless
    ``flow_latency_of`` refines it per pair (the MDES operand-read-time
    model: a consumer reading its operands during decode sees the
    producer a cycle later).  Shortcuts come from either ``bypass_of``
    (MDES forwarding paths carrying a substitute class) or the legacy
    ``cascade_ok`` predicate (distance 0, no substitute).

    Memory dependences are conservative (no disambiguation): a store
    serializes against every later memory operation, and a load against
    every later store.
    """
    graph = DependenceGraph(block)
    last_writer: Dict[str, Operation] = {}
    readers_since_write: Dict[str, List[Operation]] = {}
    last_store: Optional[Operation] = None
    loads_since_store: List[Operation] = []

    for op in block.operations:
        # Flow dependences: the latest writer of each source.
        for src in set(op.srcs):
            producer = last_writer.get(src)
            if producer is not None:
                if flow_latency_of is not None:
                    latency = flow_latency_of(producer, op)
                else:
                    latency = latency_of(producer)
                min_latency = latency
                bypass_class = ""
                bypass = (
                    bypass_of(producer, op)
                    if bypass_of is not None
                    else None
                )
                if bypass is not None and bypass.latency < latency:
                    min_latency = bypass.latency
                    bypass_class = bypass.substitute_class
                elif cascade_ok is not None and cascade_ok(producer, op):
                    min_latency = 0
                graph.add_edge(
                    Edge(
                        producer.index, op.index, FLOW, latency,
                        min_latency, bypass_class,
                    )
                )
            readers_since_write.setdefault(src, []).append(op)

        # Anti and output dependences on each destination.
        for dest in set(op.dests):
            for reader in readers_since_write.get(dest, []):
                if reader.index != op.index:
                    graph.add_edge(Edge(reader.index, op.index, ANTI, 0, 0))
            previous = last_writer.get(dest)
            if previous is not None:
                graph.add_edge(
                    Edge(previous.index, op.index, OUTPUT, 1, 1)
                )
            last_writer[dest] = op
            readers_since_write[dest] = []

        # Memory serialization.
        if op.is_mem:
            if last_store is not None:
                graph.add_edge(
                    Edge(last_store.index, op.index, MEMORY, 1, 1)
                )
            if op.is_store:
                for load in loads_since_store:
                    graph.add_edge(
                        Edge(load.index, op.index, MEMORY, 0, 0)
                    )
                last_store = op
                loads_since_store = []
            else:
                loads_since_store.append(op)

        # Control: nothing moves below the terminating branch.
        if op.is_branch:
            for other in block.operations:
                if other.index != op.index and other.index < op.index:
                    graph.add_edge(
                        Edge(other.index, op.index, CONTROL, 0, 0)
                    )

    return graph
