"""Robustness: conclusions do not depend on the workload seed.

The synthetic workload substitutes for the paper's SPEC CINT92 corpus
(DESIGN.md section 2).  If the headline ratios moved materially between
seeds, that substitution would be suspect; these tests pin them down.
"""

import pytest

from repro.analysis import ExperimentSuite


def headline_reduction(suite, machine_name):
    """Table 15's reduction: unoptimized OR -> fully optimized AND/OR."""
    unopt = suite.run(machine_name, "or", 0, False)
    optimized = suite.run(machine_name, "andor", 4, True)
    return 1 - (
        optimized.stats.checks_per_attempt
        / unopt.stats.checks_per_attempt
    )


class TestSeedRobustness:
    @pytest.mark.parametrize("machine_name", ["SuperSPARC", "K5"])
    def test_headline_ratio_stable_across_seeds(self, machine_name):
        reductions = [
            headline_reduction(
                ExperimentSuite(total_ops=1500, seed=seed), machine_name
            )
            for seed in (1, 99, 20161202)
        ]
        assert max(reductions) - min(reductions) < 0.05
        assert min(reductions) > 0.75

    def test_attempts_per_op_stable_across_seeds(self):
        values = [
            ExperimentSuite(total_ops=1500, seed=seed)
            .run("SuperSPARC", "andor", 0, False)
            .attempts_per_op
            for seed in (7, 1234)
        ]
        assert abs(values[0] - values[1]) < 0.25

    def test_option_breakdown_rows_stable(self):
        """The set of option-count rows is seed-independent (it is a
        property of the description, not the workload)."""
        rows = [
            [
                options
                for options, _, _ in ExperimentSuite(
                    total_ops=1200, seed=seed
                ).option_breakdown("K5")
            ]
            for seed in (3, 77)
        ]
        assert rows[0] == rows[1]
