"""The schedule-validity oracle: naive replay against the raw HMDES.

Every optimized representation in this library -- staged trees,
bit-vector packing, reduced tables, automata -- is supposed to answer
resource-conflict queries exactly as the untransformed high-level
description would (the paper's section 5-8 semantics-preservation
claims).  The oracle is the independent referee for that claim: it takes
a *finished* schedule and replays it directly against the machine's raw
translated HMDES, with none of the transformations applied.  No
bit-vectors, no time-shifting, no factoring, no sharing tricks -- just
"walk every reservation-table option and mark cycles busy", slow and
obviously correct on purpose.

Two families of checks:

* **Dependence/latency**: rebuild the dependence graph the scheduler
  used (direction-aware: the forward scheduler refines flow latencies
  by operand read times and honors forwarding shortcuts; the backward
  scheduler uses plain destination latencies) and check every edge's
  issue-distance requirement.
* **Resource replay**: for each block, re-derive each placed
  operation's reservation alternatives from the raw description and
  search for an option assignment in which no (cycle, resource) pair is
  reserved twice.  Because the scheduler committed to *some* option per
  operation but the schedule does not record which, the oracle performs
  a small backtracking search over the alternatives; a schedule is
  valid iff at least one conflict-free assignment exists.

Failures are reported as typed :class:`Diagnostic` records, never
exceptions, so callers can aggregate, count, and render them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.mdes import Mdes
from repro.core.tables import AndOrTree, OrTree
from repro.ir.dependence import FLOW, DependenceGraph, build_dependence_graph
from repro.scheduler.schedule import BlockSchedule

#: Two operations' reservation options collide on a (cycle, resource)
#: pair in every admissible assignment.
RESOURCE_CONFLICT = "RESOURCE_CONFLICT"
#: A dependence edge's issue-distance requirement is violated.
LATENCY_VIOLATION = "LATENCY_VIOLATION"
#: The schedule records an operation class the description lacks.
UNKNOWN_CLASS = "UNKNOWN_CLASS"
#: A block operation never received a cycle (or the schedule places an
#: operation index the block does not contain).
UNPLACED_OPERATION = "UNPLACED_OPERATION"
#: The option-assignment search gave up before proving either verdict.
SEARCH_BUDGET_EXCEEDED = "SEARCH_BUDGET_EXCEEDED"

#: Cap on backtracking nodes per block.  Real schedules resolve in one
#: forward pass (the scheduler already found an assignment); the budget
#: only guards against adversarial hand-built inputs.
SEARCH_BUDGET = 200_000


class _BudgetExhausted(Exception):
    """Internal: the replay search ran out of nodes."""


@dataclass(frozen=True)
class Diagnostic:
    """One typed oracle finding.

    Attributes:
        code: One of the module's diagnostic-code constants.
        block_label: Label of the offending block.
        op_index: Operation index within the block (-1 for block-level
            findings such as a search-budget exhaustion).
        cycle: Issue or usage cycle the finding refers to, if any.
        resource: Resource name for resource findings, else ``""``.
        message: Human-readable explanation.
    """

    code: str
    block_label: str
    op_index: int = -1
    cycle: Optional[int] = None
    resource: str = ""
    message: str = ""

    def __str__(self) -> str:
        where = f"{self.block_label}"
        if self.op_index >= 0:
            where += f"#op{self.op_index}"
        if self.cycle is not None:
            where += f"@cycle{self.cycle}"
        return f"[{self.code}] {where}: {self.message}"


@dataclass
class VerifyReport:
    """Aggregate oracle verdict over a set of block schedules."""

    machine_name: str
    direction: str = "forward"
    blocks_checked: int = 0
    ops_checked: int = 0
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every checked schedule is valid."""
        return not self.diagnostics

    def codes(self) -> Dict[str, int]:
        """Diagnostic counts by code."""
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return counts

    def summary(self) -> Dict[str, object]:
        """A JSON-friendly digest of the report."""
        return {
            "machine": self.machine_name,
            "direction": self.direction,
            "blocks": self.blocks_checked,
            "ops": self.ops_checked,
            "ok": self.ok,
            "diagnostics": len(self.diagnostics),
            "codes": self.codes(),
        }

    def __repr__(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.diagnostics)} diagnostics"
        return (
            f"VerifyReport({self.machine_name!r}, "
            f"blocks={self.blocks_checked}, ops={self.ops_checked}, "
            f"{verdict})"
        )


class ScheduleOracle:
    """Replays finished schedules against one machine's raw description."""

    def __init__(self, machine, direction: str = "forward") -> None:
        if direction not in ("forward", "backward"):
            raise ValueError(f"unknown direction {direction!r}")
        self.machine = machine
        self.direction = direction
        #: The untransformed description straight out of the translator.
        self.mdes: Mdes = machine.build()

    # ------------------------------------------------------------------
    # Dependence / latency checks
    # ------------------------------------------------------------------

    def _graph(self, block) -> DependenceGraph:
        if self.direction == "forward":
            return build_dependence_graph(
                block,
                self.machine.latency,
                flow_latency_of=self.machine.flow_latency,
                bypass_of=self.machine.bypass,
            )
        # The backward scheduler plans against plain destination
        # latencies (no read-time refinement, no shortcuts); holding its
        # schedules to the forward model would report false violations.
        return build_dependence_graph(block, self.machine.latency)

    def _check_latencies(
        self, schedule: BlockSchedule, graph: DependenceGraph
    ) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        times = schedule.times
        for edges in graph.preds.values():
            for edge in edges:
                if edge.pred not in times or edge.succ not in times:
                    continue  # reported separately as UNPLACED_OPERATION
                distance = times[edge.succ] - times[edge.pred]
                if distance >= edge.latency:
                    continue
                if (
                    edge.kind == FLOW
                    and edge.is_cascade_eligible
                    and distance == edge.min_latency
                ):
                    continue  # forwarding shortcut (e.g. cascaded IALU)
                diagnostics.append(Diagnostic(
                    LATENCY_VIOLATION,
                    schedule.block.label,
                    op_index=edge.succ,
                    cycle=times[edge.succ],
                    message=(
                        f"{edge.kind} dependence from op {edge.pred} "
                        f"(cycle {times[edge.pred]}) requires distance "
                        f">= {edge.latency}, got {distance}"
                    ),
                ))
        return diagnostics

    # ------------------------------------------------------------------
    # Resource replay
    # ------------------------------------------------------------------

    def _placement_and_classes(
        self, schedule: BlockSchedule
    ) -> Tuple[List[Diagnostic], List[Tuple[int, int, str]]]:
        """Completeness checks; returns (diagnostics, replayable ops).

        Replayable ops are (index, cycle, class_name) triples whose
        class exists in the description -- the only ones the resource
        replay can process.
        """
        diagnostics: List[Diagnostic] = []
        block = schedule.block
        block_indices = {op.index for op in block}
        for op in block:
            if op.index not in schedule.times:
                diagnostics.append(Diagnostic(
                    UNPLACED_OPERATION, block.label, op_index=op.index,
                    message=f"operation {op!r} has no scheduled cycle",
                ))
        replayable: List[Tuple[int, int, str]] = []
        for index in sorted(schedule.times):
            cycle = schedule.times[index]
            if index not in block_indices:
                diagnostics.append(Diagnostic(
                    UNPLACED_OPERATION, block.label, op_index=index,
                    cycle=cycle,
                    message="schedule places an index the block lacks",
                ))
                continue
            class_name = schedule.classes.get(index, "")
            if class_name not in self.mdes.op_classes:
                diagnostics.append(Diagnostic(
                    UNKNOWN_CLASS, block.label, op_index=index,
                    cycle=cycle,
                    message=(
                        f"operation class {class_name!r} is not in the "
                        "description"
                    ),
                ))
                continue
            replayable.append((index, cycle, class_name))
        return diagnostics, replayable

    def _slots(
        self, replayable: List[Tuple[int, int, str]]
    ) -> List[Tuple[int, int, Tuple[Tuple[Tuple[int, object], ...], ...]]]:
        """Flatten ops into per-OR-tree choice slots at absolute cycles.

        An OR-tree contributes one slot with one choice per option; an
        AND/OR-tree contributes one slot per sub-OR-tree (each must be
        satisfied independently -- sound because the translator enforces
        sibling disjointness).  Each choice is the option's usages as
        ``(absolute cycle, resource)`` keys.
        """
        slots = []
        for index, cycle, class_name in sorted(
            replayable, key=lambda item: (item[1], item[0])
        ):
            constraint = self.mdes.op_classes[class_name].constraint
            trees: Sequence[OrTree]
            if isinstance(constraint, AndOrTree):
                trees = constraint.or_trees
            else:
                trees = (constraint,)
            for tree in trees:
                choices = tuple(
                    tuple(
                        (cycle + usage.time, usage.resource)
                        for usage in option.usages
                    )
                    for option in tree.options
                )
                slots.append((index, cycle, choices))
        return slots

    def _replay_resources(
        self, schedule: BlockSchedule,
        replayable: List[Tuple[int, int, str]],
    ) -> List[Diagnostic]:
        slots = self._slots(replayable)
        busy: Dict[Tuple[int, int], int] = {}
        budget = [SEARCH_BUDGET]
        # Deepest slot the search failed at, with the conflict each of
        # its choices hit -- the most useful thing to report.
        deepest = [-1]
        deepest_conflicts: List[Tuple[int, object, int]] = []

        def admit(position: int) -> bool:
            if position == len(slots):
                return True
            if budget[0] <= 0:
                raise _BudgetExhausted
            budget[0] -= 1
            op_index, _, choices = slots[position]
            conflicts: List[Tuple[int, object, int]] = []
            for choice in choices:
                clash = None
                for abs_cycle, resource in choice:
                    holder = busy.get((abs_cycle, resource.index))
                    if holder is not None:
                        clash = (abs_cycle, resource, holder)
                        break
                if clash is not None:
                    conflicts.append(clash)
                    continue
                for abs_cycle, resource in choice:
                    busy[(abs_cycle, resource.index)] = op_index
                if admit(position + 1):
                    return True
                for abs_cycle, resource in choice:
                    del busy[(abs_cycle, resource.index)]
            if position > deepest[0]:
                deepest[0] = position
                deepest_conflicts[:] = conflicts
            return False

        label = schedule.block.label
        try:
            if admit(0):
                return []
        except _BudgetExhausted:
            return [Diagnostic(
                SEARCH_BUDGET_EXCEEDED, label,
                message=(
                    f"option-assignment search exceeded {SEARCH_BUDGET} "
                    "nodes without a verdict"
                ),
            )]

        op_index = slots[deepest[0]][0] if deepest[0] >= 0 else -1
        seen: set = set()
        diagnostics: List[Diagnostic] = []
        for abs_cycle, resource, holder in deepest_conflicts:
            key = (abs_cycle, resource.name, holder)
            if key in seen:
                continue
            seen.add(key)
            diagnostics.append(Diagnostic(
                RESOURCE_CONFLICT, label, op_index=op_index,
                cycle=abs_cycle, resource=resource.name,
                message=(
                    f"no conflict-free option: {resource.name} at cycle "
                    f"{abs_cycle} is held by op {holder}"
                ),
            ))
        if not diagnostics:
            diagnostics.append(Diagnostic(
                RESOURCE_CONFLICT, label, op_index=op_index,
                message="no conflict-free option assignment exists",
            ))
        return diagnostics

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def verify_block(self, schedule: BlockSchedule) -> List[Diagnostic]:
        """All diagnostics for one block schedule."""
        diagnostics, replayable = self._placement_and_classes(schedule)
        diagnostics.extend(
            self._check_latencies(schedule, self._graph(schedule.block))
        )
        diagnostics.extend(self._replay_resources(schedule, replayable))
        return diagnostics

    def verify(self, schedules: Iterable[BlockSchedule]) -> VerifyReport:
        """Check every schedule and aggregate a report."""
        from repro import obs

        report = VerifyReport(
            machine_name=self.machine.name, direction=self.direction
        )
        with obs.span(
            "verify:oracle", machine=self.machine.name,
            direction=self.direction,
        ) as sp:
            for schedule in schedules:
                report.blocks_checked += 1
                report.ops_checked += len(schedule.block)
                report.diagnostics.extend(self.verify_block(schedule))
        if obs.enabled():
            sp.set(
                blocks=report.blocks_checked, ops=report.ops_checked,
                diagnostics=len(report.diagnostics),
            )
            obs.count(
                "repro_verify_runs_total",
                help="Oracle verification runs.",
                machine=self.machine.name,
            )
            obs.count(
                "repro_verify_blocks_total", report.blocks_checked,
                help="Block schedules replayed by the oracle.",
                machine=self.machine.name,
            )
            for code, n in report.codes().items():
                obs.count(
                    "repro_verify_diagnostics_total", n,
                    help="Oracle diagnostics by code.", code=code,
                )
        return report


def verify_schedule(
    machine: Union[str, object],
    schedules,
    direction: str = "forward",
) -> VerifyReport:
    """Verify schedules against a machine's raw high-level description.

    ``machine`` is a registered machine name or a machine object.
    ``schedules`` may be a single :class:`BlockSchedule`, any iterable
    of them, or a result object carrying a ``schedules`` attribute
    (:class:`~repro.scheduler.schedule.RunResult`,
    :class:`~repro.service.batch.BatchResult`).  ``direction`` must
    match the scheduler direction that produced the schedules, because
    the two directions plan against different dependence models.
    """
    if isinstance(machine, str):
        from repro.machines import get_machine

        machine = get_machine(machine)
    items = getattr(schedules, "schedules", schedules)
    if items is None:
        raise ValueError(
            "result carries no schedules; run with keep_schedules=True"
        )
    if isinstance(items, BlockSchedule):
        items = [items]
    return ScheduleOracle(machine, direction=direction).verify(items)
