"""Tests for dominated-option removal (section 5, Table 8)."""

from repro.core.tables import OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.transforms.option_elim import prune_or_tree, remove_dominated_options


def u(resource, time):
    return ResourceUsage(time, resource)


class TestPruneOrTree:
    def test_identical_duplicate_removed(self, resources):
        a = resources.lookup("D0")
        option = ReservationTable((u(a, 0),))
        duplicate = ReservationTable((u(a, 0),))
        pruned = prune_or_tree(OrTree((option, duplicate)))
        assert len(pruned) == 1

    def test_superset_removed(self, resources):
        a, b = resources.lookup("D0"), resources.lookup("D1")
        small = ReservationTable((u(a, 0),))
        superset = ReservationTable((u(a, 0), u(b, 0)))
        pruned = prune_or_tree(OrTree((small, superset)))
        assert pruned.options == (small,)

    def test_subset_below_is_kept(self, resources):
        """A lower-priority *subset* is reachable and must survive."""
        a, b = resources.lookup("D0"), resources.lookup("D1")
        superset = ReservationTable((u(a, 0), u(b, 0)))
        small = ReservationTable((u(a, 0),))
        pruned = prune_or_tree(OrTree((superset, small)))
        assert len(pruned) == 2

    def test_unrelated_options_kept(self, resources):
        a, b = resources.lookup("D0"), resources.lookup("D1")
        tree = OrTree(
            (ReservationTable((u(a, 0),)), ReservationTable((u(b, 0),)))
        )
        assert prune_or_tree(tree) is tree

    def test_dominance_chain(self, resources):
        a, b, c = (resources.lookup(n) for n in ("D0", "D1", "M"))
        base = ReservationTable((u(a, 0),))
        mid = ReservationTable((u(a, 0), u(b, 0)))
        big = ReservationTable((u(a, 0), u(b, 0), u(c, 0)))
        pruned = prune_or_tree(OrTree((base, mid, big)))
        assert pruned.options == (base,)

    def test_priority_order_preserved(self, resources):
        a, b = resources.lookup("D0"), resources.lookup("D1")
        first = ReservationTable((u(a, 0),))
        second = ReservationTable((u(b, 0),))
        duplicate = ReservationTable((u(a, 0),))
        pruned = prune_or_tree(OrTree((first, second, duplicate)))
        assert pruned.options == (first, second)


class TestPA7100Accident:
    def test_duplicate_memory_option_removed(self):
        """The paper's retargeting accident disappears (Table 8)."""
        from repro.machines import get_machine

        mdes = get_machine("PA7100").build_andor()
        load = mdes.op_class("load")
        assert load.option_count() == 3  # with the duplicate
        cleaned = remove_dominated_options(mdes)
        assert cleaned.op_class("load").option_count() == 2

    def test_schedule_preserved(self, small_suite):
        assert small_suite.verify_schedule_invariance("PA7100")
