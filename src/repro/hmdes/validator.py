"""MDES lint: diagnostics for machine-description writers.

The paper's section 5 observes that evolving descriptions silently
accumulate exactly the defects its transformations later remove --
duplicated information, dead trees, dominated options.  An MDES author
would rather hear about them at description-build time; this module is
that tool.  ``python -m repro lint <file.hmdes>`` drives it.

Every diagnostic is advisory: all of these descriptions still produce
correct schedules (that is precisely why the defects go unnoticed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.core.expand import as_or_tree
from repro.core.mdes import Mdes
from repro.core.tables import AndOrTree, Constraint, OrTree, ReservationTable

#: Diagnostic severities.
WARNING = "warning"
INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: [{self.code}] {self.message}"


class MdesLinter:
    """Collects diagnostics over one machine description."""

    def __init__(self, mdes: Mdes) -> None:
        self.mdes = mdes
        self.diagnostics: List[Diagnostic] = []

    def _emit(self, severity: str, code: str, message: str) -> None:
        self.diagnostics.append(Diagnostic(severity, code, message))

    # ------------------------------------------------------------------
    # Individual checks
    # ------------------------------------------------------------------

    def check_dead_trees(self) -> None:
        """W001: named trees no operation class reaches."""
        for name in sorted(self.mdes.unused_trees):
            self._emit(
                WARNING,
                "W001",
                f"tree {name!r} is never referenced by any operation "
                "class (dead-code removal will delete it)",
            )

    def check_dominated_options(self) -> None:
        """W002: options shadowed by a higher-priority option."""
        for tree_name, tree in self._named_or_trees().items():
            for low_index, option in enumerate(tree.options):
                for high_index in range(low_index):
                    higher = tree.options[high_index]
                    if higher.dominates(option):
                        kind = (
                            "duplicates"
                            if higher.usage_set == option.usage_set
                            else "is a superset of"
                        )
                        self._emit(
                            WARNING,
                            "W002",
                            f"OR-tree {tree_name}: option "
                            f"{low_index + 1} {kind} option "
                            f"{high_index + 1} and can never be chosen",
                        )
                        break

    def check_unreferenced_resources(self) -> None:
        """W003: declared resources no reachable option ever uses."""
        used: Set[str] = set()
        for constraint in self.mdes.constraints():
            for option in as_or_tree(constraint).options:
                used.update(
                    usage.resource.name for usage in option.usages
                )
        for tree in self.mdes.unused_trees.values():
            for option in as_or_tree(tree).options:
                used.update(
                    usage.resource.name for usage in option.usages
                )
        for name in self.mdes.resources.names:
            if name not in used:
                self._emit(
                    WARNING,
                    "W003",
                    f"resource {name!r} is declared but never used",
                )

    def check_duplicate_structures(self) -> None:
        """W004: structurally identical but unshared constraint trees."""
        seen: Dict[Constraint, str] = {}
        for class_name in sorted(self.mdes.op_classes):
            constraint = self.mdes.op_class(class_name).constraint
            for earlier_constraint, earlier_class in seen.items():
                if (
                    constraint == earlier_constraint
                    and constraint is not earlier_constraint
                ):
                    self._emit(
                        WARNING,
                        "W004",
                        f"classes {earlier_class!r} and {class_name!r} "
                        "carry structurally identical but unshared "
                        "trees (redundancy elimination will merge them)",
                    )
                    break
            else:
                seen[constraint] = class_name

    def check_overlapping_andor_siblings(self) -> None:
        """W005: duplicated sub-OR-trees within one AND/OR-tree."""
        for class_name in sorted(self.mdes.op_classes):
            constraint = self.mdes.op_class(class_name).constraint
            if not isinstance(constraint, AndOrTree):
                continue
            structural: Dict[OrTree, int] = {}
            for position, child in enumerate(constraint.or_trees):
                if child in structural:
                    self._emit(
                        WARNING,
                        "W005",
                        f"class {class_name!r}: AND/OR children "
                        f"{structural[child] + 1} and {position + 1} are "
                        "structurally identical -- is one a stale copy?",
                    )
                structural.setdefault(child, position)

    def check_unshared_or_trees(self) -> None:
        """W006: structurally identical sub-OR-trees held as copies."""
        groups: Dict[OrTree, List[int]] = {}
        order: List[OrTree] = []
        for tree in self.mdes.or_trees():
            if tree not in groups:
                groups[tree] = []
                order.append(tree)
            groups[tree].append(id(tree))
        for tree in order:
            identities = set(groups[tree])
            if len(identities) > 1:
                label = tree.name or f"<{len(tree)}-option tree>"
                self._emit(
                    WARNING,
                    "W006",
                    f"{len(identities)} private copies of the same "
                    f"OR-tree ({label}) exist; reference one shared "
                    "tree instead",
                )

    def check_expansion_pressure(self, threshold: int = 64) -> None:
        """I101: flat option counts worth an AND/OR-tree."""
        for class_name in sorted(self.mdes.op_classes):
            op_class = self.mdes.op_class(class_name)
            if isinstance(op_class.constraint, OrTree):
                flat = len(op_class.constraint)
                if flat >= threshold:
                    self._emit(
                        INFO,
                        "I101",
                        f"class {class_name!r} enumerates {flat} flat "
                        "options; an AND/OR-tree would store "
                        "dramatically fewer (section 3)",
                    )

    def check_shift_potential(self) -> None:
        """I102: resources whose earliest usage is away from time zero."""
        from repro.transforms.time_shift import compute_shift_constants

        constants = compute_shift_constants(self.mdes)
        shiftable = sorted(
            resource.name
            for resource, constant in constants.items()
            if constant != 0
        )
        if shiftable:
            self._emit(
                INFO,
                "I102",
                "usage-time shifting would move these resources to time "
                f"zero: {', '.join(shiftable)}",
            )

    # ------------------------------------------------------------------

    def _named_or_trees(self) -> Dict[str, OrTree]:
        trees: Dict[str, OrTree] = {}
        for class_name in sorted(self.mdes.op_classes):
            constraint = self.mdes.op_class(class_name).constraint
            children = (
                constraint.or_trees
                if isinstance(constraint, AndOrTree)
                else (constraint,)
            )
            for position, child in enumerate(children):
                label = child.name or f"{class_name}[{position}]"
                trees.setdefault(label, child)
        return trees

    def run(self) -> List[Diagnostic]:
        """Run every check and return the findings."""
        self.check_dead_trees()
        self.check_dominated_options()
        self.check_unreferenced_resources()
        self.check_duplicate_structures()
        self.check_overlapping_andor_siblings()
        self.check_unshared_or_trees()
        self.check_expansion_pressure()
        self.check_shift_potential()
        return self.diagnostics


def lint_mdes(mdes: Mdes) -> List[Diagnostic]:
    """Lint a machine description."""
    return MdesLinter(mdes).run()


def lint_source(source: str) -> List[Diagnostic]:
    """Lint HMDES source text."""
    from repro.hmdes.translate import load_mdes

    return lint_mdes(load_mdes(source))
