"""The MDES query-engine protocol.

The paper's central claim is that the *low-level representation* is
interchangeable beneath a fixed scheduler query pattern: a scheduler only
ever asks "may this operation class issue at this cycle?" and, on
success, holds a reservation it may later undo.  This module pins that
query pattern down as one protocol so every representation the
reproduction implements -- scalar compiled tables, bit-vector compiled
tables, the finite-state automaton, Eichenberger-Davidson reduced
tables -- is a drop-in backend behind the same three calls:

* :meth:`QueryEngine.try_reserve` -- one scheduling attempt,
* :meth:`QueryEngine.release` -- undo a successful attempt (unscheduling),
* :attr:`QueryEngine.stats` -- the paper's :class:`CheckStats` counters,
  emitted identically by every backend so cross-backend comparisons are
  apples-to-apples.

Schedulers hold per-region resource state as an opaque object created by
:meth:`QueryEngine.new_state`; they never touch an RU map or a
:class:`~repro.lowlevel.checker.ConstraintChecker` directly.  Backends
that cannot wrap state modulo an initiation interval (the automaton --
paper section 10) advertise it via :attr:`QueryEngine.supports_modulo`
and fail fast with a typed error.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

from repro.errors import SchedulingError
from repro.lowlevel.bitvector import ModuloRUMap, RUMap
from repro.lowlevel.checker import CheckStats
from repro.lowlevel.compiled import CompiledConstraint, CompiledMdes


class Reservation:
    """The resources one successful scheduling attempt holds.

    A reservation remembers the state it was made against, so
    :meth:`QueryEngine.release` needs nothing but the handle -- the shape
    backtracking schedulers (operation scheduling, iterative modulo
    scheduling) want.  Iterating yields the absolute ``(cycle, mask)``
    pairs, which eviction heuristics inspect for overlap.  ``cycle``
    records the issue cycle the attempt succeeded at, which is what lets
    :meth:`QueryEngine.try_reserve_many` callers learn *which* candidate
    won without reverse-engineering the pairs.
    """

    __slots__ = ("state", "pairs", "cycle")

    def __init__(
        self,
        state: RUMap,
        pairs: Tuple[Tuple[int, int], ...],
        cycle: Optional[int] = None,
    ) -> None:
        self.state = state
        self.pairs = pairs
        self.cycle = cycle

    def __iter__(self):
        return iter(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{cycle}:{mask:#x}" for cycle, mask in self.pairs
        )
        return f"Reservation({inner})"


class QueryEngine(abc.ABC):
    """One constraint-check backend over one compiled description."""

    #: Registry name of the backend (instances may override).
    name: str = "engine"

    #: Whether :meth:`new_state` may wrap cycles modulo an initiation
    #: interval.  Backends without release-able state (the automaton)
    #: set this False -- the capability gap of paper section 10.
    supports_modulo: bool = True

    #: Whether the backend implements :meth:`try_reserve_many` /
    #: :meth:`probe_window` with a real bulk evaluation rather than the
    #: protocol-default scalar loop.  Purely informational (the defaults
    #: are always correct); surfaced by ``repro engines``.
    supports_vectorized: bool = False

    def __init__(
        self,
        compiled: CompiledMdes,
        stats: Optional[CheckStats] = None,
        name: Optional[str] = None,
    ) -> None:
        self.compiled = compiled
        self.stats = stats if stats is not None else CheckStats()
        if name is not None:
            self.name = name

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------

    def new_state(self, ii: Optional[int] = None) -> RUMap:
        """Fresh resource state for one scheduling region.

        ``ii`` requests a modulo reservation table wrapping at the given
        initiation interval; backends that cannot support it raise
        :class:`SchedulingError`.
        """
        if ii is None:
            return RUMap()
        if not self.supports_modulo:
            raise SchedulingError(
                f"backend {self.name!r} cannot schedule modulo an "
                "initiation interval: it has no way to release issued "
                "resources (paper section 10)"
            )
        return ModuloRUMap(ii)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def constraint_for_class(self, class_name: str) -> CompiledConstraint:
        """The compiled constraint behind a class (introspection only:
        lower-bound and eviction heuristics read its structure)."""
        return self.compiled.constraint_for_class(class_name)

    @abc.abstractmethod
    def try_reserve(
        self, state: RUMap, class_name: str, cycle: int
    ) -> Optional[Reservation]:
        """One scheduling attempt of ``class_name`` at ``cycle``.

        Returns the reservation made on success (release-able later), or
        ``None`` when the class cannot issue at this cycle.  Every
        backend accounts the attempt in :attr:`stats`.
        """

    def try_reserve_many(
        self, state: RUMap, class_name: str, cycles
    ) -> Optional[Reservation]:
        """First-feasible scheduling attempt over candidate ``cycles``.

        Semantically identical to calling :meth:`try_reserve` for each
        cycle in order and returning the first success: every candidate
        up to and including the winning one is accounted in
        :attr:`stats` (a batch probe of *k* cycles counts *k* attempts),
        and candidates after the winner are never examined.  Backends
        with :attr:`supports_vectorized` override this with a bulk
        evaluation producing the same reservations and the same
        counters, bit for bit.
        """
        for cycle in cycles:
            reservation = self.try_reserve(state, class_name, cycle)
            if reservation is not None:
                if reservation.cycle is None:
                    reservation.cycle = cycle
                return reservation
        return None

    def probe_window(
        self, state: RUMap, class_name: str, lo: int, hi: int
    ) -> int:
        """Read-only feasibility bitmask for the window ``[lo, hi)``.

        Bit *i* of the result is set when the class could issue at cycle
        ``lo + i`` against the *current* state (each probe is
        independent; nothing stays reserved).  Every probed cycle is one
        attempt in :attr:`stats`, exactly as a scalar probe loop would
        record it.
        """
        bitmask = 0
        for offset in range(max(0, hi - lo)):
            reservation = self.try_reserve(state, class_name, lo + offset)
            if reservation is not None:
                self.release(reservation)
                bitmask |= 1 << offset
        return bitmask

    def release(self, reservation: Reservation) -> None:
        """Undo a successful :meth:`try_reserve` (unscheduling)."""
        for cycle, mask in reservation.pairs:
            reservation.state.release(cycle, mask)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"machine={self.compiled.name!r})"
        )
