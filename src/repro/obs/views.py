"""Stats-object views: CheckStats/CacheStats published via the registry.

The paper's counters (:class:`~repro.lowlevel.checker.CheckStats`) and
the description cache's counters
(:class:`~repro.engine.cache.CacheStats`) predate the registry and are
incremented on hot paths where even a dict lookup per event would show
up in the benchmarks.  Rather than rewriting those increments, the
objects *register as views*: the registry pulls their current values at
collection time, so every exporter sees them while the increment path
stays a plain ``int += 1``.

Registrations hold weak references.  An engine or a per-worker cache
that goes away simply stops contributing samples; nothing unregisters
explicitly.  Multiple live objects with the same labels aggregate by
summation, which is exactly the fold semantics their ``merge`` methods
define.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, Iterable, List, Tuple

from repro.obs.registry import MetricsRegistry, Sample, _label_key

#: CheckStats attribute -> (metric name, help).
_CHECK_FIELDS = (
    ("attempts", "repro_check_attempts_total",
     "Scheduling attempts (one per (operation, cycle) trial)."),
    ("successes", "repro_check_successes_total",
     "Attempts that found every required resource."),
    ("options_checked", "repro_check_options_total",
     "Reservation table options examined."),
    ("resource_checks", "repro_check_resource_checks_total",
     "Individual (time, mask) availability tests."),
)

#: CacheStats attribute -> (metric name, extra labels, help).
_CACHE_FIELDS = (
    ("hits", "repro_cache_requests_total",
     (("outcome", "hit"), ("tier", "memory")),
     "Description-cache lookups by tier and outcome."),
    ("misses", "repro_cache_requests_total",
     (("outcome", "miss"), ("tier", "memory")),
     "Description-cache lookups by tier and outcome."),
    ("evictions", "repro_cache_evictions_total", (),
     "LRU entries evicted from the in-memory tier."),
    ("disk_hits", "repro_cache_requests_total",
     (("outcome", "hit"), ("tier", "disk")),
     "Description-cache lookups by tier and outcome."),
    ("disk_misses", "repro_cache_requests_total",
     (("outcome", "miss"), ("tier", "disk")),
     "Description-cache lookups by tier and outcome."),
    ("disk_stores", "repro_cache_disk_stores_total", (),
     "Compiled descriptions published to the disk tier."),
    ("disk_quarantined", "repro_cache_disk_quarantined_total", (),
     "Corrupt or version-mismatched disk entries moved aside."),
)


class StatsViews:
    """The weakly-referenced stats objects one registry exposes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._check: List[Tuple[weakref.ref, Tuple[Tuple[str, str], ...]]] = []
        self._cache: List[Tuple[weakref.ref, Tuple[Tuple[str, str], ...]]] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def _add(self, bucket, stats, labels: Dict[str, str]) -> None:
        key = _label_key(labels)
        with self._lock:
            bucket[:] = [(ref, lab) for ref, lab in bucket if ref() is not None]
            for ref, lab in bucket:
                if ref() is stats and lab == key:
                    return  # idempotent re-registration
            bucket.append((weakref.ref(stats), key))

    def add_check_stats(self, stats, **labels: str) -> None:
        self._add(self._check, stats, labels)

    def add_cache_stats(self, stats, **labels: str) -> None:
        self._add(self._cache, stats, labels)

    def install(self, registry: MetricsRegistry) -> None:
        """(Re-)register both view callbacks on a registry."""
        registry.register_view("repro.obs.views:check_stats",
                               self.check_samples)
        registry.register_view("repro.obs.views:cache_stats",
                               self.cache_samples)

    def clear(self) -> None:
        with self._lock:
            self._check = []
            self._cache = []

    # ------------------------------------------------------------------
    # Collection callbacks
    # ------------------------------------------------------------------

    def check_samples(self) -> Iterable[Sample]:
        totals: Dict[Tuple, Dict[str, float]] = {}
        with self._lock:
            live = [(ref(), lab) for ref, lab in self._check]
        for stats, labels in live:
            if stats is None:
                continue
            bucket = totals.setdefault(labels, {})
            for field, _, _ in _CHECK_FIELDS:
                bucket[field] = bucket.get(field, 0.0) + getattr(stats, field)
        for labels, fields in totals.items():
            for field, name, help_text in _CHECK_FIELDS:
                yield (name, labels, fields.get(field, 0.0), "counter",
                       help_text)

    def cache_samples(self) -> Iterable[Sample]:
        totals: Dict[Tuple, float] = {}
        helps: Dict[Tuple, str] = {}
        with self._lock:
            live = [(ref(), lab) for ref, lab in self._cache]
        for stats, labels in live:
            if stats is None:
                continue
            for field, name, extra, help_text in _CACHE_FIELDS:
                key = (name, tuple(sorted(labels + extra)))
                totals[key] = totals.get(key, 0.0) + getattr(stats, field)
                helps[key] = help_text
        for (name, labels), value in totals.items():
            yield name, labels, value, "counter", helps[(name, labels)]
