"""Minimal compiler IR the scheduler operates on.

The paper's scheduler consumes platform assembly code; ours consumes
:class:`~repro.ir.operation.Operation` streams grouped into
:class:`~repro.ir.block.BasicBlock` regions, with register and memory
dependences built by :mod:`~repro.ir.dependence`.
"""

from repro.ir.operation import Operation
from repro.ir.block import BasicBlock
from repro.ir.dependence import DependenceGraph, Edge, build_dependence_graph

__all__ = [
    "BasicBlock",
    "DependenceGraph",
    "Edge",
    "Operation",
    "build_dependence_graph",
]
