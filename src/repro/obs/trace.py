"""Hierarchical tracing spans.

A span is one timed region of the pipeline -- ``hmdes:parse``,
``transform:time-shift``, ``schedule:list`` -- with attributes attached
as the work discovers them (option-count deltas, backend names, chunk
indexes).  Spans nest through a thread-local stack: entering a span
makes it the parent of every span opened inside it, so the trace of one
CLI invocation is a tree whose shape *is* the pipeline's call structure.

Two extra affordances exist for the batch service's process pool:

* :meth:`Tracer.capture` runs a region against a **detached** stack and
  hands back the finished spans as plain dicts -- what a worker process
  sends home with its chunk results (dicts pickle; live spans carry a
  parent pointer into the worker's stack and must not).
* :meth:`Tracer.attach` grafts such dicts back under the current span.
  The driver attaches chunk traces in chunk order, so the merged tree is
  identical for 1 and N workers -- the same determinism contract the
  stats fold has.

Spans can additionally carry :mod:`tracemalloc` memory accounting
(``mem_peak_bytes`` / ``mem_net_bytes`` attributes) when opened with
``memory=True`` *and* memory profiling is enabled process-wide (see
:func:`repro.obs.enable_memory`).  Memory frames nest on their own
per-thread stack so a child's allocation peak propagates into every
enclosing memory span, even though ``tracemalloc`` only exposes a
single global peak.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from typing import Any, Dict, List, Optional


class Span:
    """One timed, attributed region; a node in the trace tree."""

    __slots__ = ("name", "attrs", "children", "seconds", "start_ts", "_t0")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.seconds: float = 0.0
        self.start_ts: float = 0.0
        self._t0: float = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (size deltas, counts, outcomes)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start_ts,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(data["name"], data.get("attrs"))
        span.start_ts = float(data.get("start", 0.0))
        span.seconds = float(data.get("seconds", 0.0))
        span.children = [
            cls.from_dict(child) for child in data.get("children", ())
        ]
        return span

    def walk(self):
        """This span, then every descendant, depth-first in order."""
        yield self
        for child in self.children:
            for span in child.walk():
                yield span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.seconds * 1000:.2f}ms, "
            f"{len(self.children)} child(ren))"
        )


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled.

    One module-level instance serves every call site: ``__enter__``
    returns itself, ``set`` discards, iteration yields nothing.  The
    disabled fast path is therefore one flag test and one identity
    return -- no allocation, no clock read.
    """

    __slots__ = ()

    name = ""
    attrs: Dict[str, Any] = {}
    children: List[Span] = []
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __repr__(self) -> str:
        return "NullSpan()"


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that pushes/pops one span on the tracer."""

    __slots__ = ("_tracer", "span", "_memory")

    def __init__(
        self, tracer: "Tracer", span: Span, memory: bool = False
    ) -> None:
        self._tracer = tracer
        self.span = span
        self._memory = memory

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        if self._memory:
            self._tracer._mem_enter()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        if self._memory:
            self._tracer._mem_exit(self.span)
        self._tracer._pop(self.span)


class _Capture:
    """Detached trace context; ``spans`` holds the finished dicts."""

    __slots__ = ("_tracer", "_saved", "spans")

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer
        self._saved: Optional[List[Span]] = None
        self.spans: List[Dict[str, Any]] = []

    def __enter__(self) -> "_Capture":
        local = self._tracer._local
        self._saved = getattr(local, "stack", None)
        local.stack = [Span("<capture>")]
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        local = self._tracer._local
        root = local.stack[0]
        self.spans = [span.to_dict() for span in root.children]
        if self._saved is None:
            del local.stack
        else:
            local.stack = self._saved


class _NullCapture:
    """Disabled-mode stand-in: collects nothing, costs nothing."""

    __slots__ = ()

    spans: List[Dict[str, Any]] = []

    def __enter__(self) -> "_NullCapture":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_CAPTURE = _NullCapture()


class Tracer:
    """Per-thread span stacks plus the shared list of finished roots."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: List[Span] = []

    # ------------------------------------------------------------------
    # Stack plumbing
    # ------------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        span.start_ts = time.time()
        span._t0 = time.perf_counter()
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.seconds = time.perf_counter() - span._t0
        stack = self._stack()
        # Tolerate a mismatched pop (a generator suspended mid-span)
        # rather than corrupting the whole tree.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # ------------------------------------------------------------------
    # Memory frames (tracemalloc peak/net accounting per span)
    # ------------------------------------------------------------------

    def _mem_stack(self) -> List[List[int]]:
        stack = getattr(self._local, "memstack", None)
        if stack is None:
            stack = []
            self._local.memstack = stack
        return stack

    def _mem_enter(self) -> None:
        if not tracemalloc.is_tracing():
            tracemalloc.start()
        current, _ = tracemalloc.get_traced_memory()
        # Frame: [bytes traced at entry, running absolute peak].  The
        # running peak folds in child frames' peaks, because
        # ``reset_peak`` below erases the global peak on every
        # enter/exit boundary.
        self._mem_stack().append([current, current])
        tracemalloc.reset_peak()

    def _mem_exit(self, span: Span) -> None:
        stack = self._mem_stack()
        if not stack:
            return
        current, peak = tracemalloc.get_traced_memory()
        entry, running_peak = stack.pop()
        peak_abs = max(running_peak, peak, current)
        span.attrs["mem_net_bytes"] = current - entry
        span.attrs["mem_peak_bytes"] = max(0, peak_abs - entry)
        if stack:
            parent = stack[-1]
            parent[1] = max(parent[1], peak_abs)
        tracemalloc.reset_peak()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def span(self, name: str, memory: bool = False, **attrs: Any) -> _ActiveSpan:
        """Open a child of the current span (or a new root).

        With ``memory=True`` the span also records ``tracemalloc``
        peak/net bytes for its region into ``mem_peak_bytes`` /
        ``mem_net_bytes`` attributes.
        """
        return _ActiveSpan(self, Span(name, attrs), memory=memory)

    def current(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def capture(self) -> _Capture:
        """Trace a region detached from the ambient stack."""
        return _Capture(self)

    def attach(self, span_dicts: List[Dict[str, Any]]) -> None:
        """Graft captured span dicts under the current span (or roots)."""
        spans = [Span.from_dict(data) for data in span_dicts]
        current = self.current()
        if current is not None:
            current.children.extend(spans)
        else:
            with self._lock:
                self.roots.extend(spans)

    def reset(self) -> None:
        """Drop finished roots and this thread's stacks."""
        with self._lock:
            self.roots = []
        if getattr(self._local, "stack", None) is not None:
            del self._local.stack
        if getattr(self._local, "memstack", None) is not None:
            del self._local.memstack

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------

    def walk(self):
        """Every finished span, depth-first across the roots."""
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            for span in root.walk():
                yield span

    def seconds_by_name(self) -> Dict[str, float]:
        """Total wall seconds per span name, across the whole trace."""
        totals: Dict[str, float] = {}
        for span in self.walk():
            totals[span.name] = totals.get(span.name, 0.0) + span.seconds
        return totals
