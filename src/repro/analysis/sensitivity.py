"""Sensitivity studies.

Section 4 argues the benefit of the AND/OR-tree representation and the
transformations "should only increase as more scheduling attempts are
required, since they speed up detection of resource-constraint
conflicts".  These sweeps vary the workload's parallelism and shape to
change the attempt rate and measure how the check reduction responds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.transforms.pipeline import staged_mdes
from repro.lowlevel.compiled import compile_mdes
from repro.machines import get_machine
from repro.scheduler import schedule_workload
from repro.workloads import WorkloadConfig, generate_blocks


@dataclass(frozen=True)
class SweepPoint:
    """One configuration's outcome."""

    label: str
    attempts_per_op: float
    unopt_checks: float
    opt_checks: float

    @property
    def reduction_pct(self) -> float:
        """Check reduction, unoptimized OR -> fully optimized AND/OR."""
        if not self.unopt_checks:
            return 0.0
        return (
            (self.unopt_checks - self.opt_checks)
            / self.unopt_checks
            * 100.0
        )


def _variant(machine, **overrides):
    """A machine copy with workload knobs overridden, caches preserved."""
    return dataclasses.replace(
        machine,
        _mdes=machine.build(),
        _mdes_andor=machine.build_andor(),
        _mdes_or=machine.build_or(),
        **overrides,
    )


def _measure(machine, label: str, total_ops: int,
             seed: int) -> SweepPoint:
    blocks = generate_blocks(
        machine, WorkloadConfig(total_ops=total_ops, seed=seed)
    )
    unopt = compile_mdes(machine.build_or(), bitvector=False)
    opt = compile_mdes(
        staged_mdes(machine.build_andor(), 4), bitvector=True
    )
    unopt_run = schedule_workload(machine, unopt, blocks)
    opt_run = schedule_workload(machine, opt, blocks)
    return SweepPoint(
        label=label,
        attempts_per_op=unopt_run.attempts_per_op,
        unopt_checks=unopt_run.stats.checks_per_attempt,
        opt_checks=opt_run.stats.checks_per_attempt,
    )


def ilp_sweep(
    machine_name: str,
    flow_probabilities: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
    total_ops: int = 4000,
    seed: int = 20161202,
) -> List[SweepPoint]:
    """Vary available parallelism (lower flow probability = more ILP =
    more failed attempts) and measure the check reduction."""
    machine = get_machine(machine_name)
    return [
        _measure(
            _variant(machine, flow_probability=probability),
            f"flow={probability:.1f}",
            total_ops,
            seed,
        )
        for probability in flow_probabilities
    ]


def block_size_sweep(
    machine_name: str,
    size_ranges: Sequence[Tuple[int, int]] = ((2, 5), (4, 10), (8, 20)),
    total_ops: int = 4000,
    seed: int = 20161202,
) -> List[SweepPoint]:
    """Vary region size (bigger blocks = more ready operations competing
    per cycle = more failed attempts)."""
    machine = get_machine(machine_name)
    return [
        _measure(
            _variant(machine, block_size_range=size_range),
            f"block={size_range[0]}-{size_range[1]}",
            total_ops,
            seed,
        )
        for size_range in size_ranges
    ]


def scale_sweep(
    machine_name: str,
    op_counts: Sequence[int] = (1000, 4000, 16000),
    seed: int = 20161202,
) -> List[SweepPoint]:
    """Vary workload size: the per-attempt statistics must be stable
    (they are intensive quantities), which validates using scaled-down
    workloads in tests."""
    machine = get_machine(machine_name)
    return [
        _measure(machine, f"ops={count}", count, seed)
        for count in op_counts
    ]
