"""Compilation of constraint trees into the low-level query form.

A compiled reservation table option is a flat list of ``(time, mask)``
checks.  Two compilation modes mirror the paper's section 6 comparison:

* **scalar** -- one check per resource usage (a cycle/resource pair), the
  form used before bit-vectors are introduced.
* **bit-vector** -- usages that fall in the same cycle are merged into a
  single cycle/resource-vector pair, so one check covers all of them.

Check order follows the stored usage order of the source option (merged
checks take the position of their first usage), so the usage-sorting
transformation of section 7 directly controls the compiled check order.

Compilation preserves sharing: constraint trees that are the same object in
the source MDES compile to the same compiled object, which both mirrors the
paper's pointer-sharing internal representation and is what the layout
model counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.mdes import Mdes
from repro.core.tables import AndOrTree, Constraint, OrTree, ReservationTable


@dataclass(frozen=True)
class CompiledOption:
    """One reservation table option in low-level form.

    Attributes:
        checks: ``(relative_time, resource_mask)`` pairs in check order.
        reserve_mask_by_time: The union of masks per relative time, used to
            reserve (or release) the whole option at once.
    """

    checks: Tuple[Tuple[int, int], ...]
    reserve_mask_by_time: Tuple[Tuple[int, int], ...]

    @staticmethod
    def from_table(table: ReservationTable, bitvector: bool) -> "CompiledOption":
        """Compile one reservation table option."""
        if bitvector:
            order: List[int] = []
            merged: Dict[int, int] = {}
            for usage in table.usages:
                if usage.time not in merged:
                    merged[usage.time] = 0
                    order.append(usage.time)
                merged[usage.time] |= usage.resource.mask
            checks = tuple((time, merged[time]) for time in order)
        else:
            checks = tuple(
                (usage.time, usage.resource.mask) for usage in table.usages
            )
        reserve: Dict[int, int] = {}
        for time, mask in checks:
            reserve[time] = reserve.get(time, 0) | mask
        return CompiledOption(checks, tuple(sorted(reserve.items())))

    def __len__(self) -> int:
        return len(self.checks)


@dataclass(frozen=True)
class CompiledOrTree:
    """A compiled prioritized option list."""

    options: Tuple[CompiledOption, ...]

    def __len__(self) -> int:
        return len(self.options)


@dataclass(frozen=True)
class CompiledAndOrTree:
    """A compiled AND of OR-trees."""

    or_trees: Tuple[CompiledOrTree, ...]

    def __len__(self) -> int:
        return len(self.or_trees)


#: A compiled constraint in either representation.
CompiledConstraint = Union[CompiledOrTree, CompiledAndOrTree]


@dataclass
class CompiledMdes:
    """A machine description compiled for constraint checking.

    Attributes:
        source: The high-level :class:`Mdes` this was compiled from.
        bitvector: Whether same-cycle usages were merged into one check.
        constraints: Operation class name -> compiled constraint.
    """

    source: Mdes
    bitvector: bool
    constraints: Dict[str, CompiledConstraint] = field(default_factory=dict)
    #: Compiled forms of the description's unused (dead) trees.  The
    #: checker never consults them, but they are loaded into compiler
    #: memory all the same -- which is why dead-code removal (section 5)
    #: shrinks the representation.
    unused: Dict[str, CompiledConstraint] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Machine name of the underlying description."""
        return self.source.name

    def constraint_for_class(self, class_name: str) -> CompiledConstraint:
        """Compiled constraint of an operation class."""
        return self.constraints[class_name]

    def constraint_for_opcode(self, opcode: str) -> CompiledConstraint:
        """Compiled constraint of the class an opcode maps to."""
        return self.constraints[self.source.opcode_map[opcode]]

    def class_name_for_opcode(self, opcode: str) -> str:
        """Operation class name for an opcode."""
        return self.source.opcode_map[opcode]

    def latency_for_opcode(self, opcode: str) -> int:
        """Destination latency for an opcode."""
        return self.source.latency_for_opcode(opcode)

    def unique_objects(self) -> Tuple[List[CompiledConstraint],
                                      List[CompiledOrTree],
                                      List[CompiledOption]]:
        """Distinct (by identity) constraints, OR-trees and options.

        The identity distinction matters: structurally equal but unshared
        trees occupy memory twice, which is exactly what the redundancy
        transformation (section 5) eliminates.
        """
        constraints: Dict[int, CompiledConstraint] = {}
        or_trees: Dict[int, CompiledOrTree] = {}
        options: Dict[int, CompiledOption] = {}
        for constraint in self.constraints.values():
            constraints.setdefault(id(constraint), constraint)
        for constraint in self.unused.values():
            constraints.setdefault(id(constraint), constraint)
        for constraint in constraints.values():
            if isinstance(constraint, CompiledAndOrTree):
                for tree in constraint.or_trees:
                    or_trees.setdefault(id(tree), tree)
            else:
                or_trees.setdefault(id(constraint), constraint)
        for tree in or_trees.values():
            for option in tree.options:
                options.setdefault(id(option), option)
        return (
            list(constraints.values()),
            list(or_trees.values()),
            list(options.values()),
        )


def compile_mdes(mdes: Mdes, bitvector: bool = True) -> CompiledMdes:
    """Compile a machine description for constraint checking.

    Sharing in the source (same tree object reachable from several places)
    is preserved in the compiled form.
    """
    option_cache: Dict[int, CompiledOption] = {}
    or_cache: Dict[int, CompiledOrTree] = {}
    constraint_cache: Dict[int, CompiledConstraint] = {}

    def compile_option(table: ReservationTable) -> CompiledOption:
        key = id(table)
        if key not in option_cache:
            option_cache[key] = CompiledOption.from_table(table, bitvector)
        return option_cache[key]

    def compile_or(tree: OrTree) -> CompiledOrTree:
        key = id(tree)
        if key not in or_cache:
            or_cache[key] = CompiledOrTree(
                tuple(compile_option(option) for option in tree.options)
            )
        return or_cache[key]

    def compile_constraint(constraint: Constraint) -> CompiledConstraint:
        key = id(constraint)
        if key not in constraint_cache:
            if isinstance(constraint, AndOrTree):
                compiled: CompiledConstraint = CompiledAndOrTree(
                    tuple(compile_or(tree) for tree in constraint.or_trees)
                )
            else:
                compiled = compile_or(constraint)
            constraint_cache[key] = compiled
        return constraint_cache[key]

    compiled = CompiledMdes(source=mdes, bitvector=bitvector)
    for class_name, op_class in mdes.op_classes.items():
        compiled.constraints[class_name] = compile_constraint(
            op_class.constraint
        )
    for tree_name, tree in mdes.unused_trees.items():
        compiled.unused[tree_name] = compile_constraint(tree)
    return compiled
