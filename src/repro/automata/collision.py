"""Forbidden latencies and collision vectors (section 7's theory).

For an ordered pair of reservation table options (A, B), a latency ``t``
is *forbidden* -- an operation using B cannot be initiated ``t`` cycles
after one using A -- iff A and B use some common resource at times ``i``
and ``j`` with ``i >= j`` and ``i - j = t``.  The set of all forbidden
latencies is the pair's *collision vector*.

Only collision vectors matter to schedule legality; this is what licenses
both the usage-time transformation (section 7) and the Eichenberger-
Davidson option reduction (:mod:`repro.eichenberger`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.core.expand import as_or_tree
from repro.core.mdes import Mdes
from repro.core.tables import ReservationTable


def forbidden_latencies(
    first: ReservationTable, second: ReservationTable
) -> FrozenSet[int]:
    """Forbidden initiation distances for issuing ``second`` after ``first``."""
    forbidden = set()
    for usage_a in first.usages:
        for usage_b in second.usages:
            if usage_a.resource is usage_b.resource:
                distance = usage_a.time - usage_b.time
                if distance >= 0:
                    forbidden.add(distance)
    return frozenset(forbidden)


#: Alias matching the paper's terminology.
collision_vector = forbidden_latencies


def mdes_options(mdes: Mdes) -> List[ReservationTable]:
    """Every reservation table option of a description, in flat form.

    AND/OR constraints are expanded first, so the result covers every
    resource-usage combination an operation might reserve.
    """
    options: List[ReservationTable] = []
    for class_name in sorted(mdes.op_classes):
        constraint = as_or_tree(mdes.op_class(class_name).constraint)
        options.extend(constraint.options)
    return options


def collision_matrix(
    options: List[ReservationTable],
) -> Dict[Tuple[int, int], FrozenSet[int]]:
    """All pairwise collision vectors, keyed by option indices."""
    return {
        (i, j): forbidden_latencies(options[i], options[j])
        for i in range(len(options))
        for j in range(len(options))
    }
