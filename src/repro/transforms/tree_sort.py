"""AND/OR sub-tree ordering for early conflict detection (section 8).

The AND-level loop aborts an attempt at the first OR-tree with no
available option, so the OR-tree most likely to conflict should be checked
first.  The paper's heuristic sort criteria, in order:

1. earliest usage time in the tree (after usage-time shifting, most
   conflicts occur at time zero);
2. fewer options first (a one-option tree is the cheapest possible
   conflict detector);
3. more widely shared trees first (sharing across AND/OR-trees signals a
   heavily used resource group);
4. the originally specified order breaks remaining ties.

Reordering sub-trees of an AND never changes which options are chosen --
each OR-tree is satisfied independently -- so the schedule is preserved.
"""

from __future__ import annotations

from typing import Dict

from repro.core.mdes import Mdes
from repro.core.tables import AndOrTree, Constraint, OrTree


def sort_key(tree: OrTree, sharers: int, original_index: int):
    """The paper's four-level sort key for one sub-OR-tree."""
    return (tree.min_time(), len(tree), -sharers, original_index)


def sort_and_or_trees(mdes: Mdes) -> Mdes:
    """Reorder the OR-trees of every AND/OR-tree in the description."""
    sharer_counts: Dict[int, int] = mdes.or_tree_sharers()

    def rewrite(constraint: Constraint) -> Constraint:
        if not isinstance(constraint, AndOrTree):
            return constraint
        indexed = list(enumerate(constraint.or_trees))
        indexed.sort(
            key=lambda pair: sort_key(
                pair[1], sharer_counts.get(id(pair[1]), 1), pair[0]
            )
        )
        reordered = tuple(tree for _, tree in indexed)
        if reordered == constraint.or_trees:
            return constraint
        return AndOrTree(reordered, name=constraint.name)

    return mdes.map_constraints(rewrite)
