"""Tests for ``repro.obs.perf`` + ``repro.obs.bench``.

Covers the normalized :class:`BenchRecord` schema, the rank-sum
regression test (exact permutation and normal-approximation branches),
baseline/history persistence, comparison statuses, the summary
artifact, and the bench driver end-to-end -- including the acceptance
requirement that an injected slowdown is detected as a regression while
a clean re-run against the same baseline passes.
"""

import json

import pytest

from repro.obs import bench, perf


def _rec(metric, values, direction="lower", tolerance=0.25, **kw):
    return perf.make_record(
        "unit", metric, list(values),
        direction=direction, tolerance=tolerance, env={}, **kw
    )


class TestBenchRecord:
    def test_round_trip(self):
        rec = _rec("compile.seconds", [0.2, 0.21, 0.19])
        again = perf.BenchRecord.from_dict(rec.to_dict())
        assert again == rec
        assert json.dumps(rec.to_dict())

    def test_defaults_fill_values_and_repeats(self):
        rec = perf.BenchRecord(
            suite="unit", metric="m", unit="s", value=1.5
        )
        assert rec.values == [1.5]
        assert rec.repeats == 1

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            perf.BenchRecord(
                suite="unit", metric="m", unit="s", value=1.0,
                direction="sideways",
            )

    def test_representative_by_direction(self):
        values = [3.0, 1.0, 2.0]
        assert perf.representative(values, "lower") == 1.0
        assert perf.representative(values, "higher") == 3.0
        assert perf.representative(values, "info") == pytest.approx(2.0)

    def test_env_fingerprint_has_required_keys(self):
        env = perf.env_fingerprint()
        for key in ("git_sha", "python", "platform", "cpu_count"):
            assert key in env

    def test_records_from_payload_flattens_and_skips_non_numeric(self):
        payload = {
            "machine": "PA7100",          # string: skipped
            "passed": True,               # bool: skipped
            "seconds": 1.25,
            "detail": {"nodes": 42},
        }
        records = perf.records_from_payload("suiteX", payload, env={})
        by_metric = {r.metric: r for r in records}
        assert set(by_metric) == {"suiteX.seconds", "suiteX.detail.nodes"}
        assert by_metric["suiteX.seconds"].value == 1.25
        assert by_metric["suiteX.detail.nodes"].direction == "info"
        assert all(r.suite == "suiteX" for r in records)


class TestRankTest:
    def test_small_samples_return_none(self):
        assert perf.rank_p_greater([1.0], [1.0, 2.0]) is None
        assert perf.rank_p_greater([1.0, 2.0], [2.0]) is None

    def test_identical_samples_are_not_significant(self):
        p = perf.rank_p_greater([1.0, 1.0, 1.0], [1.0, 1.0, 1.0])
        assert p is not None and p > 0.4

    def test_complete_separation_3v3_hits_exactly_alpha(self):
        # C(6,3) = 20 arrangements; complete separation has p = 1/20,
        # which is why the regression decision uses p <= alpha.
        p = perf.rank_p_greater([2.0, 2.1, 2.2], [1.0, 1.1, 1.2])
        assert p == pytest.approx(0.05)
        assert p <= perf.DEFAULT_ALPHA

    def test_wrong_direction_is_insignificant(self):
        p = perf.rank_p_greater([1.0, 1.1, 1.2], [2.0, 2.1, 2.2])
        assert p is not None and p > 0.9

    def test_normal_approximation_branch(self):
        xs = [2.0 + i * 0.01 for i in range(12)]
        ys = [1.0 + i * 0.01 for i in range(12)]
        p = perf.rank_p_greater(xs, ys)  # pooled n=24 > exact limit
        assert p is not None and p < 0.001

    def test_normal_approximation_handles_all_ties(self):
        p = perf.rank_p_greater([1.0] * 12, [1.0] * 12)
        assert p is not None and p > 0.4


class TestCompare:
    def test_ok_within_tolerance(self):
        base = _rec("m", [1.0, 1.0, 1.0])
        cur = _rec("m", [1.1, 1.1, 1.1])
        (cmp,) = perf.compare_records([cur], {"m": base})
        assert cmp.status == "ok"
        assert cmp.delta_pct == pytest.approx(10.0)

    def test_confirmed_regression(self):
        base = _rec("m", [1.0, 1.01, 1.02])
        cur = _rec("m", [2.0, 2.01, 2.02])
        (cmp,) = perf.compare_records([cur], {"m": base})
        assert cmp.status == "regression"
        assert cmp.p_value is not None and cmp.p_value <= 0.05

    def test_breach_without_significance_is_suspect(self):
        # Representative breaches the threshold but samples overlap, so
        # the rank test cannot confirm: flagged, not failing.
        base = _rec("m", [1.0, 2.0, 3.0])
        cur = _rec("m", [1.4, 2.2, 3.1])
        (cmp,) = perf.compare_records([cur], {"m": base})
        assert cmp.status == "suspect"

    def test_higher_is_better_regression(self):
        base = _rec("speedup", [4.0, 4.1, 4.2], direction="higher")
        cur = _rec("speedup", [2.0, 2.1, 2.2], direction="higher")
        (cmp,) = perf.compare_records([cur], {"speedup": base})
        assert cmp.status == "regression"

    def test_improvement_reported(self):
        base = _rec("m", [2.0, 2.1, 2.2])
        cur = _rec("m", [1.0, 1.1, 1.2])
        (cmp,) = perf.compare_records([cur], {"m": base})
        assert cmp.status == "improved"

    def test_new_and_missing_metrics(self):
        base = _rec("gone", [1.0])
        cur = _rec("fresh", [1.0])
        statuses = {
            c.metric: c.status
            for c in perf.compare_records([cur], {"gone": base})
        }
        assert statuses == {"fresh": "new", "gone": "missing"}

    def test_info_metrics_never_regress(self):
        base = _rec("nodes", [100.0], direction="info")
        cur = _rec("nodes", [100000.0], direction="info")
        (cmp,) = perf.compare_records([cur], {"nodes": base})
        assert cmp.status == "info"

    def test_scale_mismatch_is_neutralized(self):
        # A smoke-scale run against a full-scale baseline times a
        # different workload; even a huge delta must not fail the gate.
        base = perf.make_record(
            "unit", "m", [1.0, 1.01, 1.02], env={"smoke": False}
        )
        cur = perf.make_record(
            "unit", "m", [9.0, 9.01, 9.02], env={"smoke": True}
        )
        (cmp,) = perf.compare_records([cur], {"m": base})
        assert cmp.status == "scale-mismatch"
        assert perf.regressions([cmp]) == []

    def test_zero_baseline_is_info(self):
        base = _rec("m", [0.0, 0.0, 0.0])
        cur = _rec("m", [5.0, 5.0, 5.0])
        (cmp,) = perf.compare_records([cur], {"m": base})
        assert cmp.status == "info"

    def test_regressions_filter(self):
        base = {"m": _rec("m", [1.0, 1.01, 1.02])}
        cur = [_rec("m", [2.0, 2.01, 2.02])]
        cmps = perf.compare_records(cur, base)
        assert [c.metric for c in perf.regressions(cmps)] == ["m"]

    def test_format_comparisons_is_tabular(self):
        base = {"m": _rec("m", [1.0, 1.01, 1.02])}
        cmps = perf.compare_records([_rec("m", [2.0, 2.01, 2.02])], base)
        text = perf.format_comparisons(cmps)
        assert "regression" in text
        assert "m" in text


class TestPersistence:
    def test_history_append_and_load(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        first = [_rec("a", [1.0])]
        second = [_rec("b", [2.0])]
        perf.append_history(str(path), first)
        perf.append_history(str(path), second)
        loaded = perf.load_history(str(path))
        assert [r.metric for r in loaded] == ["a", "b"]
        assert loaded[0] == first[0]

    def test_load_history_missing_file(self, tmp_path):
        assert perf.load_history(str(tmp_path / "nope.jsonl")) == []

    def test_baseline_write_and_load(self, tmp_path):
        path = tmp_path / "base.json"
        records = [_rec("a", [1.0, 1.1]), _rec("b", [2.0])]
        perf.write_baseline(str(path), records)
        loaded = perf.load_baseline(str(path))
        assert set(loaded) == {"a", "b"}
        assert loaded["a"] == records[0]
        data = json.loads(path.read_text())
        assert data["version"] == 1

    def test_write_summary_shape(self, tmp_path):
        path = tmp_path / "summary.json"
        base = {"m": _rec("m", [1.0, 1.01, 1.02])}
        cur = [_rec("m", [2.0, 2.01, 2.02]), _rec("extra", [3.0])]
        cmps = perf.compare_records(cur, base)
        perf.write_summary(str(path), cur, cmps, env={"git_sha": "x"})
        data = json.loads(path.read_text())
        assert data["env"] == {"git_sha": "x"}
        m = data["metrics"]["m"]
        assert m["status"] == "regression"
        assert m["baseline"] == 1.0
        assert m["delta_pct"] == pytest.approx(100.0)
        assert data["metrics"]["extra"]["status"] == "new"


def _toy_kernel(name="toy.sleep", seconds=0.0):
    import time

    def setup(smoke):
        def run():
            if seconds:
                time.sleep(seconds)
            return {"ops": 10.0}
        return run

    return bench.Kernel(
        name=name,
        description="test kernel",
        setup=setup,
        extra={"ops": bench.MetricMeta(unit="ops", direction="info")},
    )


class TestBenchDriver:
    def test_injection_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_INJECT", "exact.pentium=0.25")
        assert bench.parse_injection() == ("exact.pentium", 0.25)
        monkeypatch.delenv("REPRO_BENCH_INJECT")
        assert bench.parse_injection() is None
        with pytest.raises(ValueError):
            bench.parse_injection("exact.pentium")

    def test_select_kernels_substring_and_unknown(self):
        names = [k.name for k in bench.select_kernels(["exact"])]
        assert names and all("exact" in n for n in names)
        with pytest.raises(ValueError):
            bench.select_kernels(["no-such-kernel"])

    def test_curated_suite_metric_metadata(self):
        names = [k.name for k in bench.KERNELS]
        assert len(names) == len(set(names))
        for kernel in bench.KERNELS:
            metrics = kernel.metrics()
            assert metrics
            assert all(m.startswith(kernel.name + ".") for m in metrics)
            if kernel.seconds is not None:
                assert kernel.seconds.direction in ("lower", "higher", "info")
            for meta in kernel.extra.values():
                assert meta.direction in ("lower", "higher", "info")

    def test_run_suite_records_have_env_and_repeats(self):
        records, skipped = bench.run_suite(
            repeats=2, smoke=True, kernels=[_toy_kernel()]
        )
        assert skipped == []
        by_metric = {r.metric: r for r in records}
        assert set(by_metric) == {"toy.sleep.seconds", "toy.sleep.ops"}
        sec = by_metric["toy.sleep.seconds"]
        assert sec.repeats == 2 and len(sec.values) == 2
        assert sec.direction == "lower"
        assert "git_sha" in sec.env
        assert by_metric["toy.sleep.ops"].value == 10.0

    def test_unavailable_kernel_is_skipped_not_fatal(self):
        def setup(smoke):
            raise bench.KernelUnavailable("no numpy here")

        kernel = bench.Kernel(
            name="toy.gone", description="always skips", setup=setup
        )
        records, skipped = bench.run_suite(
            repeats=2, smoke=True, kernels=[kernel]
        )
        assert records == []
        assert skipped == [("toy.gone", "no numpy here")]

    def test_injected_slowdown_trips_regression_end_to_end(self):
        """The acceptance scenario at unit scale: clean run passes
        against its own baseline, injected run fails."""
        kernels = [_toy_kernel()]
        baseline, _ = bench.run_suite(
            repeats=3, smoke=True, kernels=kernels
        )
        base_map = {r.metric: r for r in baseline}

        clean, _ = bench.run_suite(repeats=3, smoke=True, kernels=kernels)
        clean_cmp = perf.compare_records(clean, base_map)
        assert perf.regressions(clean_cmp) == []

        slow, _ = bench.run_suite(
            repeats=3, smoke=True, kernels=kernels,
            inject=("toy", 0.05),
        )
        slow_cmp = perf.compare_records(slow, base_map)
        regs = perf.regressions(slow_cmp)
        assert [c.metric for c in regs] == ["toy.sleep.seconds"]
        assert regs[0].p_value is not None and regs[0].p_value <= 0.05

    def test_injection_only_hits_matching_kernels(self):
        kernels = [_toy_kernel("toy.a"), _toy_kernel("toy.b")]
        records, _ = bench.run_suite(
            repeats=2, smoke=True, kernels=kernels,
            inject=("toy.a", 0.05),
        )
        by_metric = {r.metric: r for r in records}
        assert by_metric["toy.a.seconds"].value >= 0.05
        assert by_metric["toy.b.seconds"].value < 0.05
