"""Shared fixtures for the benchmark harness.

Every benchmark regenerates its paper table/figure from a shared
:class:`ExperimentSuite` (scale controlled by ``REPRO_BENCH_OPS``,
default 20000 operations per machine) and writes the artifact to
``benchmarks/results/``.  The timed kernels run at a smaller scale so
``pytest benchmarks/ --benchmark-only`` stays fast.
"""

import os
from pathlib import Path

import pytest

from repro.analysis import ExperimentSuite
from repro.lowlevel.compiled import compile_mdes
from repro.machines import get_machine
from repro.workloads import WorkloadConfig, generate_blocks

#: Operations per machine for the reported tables.
BENCH_OPS = int(os.environ.get("REPRO_BENCH_OPS", "20000"))

#: Operations per timed kernel round.
KERNEL_OPS = int(os.environ.get("REPRO_KERNEL_OPS", "2000"))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def suite():
    """The shared full-scale experiment suite."""
    return ExperimentSuite(total_ops=BENCH_OPS)


@pytest.fixture(scope="session")
def results_dir():
    """Directory collecting every regenerated table/figure."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir, name, text):
    """Persist one artifact and echo it for ``-s`` runs."""
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


@pytest.fixture(scope="session")
def kernel_workloads():
    """Small per-machine workloads for the timed kernels."""
    cache = {}

    def get(machine_name):
        if machine_name not in cache:
            machine = get_machine(machine_name)
            cache[machine_name] = generate_blocks(
                machine, WorkloadConfig(total_ops=KERNEL_OPS)
            )
        return cache[machine_name]

    return get


@pytest.fixture(scope="session")
def kernel_compiled():
    """Compiled descriptions for the timed kernels, keyed by config."""
    cache = {}

    def get(machine_name, rep, stage, bitvector):
        from repro.analysis.experiments import staged_mdes

        key = (machine_name, rep, stage, bitvector)
        if key not in cache:
            machine = get_machine(machine_name)
            base = (
                machine.build_or() if rep == "or" else machine.build_andor()
            )
            cache[key] = compile_mdes(
                staged_mdes(base, stage), bitvector=bitvector
            )
        return cache[key]

    return get
