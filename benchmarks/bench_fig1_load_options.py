"""Figure 1: the six reservation tables of the SuperSPARC integer load."""

from conftest import write_result

from repro.core.expand import expand_to_or_tree
from repro.machines import get_machine


def test_fig1_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.fig1_load_reservation_tables())
    assert text.count("Option") == 6
    write_result(results_dir, "fig1_load_options.txt", text)


def test_fig1_bench_expansion(benchmark):
    """Time the AND/OR -> OR preprocessor on the load tree."""
    constraint = get_machine("SuperSPARC").build_andor().op_class(
        "load"
    ).constraint
    flat = benchmark(expand_to_or_tree, constraint)
    assert len(flat) == 6
