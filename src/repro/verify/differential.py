"""Cross-backend and cross-stage differential execution.

The paper's central semantics claim is that every transform stage and
every compiled representation answers availability queries identically,
so a greedy list scheduler must produce the *exact same schedule* (and
the same attempt/success counts) no matter which (stage, backend) pair
serves it.  This module turns that claim into an executable check:

* :func:`differential_runs` schedules one workload through the full
  legal stage x backend matrix and compares, against the first run,
  - the per-block schedule signatures,
  - the ``CheckStats``-visible query answers (attempts and successes --
    the counts that are representation-independent; per-option and
    per-usage check counts legitimately differ across backends),
  - the independent oracle's verdict on every run.
* :func:`verify_transform_stages` replays the same workload after every
  individual pipeline stage (via ``run_pipeline``'s ``stage_hook``), so
  a semantics-breaking transform is pinned to the stage that broke it.

Disagreements come back as typed :class:`Divergence` records; an empty
list is the "all representations agree" verdict the fuzzer relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.mdes import Mdes
from repro.engine.cache import DescriptionCache
from repro.engine.registry import create_engine, engine_names, get_engine_spec
from repro.engine.table import TableEngine
from repro.lowlevel.compiled import compile_mdes
from repro.scheduler.list_scheduler import schedule_workload
from repro.transforms.pipeline import FINAL_STAGE, run_pipeline
from repro.verify.oracle import ScheduleOracle

#: Stage pair the fuzzer exercises by default: the raw description and
#: the fully transformed one (the extremes bound the middle stages).
DEFAULT_STAGES: Tuple[int, ...] = (0, FINAL_STAGE)


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between two configurations.

    Attributes:
        kind: ``"error"`` (a run raised), ``"schedule"`` (signatures
            differ), ``"stats"`` (query answers differ), ``"oracle"``
            (the independent oracle rejected a run's schedules), or
            ``"transform"`` (a pipeline stage changed the schedule).
        where: The configuration that diverged, e.g. ``"stage4/automata"``.
        reference: The configuration it was compared against.
        detail: Human-readable description of the disagreement.
    """

    kind: str
    where: str
    reference: str = ""
    detail: str = ""

    def __str__(self) -> str:
        against = f" vs {self.reference}" if self.reference else ""
        return f"{self.kind}: {self.where}{against}: {self.detail}"


def _first_signature_delta(
    reference: tuple, candidate: tuple
) -> str:
    """Locate the first differing block between two run signatures."""
    if len(reference) != len(candidate):
        return (
            f"block counts differ: {len(reference)} vs {len(candidate)}"
        )
    for block_index, (ref, got) in enumerate(zip(reference, candidate)):
        if ref != got:
            return f"first differing block: index {block_index}"
    return "signatures differ"


def differential_runs(
    machine,
    blocks,
    stages: Sequence[int] = DEFAULT_STAGES,
    backends: Optional[Sequence[str]] = None,
    cache: Optional[DescriptionCache] = None,
    oracle: Optional[ScheduleOracle] = None,
) -> List[Divergence]:
    """Schedule ``blocks`` through the stage x backend matrix and compare.

    Returns every observed divergence (empty list == full agreement).
    A private description cache keeps one case's compiles from aliasing
    another's in the process-wide cache.
    """
    from repro import obs

    if backends is None:
        backends = engine_names()
    if cache is None:
        cache = DescriptionCache(name="verify")
    if oracle is None:
        oracle = ScheduleOracle(machine)
    blocks = list(blocks)

    divergences: List[Divergence] = []
    reference = None  # (where, signature, attempts, successes)
    with obs.span(
        "verify:differential", machine=machine.name,
        stages=",".join(str(stage) for stage in stages),
    ):
        for stage in stages:
            for backend in backends:
                if stage < get_engine_spec(backend).min_stage:
                    continue
                where = f"stage{stage}/{backend}"
                try:
                    engine = create_engine(
                        backend, machine, stage=stage, cache=cache
                    )
                    run = schedule_workload(
                        machine, None, blocks,
                        keep_schedules=True, engine=engine,
                    )
                except Exception as exc:  # any failure is a finding
                    divergences.append(Divergence(
                        "error", where,
                        detail=f"{type(exc).__name__}: {exc}",
                    ))
                    continue
                report = oracle.verify(run.schedules)
                if not report.ok:
                    sample = "; ".join(
                        str(diag) for diag in report.diagnostics[:3]
                    )
                    divergences.append(Divergence(
                        "oracle", where,
                        detail=(
                            f"{len(report.diagnostics)} diagnostics: "
                            f"{sample}"
                        ),
                    ))
                signature = run.signature()
                answers = (run.stats.attempts, run.stats.successes)
                if reference is None:
                    reference = (where, signature, answers)
                    continue
                if signature != reference[1]:
                    divergences.append(Divergence(
                        "schedule", where, reference=reference[0],
                        detail=_first_signature_delta(
                            reference[1], signature
                        ),
                    ))
                if answers != reference[2]:
                    divergences.append(Divergence(
                        "stats", where, reference=reference[0],
                        detail=(
                            f"(attempts, successes) {answers} vs "
                            f"{reference[2]}"
                        ),
                    ))
    if divergences:
        obs.count(
            "repro_verify_divergences_total", len(divergences),
            help="Differential-run disagreements observed.",
            machine=machine.name,
        )
    return divergences


def verify_transform_stages(
    machine,
    blocks,
    direction: str = "forward",
    oracle: Optional[ScheduleOracle] = None,
) -> List[Divergence]:
    """Run the workload after each individual pipeline stage.

    Uses ``run_pipeline``'s ``stage_hook`` to capture every intermediate
    description, schedules the same blocks against each one (bit-vector
    table engine -- the production default), and reports the first stage
    whose schedule or oracle verdict deviates from the raw input's.
    """
    if oracle is None:
        oracle = ScheduleOracle(machine, direction=direction)
    blocks = list(blocks)
    captured: List[Tuple[str, Mdes]] = [("input", machine.build_andor())]
    run_pipeline(
        captured[0][1], direction=direction,
        stage_hook=lambda name, mdes: captured.append((name, mdes)),
    )

    divergences: List[Divergence] = []
    reference = None  # (stage name, signature)
    for stage_name, mdes in captured:
        where = f"pipeline/{stage_name}"
        try:
            engine = TableEngine(compile_mdes(mdes, bitvector=True))
            run = schedule_workload(
                machine, None, blocks,
                keep_schedules=True, direction=direction, engine=engine,
            )
        except Exception as exc:
            divergences.append(Divergence(
                "error", where, detail=f"{type(exc).__name__}: {exc}",
            ))
            continue
        report = oracle.verify(run.schedules)
        if not report.ok:
            sample = "; ".join(str(d) for d in report.diagnostics[:3])
            divergences.append(Divergence(
                "oracle", where,
                detail=f"{len(report.diagnostics)} diagnostics: {sample}",
            ))
        signature = run.signature()
        if reference is None:
            reference = (where, signature)
        elif signature != reference[1]:
            divergences.append(Divergence(
                "transform", where, reference=reference[0],
                detail=_first_signature_delta(reference[1], signature),
            ))
    return divergences
