"""The typed request/response vocabulary for every scheduling entry point.

Before this module, each entry point grew its own ad-hoc kwarg plumbing
-- a machine-or-name here, a backend string and a stage int there, a
``verify`` flag somewhere else -- and the CLI, the facade, and the batch
driver each re-validated (or forgot to validate) the same tuple.  The
redesign makes one validated object per call the contract everywhere:

* :class:`ScheduleRequest` -- one workload against one machine/backend.
  Accepted by :func:`repro.api.schedule` / :func:`repro.api.schedule_exact`,
  built by ``repro schedule`` and by the server's ``POST /v1/schedule``.
* :class:`BatchRequest` -- a workload plus the batch-service knobs
  (:class:`BatchConfig`).  Accepted by
  :func:`repro.service.schedule_batch` directly, by
  :func:`repro.api.schedule_batch`, by ``repro schedule-batch``, and by
  the server's ``POST /v1/schedule/batch``.
* :class:`ScheduleResponse` -- the uniform result envelope: counts,
  schedules, verification verdict, resilience/caching summaries, and a
  ``to_dict`` wire form the server and the CLI ``--json`` views share.

Requests are frozen: validation happens once (:meth:`validate`), the
object is then safe to ship across threads, the micro-batcher, and the
process pool.  Blocks can be given inline or as a
:class:`~repro.workloads.WorkloadConfig` generator spec -- the paper's
"compile once, use many times" story needs requests that are cheap to
mint per call.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import RequestError
from repro.ir.block import BasicBlock
from repro.service.resilience import BlockFailure, RetryPolicy, TimeoutPolicy
from repro.transforms.pipeline import FINAL_STAGE
from repro.workloads import WorkloadConfig

#: Backend used when a request names neither a backend nor an LMDES file.
DEFAULT_BACKEND = "bitvector"

#: ``BatchConfig.on_error`` modes.
ON_ERROR_MODES = ("raise", "report")

#: Scheduling directions the list scheduler understands.
DIRECTIONS = ("forward", "backward")


def _machine_name(machine: Union[str, Any]) -> str:
    return machine if isinstance(machine, str) else machine.name


def new_request_id() -> str:
    """A fresh opaque request id (server fills one in when absent)."""
    return uuid.uuid4().hex[:12]


@dataclass(frozen=True)
class BatchConfig:
    """One batch-scheduling request's knobs.

    Attributes:
        backend: Registered query-engine backend; mutually exclusive
            with ``lmdes_path``.  ``None`` means :data:`DEFAULT_BACKEND`
            (unless ``lmdes_path`` is given).
        lmdes_path: Schedule against a pre-compiled LMDES file instead
            of a registry backend.
        stage: Transformation stage for registry backends.
        workers: Process count; 1 runs in-process (no pool).
        chunk_size: Blocks per dispatched task.  Part of the result's
            deterministic identity: the summed stats of engine-memoizing
            backends depend on the partition, never on ``workers``.
        cache_dir: Directory for the persistent description cache;
            ``None`` disables the disk tier.
        direction: Scheduling direction, as in the list scheduler.
        retry: Chunk retry / pool restart budgets and backoff shape.
        timeout: Per-chunk wall-clock budget (pool path only).
        on_error: ``"raise"`` raises :class:`ServiceError` when any
            block ends up quarantined; ``"report"`` returns them as
            typed ``BatchResult.errors`` records alongside the
            surviving schedules.
        verify: Replay the assembled schedules through the independent
            oracle (:mod:`repro.verify`) after the run.  The report
            lands in ``BatchResult.verify_report``; in ``"raise"`` mode
            a failed verification raises
            :class:`~repro.errors.VerificationError`.
        shared_descriptions: Publish the compiled description to pool
            workers as a zero-copy shared-memory segment
            (:mod:`repro.engine.shared`); workers attach it instead of
            re-deserializing the disk artifact.  Purely an
            optimization: any attach failure falls back to the normal
            cache path, and runs injecting cache corruption disable
            sharing so the quarantine path stays observable.
    """

    backend: Optional[str] = None
    lmdes_path: Optional[str] = None
    stage: int = FINAL_STAGE
    workers: int = 1
    chunk_size: int = 32
    cache_dir: Optional[str] = None
    direction: str = "forward"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    timeout: TimeoutPolicy = field(default_factory=TimeoutPolicy)
    on_error: str = "raise"
    verify: bool = False
    shared_descriptions: bool = True

    def validate(self) -> None:
        if self.backend and self.lmdes_path:
            raise ValueError(
                "BatchConfig backend and lmdes_path are mutually exclusive"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {self.chunk_size}")
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}: "
                f"{self.on_error!r}"
            )
        self.retry.validate()
        self.timeout.validate()

    @property
    def backend_label(self) -> str:
        """What the run's constraint checks came from, for reports."""
        if self.lmdes_path:
            return f"lmdes:{self.lmdes_path}"
        return self.backend or DEFAULT_BACKEND


class _RequestBase:
    """Validation and block-resolution shared by both request types."""

    def _check_backend(self, backend: Optional[str]) -> None:
        if backend is None:
            return
        from repro.engine.registry import engine_names

        if backend not in engine_names():
            raise RequestError(
                f"unknown backend {backend!r}; registered: "
                f"{', '.join(engine_names())}"
            )

    def _check_machine(self) -> None:
        if isinstance(self.machine, str):
            from repro.machines import get_machine

            try:
                get_machine(self.machine)
            except KeyError:
                raise RequestError(
                    f"unknown machine {self.machine!r}"
                ) from None

    def _check_workload(self) -> None:
        if self.blocks and self.workload is not None:
            raise RequestError(
                "give either inline blocks or a workload spec, not both"
            )
        if not self.blocks and self.workload is None:
            raise RequestError(
                "request has no work: give blocks or a workload spec"
            )

    def _check_deadline(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise RequestError(
                f"deadline_seconds must be > 0: {self.deadline_seconds}"
            )

    @property
    def machine_name(self) -> str:
        """The request's machine name (object or registry name)."""
        return _machine_name(self.machine)

    def resolve_machine(self):
        """The machine object behind the request."""
        if isinstance(self.machine, str):
            from repro.machines import get_machine

            return get_machine(self.machine)
        return self.machine

    def resolve_blocks(self) -> List[BasicBlock]:
        """The request's blocks -- inline, or generated from the spec."""
        if self.blocks:
            return list(self.blocks)
        from repro.workloads import generate_blocks

        return generate_blocks(self.resolve_machine(), self.workload)

    def with_request_id(self):
        """This request, with a minted id if it arrived without one."""
        if self.request_id:
            return self
        return replace(self, request_id=new_request_id())


@dataclass(frozen=True)
class ScheduleRequest(_RequestBase):
    """One scheduling request: a workload against a machine and backend.

    Attributes:
        machine: Registered machine name (or a machine object for
            in-process use; the wire form always names one).
        blocks: Inline workload blocks; mutually exclusive with
            ``workload``.
        workload: Generator spec -- blocks are synthesized
            deterministically from ``(total_ops, seed)`` when none are
            inline.
        backend: Registry backend; ``None`` means
            :data:`DEFAULT_BACKEND`.  Backends registered with
            ``scheduler="exact"`` dispatch to the branch-and-bound
            exact scheduler.
        stage: Transformation stage (0..4).
        direction: ``"forward"`` or ``"backward"``.
        verify: Replay the result through the independent oracle.
        keep_schedules: Retain per-block placements on the response
            (the server always keeps them; the wire form can still omit
            them per call).
        deadline_seconds: Soft deadline the service tier enforces; the
            library's synchronous path ignores it.
        client: Multi-tenant identity quotas are charged against.
        request_id: Opaque id echoed on the response (minted when
            empty).
    """

    machine: Union[str, Any]
    blocks: Tuple[BasicBlock, ...] = ()
    workload: Optional[WorkloadConfig] = None
    backend: Optional[str] = None
    stage: int = FINAL_STAGE
    direction: str = "forward"
    verify: bool = False
    keep_schedules: bool = True
    deadline_seconds: Optional[float] = None
    client: str = "default"
    request_id: str = ""

    def __post_init__(self):
        if not isinstance(self.blocks, tuple):
            object.__setattr__(self, "blocks", tuple(self.blocks))

    def validate(self) -> "ScheduleRequest":
        """Check the request; raises :class:`RequestError` when broken."""
        self._check_machine()
        self._check_backend(self.backend)
        self._check_workload()
        self._check_deadline()
        if self.direction not in DIRECTIONS:
            raise RequestError(
                f"direction must be one of {DIRECTIONS}: "
                f"{self.direction!r}"
            )
        if not 0 <= self.stage <= FINAL_STAGE:
            raise RequestError(
                f"stage must be in 0..{FINAL_STAGE}: {self.stage}"
            )
        if self.is_exact and self.direction != "forward":
            raise RequestError(
                "exact backends schedule forward only; "
                f"direction {self.direction!r} is not supported"
            )
        return self

    @property
    def backend_name(self) -> str:
        return self.backend or DEFAULT_BACKEND

    @property
    def is_exact(self) -> bool:
        """Whether the backend drives the exact scheduler."""
        from repro.engine.registry import get_engine_spec

        try:
            return get_engine_spec(self.backend_name).scheduler == "exact"
        except KeyError:
            return False

    def batch_key(self) -> Tuple:
        """Micro-batching compatibility key.

        Requests with equal keys can be concatenated into one
        ``schedule_batch`` run and split back apart without changing
        any request's schedules (block scheduling is independent per
        block; only fold-order-sensitive *stats* depend on grouping).
        """
        return (
            self.machine_name, self.backend_name, self.stage,
            self.direction, self.verify,
        )


@dataclass(frozen=True)
class BatchRequest(_RequestBase):
    """A workload plus the batch-service execution knobs.

    The single vocabulary object behind
    :func:`repro.service.schedule_batch`: what used to travel as
    ``(machine, blocks, config)`` positional plumbing.
    """

    machine: Union[str, Any]
    blocks: Tuple[BasicBlock, ...] = ()
    workload: Optional[WorkloadConfig] = None
    config: BatchConfig = field(default_factory=BatchConfig)
    deadline_seconds: Optional[float] = None
    client: str = "default"
    request_id: str = ""

    def __post_init__(self):
        if not isinstance(self.blocks, tuple):
            object.__setattr__(self, "blocks", tuple(self.blocks))

    def validate(self) -> "BatchRequest":
        self._check_machine()
        self._check_backend(self.config.backend)
        self._check_workload()
        self._check_deadline()
        try:
            self.config.validate()
        except ValueError as exc:
            raise RequestError(str(exc)) from None
        return self

    @property
    def backend_name(self) -> str:
        return self.config.backend_label

    def effective_config(self) -> BatchConfig:
        """The batch config with the request deadline folded in.

        A request deadline becomes the per-chunk
        :class:`~repro.service.resilience.TimeoutPolicy` budget when
        the config does not already carry a tighter one -- the pool
        path then abandons chunks that would outlive the request.
        """
        if self.deadline_seconds is None:
            return self.config
        current = self.config.timeout.chunk_seconds
        if current is not None and current <= self.deadline_seconds:
            return self.config
        return replace(
            self.config,
            timeout=TimeoutPolicy(chunk_seconds=self.deadline_seconds),
        )

    @classmethod
    def from_schedule(
        cls, request: ScheduleRequest, **config_overrides: Any
    ) -> "BatchRequest":
        """Lift a single-shot request into the batch vocabulary."""
        config = BatchConfig(
            backend=request.backend,
            stage=request.stage,
            direction=request.direction,
            verify=request.verify,
            **config_overrides,
        )
        return cls(
            machine=request.machine,
            blocks=request.blocks,
            workload=request.workload,
            config=config,
            deadline_seconds=request.deadline_seconds,
            client=request.client,
            request_id=request.request_id,
        )


def _schedule_payload(schedule) -> Dict[str, Any]:
    """One block schedule as a JSON-ready placement record."""
    return {
        "label": schedule.block.label,
        "length": schedule.length,
        "placements": [
            [index, schedule.times[index], schedule.classes[index]]
            for index in sorted(schedule.times)
        ],
    }


@dataclass
class ScheduleResponse:
    """The uniform result envelope for every scheduling entry point.

    ``kind`` says which engine produced it (``"list"``, ``"exact"``, or
    ``"batch"``); the envelope fields are identical so the server, the
    CLI ``--json`` views, and in-process callers consume one shape.
    ``result`` keeps the underlying rich object (``RunResult``,
    ``ExactRunResult``, or ``BatchResult``) for callers that need the
    deep data; it never crosses the wire.
    """

    machine: str
    backend: str
    stage: int
    direction: str
    kind: str
    blocks: int = 0
    ops: int = 0
    cycles: int = 0
    attempts: int = 0
    attempts_per_op: float = 0.0
    options_per_attempt: float = 0.0
    checks_per_attempt: float = 0.0
    wall_seconds: float = 0.0
    schedules: List[Any] = field(default_factory=list)
    errors: List[BlockFailure] = field(default_factory=list)
    verify: Optional[Dict[str, Any]] = None
    exact: Optional[Dict[str, Any]] = None
    resilience: Optional[Dict[str, Any]] = None
    cache: Optional[Dict[str, Any]] = None
    batched: Optional[Dict[str, Any]] = None
    request_id: str = ""
    result: Any = field(default=None, repr=False)
    #: Detached trace-span dicts captured while producing this
    #: response; the server grafts them under its ``server:request``
    #: span.  Never serialized.
    captured_spans: List[Dict[str, Any]] = field(
        default_factory=list, repr=False
    )

    @property
    def ok(self) -> bool:
        """No quarantined blocks and no failed verification."""
        if self.errors:
            return False
        if self.verify is not None and not self.verify.get("ok", True):
            return False
        return True

    def signature(self) -> tuple:
        """Digest of every block schedule, in input order."""
        return tuple(s.signature() for s in self.schedules)

    def to_dict(self, include_schedules: bool = True) -> Dict[str, Any]:
        """The JSON-ready wire form (server responses, CLI ``--json``)."""
        payload: Dict[str, Any] = {
            "request_id": self.request_id,
            "machine": self.machine,
            "backend": self.backend,
            "stage": self.stage,
            "direction": self.direction,
            "kind": self.kind,
            "ok": self.ok,
            "blocks": self.blocks,
            "ops": self.ops,
            "cycles": self.cycles,
            "attempts": self.attempts,
            "attempts_per_op": self.attempts_per_op,
            "options_per_attempt": self.options_per_attempt,
            "checks_per_attempt": self.checks_per_attempt,
            "wall_seconds": self.wall_seconds,
            "errors": [failure.to_dict() for failure in self.errors],
        }
        if include_schedules:
            payload["schedules"] = [
                _schedule_payload(s) for s in self.schedules
            ]
        for key in ("verify", "exact", "resilience", "cache", "batched"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload

    # ------------------------------------------------------------------
    # Constructors from the three underlying result shapes
    # ------------------------------------------------------------------

    @classmethod
    def from_run(
        cls, request: ScheduleRequest, run, wall_seconds: float = 0.0,
        verify_report=None,
    ) -> "ScheduleResponse":
        """Wrap a list-scheduler :class:`RunResult`."""
        schedules = list(run.schedules or [])
        return cls(
            machine=request.machine_name,
            backend=request.backend_name,
            stage=request.stage,
            direction=request.direction,
            kind="list",
            blocks=len(schedules),
            ops=run.total_ops,
            cycles=run.total_cycles,
            attempts=run.stats.attempts,
            attempts_per_op=run.attempts_per_op,
            options_per_attempt=run.stats.options_per_attempt,
            checks_per_attempt=run.stats.checks_per_attempt,
            wall_seconds=wall_seconds,
            schedules=schedules,
            verify=(
                verify_report.summary()
                if verify_report is not None else None
            ),
            request_id=request.request_id,
            result=run,
        )

    @classmethod
    def from_exact(
        cls, request: ScheduleRequest, run, wall_seconds: float = 0.0,
        verify_report=None,
    ) -> "ScheduleResponse":
        """Wrap an :class:`ExactRunResult`."""
        schedules = [entry.schedule for entry in run.results]
        return cls(
            machine=request.machine_name,
            backend=request.backend_name,
            stage=request.stage,
            direction=request.direction,
            kind="exact",
            blocks=len(schedules),
            ops=run.total_ops,
            cycles=run.total_cycles,
            wall_seconds=wall_seconds,
            schedules=schedules,
            verify=(
                verify_report.summary()
                if verify_report is not None else None
            ),
            exact={
                "heuristic_cycles": run.heuristic_cycles,
                "gap_cycles": run.gap_cycles,
                "optimal_blocks": run.optimal_blocks,
                "nodes": run.nodes,
                "repairs": run.repairs,
                "pruned": run.pruned,
            },
            request_id=request.request_id,
            result=run,
        )

    @classmethod
    def from_batch(
        cls, request: BatchRequest, result, wall_seconds: float = 0.0,
    ) -> "ScheduleResponse":
        """Wrap a :class:`BatchResult`."""
        stats, cache = result.stats, result.cache_stats
        return cls(
            machine=result.machine_name,
            backend=result.backend,
            stage=request.config.stage,
            direction=request.config.direction,
            kind="batch",
            blocks=len(result.schedules),
            ops=result.total_ops,
            cycles=result.total_cycles,
            attempts=stats.attempts,
            attempts_per_op=result.attempts_per_op,
            options_per_attempt=stats.options_per_attempt,
            checks_per_attempt=stats.checks_per_attempt,
            wall_seconds=wall_seconds,
            schedules=list(result.schedules),
            errors=list(result.errors),
            verify=(
                result.verify_report.summary()
                if result.verify_report is not None else None
            ),
            resilience={
                "retries": result.retries,
                "timeouts": result.timeouts,
                "pool_restarts": result.pool_restarts,
                "degraded": result.degraded,
                "quarantined": result.quarantined,
            },
            cache={
                "memory_hits": cache.hits,
                "memory_misses": cache.misses,
                "disk_hits": cache.disk_hits,
                "disk_misses": cache.disk_misses,
                "disk_stores": cache.disk_stores,
                "disk_quarantined": cache.disk_quarantined,
            },
            request_id=request.request_id,
            result=result,
        )


__all__ = [
    "BatchConfig",
    "BatchRequest",
    "DEFAULT_BACKEND",
    "DIRECTIONS",
    "ON_ERROR_MODES",
    "ScheduleRequest",
    "ScheduleResponse",
    "new_request_id",
]
