"""Figure 6: AND/OR sub-tree order before and after sorting."""

from conftest import write_result

from repro.transforms.pipeline import staged_mdes
from repro.machines import get_machine
from repro.transforms import sort_and_or_trees


def test_fig6_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.fig6_tree_order())
    assert "original order" in text and "after optimizing" in text
    write_result(results_dir, "fig6_tree_order.txt", text)


def test_fig6_order_is_one_option_first(suite):
    after = suite.mdes("SuperSPARC", "andor", 4)
    load = after.op_class("load").constraint
    assert [len(tree) for tree in load.or_trees] == [1, 2, 3]


def test_fig6_bench_sorting(benchmark):
    """Time AND/OR sub-tree sorting over the stage-3 K5 description."""
    mdes = staged_mdes(get_machine("K5").build_andor(), 3)
    result = benchmark(sort_and_or_trees, mdes)
    assert result.name == "K5"
