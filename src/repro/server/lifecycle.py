"""Server configuration, shared state, and the startup/drain lifecycle.

One :class:`ServerState` owns everything the routes share: the warm
description cache (via :class:`~repro.service.submit.BatchSubmitter`),
the admission gate, the micro-batcher, and the folded resilience
totals.  Its lifecycle is the ASGI lifespan: ``startup`` enables
observability and prewarms descriptions; ``shutdown`` drains -- stop
admitting, flush open batch windows, wait for in-flight work, then
close the submitter.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro import obs
from repro.engine.registry import engine_names, get_engine_spec
from repro.machines import MACHINE_NAMES, get_machine
from repro.server.batcher import MicroBatcher
from repro.server.queue import Admission, QueuePolicy
from repro.service.models import (
    BatchConfig,
    BatchRequest,
    ScheduleRequest,
    ScheduleResponse,
)
from repro.service.submit import BatchSubmitter
from repro.transforms.pipeline import FINAL_STAGE


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro serve`` can tune.

    Attributes:
        host/port: Bind address for the socket host (ignored by the
            in-process test client).
        cache_dir: Disk tier behind the warm description cache;
            ``None`` keeps the cache memory-only.
        workers: Pool width for batch runs (1 = in-process, the
            all-requests-share-one-warm-cache sweet spot).
        chunk_size: Blocks per dispatched chunk.
        queue: Admission limits (bounded queue + per-client quota).
        window_seconds: Micro-batching window.
        max_batch_blocks: Early-flush bound on one window.
        submit_threads: Threads running batch drivers concurrently.
        prewarm: ``(machine, backend)`` pairs compiled into the warm
            cache before traffic; ``()`` prewarms nothing.
        default_deadline_seconds: Deadline applied to requests that do
            not carry one; ``None`` means no implicit deadline.
        drain_seconds: Shutdown grace before in-flight work is
            abandoned.
    """

    host: str = "127.0.0.1"
    port: int = 8181
    cache_dir: Optional[str] = None
    workers: int = 1
    chunk_size: int = 32
    queue: QueuePolicy = field(default_factory=QueuePolicy)
    window_seconds: float = 0.004
    max_batch_blocks: int = 4096
    submit_threads: int = 4
    prewarm: Tuple[Tuple[str, str], ...] = ()
    default_deadline_seconds: Optional[float] = None
    drain_seconds: float = 10.0

    def batch_defaults(self) -> BatchConfig:
        """The server-side :class:`BatchConfig` base for every run."""
        return BatchConfig(
            workers=self.workers,
            chunk_size=self.chunk_size,
            cache_dir=self.cache_dir,
        )


class ServerState:
    """The shared brain behind the routes."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self.submitter = BatchSubmitter(
            cache_dir=self.config.cache_dir,
            max_workers=self.config.submit_threads,
        )
        self.admission = Admission(self.config.queue)
        self.batcher = MicroBatcher(
            runner=self.submitter.submit_captured,
            base_config=self.config.batch_defaults(),
            window_seconds=self.config.window_seconds,
            max_batch_blocks=self.config.max_batch_blocks,
        )
        self.started_at = 0.0
        self.requests_total = 0
        self.errors_total = 0
        #: Folded recovery totals from every batch run served.
        self.resilience = {
            "retries": 0, "timeouts": 0, "pool_restarts": 0,
            "degraded_runs": 0, "quarantined": 0,
        }

    # ------------------------------------------------------------------
    # Lifespan
    # ------------------------------------------------------------------

    async def startup(self) -> None:
        """Enable observability and prewarm the description cache."""
        obs.enable()
        self.started_at = time.time()
        for machine_name, backend in self.config.prewarm:
            self.submitter.prewarm(
                get_machine(machine_name), backend, FINAL_STAGE
            )
        obs.set_gauge(
            "repro_server_up", 1.0,
            help="1 while the scheduling server is accepting requests.",
        )

    async def shutdown(self) -> None:
        """Graceful drain: refuse, flush, wait, close."""
        self.admission.draining = True
        obs.set_gauge(
            "repro_server_up", 0.0,
            help="1 while the scheduling server is accepting requests.",
        )
        await self.batcher.drain()
        deadline = time.monotonic() + self.config.drain_seconds
        while not self.admission.idle() and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        self.submitter.close(wait=True)

    # ------------------------------------------------------------------
    # Request execution (admission + routing to batcher / submitter)
    # ------------------------------------------------------------------

    def _with_default_deadline(self, request):
        default = self.config.default_deadline_seconds
        if default is None or request.deadline_seconds is not None:
            return request
        from dataclasses import replace

        return replace(request, deadline_seconds=default)

    async def handle_schedule(
        self, request: ScheduleRequest
    ) -> ScheduleResponse:
        """``POST /v1/schedule``: admission, then the batcher.

        Exact-backend requests bypass the micro-batcher (the batch
        pool drives the list scheduler) and run directly against the
        warm cache in the submitter's thread pool.
        """
        request = self._with_default_deadline(request.with_request_id())
        self.admission.admit(request.client)
        started = time.perf_counter()
        try:
            if request.is_exact:
                response = await self._run_exact(request)
            else:
                response = await self.batcher.submit(request)
                # One group produces one shared resilience summary;
                # fold it once (the rider at offset 0), not per rider.
                if (response.batched or {}).get("offset", 0) == 0:
                    self._fold_resilience(response)
            return response
        finally:
            self.admission.release(
                request.client, time.perf_counter() - started
            )
            self.requests_total += 1

    async def handle_batch(
        self, request: BatchRequest
    ) -> ScheduleResponse:
        """``POST /v1/schedule/batch``: one dedicated batch run."""
        request = self._with_default_deadline(request.with_request_id())
        self.admission.admit(request.client)
        started = time.perf_counter()
        try:
            result, spans = await self.submitter.submit_captured(request)
            response = ScheduleResponse.from_batch(
                request, result,
                wall_seconds=time.perf_counter() - started,
            )
            response.captured_spans = spans
            self._fold_resilience(response)
            return response
        finally:
            self.admission.release(
                request.client, time.perf_counter() - started
            )
            self.requests_total += 1

    async def _run_exact(self, request: ScheduleRequest):
        """Run an exact-backend request off-loop against the warm cache."""
        from repro import api

        loop = asyncio.get_running_loop()

        def _run():
            with obs.capture() as capture:
                response = api.schedule(request, cache=self.submitter.cache)
            return response, capture.spans

        waiter = loop.run_in_executor(self.submitter._executor, _run)
        if request.deadline_seconds is not None:
            try:
                response, spans = await asyncio.wait_for(
                    asyncio.shield(waiter), request.deadline_seconds
                )
            except asyncio.TimeoutError:
                from repro.errors import DeadlineExceededError

                raise DeadlineExceededError(
                    f"request {request.request_id or '<anonymous>'} "
                    f"missed its {request.deadline_seconds:g}s deadline"
                ) from None
        else:
            response, spans = await waiter
        response.captured_spans = spans
        return response

    def _fold_resilience(self, response: ScheduleResponse) -> None:
        info = response.resilience or {}
        self.resilience["retries"] += info.get("retries", 0)
        self.resilience["timeouts"] += info.get("timeouts", 0)
        self.resilience["pool_restarts"] += info.get("pool_restarts", 0)
        self.resilience["degraded_runs"] += int(bool(info.get("degraded")))
        self.resilience["quarantined"] += info.get("quarantined", 0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` body."""
        status = "draining" if self.admission.draining else "ok"
        return {
            "status": status,
            "uptime_seconds": (
                round(time.time() - self.started_at, 3)
                if self.started_at else 0.0
            ),
            "requests_total": self.requests_total,
            "errors_total": self.errors_total,
            "admission": self.admission.summary(),
            "pool": {
                "workers": self.config.workers,
                "submit_threads": self.config.submit_threads,
                "inflight_runs": self.submitter.inflight,
                "completed_runs": self.submitter.completed,
            },
            "batcher": {
                "window_seconds": self.batcher.window_seconds,
                "batches_total": self.batcher.batches_total,
                "batched_requests_total":
                    self.batcher.batched_requests_total,
            },
            "cache": self.submitter.cache_summary(),
            "resilience": dict(self.resilience),
        }

    def machines(self) -> Dict[str, Any]:
        """The ``/v1/machines`` body."""
        return {"machines": list(MACHINE_NAMES)}

    def engines(self) -> Dict[str, Any]:
        """The ``/v1/engines`` body."""
        entries = []
        for name in engine_names():
            spec = get_engine_spec(name)
            entries.append({
                "name": name,
                "scheduler": spec.scheduler,
                "min_stage": spec.min_stage,
                "max_block_ops": spec.max_block_ops,
                "description": spec.description,
            })
        return {"engines": entries}


__all__ = ["ServerConfig", "ServerState"]
