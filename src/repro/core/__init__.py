"""Core resource-constraint model.

This subpackage holds the paper's central abstractions:

* :class:`~repro.core.resource.Resource` and
  :class:`~repro.core.resource.ResourceTable` -- the (abstract) machine
  resources a description may use.
* :class:`~repro.core.usage.ResourceUsage` -- a (resource, time) pair.
* :class:`~repro.core.tables.ReservationTable` -- one *reservation table
  option*: the set of usages an operation needs under one resource binding.
* :class:`~repro.core.tables.OrTree` -- the traditional representation: a
  prioritized list of options.
* :class:`~repro.core.tables.AndOrTree` -- the paper's representation: an
  AND of OR-trees (section 3).
* :class:`~repro.core.mdes.Mdes` -- a whole machine description.
* :func:`~repro.core.expand.expand_to_or_tree` -- AND/OR -> OR conversion.
"""

from repro.core.resource import Resource, ResourceTable
from repro.core.usage import ResourceUsage
from repro.core.tables import AndOrTree, OrTree, ReservationTable, Constraint
from repro.core.mdes import Mdes, OperationClass
from repro.core.expand import expand_to_or_tree, as_or_tree

__all__ = [
    "AndOrTree",
    "Constraint",
    "Mdes",
    "OperationClass",
    "OrTree",
    "ReservationTable",
    "Resource",
    "ResourceTable",
    "ResourceUsage",
    "as_or_tree",
    "expand_to_or_tree",
]
