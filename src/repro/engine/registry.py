"""The backend registry: names -> query-engine configurations.

A backend is a named recipe: which representation to stage the
description in (flat OR-trees or AND/OR-trees), how to compile it
(scalar or bit-vector check lists, optionally Eichenberger-reduced), and
which :class:`QueryEngine` subclass answers queries over the result.
Registering a spec is all a new backend needs to become reachable from
every scheduler, the CLI (``--backend``), and the cross-backend
benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple, Type

from repro.engine.automaton import AutomatonEngine
from repro.engine.base import QueryEngine
from repro.engine.cache import GLOBAL_CACHE, DescriptionCache
from repro.engine.table import EichenbergerEngine, TableEngine
from repro.errors import MdesError
from repro.lowlevel.checker import CheckStats
from repro.lowlevel.packed import numpy_available
from repro.transforms.pipeline import FINAL_STAGE


@dataclass(frozen=True)
class EngineSpec:
    """One registered backend recipe.

    Attributes:
        name: Registry name (what ``--backend`` selects).
        rep: Source representation, ``"or"`` or ``"andor"``.
        bitvector: Whether same-cycle usages compile into one check.
        engine_cls: The :class:`QueryEngine` subclass to instantiate.
        reduce: Apply the Eichenberger-Davidson option reduction first.
        min_stage: Lowest transformation stage the backend can accept
            (the automaton needs stage >= 3 for non-negative times).
        scheduler: Which scheduling algorithm the backend drives:
            ``"list"`` (the greedy heuristic) or ``"exact"`` (the
            budget-bounded branch-and-bound in :mod:`repro.exact`).
        max_block_ops: Largest block the backend guarantees to handle;
            ``None`` means unbounded.  The exact backend is capped --
            oversized blocks fall back to the heuristic seed and are
            flagged non-optimal.
        description: One line for listings.
    """

    name: str
    rep: str
    bitvector: bool
    engine_cls: Type[QueryEngine]
    reduce: bool = False
    min_stage: int = 0
    scheduler: str = "list"
    max_block_ops: Optional[int] = None
    description: str = ""

    @property
    def supports_modulo(self) -> bool:
        """Whether engines from this spec can wrap state modulo an II."""
        return self.engine_cls.supports_modulo

    @property
    def vectorized(self) -> bool:
        """Whether this backend serves the packed bulk-probe fast path.

        True when the engine class implements real vectorized queries
        *and* the spec compiles bit-vector check lists (the packed
        layout evaluates merged per-cycle masks).  Per-machine
        eligibility additionally needs the machine to fit the packed
        word budget -- see :func:`repro.lowlevel.packed.packing_eligible`.
        """
        return (
            self.engine_cls.supports_vectorized
            and self.bitvector
            and numpy_available()
        )


_REGISTRY: "OrderedDict[str, EngineSpec]" = OrderedDict()


def register_engine(spec: EngineSpec, replace: bool = False) -> None:
    """Add a backend to the registry."""
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"backend {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def engine_names(scheduler: Optional[str] = None) -> Tuple[str, ...]:
    """Registered backend names, in registration order.

    ``scheduler`` filters by the algorithm a backend drives --
    ``engine_names(scheduler="list")`` is every interchangeable
    heuristic backend, excluding the capability-flagged exact solver.
    """
    if scheduler is None:
        return tuple(_REGISTRY)
    return tuple(
        name for name, spec in _REGISTRY.items()
        if spec.scheduler == scheduler
    )


def get_engine_spec(name: str) -> EngineSpec:
    """The spec registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise KeyError(
            f"unknown backend {name!r}; registered: {known}"
        ) from None


def create_engine(
    name: str,
    machine,
    stage: int = FINAL_STAGE,
    stats: Optional[CheckStats] = None,
    cache: Optional[DescriptionCache] = None,
) -> QueryEngine:
    """Instantiate a registered backend for one machine.

    The staged description is compiled through the (shared) description
    cache, so repeated engine creation does not re-run the
    transformation pipeline.
    """
    from repro import obs

    spec = get_engine_spec(name)
    if stage < spec.min_stage:
        raise MdesError(
            f"backend {spec.name!r} needs transformation stage >= "
            f"{spec.min_stage} (got {stage})"
        )
    cache = cache if cache is not None else GLOBAL_CACHE
    with obs.span(
        "engine:create", memory=True, backend=spec.name,
        machine=machine.name, stage=stage,
    ):
        # Registration survives obs.reset() because every engine
        # creation re-asserts it (idempotent for the same object).
        obs.register_cache_stats(cache.stats, cache=cache.name)
        compiled = cache.compiled(
            machine, spec.rep, stage, spec.bitvector, reduce=spec.reduce
        )
        engine = spec.engine_cls(compiled, stats=stats, name=spec.name)
    obs.count(
        "repro_engine_creations_total",
        help="Query-engine instantiations by backend.",
        backend=spec.name,
    )
    obs.register_check_stats(
        engine.stats, backend=spec.name, machine=machine.name
    )
    return engine


register_engine(EngineSpec(
    name="ortree",
    rep="or",
    bitvector=False,
    engine_cls=TableEngine,
    description="flat OR-trees, scalar (one check per usage)",
))
register_engine(EngineSpec(
    name="andor",
    rep="andor",
    bitvector=False,
    engine_cls=TableEngine,
    description="AND/OR-trees, scalar (one check per usage)",
))
register_engine(EngineSpec(
    name="bitvector",
    rep="andor",
    bitvector=True,
    engine_cls=TableEngine,
    description="AND/OR-trees, bit-vector packed (one check per cycle)",
))
register_engine(EngineSpec(
    name="automata",
    rep="andor",
    bitvector=True,
    engine_cls=AutomatonEngine,
    min_stage=3,
    description="memoized finite-state automaton over a windowed RU map",
))
register_engine(EngineSpec(
    name="eichenberger",
    rep="or",
    bitvector=True,
    engine_cls=EichenbergerEngine,
    reduce=True,
    description="Eichenberger-Davidson reduced reservation tables",
))
register_engine(EngineSpec(
    name="exact",
    rep="andor",
    bitvector=True,
    engine_cls=TableEngine,
    scheduler="exact",
    max_block_ops=12,
    description=(
        "branch-and-bound exact scheduler over bit-vector tables "
        "(small blocks, budget-bounded)"
    ),
))
