"""Resource-constraint checking.

This module implements the two check algorithms the paper compares:

* **OR-tree**: walk the prioritized option list; the first option whose
  checks all pass is reserved.
* **AND/OR-tree**: an outer loop over the tree's OR-trees runs the same
  OR-tree algorithm on each (section 3); the attempt fails as soon as any
  OR-tree has no available option (short-circuit), and reserves the chosen
  option of every OR-tree on success.

Both are instrumented with the statistics the paper's evaluation reports:
scheduling attempts, reservation table options checked per attempt, and
individual resource checks per attempt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lowlevel.bitvector import RUMap
from repro.lowlevel.compiled import (
    CompiledAndOrTree,
    CompiledConstraint,
    CompiledOption,
    CompiledOrTree,
)

#: Absolute (cycle, mask) reservations made by a successful attempt.
ReservationHandle = Tuple[Tuple[int, int], ...]


@dataclass
class CheckStats:
    """Counters for constraint-check activity.

    Attributes:
        attempts: Scheduling attempts (one per (operation, cycle) trial).
        successes: Attempts that found every required resource.
        options_checked: Reservation table options examined, in total.
        resource_checks: Individual (time, mask) availability tests.
        options_histogram: attempt count keyed by the number of options
            that attempt examined (the data behind figure 2).
        attempts_by_class: attempt count keyed by operation class name
            (the data behind the tables 1-4 percentage columns).
    """

    attempts: int = 0
    successes: int = 0
    options_checked: int = 0
    resource_checks: int = 0
    options_histogram: Dict[int, int] = field(default_factory=dict)
    attempts_by_class: Dict[str, int] = field(default_factory=dict)

    def record_attempt(
        self,
        options: int,
        checks: int,
        success: bool,
        class_name: Optional[str] = None,
    ) -> None:
        """Account one scheduling attempt."""
        self.attempts += 1
        if success:
            self.successes += 1
        self.options_checked += options
        self.resource_checks += checks
        self.options_histogram[options] = (
            self.options_histogram.get(options, 0) + 1
        )
        if class_name is not None:
            self.attempts_by_class[class_name] = (
                self.attempts_by_class.get(class_name, 0) + 1
            )

    def record_attempts_bulk(
        self,
        options_counts: List[int],
        checks_counts: List[int],
        successes: int,
        class_name: Optional[str] = None,
    ) -> None:
        """Account a batch of attempts in one call.

        Equivalent to ``record_attempt`` once per element of the two
        (equal-length) count lists, of which ``successes`` succeeded --
        the bulk entry point for vectorized window probes, whose
        counters must fold to the exact totals the scalar loop yields.
        """
        count = len(options_counts)
        if not count:
            return
        self.attempts += count
        self.successes += int(successes)
        self.options_checked += sum(options_counts)
        self.resource_checks += sum(checks_counts)
        histogram = self.options_histogram
        for value in options_counts:
            histogram[value] = histogram.get(value, 0) + 1
        if class_name is not None:
            self.attempts_by_class[class_name] = (
                self.attempts_by_class.get(class_name, 0) + count
            )

    def record_attempts_folded(
        self,
        options_histogram: Dict[int, int],
        checks_total: int,
        successes: int,
        class_name: Optional[str] = None,
    ) -> None:
        """Account a batch whose per-attempt counters are pre-folded.

        ``options_histogram`` maps options-examined to attempt count
        (the vectorized caller folds it with one ``np.unique``), and
        ``checks_total`` is the summed resource checks.  Equivalent to
        :meth:`record_attempts_bulk` over the expanded lists, without
        the per-attempt Python loop on the hot path.
        """
        count = sum(options_histogram.values())
        if not count:
            return
        self.attempts += count
        self.successes += int(successes)
        self.resource_checks += int(checks_total)
        histogram = self.options_histogram
        for value, attempts in options_histogram.items():
            self.options_checked += value * attempts
            histogram[value] = histogram.get(value, 0) + attempts
        if class_name is not None:
            self.attempts_by_class[class_name] = (
                self.attempts_by_class.get(class_name, 0) + count
            )

    @property
    def options_per_attempt(self) -> float:
        """Average reservation table options checked per attempt."""
        return self.options_checked / self.attempts if self.attempts else 0.0

    @property
    def checks_per_attempt(self) -> float:
        """Average resource checks per attempt."""
        return self.resource_checks / self.attempts if self.attempts else 0.0

    @property
    def checks_per_option(self) -> float:
        """Average resource checks per option checked (Table 12 column)."""
        if not self.options_checked:
            return 0.0
        return self.resource_checks / self.options_checked

    def merge(self, other: "CheckStats") -> None:
        """Fold another stats object into this one."""
        self.attempts += other.attempts
        self.successes += other.successes
        self.options_checked += other.options_checked
        self.resource_checks += other.resource_checks
        for key, value in other.options_histogram.items():
            self.options_histogram[key] = (
                self.options_histogram.get(key, 0) + value
            )
        for key, value in other.attempts_by_class.items():
            self.attempts_by_class[key] = (
                self.attempts_by_class.get(key, 0) + value
            )

    def __iadd__(self, other: "CheckStats") -> "CheckStats":
        self.merge(other)
        return self

    def __add__(self, other: "CheckStats") -> "CheckStats":
        result = self.copy()
        result.merge(other)
        return result

    def __radd__(self, other) -> "CheckStats":
        # Lets ``sum(stats_list)`` fold runs without a start value.
        if other == 0:
            return self.copy()
        return NotImplemented

    def copy(self) -> "CheckStats":
        """An independent copy (snapshot) of the counters."""
        return CheckStats(
            attempts=self.attempts,
            successes=self.successes,
            options_checked=self.options_checked,
            resource_checks=self.resource_checks,
            options_histogram=dict(self.options_histogram),
            attempts_by_class=dict(self.attempts_by_class),
        )

    def since(self, earlier: "CheckStats") -> "CheckStats":
        """The activity between an earlier :meth:`copy` and now."""
        return CheckStats(
            attempts=self.attempts - earlier.attempts,
            successes=self.successes - earlier.successes,
            options_checked=self.options_checked - earlier.options_checked,
            resource_checks=self.resource_checks - earlier.resource_checks,
            options_histogram={
                key: value - earlier.options_histogram.get(key, 0)
                for key, value in self.options_histogram.items()
                if value != earlier.options_histogram.get(key, 0)
            },
            attempts_by_class={
                key: value - earlier.attempts_by_class.get(key, 0)
                for key, value in self.attempts_by_class.items()
                if value != earlier.attempts_by_class.get(key, 0)
            },
        )

    def __repr__(self) -> str:
        return (
            f"CheckStats(attempts={self.attempts}, "
            f"options/attempt={self.options_per_attempt:.2f}, "
            f"checks/attempt={self.checks_per_attempt:.2f})"
        )


class ConstraintChecker:
    """Stateful checker: tests, reserves, and releases constraints."""

    def __init__(self, stats: Optional[CheckStats] = None) -> None:
        self.stats = stats if stats is not None else CheckStats()

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _find_option(
        self,
        ru_map: RUMap,
        or_tree: CompiledOrTree,
        issue_cycle: int,
        counters: List[int],
    ) -> Optional[CompiledOption]:
        """OR-tree algorithm: first available option wins.

        ``counters`` is a two-slot [options, checks] accumulator shared by
        an enclosing AND-level loop.
        """
        for option in or_tree.options:
            counters[0] += 1
            available = True
            for time, mask in option.checks:
                counters[1] += 1
                if not ru_map.is_free(issue_cycle + time, mask):
                    available = False
                    break
            if available:
                return option
        return None

    @staticmethod
    def _reservations(
        options: List[CompiledOption], issue_cycle: int
    ) -> ReservationHandle:
        """Absolute (cycle, mask) pairs for the chosen options."""
        pairs: List[Tuple[int, int]] = []
        for option in options:
            for time, mask in option.reserve_mask_by_time:
                pairs.append((issue_cycle + time, mask))
        return tuple(pairs)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def try_reserve(
        self,
        ru_map: RUMap,
        constraint: CompiledConstraint,
        issue_cycle: int,
        class_name: Optional[str] = None,
    ) -> Optional[ReservationHandle]:
        """One scheduling attempt at ``issue_cycle``.

        Returns the reservations made on success (so the caller can later
        :meth:`release` them, e.g. for modulo-scheduling backtracking), or
        ``None`` when the operation cannot be placed at this cycle.
        """
        counters = [0, 0]
        chosen: List[CompiledOption] = []
        if isinstance(constraint, CompiledAndOrTree):
            for or_tree in constraint.or_trees:
                option = self._find_option(
                    ru_map, or_tree, issue_cycle, counters
                )
                if option is None:
                    chosen = []
                    break
                chosen.append(option)
        else:
            option = self._find_option(
                ru_map, constraint, issue_cycle, counters
            )
            if option is not None:
                chosen.append(option)

        success = bool(chosen)
        self.stats.record_attempt(
            counters[0], counters[1], success, class_name
        )
        if not success:
            return None
        handle = self._reservations(chosen, issue_cycle)
        for cycle, mask in handle:
            ru_map.reserve(cycle, mask)
        return handle

    @staticmethod
    def release(ru_map: RUMap, handle: ReservationHandle) -> None:
        """Undo a successful :meth:`try_reserve` (unscheduling)."""
        for cycle, mask in handle:
            ru_map.release(cycle, mask)
