"""Tests for AND/OR-tree to OR-tree expansion."""

from repro.core.expand import as_or_tree, expand_to_or_tree
from repro.core.tables import AndOrTree, OrTree


class TestExpansion:
    def test_option_count_is_product(self, load_and_or_tree):
        flat = expand_to_or_tree(load_and_or_tree)
        assert len(flat) == load_and_or_tree.option_product() == 4

    def test_each_flat_option_unions_usages(self, load_and_or_tree):
        flat = expand_to_or_tree(load_and_or_tree)
        for option in flat.options:
            # One usage from each of the three sub-OR-trees.
            assert len(option) == 3

    def test_priority_order_last_tree_fastest(self, load_and_or_tree):
        # Children order: decoders (2), write ports (2), memory (1).
        flat = expand_to_or_tree(load_and_or_tree)
        dec = [
            next(u for u in option if u.resource.name.startswith("D"))
            for option in flat.options
        ]
        wrs = [
            next(u for u in option if u.resource.name.startswith("W"))
            for option in flat.options
        ]
        assert [u.resource.name for u in dec] == ["D0", "D0", "D1", "D1"]
        assert [u.resource.name for u in wrs] == ["W0", "W1", "W0", "W1"]

    def test_flat_options_cover_all_combinations(self, load_and_or_tree):
        flat = expand_to_or_tree(load_and_or_tree)
        combos = {
            frozenset(usage for usage in option)
            for option in flat.options
        }
        assert len(combos) == 4

    def test_as_or_tree_passthrough(self, load_and_or_tree):
        flat = expand_to_or_tree(load_and_or_tree)
        assert as_or_tree(flat) is flat
        assert isinstance(as_or_tree(load_and_or_tree), OrTree)

    def test_name_preserved(self, load_and_or_tree):
        assert expand_to_or_tree(load_and_or_tree).name == "AOT_load"
