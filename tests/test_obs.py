"""Tests for the ``repro.obs`` tracing and metrics layer.

Covers the tentpole guarantees: disabled mode is a shared no-op
identity (no allocation, no registry traffic), spans nest in call order
and survive a pickle round trip, histogram buckets follow Prometheus
``le`` (inclusive, cumulative) semantics, the text exposition parses
back to exactly the collected samples, and the CheckStats/CacheStats
view adapters aggregate live objects without touching the hot paths.
"""

import json
import math

import pytest

from repro import obs
from repro.engine.cache import CacheStats
from repro.lowlevel.checker import CheckStats
from repro.obs.export import (
    format_metrics,
    format_quantiles,
    format_trace,
    histogram_quantile,
    parse_prometheus,
    to_prometheus,
    trace_from_jsonl,
    trace_to_jsonl,
)
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.trace import NULL_CAPTURE, NULL_SPAN, Span, Tracer


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test starts disabled with empty registry/tracer/views."""
    was_enabled = obs.enabled()
    obs.disable()
    obs.reset()
    yield
    obs.enable() if was_enabled else obs.disable()
    obs.reset()


class TestDisabledNoOp:
    def test_span_is_the_shared_singleton(self):
        assert obs.span("a") is NULL_SPAN
        assert obs.span("a", attr=1) is obs.span("b")

    def test_capture_is_the_shared_singleton(self):
        assert obs.capture() is NULL_CAPTURE
        with obs.capture() as captured:
            with obs.span("inside"):
                pass
        assert captured.spans == []

    def test_null_span_supports_the_full_protocol(self):
        with obs.span("x", a=1) as sp:
            sp.set(b=2)
        assert sp.seconds == 0.0
        assert sp.attrs == {}
        assert sp.children == []

    def test_no_registry_traffic(self):
        obs.count("repro_test_total", 5)
        obs.set_gauge("repro_test_gauge", 1.0)
        obs.observe("repro_test_seconds", 0.5)
        assert len(obs.REGISTRY) == 0

    def test_no_trace_roots(self):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        assert obs.TRACER.roots == []


class TestSpanNesting:
    def test_children_attach_to_the_enclosing_span(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("middle"):
                with obs.span("leaf"):
                    pass
            with obs.span("sibling"):
                pass
        (root,) = obs.TRACER.roots
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["middle", "sibling"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_walk_is_depth_first_in_order(self):
        obs.enable()
        with obs.span("a"):
            with obs.span("b"):
                pass
            with obs.span("c"):
                with obs.span("d"):
                    pass
        assert [s.name for s in obs.TRACER.walk()] == ["a", "b", "c", "d"]

    def test_seconds_are_recorded_and_nested_sum_is_bounded(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        (root,) = obs.TRACER.roots
        assert root.seconds > 0.0
        assert root.children[0].seconds <= root.seconds

    def test_attrs_via_constructor_and_set(self):
        obs.enable()
        with obs.span("s", machine="K5") as sp:
            sp.set(ops=7)
        assert obs.TRACER.roots[0].attrs == {"machine": "K5", "ops": 7}

    def test_exception_marks_the_span_and_propagates(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("boom")
        (root,) = obs.TRACER.roots
        assert root.attrs["error"] == "ValueError"

    def test_seconds_by_name_aggregates(self):
        obs.enable()
        for _ in range(3):
            with obs.span("repeated"):
                pass
        totals = obs.phase_seconds()
        assert set(totals) == {"repeated"}
        assert totals["repeated"] > 0.0


class TestCaptureAndAttach:
    def test_capture_detaches_from_the_ambient_stack(self):
        obs.enable()
        with obs.span("ambient"):
            with obs.capture() as captured:
                with obs.span("detached"):
                    with obs.span("leaf"):
                        pass
        (root,) = obs.TRACER.roots
        assert root.name == "ambient"
        assert root.children == []  # nothing leaked into the tree
        assert [d["name"] for d in captured.spans] == ["detached"]
        assert [c["name"] for c in captured.spans[0]["children"]] == ["leaf"]

    def test_captured_dicts_graft_under_the_current_span(self):
        obs.enable()
        with obs.capture() as captured:
            with obs.span("chunk", index=3):
                pass
        with obs.span("driver"):
            obs.attach(captured.spans)
        (root,) = obs.TRACER.roots
        assert [c.name for c in root.children] == ["chunk"]
        assert root.children[0].attrs == {"index": 3}

    def test_attach_without_a_current_span_creates_roots(self):
        obs.enable()
        obs.attach([Span("orphan").to_dict()])
        assert [r.name for r in obs.TRACER.roots] == ["orphan"]

    def test_span_dict_round_trip_is_lossless(self):
        span = Span("s", {"k": "v"})
        span.seconds = 1.25
        span.start_ts = 10.0
        span.children = [Span("child")]
        again = Span.from_dict(span.to_dict())
        assert again.to_dict() == span.to_dict()


class TestHistogramBuckets:
    def test_boundary_observation_lands_in_its_bucket(self):
        """Prometheus ``le`` is inclusive: observe(1.0) counts in le=1."""
        h = Histogram("h", (), buckets=(1.0, 2.0, 5.0))
        h.observe(1.0)
        assert dict(h.bucket_counts())[1.0] == 1

    def test_counts_are_cumulative(self):
        h = Histogram("h", (), buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 1.7, 4.0):
            h.observe(value)
        assert h.bucket_counts() == [
            (1.0, 1), (2.0, 3), (5.0, 4), (math.inf, 4),
        ]

    def test_overflow_goes_to_inf_only(self):
        h = Histogram("h", (), buckets=(1.0,))
        h.observe(100.0)
        assert h.bucket_counts() == [(1.0, 0), (math.inf, 1)]
        assert h.sum == 100.0 and h.count == 1

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", (), buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", (), buckets=())

    def test_samples_end_with_sum_and_count(self):
        h = Histogram("repro_x_seconds", (("k", "v"),), buckets=(1.0,))
        h.observe(0.5)
        names = [name for name, _, _ in h.samples()]
        assert names == [
            "repro_x_seconds_bucket", "repro_x_seconds_bucket",
            "repro_x_seconds_sum", "repro_x_seconds_count",
        ]


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_c_total", "help", machine="K5")
        b = registry.counter("repro_c_total", machine="K5")
        assert a is b
        assert registry.counter("repro_c_total", machine="P5") is not a

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x")
        with pytest.raises(ValueError):
            registry.gauge("repro_x")

    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("repro_c_total").inc(-1)

    def test_value_lookup(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total", backend="andor").inc(3)
        assert registry.value("repro_c_total", backend="andor") == 3.0
        assert registry.value("repro_c_total", backend="or") is None

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total").inc()
        registry.register_view("v", lambda: ())
        registry.reset()
        assert len(registry) == 0 and registry.collect() == []


class TestViews:
    def test_check_stats_appear_as_counters(self):
        obs.enable()
        stats = CheckStats()
        stats.attempts, stats.successes = 10, 4
        stats.options_checked, stats.resource_checks = 20, 30
        obs.register_check_stats(stats, backend="bitvector")
        values = {
            (name, labels): value
            for name, labels, value, _, _ in obs.REGISTRY.collect()
        }
        key = (("backend", "bitvector"),)
        assert values[("repro_check_attempts_total", key)] == 10
        assert values[("repro_check_successes_total", key)] == 4
        assert values[("repro_check_options_total", key)] == 20
        assert values[("repro_check_resource_checks_total", key)] == 30

    def test_same_label_objects_aggregate_by_sum(self):
        first, second = CheckStats(), CheckStats()
        first.attempts, second.attempts = 3, 4
        obs.register_check_stats(first, backend="x")
        obs.register_check_stats(second, backend="x")
        assert obs.REGISTRY.value(
            "repro_check_attempts_total", backend="x"
        ) == 7

    def test_registration_is_idempotent(self):
        stats = CheckStats()
        stats.attempts = 5
        obs.register_check_stats(stats, backend="x")
        obs.register_check_stats(stats, backend="x")
        assert obs.REGISTRY.value(
            "repro_check_attempts_total", backend="x"
        ) == 5

    def test_dead_objects_stop_contributing(self):
        stats = CheckStats()
        stats.attempts = 5
        obs.register_check_stats(stats, backend="x")
        del stats
        assert obs.REGISTRY.value(
            "repro_check_attempts_total", backend="x"
        ) is None

    def test_cache_stats_split_by_tier_and_outcome(self):
        stats = CacheStats(hits=2, misses=3, disk_hits=1, disk_misses=4,
                           disk_stores=4, disk_quarantined=1, evictions=2)
        obs.register_cache_stats(stats, cache="global")
        value = obs.REGISTRY.value
        assert value("repro_cache_requests_total", cache="global",
                     outcome="hit", tier="memory") == 2
        assert value("repro_cache_requests_total", cache="global",
                     outcome="miss", tier="disk") == 4
        assert value("repro_cache_evictions_total", cache="global") == 2
        assert value("repro_cache_disk_quarantined_total",
                     cache="global") == 1

    def test_views_survive_in_live_exposition(self):
        stats = CheckStats()
        stats.attempts = 1
        obs.register_check_stats(stats, backend="x")
        stats.attempts = 9  # pull-time view: no re-registration needed
        assert obs.REGISTRY.value(
            "repro_check_attempts_total", backend="x"
        ) == 9


class TestPrometheusExposition:
    def _populated_registry(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_ops_total", "Operations scheduled.",
            machine="K5", backend="andor",
        ).inc(42)
        registry.gauge("repro_delta", "Last option delta.").set(-15)
        h = registry.histogram(
            "repro_wall_seconds", "Wall time.", buckets=(0.5, 2.5, 10.0),
            stage="final",
        )
        for value in (0.1, 1.0, 20.0):
            h.observe(value)
        registry.counter(
            "repro_escaped_total", 'Labels with "quotes"\\backslashes.',
            path='a"b\\c', note="line\nbreak",
        ).inc()
        return registry

    def test_round_trip_matches_collect_exactly(self):
        registry = self._populated_registry()
        parsed = parse_prometheus(to_prometheus(registry))
        expected = {
            (name, labels): value
            for name, labels, value, _, _ in registry.collect()
        }
        assert parsed["samples"] == expected

    def test_types_and_help_are_declared_per_family(self):
        parsed = parse_prometheus(to_prometheus(self._populated_registry()))
        assert parsed["types"] == {
            "repro_ops_total": "counter",
            "repro_delta": "gauge",
            "repro_wall_seconds": "histogram",
            "repro_escaped_total": "counter",
        }
        assert parsed["help"]["repro_ops_total"] == "Operations scheduled."

    def test_bucket_lines_ascend_with_inf_last(self):
        text = to_prometheus(self._populated_registry())
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_wall_seconds_bucket")
        ]
        bounds = [
            line.split('le="')[1].split('"')[0] for line in bucket_lines
        ]
        assert bounds == ["0.5", "2.5", "10", "+Inf"]
        counts = [float(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)  # cumulative
        # _sum and _count follow the buckets within the family.
        family = text[text.index("# TYPE repro_wall_seconds"):]
        assert family.index("_bucket") < family.index("_sum")
        assert family.index("_sum") < family.index("_count")

    def test_histogram_sum_and_count(self):
        parsed = parse_prometheus(to_prometheus(self._populated_registry()))
        samples = parsed["samples"]
        key = (("stage", "final"),)
        assert samples[("repro_wall_seconds_sum", key)] == pytest.approx(21.1)
        assert samples[("repro_wall_seconds_count", key)] == 3

    def test_empty_registry_exports_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("")["samples"] == {}


class TestJsonlTrace:
    def test_round_trip(self):
        tracer = Tracer()
        with tracer.span("root", machine="K5"):
            with tracer.span("child"):
                pass
        with tracer.span("second"):
            pass
        text = trace_to_jsonl(tracer)
        assert len(text.splitlines()) == 2  # one root tree per line
        roots = trace_from_jsonl(text)
        assert [r.to_dict() for r in roots] == [
            r.to_dict() for r in tracer.roots
        ]

    def test_lines_are_valid_sorted_json(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        (line,) = trace_to_jsonl(tracer).splitlines()
        document = json.loads(line)
        assert list(document) == sorted(document)


class TestHumanViews:
    def test_format_metrics_lists_samples(self):
        registry = MetricsRegistry()
        registry.counter("repro_ops_total", machine="K5").inc(7)
        text = format_metrics(registry)
        assert 'repro_ops_total{machine="K5"}' in text
        assert text.rstrip().endswith("7")
        assert format_metrics(MetricsRegistry()) == "(no metrics recorded)"

    def test_format_trace_indents_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", ops=3):
                pass
        text = format_trace(tracer.roots)
        outer_line, inner_line = text.splitlines()
        assert outer_line.startswith("outer")
        assert inner_line.startswith("  inner")
        assert "ops=3" in inner_line
        assert format_trace([]) == "(no spans recorded)"

    def test_format_trace_accepts_a_tracer(self):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        assert format_trace(tracer) == format_trace(tracer.roots)


class TestPipelineIntegration:
    def test_schedule_trace_covers_every_layer(self):
        obs.enable()
        from repro.engine import create_engine
        from repro.engine.cache import DescriptionCache
        from repro.machines.amdk5 import build_machine
        from repro.scheduler import schedule_workload
        from repro.workloads import WorkloadConfig, generate_blocks

        # Build the machine and compile its description from scratch:
        # get_machine() and the GLOBAL_CACHE both memoize process-wide,
        # which would skip the hmdes/transform spans this test exists
        # to observe when the whole suite runs.
        machine = build_machine()
        blocks = generate_blocks(
            machine, WorkloadConfig(total_ops=120, seed=5)
        )
        engine = create_engine(
            "bitvector", machine, cache=DescriptionCache(name="obs-it")
        )
        schedule_workload(machine, None, blocks, engine=engine)

        names = {s.name for s in obs.TRACER.walk()}
        assert {"engine:create", "hmdes:load", "hmdes:parse",
                "transform:staged", "schedule:list"} <= names
        transforms = obs.transform_effects()
        stages = [t["stage"] for t in transforms]
        assert "redundancy-elimination" in stages
        assert all("seconds" in t for t in transforms)
        # The paper's effect columns: option deltas per transform.
        assert any("options_delta" in t for t in transforms)
        assert obs.REGISTRY.value(
            "repro_engine_creations_total", backend="bitvector"
        ) == 1
        # Live view over the engine's CheckStats.
        assert obs.REGISTRY.value(
            "repro_check_attempts_total",
            backend="bitvector", machine="K5",
        ) == engine.stats.attempts > 0

    def test_disabled_pipeline_records_nothing(self):
        from repro.engine import create_engine
        from repro.machines import get_machine
        from repro.scheduler import schedule_workload
        from repro.workloads import WorkloadConfig, generate_blocks

        machine = get_machine("K5")
        blocks = generate_blocks(
            machine, WorkloadConfig(total_ops=60, seed=5)
        )
        engine = create_engine("bitvector", machine)
        schedule_workload(machine, None, blocks, engine=engine)
        assert obs.TRACER.roots == []
        assert len(obs.REGISTRY) == 0


class TestHistogramQuantiles:
    """Bucket-interpolated quantile estimation over the registry."""

    def test_interpolates_within_bucket(self):
        # 4 observations <= 1.0, 4 more in (1.0, 2.0]: the median rank
        # (4.0) lands exactly on the first bucket's edge.
        buckets = [(1.0, 4), (2.0, 8), (math.inf, 8)]
        assert histogram_quantile(buckets, 0.5) == pytest.approx(1.0)
        # p75 -> rank 6, halfway through the (1.0, 2.0] bucket.
        assert histogram_quantile(buckets, 0.75) == pytest.approx(1.5)

    def test_first_bucket_interpolates_from_zero(self):
        buckets = [(2.0, 10), (math.inf, 10)]
        assert histogram_quantile(buckets, 0.5) == pytest.approx(1.0)

    def test_inf_bucket_clamps_to_largest_finite_bound(self):
        buckets = [(1.0, 0), (math.inf, 5)]
        assert histogram_quantile(buckets, 0.99) == pytest.approx(1.0)

    def test_extremes(self):
        buckets = [(1.0, 5), (2.0, 10), (math.inf, 10)]
        assert histogram_quantile(buckets, 0.0) == pytest.approx(0.0)
        assert histogram_quantile(buckets, 1.0) == pytest.approx(2.0)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            histogram_quantile([], 0.5)
        with pytest.raises(ValueError):
            histogram_quantile([(1.0, 0), (math.inf, 0)], 0.5)
        with pytest.raises(ValueError):
            histogram_quantile([(1.0, 1), (math.inf, 1)], 1.5)

    def test_matches_known_distribution(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "lat", buckets=(0.1, 0.5, 1.0, 5.0)
        )
        for value in [0.05] * 50 + [0.3] * 40 + [2.0] * 10:
            hist.observe(value)
        estimate = histogram_quantile(hist.bucket_counts(), 0.95)
        # True p95 sits among the 2.0s; the estimate must land in
        # their (1.0, 5.0] bucket.
        assert 1.0 <= estimate <= 5.0

    def test_format_quantiles_lists_populated_histograms(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_t_seconds", stage="4")
        for value in (0.01, 0.02, 0.03):
            hist.observe(value)
        registry.histogram("repro_empty_seconds")  # stays silent
        text = format_quantiles(registry)
        lines = text.splitlines()
        assert lines[0].split()[:4] == ["histogram", "p50", "p95", "p99"]
        assert "repro_t_seconds" in text
        assert 'stage="4"' in text
        assert "repro_empty_seconds" not in text

    def test_format_quantiles_empty_registry(self):
        assert format_quantiles(MetricsRegistry()) == ""
