"""Byte-level size model of the compiled representation.

The paper reports the memory its compiler needs to hold each description's
resource constraints (Tables 6, 7, 9, 11, 14).  We cannot reuse the 1996 C
struct layout, so this module defines an explicit, documented cost model
with the same shape:

* every (time, mask) or (cycle, resource) check pair costs two words;
* every option carries a small header plus its pairs;
* every OR-tree carries a header plus one pointer word per option;
* every AND/OR-tree carries a header plus one pointer word per OR-tree.

Shared objects (by identity) are counted once, plus one pointer from each
referrer -- the paper notes "a small amount of header information per item
is duplicated to prevent performance degradation", which the per-referrer
pointer word models.

Absolute byte counts therefore differ from the paper's, but every ratio
the paper draws conclusions from (OR vs AND/OR, before vs after each
transformation) is preserved, because both models count the same
enumerated objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lowlevel.compiled import CompiledMdes


@dataclass(frozen=True)
class LayoutModel:
    """Cost model parameters, in 4-byte words.

    Attributes:
        word_bytes: Bytes per machine word.
        option_header_words: Fixed overhead per option (check count +
            reservation pointer).
        pair_words: Words per check pair (time + mask).
        or_header_words: Fixed overhead per OR-tree (option count + id).
        and_header_words: Fixed overhead per AND/OR-tree.
        pointer_words: Words per child pointer.
    """

    word_bytes: int = 4
    option_header_words: int = 2
    pair_words: int = 2
    or_header_words: int = 2
    and_header_words: int = 2
    pointer_words: int = 1

    def option_bytes(self, num_checks: int) -> int:
        """Size of one stored option with ``num_checks`` check pairs."""
        words = self.option_header_words + self.pair_words * num_checks
        return words * self.word_bytes

    def or_tree_bytes(self, num_options: int) -> int:
        """Size of one OR-tree node (its options counted separately)."""
        words = self.or_header_words + self.pointer_words * num_options
        return words * self.word_bytes

    def and_tree_bytes(self, num_or_trees: int) -> int:
        """Size of one AND/OR-tree node (children counted separately)."""
        words = self.and_header_words + self.pointer_words * num_or_trees
        return words * self.word_bytes


DEFAULT_LAYOUT = LayoutModel()


def mdes_size_bytes(
    compiled: CompiledMdes, layout: LayoutModel = DEFAULT_LAYOUT
) -> int:
    """Total bytes the compiled resource-constraint description occupies.

    Objects shared by identity are counted once.  An AND/OR-tree whose
    children are plain OR-trees additionally pays the AND-level node, which
    is why the paper's Pentium AND/OR numbers are slightly *larger* than
    its OR numbers (Table 6 footnote).
    """
    from repro.lowlevel.compiled import CompiledAndOrTree

    constraints, or_trees, options = compiled.unique_objects()
    total = 0
    for constraint in constraints:
        if isinstance(constraint, CompiledAndOrTree):
            total += layout.and_tree_bytes(len(constraint.or_trees))
    for tree in or_trees:
        total += layout.or_tree_bytes(len(tree.options))
    for option in options:
        total += layout.option_bytes(len(option.checks))
    return total
