#!/usr/bin/env python3
"""MDES queries for compiler modules beyond the scheduler.

The paper's introduction: as compilers push ILP, "transformations such
as predication and height reduction also need to use execution
constraints to avoid over-subscription of processor resources" -- but
most modules forgo the MDES because efficient access is hard.  With the
compiled representation, those questions are cheap.  This example plays
an if-converter and a height-reduction pass interrogating the
SuperSPARC.

Run:  python examples/compiler_module_queries.py
"""

from repro.lowlevel import MdesQuery, compile_mdes
from repro.machines import get_machine


def main():
    machine = get_machine("SuperSPARC")
    query = MdesQuery(compile_mdes(machine.build_andor()))

    print("Per-class issue bandwidth (operations per cycle):")
    for class_name, bandwidth in query.resource_summary().items():
        print(f"  {class_name:14s} {bandwidth}")

    print("\nIf-conversion sizing: can both branch sides share cycles?")
    candidates = [
        (["ialu_1src", "ialu_1src"], "two ALU ops"),
        (["ialu_1src", "ialu_1src", "ialu_1src"], "three ALU ops"),
        (["load", "ialu_1src", "branch"], "load + ALU + branch"),
        (["load", "load"], "two loads"),
        (["load", "store"], "load + store"),
    ]
    for classes, label in candidates:
        verdict = "fits" if query.can_issue_together(classes) else (
            "over-subscribes"
        )
        print(f"  {label:24s} -> {verdict} one cycle")

    print("\nHeight reduction: resource-only issue distances:")
    pairs = [
        ("load", "load"), ("load", "ialu_1src"),
        ("idiv", "idiv"), ("fp_div", "fp_div"),
    ]
    for first, second in pairs:
        distance = query.min_issue_distance(first, second)
        print(f"  {second:10s} after {first:10s}: >= {distance} cycles")

    print("\nSteady-state throughput (ops/cycle over a long window):")
    for class_name in ("load", "ialu_1src", "idiv", "fp_div"):
        throughput = query.steady_state_throughput(class_name)
        print(f"  {class_name:10s} {throughput:.3f}")


if __name__ == "__main__":
    main()
