"""Pretty-print a machine description back to HMDES source.

The writer emits every distinct (by identity) reservation table, OR-tree,
and AND/OR-tree as a named section entry, so sharing in the object graph
round-trips into name-based sharing in the source.  ``load_mdes(
write_mdes(mdes))`` yields a description whose constraints are
structurally equal to the original's (the round-trip property the test
suite checks).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.mdes import Mdes
from repro.core.tables import AndOrTree, Constraint, OrTree, ReservationTable


class _Writer:
    def __init__(self, mdes: Mdes) -> None:
        self._mdes = mdes
        self._or_names: Dict[int, str] = {}
        self._and_names: Dict[int, str] = {}
        self._counter = 0

    def _fresh_name(self, prefix: str, hint: str) -> str:
        self._counter += 1
        hint = hint or "anon"
        return f"{prefix}_{hint}_{self._counter}"

    def _or_trees_in_order(self) -> List[OrTree]:
        ordered: List[OrTree] = []
        for constraint in self._all_constraints():
            children = (
                constraint.or_trees
                if isinstance(constraint, AndOrTree)
                else (constraint,)
            )
            for tree in children:
                if id(tree) not in self._or_names:
                    self._or_names[id(tree)] = self._fresh_name(
                        "OT", tree.name
                    )
                    ordered.append(tree)
        return ordered

    def _and_trees_in_order(self) -> List[AndOrTree]:
        ordered: List[AndOrTree] = []
        for constraint in self._all_constraints():
            if isinstance(constraint, AndOrTree):
                if id(constraint) not in self._and_names:
                    self._and_names[id(constraint)] = self._fresh_name(
                        "AOT", constraint.name
                    )
                    ordered.append(constraint)
        return ordered

    def _all_constraints(self) -> List[Constraint]:
        constraints = self._mdes.constraints()
        constraints.extend(self._mdes.unused_trees.values())
        return constraints

    @staticmethod
    def _format_usages(table: ReservationTable, indent: str) -> List[str]:
        return [
            f"{indent}use {usage.resource.name} at {usage.time};"
            for usage in table.usages
        ]

    def _format_or_tree(self, tree: OrTree) -> List[str]:
        lines = [f"    {self._or_names[id(tree)]} {{"]
        for option in tree.options:
            lines.append("        option {")
            lines.extend(self._format_usages(option, "            "))
            lines.append("        }")
        lines.append("    }")
        return lines

    def _format_and_tree(self, tree: AndOrTree) -> List[str]:
        lines = [f"    {self._and_names[id(tree)]} {{"]
        for child in tree.or_trees:
            lines.append(f"        ortree {self._or_names[id(child)]};")
        lines.append("    }")
        return lines

    def _constraint_name(self, constraint: Constraint) -> str:
        if isinstance(constraint, AndOrTree):
            return self._and_names[id(constraint)]
        return self._or_names[id(constraint)]

    def write(self) -> str:
        mdes = self._mdes
        lines = [f"mdes {mdes.name};", ""]

        lines.append("section resource {")
        for name in mdes.resources.names:
            lines.append(f"    {name};")
        lines.append("}")
        lines.append("")

        or_trees = self._or_trees_in_order()
        and_trees = self._and_trees_in_order()

        lines.append("section ortree {")
        for tree in or_trees:
            lines.extend(self._format_or_tree(tree))
        lines.append("}")
        lines.append("")

        if and_trees:
            lines.append("section andortree {")
            for tree in and_trees:
                lines.extend(self._format_and_tree(tree))
            lines.append("}")
            lines.append("")

        lines.append("section opclass {")
        for op_class in mdes.op_classes.values():
            lines.append(f"    {op_class.name} {{")
            lines.append(
                f"        resv {self._constraint_name(op_class.constraint)};"
            )
            lines.append(f"        latency {op_class.latency};")
            if op_class.read_time:
                lines.append(f"        read {op_class.read_time};")
            lines.append("    }")
        lines.append("}")
        lines.append("")

        if mdes.bypasses:
            lines.append("section bypass {")
            for (producer, consumer), bypass in mdes.bypasses.items():
                suffix = (
                    f" class {bypass.substitute_class}"
                    if bypass.substitute_class
                    else ""
                )
                lines.append(
                    f"    {producer} -> {consumer}: latency "
                    f"{bypass.latency}{suffix};"
                )
            lines.append("}")
            lines.append("")

        lines.append("section operation {")
        for opcode, class_name in mdes.opcode_map.items():
            lines.append(f"    {opcode}: {class_name};")
        lines.append("}")
        lines.append("")
        return "\n".join(lines)


def write_mdes(mdes: Mdes) -> str:
    """Serialize a machine description to HMDES source text."""
    return _Writer(mdes).write()
