"""Exception hierarchy for the MDES reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MdesError(ReproError):
    """An inconsistency in a machine description."""


class HmdesError(MdesError):
    """Base class for high-level MDES language errors."""


class HmdesSyntaxError(HmdesError):
    """A lexical or syntactic error in HMDES source text.

    Carries the 1-based source line so the MDES writer can find the fault.
    """

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class HmdesSemanticError(HmdesError):
    """A well-formed HMDES construct that does not make sense.

    Examples: a reference to an undeclared resource, a duplicate section
    entry, or an operation mapped to a missing operation class.
    """


class SchedulingError(ReproError):
    """The scheduler could not make progress (e.g. an unschedulable op)."""


class CacheCorruptionError(ReproError):
    """A persistent cache entry failed to load back.

    Raised (in strict mode) or recorded by the disk tier when an entry
    is truncated, version-mismatched, or structurally broken.  Always
    *retryable*: the entry is quarantined and a rebuild succeeds.
    """


class ServiceError(ReproError):
    """A batch-service request could not be completed.

    Carries the per-block failure records (``failures``) when the run
    was configured to collect them before raising.
    """

    def __init__(self, message, failures=()):
        super().__init__(message)
        self.failures = list(failures)


class ChunkTimeoutError(ServiceError):
    """One dispatched chunk exceeded its wall-clock budget."""


class VerificationError(ServiceError):
    """A finished schedule failed independent oracle verification.

    Raised by the batch service when ``BatchConfig.verify`` is set and
    the oracle rejects the assembled schedules (``on_error="raise"``
    mode).  Carries the full :class:`~repro.verify.oracle.VerifyReport`
    as ``report``.
    """

    def __init__(self, message, report=None, failures=()):
        super().__init__(message, failures)
        self.report = report


class WorkerCrashError(ServiceError):
    """A pool worker died (or a crash was injected) mid-chunk."""
