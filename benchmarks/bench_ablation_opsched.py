"""Ablation: operation scheduling's demand on the constraint checker.

Section 4 lists *operation scheduling* as an advanced technique that
raises attempts per operation.  This bench runs the backtracking
operation scheduler under increasingly non-topological priorities and
reports the attempt inflation relative to the plain list scheduler --
the extra demand that makes the check-cost transformations pay off.
"""

from conftest import write_result

from repro.analysis.reporting import format_table
from repro.lowlevel.checker import CheckStats
from repro.lowlevel.compiled import compile_mdes
from repro.machines import get_machine
from repro.scheduler import OperationScheduler, schedule_workload
from repro.workloads import WorkloadConfig, generate_blocks


def _loads_late(graph, block):
    def key(op):
        if op.is_branch:
            return (2, op.index)
        if op.is_load:
            return (1, -op.index)
        return (0, -op.index)

    return {op.index: key(op) for op in block}


def test_ablation_opsched_regenerate(results_dir, benchmark):
    machine = get_machine("SuperSPARC")
    compiled = compile_mdes(machine.build_andor(), bitvector=True)
    blocks = generate_blocks(machine, WorkloadConfig(total_ops=3000))

    def build_rows():
        rows = []
        list_run = schedule_workload(machine, compiled, blocks)
        rows.append(
            (
                "list scheduler (height priority)",
                list_run.attempts_per_op,
                list_run.stats.checks_per_attempt,
                0,
            )
        )
        for label, priority in (
            ("operation scheduler (height priority)", None),
            ("operation scheduler (inverted priority)", _loads_late),
        ):
            scheduler = OperationScheduler(
                machine, compiled, budget_ratio=64, priority_fn=priority
            )
            stats = CheckStats()
            total_ops = evictions = 0
            for block in blocks:
                result = scheduler.schedule_block(block)
                stats.merge(result.stats)
                total_ops += len(block)
                evictions += result.evictions
            rows.append(
                (
                    label,
                    stats.attempts / total_ops,
                    stats.checks_per_attempt,
                    evictions,
                )
            )
        return rows

    rows = benchmark(build_rows)
    text = format_table(
        ("Scheduler", "Att/Op", "Chk/Att", "Evictions"),
        rows,
        title=(
            "Ablation: scheduling technique vs constraint-check demand "
            "(SuperSPARC, original AND/OR description)"
        ),
    )
    write_result(results_dir, "ablation_opsched.txt", text)
    # Backtracking with a non-topological priority inflates attempts.
    assert rows[2][1] > rows[0][1]
