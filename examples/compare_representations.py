#!/usr/bin/env python3
"""Compare the OR-tree and AND/OR-tree representations on real machines.

Reproduces the paper's headline comparison (Tables 5 and 6) from the
public API: for each of the four processors, schedule the same synthetic
SPEC CINT92-shaped workload under both representations and report size,
options checked, and resource checks -- then verify both produced the
exact same schedule.

Run:  python examples/compare_representations.py [ops]
"""

import sys

from repro.lowlevel import compile_mdes, mdes_size_bytes
from repro.api import (
    MACHINE_NAMES,
    WorkloadConfig,
    generate_blocks,
    get_machine,
)
from repro.scheduler import schedule_workload


def main(total_ops: int = 10000):
    header = (
        f"{'machine':11s} {'rep':6s} {'bytes':>8s} {'opts/att':>9s} "
        f"{'chks/att':>9s} {'same sched':>11s}"
    )
    print(header)
    print("-" * len(header))
    for name in MACHINE_NAMES:
        machine = get_machine(name)
        blocks = generate_blocks(
            machine, WorkloadConfig(total_ops=total_ops)
        )
        signatures = []
        for rep_name, mdes in (
            ("OR", machine.build_or()),
            ("AND/OR", machine.build_andor()),
        ):
            compiled = compile_mdes(mdes, bitvector=False)
            result = schedule_workload(
                machine, compiled, blocks, keep_schedules=True
            )
            signatures.append(result.signature())
            same = "-" if len(signatures) == 1 else str(
                signatures[0] == signatures[1]
            )
            print(
                f"{name:11s} {rep_name:6s} "
                f"{mdes_size_bytes(compiled):8d} "
                f"{result.stats.options_per_attempt:9.2f} "
                f"{result.stats.checks_per_attempt:9.2f} {same:>11s}"
            )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10000)
