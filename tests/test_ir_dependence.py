"""Tests for IR operations and dependence construction."""

from repro.ir.block import BasicBlock
from repro.ir.dependence import (
    ANTI,
    CONTROL,
    FLOW,
    MEMORY,
    OUTPUT,
    build_dependence_graph,
)
from repro.ir.operation import Operation


def block_of(*ops):
    return BasicBlock("B0", list(ops))


def unit_latency(op):
    return 1


def edges_by_kind(graph, kind):
    return [
        (edge.pred, edge.succ)
        for edges in graph.succs.values()
        for edge in edges
        if edge.kind == kind
    ]


class TestOperation:
    def test_reg_src_count_dedupes(self):
        op = Operation(0, "ADD", ("r1",), ("r2", "r2"))
        assert op.reg_src_count == 1

    def test_is_mem(self):
        assert Operation(0, "LD", is_load=True).is_mem
        assert Operation(0, "ST", is_store=True).is_mem
        assert not Operation(0, "ADD").is_mem


class TestFlowDependences:
    def test_flow_edge_with_producer_latency(self):
        producer = Operation(0, "LD", ("r1",), ("r9",), is_load=True)
        consumer = Operation(1, "ADD", ("r2",), ("r1",))
        graph = build_dependence_graph(
            block_of(producer, consumer), lambda op: 2
        )
        edges = graph.preds_of(1)
        assert len(edges) == 1
        assert edges[0].kind == FLOW
        assert edges[0].latency == 2

    def test_latest_writer_wins(self):
        w1 = Operation(0, "ADD", ("r1",), ())
        w2 = Operation(1, "SUB", ("r1",), ())
        reader = Operation(2, "OR", ("r2",), ("r1",))
        graph = build_dependence_graph(block_of(w1, w2, reader),
                                       unit_latency)
        flow_preds = [
            e.pred for e in graph.preds_of(2) if e.kind == FLOW
        ]
        assert flow_preds == [1]

    def test_cascade_min_latency(self):
        producer = Operation(0, "ADD", ("r1",), ())
        consumer = Operation(1, "SUB", ("r2",), ("r1",))
        graph = build_dependence_graph(
            block_of(producer, consumer),
            unit_latency,
            cascade_ok=lambda p, c: True,
        )
        edge = graph.preds_of(1)[0]
        assert edge.min_latency == 0
        assert edge.latency == 1
        assert edge.is_cascade_eligible


class TestAntiOutputDependences:
    def test_anti_edge(self):
        reader = Operation(0, "ADD", ("r2",), ("r1",))
        writer = Operation(1, "SUB", ("r1",), ())
        graph = build_dependence_graph(block_of(reader, writer),
                                       unit_latency)
        assert (0, 1) in edges_by_kind(graph, ANTI)

    def test_output_edge(self):
        w1 = Operation(0, "ADD", ("r1",), ())
        w2 = Operation(1, "SUB", ("r1",), ())
        graph = build_dependence_graph(block_of(w1, w2), unit_latency)
        assert (0, 1) in edges_by_kind(graph, OUTPUT)

    def test_self_antidependence_not_created(self):
        op = Operation(0, "INC", ("r1",), ("r1",))
        graph = build_dependence_graph(block_of(op), unit_latency)
        assert graph.preds_of(0) == []


class TestMemoryDependences:
    def test_store_serializes_later_memops(self):
        store = Operation(0, "ST", (), ("r1", "r2"), is_store=True)
        load = Operation(1, "LD", ("r3",), ("r4",), is_load=True)
        store2 = Operation(2, "ST", (), ("r5", "r6"), is_store=True)
        graph = build_dependence_graph(
            block_of(store, load, store2), unit_latency
        )
        mem = edges_by_kind(graph, MEMORY)
        assert (0, 1) in mem
        assert (0, 2) in mem

    def test_load_blocks_following_store(self):
        load = Operation(0, "LD", ("r1",), ("r2",), is_load=True)
        store = Operation(1, "ST", (), ("r3", "r4"), is_store=True)
        graph = build_dependence_graph(block_of(load, store), unit_latency)
        assert (0, 1) in edges_by_kind(graph, MEMORY)

    def test_loads_do_not_serialize_each_other(self):
        l1 = Operation(0, "LD", ("r1",), ("r2",), is_load=True)
        l2 = Operation(1, "LD", ("r3",), ("r4",), is_load=True)
        graph = build_dependence_graph(block_of(l1, l2), unit_latency)
        assert edges_by_kind(graph, MEMORY) == []


class TestControlDependences:
    def test_branch_depends_on_everything_before(self):
        a = Operation(0, "ADD", ("r1",), ())
        b = Operation(1, "SUB", ("r2",), ())
        br = Operation(2, "BE", (), ("r1",), is_branch=True)
        graph = build_dependence_graph(block_of(a, b, br), unit_latency)
        control = edges_by_kind(graph, CONTROL)
        assert (1, 2) in control
        # a -> br already exists as flow; control duplicates are fine but
        # the graph must make br depend on both.
        assert {e.pred for e in graph.preds_of(2)} == {0, 1}

    def test_control_latency_zero_allows_same_cycle(self):
        a = Operation(0, "ADD", ("r1",), ())
        br = Operation(1, "BE", (), (), is_branch=True)
        graph = build_dependence_graph(block_of(a, br), unit_latency)
        control = [e for e in graph.preds_of(1) if e.kind == CONTROL]
        assert control[0].latency == 0


class TestGraphBookkeeping:
    def test_edge_count_and_dedup(self):
        a = Operation(0, "ADD", ("r1",), ())
        b = Operation(1, "SUB", ("r2",), ("r1", "r1"))
        graph = build_dependence_graph(block_of(a, b), unit_latency)
        assert graph.edge_count() == 1
