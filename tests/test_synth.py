"""Synthetic machine fleets (``repro.machines.synth``).

The fleet generator's contract, pinned four ways:

* **Determinism**: the same ``(family, seed, index)`` triple builds
  byte-identical HMDES source in any process -- the property that lets
  batch-pool workers, the server, and the sweep driver rebuild any
  variant from its registry name alone.
* **Full-stack legality**: every variant's source is writer-serialized
  HMDES, so building it exercises the writer -> parser -> translator
  front end; every preset family must come out schedulable.
* **Backend agreement**: a shared seeded workload scheduled on every
  registered list backend produces bit-identical signatures, and the
  independent oracle accepts the schedules.
* **Registry integration**: ``synth:<family>:<seed>:<index>`` names
  resolve through ``get_machine`` under a bounded LRU, and malformed
  names fail with the registry's KeyError contract.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import create_engine, engine_names
from repro.machines import get_machine
from repro.machines.synth import (
    FAMILIES,
    RESOLVE_CACHE_SIZE,
    build_variant,
    clear_resolve_cache,
    describe_complexity,
    family_names,
    fleet_names,
    is_synth_name,
    machine_name,
    parse_name,
    resolve,
    resolve_cache_len,
)
from repro.scheduler import schedule_workload
from repro.verify import verify_schedule
from repro.workloads import WorkloadConfig, generate_blocks

WORKLOAD_SEED = 20161202
COMPLEXITY_KEYS = {
    "resources", "classes", "opcodes",
    "stored_options", "stored_usages", "flat_options",
}


class TestNaming:
    def test_machine_name_parse_roundtrip(self):
        for family in family_names():
            name = machine_name(family, 7, 3)
            assert name == f"synth:{family}:7:3"
            assert is_synth_name(name)
            assert parse_name(name) == (family, 7, 3)

    @pytest.mark.parametrize("bad", [
        "synth:",
        "synth:vliw-narrow",
        "synth:vliw-narrow:7",
        "synth:vliw-narrow:7:x",
        "synth:no-such-family:7:0",
        "PA7100",
    ])
    def test_malformed_names_raise_keyerror(self, bad):
        with pytest.raises(KeyError):
            resolve(bad)

    def test_fleet_names_in_index_order(self):
        names = fleet_names("vliw-narrow", 5, 4)
        assert names == tuple(
            machine_name("vliw-narrow", 5, i) for i in range(4)
        )
        with pytest.raises(KeyError):
            fleet_names("no-such-family", 5, 4)


class TestRegistry:
    def test_get_machine_resolves_synth_names(self):
        name = machine_name("superscalar-narrow", 11, 2)
        machine = get_machine(name)
        assert machine.name == name
        # Same name, same cached object.
        assert get_machine(name) is machine

    def test_unknown_machine_mentions_synth_namespace(self):
        with pytest.raises(KeyError, match="synth:<family>"):
            get_machine("NoSuchMachine")

    def test_resolve_cache_is_bounded(self):
        clear_resolve_cache()
        try:
            for index in range(RESOLVE_CACHE_SIZE + 16):
                resolve(machine_name("vliw-narrow", 1, index))
                assert resolve_cache_len() <= RESOLVE_CACHE_SIZE
            assert resolve_cache_len() == RESOLVE_CACHE_SIZE
        finally:
            clear_resolve_cache()


class TestGeneration:
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        family=st.sampled_from(sorted(FAMILIES)),
        seed=st.integers(0, 1000),
        index=st.integers(0, 50),
    )
    def test_seeded_generation_is_reproducible(self, family, seed, index):
        first = build_variant(family, seed, index)
        second = build_variant(family, seed, index)
        assert first.hmdes_source == second.hmdes_source
        assert first.name == second.name == machine_name(
            family, seed, index
        )
        assert first.opcode_profile == second.opcode_profile

    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        family=st.sampled_from(sorted(FAMILIES)),
        seed=st.integers(0, 100),
    )
    def test_neighbouring_indices_differ(self, family, seed):
        """A fleet is a *family*, not one machine repeated."""
        sources = {
            build_variant(family, seed, index).hmdes_source
            for index in range(4)
        }
        assert len(sources) > 1

    def test_every_family_parses_and_translates(self):
        """build() parses the writer-serialized source: the full
        writer -> parser -> translator round-trip per variant."""
        for family in family_names():
            machine = build_variant(family, 13, 0)
            mdes = machine.build()
            assert mdes.or_trees(), family
            andor = machine.build_andor()
            # Every profiled opcode must map to a translated class.
            for spec in machine.opcode_profile:
                assert andor.class_for_opcode(spec.opcode), (
                    family, spec.opcode
                )
            complexity = describe_complexity(machine)
            assert set(complexity) == COMPLEXITY_KEYS
            assert complexity["stored_options"] > 0
            assert complexity["flat_options"] > 0


class TestScheduling:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_backends_agree_and_oracle_accepts(self, family):
        """One shared workload, every backend, one signature -- and the
        independent oracle signs off on the placements."""
        machine = build_variant(family, 5, 0)
        blocks = generate_blocks(machine, WorkloadConfig(
            total_ops=48, seed=WORKLOAD_SEED,
        ))
        signatures = {}
        for backend in engine_names(scheduler="list"):
            engine = create_engine(backend, machine, stage=4)
            run = schedule_workload(
                machine, None, blocks, keep_schedules=True, engine=engine
            )
            signatures[backend] = run.signature()
            report = verify_schedule(machine, run)
            assert report.ok, (
                f"{family}/{backend}: {report.diagnostics[:3]}"
            )
        assert len(set(signatures.values())) == 1, (
            f"{family}: backends disagree: "
            f"{sorted((k, hash(v)) for k, v in signatures.items())}"
        )

    def test_transform_pipeline_reduces_every_family(self):
        """The planted redundancy/domination fodder must give the
        transforms something to remove in every preset.  The fodder is
        drawn per variant, so the floor is per small fleet, not per
        individual machine."""
        from repro.sweep import transform_effects_for

        for family in family_names():
            total = 0
            for index in range(6):
                machine = build_variant(family, 5, index)
                effects = transform_effects_for(machine, stage=4)
                total += sum(
                    e.get("options_delta", 0) for e in effects
                )
            assert total < 0, f"{family}: no option was ever removed"


class TestFuzzCompat:
    def test_generate_shim_reexports_grammar(self):
        from repro.machines.synth import grammar
        from repro.verify import generate

        assert generate.FuzzGrammar is grammar.FuzzGrammar
        assert generate.DEFAULT_GRAMMAR is grammar.DEFAULT_GRAMMAR
        assert generate.generate_mdes is grammar.generate_mdes
        assert generate.build_machine is grammar.build_machine

    def test_fuzz_case_generation_unchanged(self):
        """The move to repro.machines.synth.grammar preserved draw
        order: the fuzzer's seeded cases are bit-identical."""
        from repro.verify.fuzz import generate_case

        one = generate_case(42)
        two = generate_case(42)
        assert one.machine.hmdes_source == two.machine.hmdes_source
