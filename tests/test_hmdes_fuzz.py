"""Fuzzing the HMDES front end: malformed input must fail cleanly.

Whatever garbage reaches the preprocessor, lexer, or parser, the only
acceptable outcomes are success or an ``HmdesError`` subclass with a
message -- never an unrelated exception or a hang.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HmdesError
from repro.hmdes.lexer import tokenize
from repro.hmdes.parser import parse_source
from repro.hmdes.preprocess import preprocess
from repro.hmdes.translate import load_mdes

pytestmark = pytest.mark.fuzz

#: Characters that exercise every token class plus invalid ones.
_ALPHABET = "abAB01 _;:{}[].,$->\n\t@#/*"


class TestFrontEndRobustness:
    @given(st.text(alphabet=_ALPHABET, max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_preprocess_never_crashes_unexpectedly(self, text):
        try:
            preprocess(text)
        except HmdesError:
            pass

    @given(st.text(alphabet=_ALPHABET, max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_tokenize_never_crashes_unexpectedly(self, text):
        try:
            tokenize(text)
        except HmdesError:
            pass

    @given(st.text(alphabet=_ALPHABET, max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_parse_never_crashes_unexpectedly(self, text):
        try:
            parse_source(text)
        except HmdesError:
            pass

    @given(st.text(alphabet=_ALPHABET, max_size=120))
    @settings(max_examples=150, deadline=None)
    def test_load_never_crashes_unexpectedly(self, text):
        try:
            load_mdes(text)
        except HmdesError:
            pass


class TestStructuredMutations:
    """Mutations of a valid description must fail with HmdesError."""

    VALID = (
        "mdes M; section resource { A; }"
        " section opclass { k { resv ortree { option { use A at 0; } }; } }"
        " section operation { X: k; }"
    )

    @given(st.integers(0, len(VALID) - 1))
    @settings(max_examples=150, deadline=None)
    def test_single_character_deletion(self, position):
        mutated = self.VALID[:position] + self.VALID[position + 1 :]
        try:
            load_mdes(mutated)
        except HmdesError:
            pass

    @given(
        st.integers(0, len(VALID) - 1),
        st.sampled_from("{};$@"),
    )
    @settings(max_examples=150, deadline=None)
    def test_single_character_insertion(self, position, char):
        mutated = self.VALID[:position] + char + self.VALID[position:]
        try:
            load_mdes(mutated)
        except HmdesError:
            pass
