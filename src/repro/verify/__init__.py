"""``repro.verify`` -- the independent correctness layer.

Three instruments, all judging the optimized pipeline from outside it:

* the **oracle** (:mod:`repro.verify.oracle`): replays finished
  schedules against the raw, untransformed high-level description --
  a deliberately naive interpreter that shares no code with the
  engines it checks;
* the **differential fuzzer** (:mod:`repro.verify.fuzz`,
  :mod:`repro.verify.generate`, :mod:`repro.verify.differential`,
  :mod:`repro.verify.shrink`): seeded random descriptions scheduled
  through every backend and every transform stage, disagreements
  shrunk to minimal HMDES reproducers;
* the **golden corpus** (:mod:`repro.verify.golden`): pinned schedule
  digests for the four paper machines across every backend, checked in
  under ``tests/golden/``.

Entry points: :func:`verify_schedule` (also re-exported from
``repro.api``), :func:`fuzz`, and the CLI's ``verify``/``fuzz``
commands.
"""

from repro.verify.differential import (
    DEFAULT_STAGES,
    Divergence,
    differential_runs,
    exact_oracle_divergences,
    verify_transform_stages,
)
from repro.verify.fuzz import (
    FuzzCase,
    FuzzFailure,
    FuzzReport,
    fuzz,
    generate_case,
    run_case,
)
from repro.verify.generate import DEFAULT_GRAMMAR, FuzzGrammar
from repro.verify.golden import (
    CORPUS_SEED,
    CORPUS_STAGE,
    CORPUS_VERSION,
    SYNTH_FLEET_FILE,
    SYNTH_FLEET_SEED,
    check_corpus,
    check_synth_fleet,
    compute_exact_entry,
    corpus_workload,
    exact_corpus_workload,
    schedule_digest,
    synth_fleet_names,
    write_corpus,
    write_synth_fleet,
)
from repro.verify.oracle import (
    LATENCY_VIOLATION,
    RESOURCE_CONFLICT,
    SEARCH_BUDGET_EXCEEDED,
    UNKNOWN_CLASS,
    UNPLACED_OPERATION,
    Diagnostic,
    ScheduleOracle,
    VerifyReport,
    verify_schedule,
)
from repro.verify.shrink import shrink_case

__all__ = [
    # Oracle
    "Diagnostic",
    "ScheduleOracle",
    "VerifyReport",
    "verify_schedule",
    "RESOURCE_CONFLICT",
    "LATENCY_VIOLATION",
    "UNKNOWN_CLASS",
    "UNPLACED_OPERATION",
    "SEARCH_BUDGET_EXCEEDED",
    # Differential fuzzer
    "DEFAULT_GRAMMAR",
    "DEFAULT_STAGES",
    "Divergence",
    "FuzzCase",
    "FuzzFailure",
    "FuzzGrammar",
    "FuzzReport",
    "differential_runs",
    "exact_oracle_divergences",
    "fuzz",
    "generate_case",
    "run_case",
    "shrink_case",
    "verify_transform_stages",
    # Golden corpus
    "CORPUS_SEED",
    "CORPUS_STAGE",
    "CORPUS_VERSION",
    "SYNTH_FLEET_FILE",
    "SYNTH_FLEET_SEED",
    "check_corpus",
    "check_synth_fleet",
    "compute_exact_entry",
    "corpus_workload",
    "exact_corpus_workload",
    "schedule_digest",
    "synth_fleet_names",
    "write_corpus",
    "write_synth_fleet",
]
