"""The resource usage map (RU map).

The scheduler tracks which resources are busy in which cycle with one
bit-vector word per cycle (paper, section 6): bit *i* set means resource
*i* is in use that cycle.  Packing a cycle into one word lets a single
AND test (and a single OR) check (and reserve) every usage an option has
in that cycle.

Python integers serve as arbitrarily wide words, so a machine may declare
any number of resources.  Cycles are keyed in a dict, which transparently
supports the negative usage times that decode-stage resources carry.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import SchedulingError


class RUMap:
    """Mutable map from cycle to the bit-vector of busy resources."""

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    def is_free(self, cycle: int, mask: int) -> bool:
        """True when none of the resources in ``mask`` are busy at ``cycle``."""
        return not (self._words.get(cycle, 0) & mask)

    def reserve(self, cycle: int, mask: int) -> None:
        """Mark the resources in ``mask`` busy at ``cycle``.

        Raises :class:`SchedulingError` if any of them is already busy --
        reserving twice is always a checker or scheduler bug.
        """
        current = self._words.get(cycle, 0)
        if current & mask:
            raise SchedulingError(
                f"double reservation at cycle {cycle}: "
                f"mask {mask:#x} overlaps {current:#x}"
            )
        self._words[cycle] = current | mask

    def release(self, cycle: int, mask: int) -> None:
        """Free the resources in ``mask`` at ``cycle``.

        Raises :class:`SchedulingError` if any of them was not busy.
        Releasing is what lets modulo scheduling unschedule operations
        (section 10 notes reservation tables support this and automata
        do not).
        """
        current = self._words.get(cycle, 0)
        if (current & mask) != mask:
            raise SchedulingError(
                f"release of unreserved resources at cycle {cycle}: "
                f"mask {mask:#x} vs busy {current:#x}"
            )
        remaining = current & ~mask
        if remaining:
            self._words[cycle] = remaining
        else:
            del self._words[cycle]

    def clear(self) -> None:
        """Free every resource (start of a new scheduling region)."""
        self._words.clear()

    def busy_cycles(self) -> Iterator[Tuple[int, int]]:
        """Yield (cycle, word) pairs with at least one busy resource."""
        return iter(sorted(self._words.items()))

    def word(self, cycle: int) -> int:
        """The busy-resource bit-vector for ``cycle`` (0 when idle)."""
        return self._words.get(cycle, 0)

    def __bool__(self) -> bool:
        return bool(self._words)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RUMap):
            return NotImplemented
        return self._words == other._words

    def copy(self) -> "RUMap":
        """An independent copy (used by what-if scheduling probes)."""
        duplicate = RUMap()
        duplicate._words = dict(self._words)
        return duplicate

    def __repr__(self) -> str:
        cycles = ", ".join(
            f"{cycle}:{word:#x}" for cycle, word in sorted(self._words.items())
        )
        return f"RUMap({{{cycles}}})"


class ModuloRUMap(RUMap):
    """An RU map whose cycles wrap modulo the initiation interval.

    This is the *modulo reservation table* of iterative modulo scheduling
    (Rau, MICRO-27): a reservation at cycle ``c`` occupies slot
    ``c % II`` of every iteration.
    """

    __slots__ = ("ii",)

    def __init__(self, ii: int) -> None:
        super().__init__()
        if ii < 1:
            raise SchedulingError(f"initiation interval must be >= 1: {ii}")
        self.ii = ii

    def is_free(self, cycle: int, mask: int) -> bool:
        return super().is_free(cycle % self.ii, mask)

    def reserve(self, cycle: int, mask: int) -> None:
        super().reserve(cycle % self.ii, mask)

    def release(self, cycle: int, mask: int) -> None:
        super().release(cycle % self.ii, mask)

    def word(self, cycle: int) -> int:
        return super().word(cycle % self.ii)
