"""Tests for HMDES semantic analysis."""

import pytest

from repro.core.tables import AndOrTree, OrTree
from repro.errors import HmdesSemanticError
from repro.hmdes.translate import load_mdes

GOOD = """
mdes M;
section resource { A; B[0..1]; }
section table { T { use A at 0; } }
section ortree {
    O { option { use B[0] at -1; } option { use B[1] at -1; } }
    O_dead { option { use A at 5; } }
}
section andortree {
    AO { ortree T; ortree O; }
    AO_dead { ortree O_dead; ortree T; }
}
section opclass {
    k1 { resv AO; latency 2; }
    k2 { resv O; }
    k3 { resv T; }
}
section operation { X: k1; Y: k2; Z: k3; }
"""


class TestTranslate:
    def test_basic_shape(self):
        mdes = load_mdes(GOOD)
        assert mdes.name == "M"
        assert len(mdes.resources) == 3
        assert set(mdes.op_classes) == {"k1", "k2", "k3"}
        assert mdes.opcode_map == {"X": "k1", "Y": "k2", "Z": "k3"}

    def test_named_table_as_ortree_child_is_wrapped(self):
        mdes = load_mdes(GOOD)
        constraint = mdes.op_class("k1").constraint
        assert isinstance(constraint, AndOrTree)
        first = constraint.or_trees[0]
        assert len(first) == 1
        assert first.name == "T"

    def test_named_table_as_resv_is_wrapped(self):
        constraint = load_mdes(GOOD).op_class("k3").constraint
        assert isinstance(constraint, OrTree)
        assert len(constraint) == 1

    def test_sharing_by_name(self):
        mdes = load_mdes(GOOD)
        k1 = mdes.op_class("k1").constraint
        k2 = mdes.op_class("k2").constraint
        assert k1.or_trees[1] is k2

    def test_unused_trees_collected_transitively(self):
        mdes = load_mdes(GOOD)
        # AO_dead is unused; O_dead is referenced only by AO_dead, so it
        # is dead too.  T is used by k1/k3 and must not be reported.
        assert set(mdes.unused_trees) == {"AO_dead", "O_dead"}

    def test_latency(self):
        mdes = load_mdes(GOOD)
        assert mdes.op_class("k1").latency == 2
        assert mdes.op_class("k2").latency == 1


class TestTranslateErrors:
    def test_unknown_resource(self):
        with pytest.raises(HmdesSemanticError, match="unknown resource"):
            load_mdes(
                "mdes M; section ortree { O { option { use Z at 0; } } }"
                " section opclass { k { resv O; } }"
                " section operation { X: k; }"
            )

    def test_duplicate_tree_name(self):
        with pytest.raises(HmdesSemanticError, match="declared twice"):
            load_mdes(
                "mdes M; section resource { A; }"
                " section ortree { O { option { use A at 0; } }"
                " O { option { use A at 1; } } }"
            )

    def test_unknown_tree_reference(self):
        with pytest.raises(HmdesSemanticError, match="unknown"):
            load_mdes(
                "mdes M; section resource { A; }"
                " section opclass { k { resv NOPE; } }"
                " section operation { X: k; }"
            )

    def test_opcode_mapped_twice(self):
        with pytest.raises(HmdesSemanticError, match="mapped twice"):
            load_mdes(
                "mdes M; section resource { A; }"
                " section opclass { k { resv ortree { option "
                "{ use A at 0; } }; } }"
                " section operation { X: k; X: k; }"
            )

    def test_opcode_to_unknown_class(self):
        with pytest.raises(HmdesSemanticError, match="unknown class"):
            load_mdes(
                "mdes M; section resource { A; }"
                " section operation { X: nothing; }"
            )

    def test_overlapping_andortree_rejected(self):
        # Sibling OR-trees that could reserve the same (resource, time)
        # violate the checker's independence assumption.
        with pytest.raises(Exception, match="may both reserve"):
            load_mdes(
                "mdes M; section resource { A; }"
                " section andortree { AO {"
                " ortree { option { use A at 0; } }"
                " ortree { option { use A at 0; } } } }"
                " section opclass { k { resv AO; } }"
                " section operation { X: k; }"
            )
