"""Tokenizer for preprocessed HMDES source."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import HmdesSyntaxError

#: Token kinds.
IDENT = "IDENT"
INT = "INT"
PUNCT = "PUNCT"
EOF = "EOF"

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<int>-?\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<punct>\.\.|->|\{|\}|\[|\]|;|:|,)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source line (1-based)."""

    kind: str
    value: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`HmdesSyntaxError` on bad input."""
    tokens: List[Token] = []
    line = 1
    position = 0
    length = len(source)
    while position < length:
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise HmdesSyntaxError(
                f"unexpected character {source[position]!r}", line
            )
        position = match.end()
        if match.lastgroup == "ws":
            line += match.group(0).count("\n")
            continue
        kind = {"int": INT, "ident": IDENT, "punct": PUNCT}[match.lastgroup]
        tokens.append(Token(kind, match.group(0), line))
    tokens.append(Token(EOF, "", line))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual parser conveniences."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> Token:
        """The token at the cursor."""
        return self._tokens[self._index]

    def advance(self) -> Token:
        """Return the current token and move past it."""
        token = self.current
        if token.kind != EOF:
            self._index += 1
        return token

    def expect(self, kind: str, value: str = "") -> Token:
        """Consume a token of the given kind (and value, if non-empty)."""
        token = self.current
        if token.kind != kind or (value and token.value != value):
            wanted = value or kind
            raise HmdesSyntaxError(
                f"expected {wanted!r}, found {token.value!r}", token.line
            )
        return self.advance()

    def accept(self, kind: str, value: str = "") -> bool:
        """Consume the token if it matches; return whether it did."""
        token = self.current
        if token.kind == kind and (not value or token.value == value):
            self.advance()
            return True
        return False

    def at(self, kind: str, value: str = "") -> bool:
        """True when the current token matches without consuming it."""
        token = self.current
        return token.kind == kind and (not value or token.value == value)
