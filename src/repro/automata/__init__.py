"""Finite-state-automata baseline (paper section 10).

Proebsting & Fraser, Muller, and Bala & Rubin proposed replacing
reservation-table checking with a finite-state automaton whose states
encode the pipeline's outstanding resource commitments; an issue test is
then a single transition lookup.  The paper argues its transformations
plus AND/OR-trees mitigate that advantage while keeping the capability
automata lack: *unscheduling* (see :mod:`repro.modulo`).

This subpackage implements the baseline so the claim can be measured:

* :mod:`~repro.automata.collision` -- forbidden latencies and collision
  vectors (Davidson's theory, used by section 7's correctness argument);
* :mod:`~repro.automata.automaton` -- a lazily built scheduling DFA over
  a compiled description;
* :mod:`~repro.automata.cycle_scheduler` -- a cycle-driven list scheduler
  that runs against either backend (reservation tables or the automaton)
  and produces identical schedules, so cost can be compared directly.
"""

from repro.automata.collision import (
    collision_vector,
    forbidden_latencies,
)
from repro.automata.automaton import SchedulingAutomaton
from repro.automata.cycle_scheduler import (
    AutomatonBackend,
    EngineBackend,
    TableBackend,
    cycle_schedule_workload,
)

__all__ = [
    "AutomatonBackend",
    "EngineBackend",
    "SchedulingAutomaton",
    "TableBackend",
    "collision_vector",
    "cycle_schedule_workload",
    "forbidden_latencies",
]
