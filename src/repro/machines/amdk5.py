"""The AMD-K5 machine description (paper section 4, Table 4).

A four-issue out-of-order x86 that the MDES models as an in-order machine
which can buffer operations between decode and execution.  Each x86
operation converts into one or more Rops (internal RISC operations); the
Rops of one x86 operation may be dispatched in different cycles when
dispatch slots are short, and accurate modeling lets the scheduler exploit
that buffering (section 4).

Modeled resources: four decode positions (an x86 op holds one; a bundled
cmp+branch holds an adjacent pair, with rotation wrap-around), four Rop
dispatch slots per cycle, and two execution units per Rop type (ALUs and
load/store units) plus single store-data and branch units.

Option counts per class reproduce every row of Table 4:

=====================================================  =======
class (Rops / dispatch cycles / unit choices)          options
=====================================================  =======
one_rop_1unit (1 Rop, 1 unit)                            16
two_rop_1cyc_1unit (2 Rops, 1 cycle, fixed units)        24
one_rop_2unit (1 Rop, 2 units)                           32
cmp_br_1cyc (2-Rop bundle, 1 cycle)                      48
cmp_br_3rop_1cyc (3-Rop bundle, 1 cycle)                 64
two_rop_1cyc_2unit (2 Rops, 1 cycle, 2 units each)       96
cmp_br_2cyc (2-Rop bundle over 2 cycles)                128
two_rop_2cyc_subset (subset: first Rop slots 0-2)       192
two_rop_2cyc (2 Rops over 2 cycles)                     256
cmp_br_3rop_2cyc (3-Rop bundle over 2 cycles)           384
three_rop_2cyc (3 Rops over 2 cycles)                   768
=====================================================  =======

As with real, evolved descriptions, several hot classes carry private
copies of the decode/dispatch trees rather than referencing the shared
ones -- food for the redundancy elimination of section 5.
"""

from __future__ import annotations

from repro.ir.operation import Operation
from repro.machines.base import (
    KIND_BRANCH,
    KIND_INT,
    KIND_LOAD,
    KIND_SERIAL,
    KIND_STORE,
    Machine,
    OpcodeSpec,
)

HMDES_SOURCE = """
mdes K5;

section resource {
    D[0..3];
    S[0..3];
    ALU[0..1];
    LSU[0..1];
    STU;
    BRU;
}

section table {
    RT_bru0 { use BRU at 0; }
    RT_bru1 { use BRU at 1; }
    RT_stu0 { use STU at 0; }
    RT_lsu_fixed { use LSU[0] at 0; }
}

section ortree {
    OT_d  { $for i in 0..3 { option { use D[$i] at -1; } } }
    OT_dpair {
        option { use D[0] at -1; use D[1] at -1; }
        option { use D[1] at -1; use D[2] at -1; }
        option { use D[2] at -1; use D[3] at -1; }
        option { use D[3] at -1; use D[0] at -1; }
    }
    OT_s0 { $for i in 0..3 { option { use S[$i] at 0; } } }
    OT_s1 { $for i in 0..3 { option { use S[$i] at 1; } } }
    OT_s0_first3 { $for i in 0..2 { option { use S[$i] at 0; } } }
    OT_spair0 {
        option { use S[0] at 0; use S[1] at 0; }
        option { use S[0] at 0; use S[2] at 0; }
        option { use S[0] at 0; use S[3] at 0; }
        option { use S[1] at 0; use S[2] at 0; }
        option { use S[1] at 0; use S[3] at 0; }
        option { use S[2] at 0; use S[3] at 0; }
    }
    OT_striple0 {
        option { use S[0] at 0; use S[1] at 0; use S[2] at 0; }
        option { use S[0] at 0; use S[1] at 0; use S[3] at 0; }
        option { use S[0] at 0; use S[2] at 0; use S[3] at 0; }
        option { use S[1] at 0; use S[2] at 0; use S[3] at 0; }
    }
    OT_alu0 { $for u in 0..1 { option { use ALU[$u] at 0; } } }
    OT_alu1 { $for u in 0..1 { option { use ALU[$u] at 1; } } }
    OT_lsu0 { $for u in 0..1 { option { use LSU[$u] at 0; } } }
    OT_lsu1 { $for u in 0..1 { option { use LSU[$u] at 1; } } }

    // Inherited and never referenced (an abandoned FPU-pipe model).
    OT_legacy_fpu { option { use ALU[0] at 0; } option { use ALU[1] at 0; } }
}

section andortree {
    // 16-option classes: one Rop, a single unit choice.
    AOT_branch { ortree OT_d; ortree OT_s0; ortree RT_bru0; }
    AOT_store  { ortree OT_d; ortree OT_s0; ortree RT_stu0; }

    // 24 options: two Rops in one cycle, each with a fixed unit.
    AOT_push { ortree OT_d; ortree OT_spair0; ortree RT_lsu_fixed;
               ortree RT_stu0; }

    // 32-option classes: one Rop, either of two units.  The mov/lea/shift
    // entries were cloned from the ALU entry, private trees included.
    AOT_alu  { ortree OT_d; ortree OT_s0; ortree OT_alu0; }
    AOT_mov {
        ortree { $for i in 0..3 { option { use D[$i] at -1; } } }
        ortree { $for i in 0..3 { option { use S[$i] at 0; } } }
        ortree { $for u in 0..1 { option { use ALU[$u] at 0; } } }
    }
    AOT_lea {
        ortree { $for i in 0..3 { option { use D[$i] at -1; } } }
        ortree { $for i in 0..3 { option { use S[$i] at 0; } } }
        ortree { $for u in 0..1 { option { use ALU[$u] at 0; } } }
    }
    AOT_load { ortree OT_d; ortree OT_s0; ortree OT_lsu0; }

    // Shift and compare entries: further private clones of AOT_alu.
    AOT_shift {
        ortree { $for i in 0..3 { option { use D[$i] at -1; } } }
        ortree { $for i in 0..3 { option { use S[$i] at 0; } } }
        ortree { $for u in 0..1 { option { use ALU[$u] at 0; } } }
    }
    AOT_test {
        ortree { $for i in 0..3 { option { use D[$i] at -1; } } }
        ortree { $for i in 0..3 { option { use S[$i] at 0; } } }
        ortree { $for u in 0..1 { option { use ALU[$u] at 0; } } }
    }

    // 48 options: bundled cmp+br decoded as an adjacent pair, dispatched
    // in one cycle; the cmp Rop picks an ALU, the branch Rop the BRU.
    AOT_cmp_br_1cyc {
        ortree OT_dpair; ortree OT_spair0; ortree OT_alu0; ortree RT_bru0;
    }

    // 64 options: cmp with a memory operand + br (3 Rops, one cycle).
    AOT_cmp_br_3rop_1cyc {
        ortree OT_dpair; ortree OT_striple0; ortree OT_lsu0;
        ortree OT_alu0; ortree RT_bru0;
    }

    // 96 options: ALU with a memory operand, both Rops in one cycle.
    AOT_alu_mem_1cyc {
        ortree OT_d; ortree OT_spair0; ortree OT_lsu0; ortree OT_alu0;
    }

    // 128 options: bundled cmp+br whose branch Rop dispatches a cycle
    // later when slots run short.
    AOT_cmp_br_2cyc {
        ortree OT_dpair; ortree OT_s0; ortree OT_s1; ortree OT_alu0;
        ortree RT_bru1;
    }

    // 192 options: two Rops over two cycles, first Rop restricted to
    // dispatch slots 0-2 (a subset of the 256-option set).
    AOT_two_rop_2cyc_subset {
        ortree OT_d; ortree OT_s0_first3; ortree OT_s1; ortree OT_lsu0;
        ortree OT_alu1;
    }

    // 256 options: two Rops over two cycles, two unit choices each.
    AOT_two_rop_2cyc {
        ortree OT_d; ortree OT_s0; ortree OT_s1; ortree OT_lsu0;
        ortree OT_alu1;
    }

    // 384 options: 3-Rop cmp+br bundle dispatched over two cycles.
    AOT_cmp_br_3rop_2cyc {
        ortree OT_dpair; ortree OT_spair0; ortree OT_s1; ortree OT_lsu0;
        ortree OT_alu0; ortree RT_bru1;
    }

    // 768 options: generic 3-Rop read-modify-write over two cycles.
    AOT_three_rop_2cyc {
        ortree OT_d; ortree OT_spair0; ortree OT_s1; ortree OT_lsu0;
        ortree OT_alu0; ortree OT_alu1;
    }
}

section opclass {
    branch { resv AOT_branch; latency 1; }
    store  { resv AOT_store;  latency 1; }
    push   { resv AOT_push;   latency 1; }
    alu    { resv AOT_alu;    latency 1; }
    shift  { resv AOT_shift;  latency 1; }
    test   { resv AOT_test;   latency 1; }
    mov    { resv AOT_mov;    latency 1; }
    lea    { resv AOT_lea;    latency 1; }
    load   { resv AOT_load;   latency 2; }
    cmp_br_1cyc { resv AOT_cmp_br_1cyc; latency 1; }
    cmp_br_3rop_1cyc { resv AOT_cmp_br_3rop_1cyc; latency 1; }
    alu_mem_1cyc { resv AOT_alu_mem_1cyc; latency 3; }
    cmp_br_2cyc { resv AOT_cmp_br_2cyc; latency 2; }
    two_rop_2cyc_subset { resv AOT_two_rop_2cyc_subset; latency 3; }
    two_rop_2cyc { resv AOT_two_rop_2cyc; latency 3; }
    cmp_br_3rop_2cyc { resv AOT_cmp_br_3rop_2cyc; latency 2; }
    three_rop_2cyc { resv AOT_three_rop_2cyc; latency 4; }
}

section operation {
    JMP: branch; CALL: branch; RET: branch;
    MOV_STORE: store; PUSH: push;
    ADD: alu; SUB: alu; AND: alu; OR: alu; XOR: alu; INC: alu; DEC: alu;
    SHL: shift; SHR: shift;
    TEST: test; CMP: test;
    MOV_RR: mov; MOV_RI: mov;
    LEA: lea;
    MOV_LOAD: load; POP: load;
    CMPBR: cmp_br_1cyc; TESTBR: cmp_br_1cyc;
    CMPMBR: cmp_br_3rop_1cyc;
    ADDM: alu_mem_1cyc; SUBM: alu_mem_1cyc;
    CMPBR_SLOW: cmp_br_2cyc;
    MOVM_SLOW: two_rop_2cyc_subset;
    ADDM_SLOW: two_rop_2cyc;
    CMPMBR_SLOW: cmp_br_3rop_2cyc;
    RMW: three_rop_2cyc;
}
"""

_BASE_CLASS = {
    "JMP": "branch", "CALL": "branch", "RET": "branch",
    "MOV_STORE": "store", "PUSH": "push",
    "ADD": "alu", "SUB": "alu", "AND": "alu", "OR": "alu", "XOR": "alu",
    "INC": "alu", "DEC": "alu", "SHL": "shift", "SHR": "shift",
    "TEST": "test", "CMP": "test",
    "MOV_RR": "mov", "MOV_RI": "mov",
    "LEA": "lea",
    "MOV_LOAD": "load", "POP": "load",
    "CMPBR": "cmp_br_1cyc", "TESTBR": "cmp_br_1cyc",
    "CMPMBR": "cmp_br_3rop_1cyc",
    "ADDM": "alu_mem_1cyc", "SUBM": "alu_mem_1cyc",
    "CMPBR_SLOW": "cmp_br_2cyc",
    "MOVM_SLOW": "two_rop_2cyc_subset",
    "ADDM_SLOW": "two_rop_2cyc",
    "CMPMBR_SLOW": "cmp_br_3rop_2cyc",
    "RMW": "three_rop_2cyc",
}


def classify(op: Operation, cascaded: bool) -> str:
    """K5 class selection: static, one class per opcode."""
    return _BASE_CLASS[op.opcode]


OPCODE_PROFILE = (
    # Branch-only x86 ops (one Rop): part of the 16-option row.
    OpcodeSpec("JMP", 1.2, (0,), False, KIND_BRANCH),
    OpcodeSpec("CALL", 1.0, (0,), False, KIND_BRANCH),
    OpcodeSpec("RET", 0.6, (0,), False, KIND_BRANCH),
    OpcodeSpec("MOV_STORE", 11.5, (2,), False, KIND_STORE),
    # A two-Rop stack op dispatched in one cycle (the 24-option row).
    OpcodeSpec("PUSH", 0.12, (2,), False, KIND_STORE),
    # The dominant 32-option row.
    OpcodeSpec("ADD", 8.5, (1, 2), True, KIND_INT),
    OpcodeSpec("SUB", 5.0, (1, 2), True, KIND_INT),
    OpcodeSpec("AND", 2.5, (1,), True, KIND_INT),
    OpcodeSpec("OR", 2.0, (1,), True, KIND_INT),
    OpcodeSpec("XOR", 2.0, (1,), True, KIND_INT),
    OpcodeSpec("INC", 2.0, (1,), True, KIND_INT),
    OpcodeSpec("DEC", 1.0, (1,), True, KIND_INT),
    OpcodeSpec("SHL", 2.5, (1,), True, KIND_INT),
    OpcodeSpec("SHR", 1.5, (1,), True, KIND_INT),
    OpcodeSpec("TEST", 1.5, (2,), True, KIND_INT),
    OpcodeSpec("CMP", 2.5, (2,), True, KIND_INT),
    OpcodeSpec("MOV_RR", 5.0, (1,), True, KIND_INT),
    OpcodeSpec("MOV_RI", 3.5, (0,), True, KIND_INT),
    OpcodeSpec("LEA", 3.5, (1, 2), True, KIND_INT),
    OpcodeSpec("MOV_LOAD", 13.0, (1,), True, KIND_LOAD),
    OpcodeSpec("POP", 1.5, (1,), True, KIND_LOAD),
    # Bundled compare+branch forms.
    OpcodeSpec("CMPBR", 5.5, (2,), False, KIND_BRANCH),
    OpcodeSpec("TESTBR", 2.0, (2,), False, KIND_BRANCH),
    OpcodeSpec("CMPMBR", 3.5, (1,), False, KIND_BRANCH),
    OpcodeSpec("CMPBR_SLOW", 1.1, (2,), False, KIND_BRANCH),
    OpcodeSpec("CMPMBR_SLOW", 0.8, (1,), False, KIND_BRANCH),
    # Memory-operand ALU forms.
    OpcodeSpec("ADDM", 0.1, (1,), True, KIND_LOAD),
    OpcodeSpec("SUBM", 0.05, (1,), True, KIND_LOAD),
    OpcodeSpec("MOVM_SLOW", 0.12, (1,), True, KIND_LOAD),
    OpcodeSpec("ADDM_SLOW", 0.3, (1,), True, KIND_LOAD),
    OpcodeSpec("RMW", 0.12, (1,), True, KIND_STORE),
)


def build_machine() -> Machine:
    """Construct the K5 machine."""
    profile = tuple(spec for spec in OPCODE_PROFILE if spec.weight > 0)
    return Machine(
        name="K5",
        hmdes_source=HMDES_SOURCE,
        opcode_profile=profile,
        classifier=classify,
        scheduling_mode="postpass",
        register_pool=40,
        block_size_range=(6, 15),
        flow_probability=0.12,
    )
