"""Fixed-width table formatting for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table.

    Numbers are right-aligned, text left-aligned; floats print with two
    decimals (the paper's precision).
    """
    string_rows: List[List[str]] = [[_cell(value) for value in row]
                                    for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for column, text in enumerate(row):
            widths[column] = max(widths[column], len(text))

    def render_row(cells: Sequence[str], numeric: bool) -> str:
        parts = []
        for column, text in enumerate(cells):
            if numeric and _looks_numeric(text):
                parts.append(text.rjust(widths[column]))
            else:
                parts.append(text.ljust(widths[column]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers), numeric=False))
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append(render_row(row, numeric=True))
    return "\n".join(lines)


def _looks_numeric(text: str) -> bool:
    stripped = text.rstrip("%")
    try:
        float(stripped)
    except ValueError:
        return False
    return True


def reduction_pct(before: float, after: float) -> str:
    """Percentage reduction, formatted like the paper's tables.

    Negative values (growth) are possible -- the paper's Pentium AND/OR
    row grows by 4%.
    """
    if before == 0:
        return "0.0%"
    return f"{(before - after) / before * 100:.1f}%"
