"""Tests for the MDES linter."""

import pytest

from repro.hmdes.validator import lint_mdes, lint_source
from repro.machines import get_machine


def codes(diagnostics):
    return {diagnostic.code for diagnostic in diagnostics}


class TestLintChecks:
    def test_clean_description_is_quiet(self):
        source = """
        mdes Clean;
        section resource { A; B; }
        section opclass {
            k { resv ortree { option { use A at 0; }
                              option { use B at 0; } }; }
        }
        section operation { X: k; }
        """
        diagnostics = lint_source(source)
        assert not [d for d in diagnostics if d.severity == "warning"]

    def test_w001_dead_tree(self):
        source = """
        mdes M;
        section resource { A; }
        section ortree { O_dead { option { use A at 5; } } }
        section opclass {
            k { resv ortree { option { use A at 0; } }; }
        }
        section operation { X: k; }
        """
        diagnostics = lint_source(source)
        assert "W001" in codes(diagnostics)

    def test_w002_dominated_option(self):
        source = """
        mdes M;
        section resource { A; B; }
        section opclass {
            k { resv ortree { option { use A at 0; }
                              option { use A at 0; use B at 0; } }; }
        }
        section operation { X: k; }
        """
        findings = [d for d in lint_source(source) if d.code == "W002"]
        assert len(findings) == 1
        assert "superset" in findings[0].message

    def test_w002_duplicate_option(self):
        source = """
        mdes M;
        section resource { A; }
        section opclass {
            k { resv ortree { option { use A at 0; }
                              option { use A at 0; } }; }
        }
        section operation { X: k; }
        """
        findings = [d for d in lint_source(source) if d.code == "W002"]
        assert "duplicates" in findings[0].message

    def test_w003_unused_resource(self):
        source = """
        mdes M;
        section resource { A; GHOST; }
        section opclass {
            k { resv ortree { option { use A at 0; } }; }
        }
        section operation { X: k; }
        """
        findings = [d for d in lint_source(source) if d.code == "W003"]
        assert len(findings) == 1
        assert "GHOST" in findings[0].message

    def test_w004_unshared_duplicate_constraints(self):
        source = """
        mdes M;
        section resource { A; B; }
        section opclass {
            k1 { resv ortree { option { use A at 0; use B at 1; } }; }
            k2 { resv ortree { option { use A at 0; use B at 1; } }; }
        }
        section operation { X: k1; Y: k2; }
        """
        assert "W004" in codes(lint_source(source))

    def test_w006_unshared_or_tree_copies(self):
        diagnostics = lint_mdes(get_machine("SuperSPARC").build())
        findings = [d for d in diagnostics if d.code == "W006"]
        # The inline decoder-tree copies in the memory/FP classes.
        assert findings

    def test_i101_expansion_pressure(self):
        mdes = get_machine("K5").build_or()
        findings = [d for d in lint_mdes(mdes) if d.code == "I101"]
        assert findings
        assert any("768" in d.message for d in findings)

    def test_i102_shift_potential(self):
        diagnostics = lint_mdes(get_machine("SuperSPARC").build())
        assert "I102" in codes(diagnostics)

    def test_fully_optimized_description_is_mostly_clean(self):
        from repro.transforms import optimize

        optimized = optimize(get_machine("SuperSPARC").build())
        warnings = [
            d for d in lint_mdes(optimized) if d.severity == "warning"
        ]
        assert not warnings


class TestDiagnosticFormat:
    def test_str(self):
        diagnostics = lint_mdes(get_machine("PA7100").build())
        assert all(
            str(d).startswith(("warning: [", "info: ["))
            for d in diagnostics
        )
