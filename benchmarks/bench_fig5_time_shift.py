"""Figure 5: the integer-load OR-tree after usage-time shifting."""

from conftest import write_result

from repro.machines import get_machine
from repro.transforms import shift_usage_times


def test_fig5_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.fig5_shifted_load())
    assert "-1 |" not in text  # decode usages moved to time zero
    write_result(results_dir, "fig5_time_shift.txt", text)


def test_fig5_bench_shift(benchmark):
    """Time the usage-time transformation over the K5 flat form."""
    mdes = get_machine("K5").build_or()
    shifted = benchmark(shift_usage_times, mdes)
    assert shifted.name == "K5"
