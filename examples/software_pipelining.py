#!/usr/bin/env python3
"""Software pipelining on reservation tables (and why automata can't).

The paper's section 10 argues a key advantage of reservation tables over
finite-state-automata constraint checkers: iterative modulo scheduling
has to *unschedule* operations (release their resources) to resolve
conflicts, which an RU map supports directly and an automaton does not.

This example software pipelines synthetic loops on each machine, reports
the achieved initiation interval against the ResMII/RecMII lower bounds,
and then shows the automaton backend refusing the release operation.

Run:  python examples/software_pipelining.py
"""

from repro.transforms.pipeline import staged_mdes
from repro.automata import SchedulingAutomaton
from repro.lowlevel import compile_mdes
from repro.machines import MACHINE_NAMES, get_machine
from repro.modulo import (
    make_recurrence_loop,
    minimum_initiation_interval,
    modulo_schedule,
)


def main():
    print(f"{'machine':11s} {'loop':>12s} {'ResMII':>7s} {'RecMII':>7s} "
          f"{'II':>4s} {'evictions':>10s}")
    print("-" * 56)
    for name in MACHINE_NAMES:
        machine = get_machine(name)
        compiled = compile_mdes(
            staged_mdes(machine.build_andor(), 4), bitvector=True
        )
        for chain, parallel in ((3, 2), (2, 6)):
            loop = make_recurrence_loop(machine, chain, parallel)
            res_mii, rec_mii = minimum_initiation_interval(
                loop, machine, compiled
            )
            schedule = modulo_schedule(loop, machine, compiled)
            schedule.validate()
            print(
                f"{name:11s} {f'{chain}+{parallel}x2':>12s} "
                f"{res_mii:7d} {rec_mii:7d} {schedule.ii:4d} "
                f"{schedule.evictions:10d}"
            )

    print("\nKernel of the last schedule (cycle mod II: operations):")
    by_slot = {}
    for index, time in sorted(schedule.times.items()):
        by_slot.setdefault(time % schedule.ii, []).append(
            f"{loop.operations[index].opcode}@{time}"
        )
    for slot in range(schedule.ii):
        ops = ", ".join(by_slot.get(slot, []))
        print(f"  {slot:3d}: {ops}")

    print(
        "\nThe automaton backend has no release operation -- its states "
        "only ever\naccumulate commitments -- so this unscheduling is "
        "impossible there:"
    )
    automaton = SchedulingAutomaton(compiled)
    print(f"  {automaton.__class__.__name__} public API: "
          f"{[n for n in dir(automaton) if not n.startswith('_')]}")


if __name__ == "__main__":
    main()
