"""Deterministic fault injection for the batch service.

The resilience layer (:mod:`repro.service.resilience`) claims that a
batch run survives worker crashes, chunk hangs, transient scheduling
errors, and corrupt disk-cache entries *without changing its output*.
That claim is only testable if the faults themselves are reproducible,
so this module injects them by **seeded rule**, not by chance: every
rule names the chunk index and attempt numbers it fires on, which makes
a fault profile a pure function of the batch partition -- the same
property the service's determinism contract is built on.

Faults are off unless a plan is installed programmatically
(:func:`install` / :func:`injected`) or via the ``REPRO_FAULTS``
environment variable (mirroring ``REPRO_OBS``).  The spec grammar is a
``;``-separated rule list::

    REPRO_FAULTS="seed=42;crash@1;hang@2:1.5;sched@0;corrupt@1"

    rule    := kind '@' chunk ['#' attempts] [':' param]
    kind    := 'crash' | 'hang' | 'sched' | 'corrupt'
    attempts:= '*' | int (',' int)*      (default: first attempt only)
    param   := float                     (hang: sleep seconds)

* ``crash``  -- in a pool worker, ``os._exit(1)`` (a real worker death,
  surfacing as ``BrokenProcessPool`` in the driver); on the in-process
  serial path, raise :class:`~repro.errors.WorkerCrashError` instead.
* ``hang``   -- sleep ``param`` seconds (default 2.0) before the chunk
  runs, long enough to trip a configured chunk timeout.
* ``sched``  -- raise a transient :class:`~repro.errors.SchedulingError`.
* ``corrupt``-- scribble over every published LMDES artifact in the
  run's cache directory, so the next description load exercises the
  disk tier's quarantine-and-rebuild path for real.

``attempts`` defaults to ``(0,)``: a fault fires the first time its
chunk is dispatched and not on retries, which is what *transient* means
here.  ``#*`` makes a fault deterministic (fires on every attempt) --
the profile used to prove poisoned-chunk isolation.

Faults never fire inside the driver's quarantine/isolation path
(:func:`suppressed`): isolation is the last-resort clean re-run that
decides whether a failure was the chunk's or a block's, and injecting
there would make every fault look like a poisoned block.
"""

from __future__ import annotations

import logging
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.errors import SchedulingError, WorkerCrashError

logger = logging.getLogger("repro.service.faults")

#: Recognised fault kinds, in the order multiple matches are applied.
KINDS = ("corrupt", "sched", "hang", "crash")

#: Environment variable holding the process-wide fault spec.
ENV_VAR = "REPRO_FAULTS"

#: Default sleep for ``hang`` rules without an explicit param.
DEFAULT_HANG_SECONDS = 2.0

#: What corrupt rules overwrite artifacts with -- deliberately not
#: JSON, so ``load_lmdes`` fails structurally, not subtly.
CORRUPT_BYTES = b"\x00repro-fault-injection: corrupted artifact\x00"


@dataclass(frozen=True)
class FaultRule:
    """One seeded fault: *kind* fires when *chunk* runs at *attempts*.

    ``attempts`` is the tuple of attempt numbers the rule fires on; the
    empty tuple means every attempt (a deterministic, non-transient
    fault).  ``param`` is the kind-specific knob (hang seconds).
    """

    kind: str
    chunk: int
    attempts: Tuple[int, ...] = (0,)
    param: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}"
            )
        if self.chunk < 0:
            raise ValueError(f"fault chunk must be >= 0: {self.chunk}")

    def matches(self, chunk: int, attempt: int) -> bool:
        if chunk != self.chunk:
            return False
        return not self.attempts or attempt in self.attempts

    def spec(self) -> str:
        """This rule in the ``REPRO_FAULTS`` grammar."""
        text = f"{self.kind}@{self.chunk}"
        if not self.attempts:
            text += "#*"
        elif self.attempts != (0,):
            text += "#" + ",".join(str(a) for a in self.attempts)
        if self.param is not None:
            text += f":{self.param:g}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """A full seeded fault profile for one batch run."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def rules_for(self, chunk: int, attempt: int) -> List[FaultRule]:
        """Matching rules in application order (corrupt before crash)."""
        matched = [r for r in self.rules if r.matches(chunk, attempt)]
        matched.sort(key=lambda rule: KINDS.index(rule.kind))
        return matched

    def spec(self) -> str:
        """The plan in the ``REPRO_FAULTS`` grammar (parse round-trip)."""
        parts = [f"seed={self.seed}"]
        parts.extend(rule.spec() for rule in self.rules)
        return ";".join(parts)

    def __bool__(self) -> bool:
        return bool(self.rules)


def parse_faults(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    rules: List[FaultRule] = []
    seed = 0
    for raw in spec.split(";"):
        entry = raw.strip()
        if not entry:
            continue
        if entry.startswith("seed="):
            seed = int(entry[len("seed="):])
            continue
        if "@" not in entry:
            raise ValueError(
                f"bad fault rule {entry!r}: expected kind@chunk"
                "[#attempts][:param]"
            )
        kind, _, rest = entry.partition("@")
        param: Optional[float] = None
        if ":" in rest:
            rest, _, param_text = rest.partition(":")
            param = float(param_text)
        attempts: Tuple[int, ...] = (0,)
        if "#" in rest:
            rest, _, attempts_text = rest.partition("#")
            if attempts_text.strip() == "*":
                attempts = ()
            else:
                attempts = tuple(
                    int(a) for a in attempts_text.split(",") if a.strip()
                )
        rules.append(
            FaultRule(
                kind=kind.strip(), chunk=int(rest), attempts=attempts,
                param=param,
            )
        )
    return FaultPlan(rules=tuple(rules), seed=seed)


# ----------------------------------------------------------------------
# Process-wide plan state
# ----------------------------------------------------------------------

#: Programmatically installed plan; overrides the environment.
_PLAN: Optional[FaultPlan] = None

#: While > 0, no fault fires (the driver's isolation/quarantine path).
_SUPPRESS_DEPTH = 0


def install(plan: Optional[FaultPlan]) -> None:
    """Install a plan for this process (``None`` reverts to the env)."""
    global _PLAN
    _PLAN = plan


def clear() -> None:
    """Remove any programmatically installed plan."""
    install(None)


def current_plan() -> Optional[FaultPlan]:
    """The active plan: the installed one, else ``REPRO_FAULTS``."""
    if _PLAN is not None:
        return _PLAN
    spec = os.environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    return parse_faults(spec)


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Temporarily install a plan (test scaffolding)."""
    previous = _PLAN
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


@contextmanager
def suppressed() -> Iterator[None]:
    """Disable fault firing for a region (the isolation re-run path)."""
    global _SUPPRESS_DEPTH
    _SUPPRESS_DEPTH += 1
    try:
        yield
    finally:
        _SUPPRESS_DEPTH -= 1


# ----------------------------------------------------------------------
# The injection hook
# ----------------------------------------------------------------------


def _corrupt_cache_dir(cache_dir: Optional[str]) -> int:
    """Overwrite every published artifact in ``cache_dir``; returns count.

    The corruption is real bytes on disk, so recovery runs through the
    production quarantine path in :mod:`repro.engine.diskcache`, not a
    mock.
    """
    if not cache_dir:
        return 0
    corrupted = 0
    for path in sorted(Path(cache_dir).glob("*.lmdes.json")):
        try:
            path.write_bytes(CORRUPT_BYTES)
            corrupted += 1
        except OSError:  # pragma: no cover - fs race; injection is best-effort
            pass
    return corrupted


def apply_chunk_faults(
    plan: Optional[FaultPlan],
    chunk: int,
    attempt: int,
    cache_dir: Optional[str] = None,
    in_worker: bool = False,
) -> None:
    """Fire every rule matching ``(chunk, attempt)``; called per dispatch.

    Runs before the chunk's trace capture opens, so a faulted attempt
    leaves no spans behind -- the recovered trace stays identical to a
    clean run's.
    """
    if plan is None or _SUPPRESS_DEPTH:
        return
    for rule in plan.rules_for(chunk, attempt):
        logger.warning(
            "injecting fault %s on chunk %d attempt %d",
            rule.spec(), chunk, attempt,
        )
        if rule.kind == "corrupt":
            count = _corrupt_cache_dir(cache_dir)
            logger.warning(
                "fault injection corrupted %d cache artifact(s) in %s",
                count, cache_dir,
            )
        elif rule.kind == "sched":
            raise SchedulingError(
                f"injected transient fault (chunk {chunk}, "
                f"attempt {attempt})"
            )
        elif rule.kind == "hang":
            time.sleep(
                rule.param if rule.param is not None
                else DEFAULT_HANG_SECONDS
            )
        elif rule.kind == "crash":
            if in_worker:
                # A real worker death: no exception, no cleanup, the
                # driver sees BrokenProcessPool.
                os._exit(1)
            raise WorkerCrashError(
                f"injected worker crash (chunk {chunk}, "
                f"attempt {attempt})"
            )


__all__ = [
    "DEFAULT_HANG_SECONDS",
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "KINDS",
    "apply_chunk_faults",
    "clear",
    "current_plan",
    "injected",
    "install",
    "parse_faults",
    "suppressed",
]
