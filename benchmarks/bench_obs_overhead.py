"""The observability overhead gate.

The ``repro.obs`` contract is that instrumentation is effectively free:
spans sit at workload/stage/chunk granularity (never per scheduling
attempt) and the disabled fast path is one module-flag test returning a
shared no-op object.  This benchmark prices that claim on the same
scheduling kernel :mod:`bench_engines` times, alternating recording off
and on round by round.

Shared CI runners jitter by several percent at every timescale, which
swamps the sub-percent effect being measured, so the gate is a
one-sided statistical test rather than a point comparison: each round
yields a paired off/on delta, and the gate fails only when the lower
95% confidence bound of the mean delta exceeds ``REPRO_OBS_GATE_PCT``
percent (default 2) -- i.e. when the data *demonstrates* an overhead
regression rather than merely wobbling past the line.  An injected 10%
slowdown trips the gate on every run; a true ~0% overhead never does.
The measurement is always written to
``benchmarks/results/BENCH_obs.json``, pass or fail, so CI uploads the
evidence either way.
"""

import json
import os
import statistics
import time

from conftest import write_result

from repro import obs
from repro.analysis.reporting import format_table
from repro.machines import get_machine
from repro.scheduler import schedule_workload

#: Maximum tolerated enabled-mode overhead, percent (applied to the
#: lower confidence bound of the paired-delta mean).
GATE_PCT = float(os.environ.get("REPRO_OBS_GATE_PCT", "2.0"))

#: Paired off/on measurement rounds.
ROUNDS = int(os.environ.get("REPRO_OBS_GATE_ROUNDS", "15"))

MACHINE = "PA7100"


def _kernel_seconds(machine, compiled, blocks) -> float:
    started = time.perf_counter()
    schedule_workload(machine, compiled, blocks)
    return time.perf_counter() - started


def _paired_deltas(machine, compiled, blocks):
    """Per-round percentage deltas (enabled vs disabled), paired so
    drift hits both modes of a round roughly equally."""
    # Untimed warm-up of each mode: the first enabled run after a
    # reset pays one-time instrument creation, which is setup cost in
    # real use, not steady-state overhead.
    for mode in (obs.disable, obs.enable):
        obs.reset()
        mode()
        _kernel_seconds(machine, compiled, blocks)
    deltas = []
    for round_index in range(ROUNDS):
        # Trace/registry state is dropped outside the timed region so
        # the enabled runs do not accumulate unbounded span trees.
        obs.reset()
        obs.disable()
        off = _kernel_seconds(machine, compiled, blocks)
        obs.reset()
        obs.enable()
        on = _kernel_seconds(machine, compiled, blocks)
        if round_index % 2:
            # Alternate which mode ran most recently: re-measure
            # disabled after enabled so ordering bias cancels.
            obs.reset()
            obs.disable()
            off = _kernel_seconds(machine, compiled, blocks)
        deltas.append((on - off) / off * 100.0)
    return deltas


def test_obs_overhead_within_gate(
    results_dir, kernel_workloads, kernel_compiled
):
    machine = get_machine(MACHINE)
    blocks = kernel_workloads(MACHINE)
    compiled = kernel_compiled(MACHINE, "andor", 4, True)

    was_enabled = obs.enabled()
    try:
        deltas = _paired_deltas(machine, compiled, blocks)
    finally:
        obs.enable() if was_enabled else obs.disable()
        obs.reset()

    mean_pct = statistics.fmean(deltas)
    stderr_pct = statistics.stdev(deltas) / (len(deltas) ** 0.5)
    lower_bound_pct = mean_pct - 2.0 * stderr_pct
    passed = lower_bound_pct <= GATE_PCT
    payload = {
        "machine": MACHINE,
        "ops": sum(len(block) for block in blocks),
        "rounds": ROUNDS,
        "overhead_pct_mean": mean_pct,
        "overhead_pct_stderr": stderr_pct,
        "overhead_pct_lower_bound": lower_bound_pct,
        "gate_pct": GATE_PCT,
        "passed": passed,
    }
    # Written unconditionally (unlike --json artifacts): the gate's
    # evidence must exist even when the assertion below fails.
    json_path = results_dir / "BENCH_obs.json"
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    text = format_table(
        ("Quantity", "Value"),
        [
            ("paired rounds", str(ROUNDS)),
            ("overhead mean", f"{mean_pct:+.2f}%"),
            ("overhead std error", f"{stderr_pct:.2f}%"),
            ("lower 95% bound", f"{lower_bound_pct:+.2f}%"),
            ("gate", f"{GATE_PCT:.1f}%"),
        ],
        title="Observability overhead on the list-scheduling kernel",
    )
    # Passing the payload through write_result lands the overhead
    # figures in the shared BENCH_history.jsonl under --json runs, in
    # addition to the unconditional BENCH_obs.json evidence above.
    write_result(results_dir, "obs_overhead.txt", text, payload=payload)

    assert passed, (
        f"obs enabled-mode overhead is demonstrably above the gate: "
        f"mean {mean_pct:+.2f}% with lower 95% bound "
        f"{lower_bound_pct:+.2f}% > {GATE_PCT:.1f}%; see {json_path}"
    )
