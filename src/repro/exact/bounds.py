"""Lower bounds on the last issue cycle of a basic block.

The branch-and-bound search in :mod:`repro.exact.scheduler` proves
optimality by matching a schedule against a lower bound, so the bounds
here must hold for *every* feasible schedule -- including ones that ride
forwarding shortcuts.  Both bounds therefore use each dependence edge's
``min_latency`` (the shortcut distance when one exists), never the
normal ``latency``.

Two bounds are computed:

* **critical path** -- the longest min-latency dependence chain.  An
  operation issuing at cycle *c* forces some chain of successors out to
  cycle ``c + tail``, so the block's last issue cycle is at least
  ``max(asap[i] + tail[i])``.
* **resource density** -- for an operation class whose compiled
  constraint admits at most ``cap`` concurrent issues per cycle, *n*
  operations of that class need ``ceil(n / cap)`` distinct cycles, the
  first no earlier than the class's earliest ASAP cycle.  Operations
  whose class can vary (a cascade-eligible incoming edge substitutes the
  cascaded class) are excluded from the counts, which keeps the bound
  sound at the cost of some tightness.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.dependence import DependenceGraph
from repro.lowlevel.compiled import CompiledAndOrTree, CompiledConstraint


def min_asap(graph: DependenceGraph) -> Dict[int, int]:
    """Earliest issue cycle of each operation under min latencies."""
    asap: Dict[int, int] = {}
    for op in graph.block.operations:
        best = 0
        for edge in graph.preds_of(op.index):
            candidate = asap[edge.pred] + edge.min_latency
            if candidate > best:
                best = candidate
        asap[op.index] = best
    return asap


def min_tails(graph: DependenceGraph) -> Dict[int, int]:
    """Longest min-latency path from each operation to any leaf.

    If operation *i* issues at cycle *c*, some transitive successor must
    issue no earlier than ``c + tail[i]`` -- the per-operation bound the
    search uses to clamp candidate cycles against the incumbent.
    """
    tails: Dict[int, int] = {}
    for op in reversed(graph.block.operations):
        best = 0
        for edge in graph.succs_of(op.index):
            candidate = edge.min_latency + tails[edge.succ]
            if candidate > best:
                best = candidate
        tails[op.index] = best
    return tails


def critical_path_bound(
    asap: Dict[int, int], tails: Dict[int, int]
) -> int:
    """Lower bound on the last issue cycle from the dependence chains."""
    return max(
        (asap[index] + tails[index] for index in asap), default=0
    )


def class_capacity(constraint: CompiledConstraint) -> Optional[int]:
    """Max concurrent same-cycle issues the constraint could admit.

    Every issue of an AND/OR-tree class holds one option per OR-tree,
    and distinct issues in one cycle must hold options with disjoint
    reservations, so an OR-tree with *k* reserving options caps the
    class at *k* issues per cycle.  An option that reserves nothing
    imposes no cap.  Returns ``None`` when no OR-tree caps the class.
    This over-estimates true capacity (options may share resources),
    which is the safe direction for a lower bound on cycles.
    """
    if isinstance(constraint, CompiledAndOrTree):
        or_trees = constraint.or_trees
    else:
        or_trees = (constraint,)
    cap: Optional[int] = None
    for or_tree in or_trees:
        if any(
            not option.reserve_mask_by_time for option in or_tree.options
        ):
            continue
        count = len(or_tree.options)
        if cap is None or count < cap:
            cap = count
    return cap


def resource_bound(
    asap: Dict[int, int],
    class_of: Dict[int, Optional[str]],
    capacity_of: Dict[str, Optional[int]],
) -> int:
    """Lower bound on the last issue cycle from per-class capacities.

    ``class_of`` maps operation index to its invariant class, or
    ``None`` when the class can change across schedules (such
    operations are excluded).  ``capacity_of`` maps class name to
    :func:`class_capacity`.
    """
    members: Dict[str, list] = {}
    for index, class_name in class_of.items():
        if class_name is not None and capacity_of.get(class_name):
            members.setdefault(class_name, []).append(index)
    bound = 0
    for class_name, indices in members.items():
        cap = capacity_of[class_name]
        earliest = min(asap[index] for index in indices)
        cycles_needed = -(-len(indices) // cap)
        candidate = earliest + cycles_needed - 1
        if candidate > bound:
            bound = candidate
    return bound
