"""Tests for reservation tables, OR-trees, and AND/OR-trees."""

import pytest

from repro.core.resource import ResourceTable
from repro.core.tables import AndOrTree, OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.errors import MdesError


@pytest.fixture
def res():
    table = ResourceTable()
    table.declare_many(["A", "B", "C"])
    return table


def u(resource, time):
    return ResourceUsage(time, resource)


class TestResourceUsage:
    def test_ordering_time_major(self, res):
        a, b = res.lookup("A"), res.lookup("B")
        assert u(a, 0) < u(a, 1)
        assert u(a, 0) < u(b, 0)

    def test_shifted(self, res):
        a = res.lookup("A")
        assert u(a, 3).shifted(-3) == u(a, 0)
        assert u(a, 0).shifted(2).time == 2


class TestReservationTable:
    def test_duplicate_usage_rejected(self, res):
        a = res.lookup("A")
        with pytest.raises(MdesError, match="duplicate"):
            ReservationTable((u(a, 0), u(a, 0)))

    def test_equality_ignores_name(self, res):
        a = res.lookup("A")
        assert ReservationTable((u(a, 0),), name="x") == ReservationTable(
            (u(a, 0),), name="y"
        )

    def test_equality_respects_usage_order(self, res):
        # Check order is part of the structure (it matters for cost).
        a, b = res.lookup("A"), res.lookup("B")
        t1 = ReservationTable((u(a, 0), u(b, 0)))
        t2 = ReservationTable((u(b, 0), u(a, 0)))
        assert t1 != t2
        assert t1.normalized() == t2.normalized()

    def test_min_max_time(self, res):
        a, b = res.lookup("A"), res.lookup("B")
        table = ReservationTable((u(a, -1), u(b, 4)))
        assert table.min_time() == -1
        assert table.max_time() == 4

    def test_dominates_subset_and_equal(self, res):
        a, b = res.lookup("A"), res.lookup("B")
        small = ReservationTable((u(a, 0),))
        big = ReservationTable((u(a, 0), u(b, 0)))
        assert small.dominates(big)
        assert small.dominates(small)
        assert not big.dominates(small)

    def test_resources(self, res):
        a, b = res.lookup("A"), res.lookup("B")
        table = ReservationTable((u(a, 0), u(b, 2)))
        assert table.resources() == frozenset({a, b})


class TestOrTree:
    def test_empty_rejected(self):
        with pytest.raises(MdesError, match="no options"):
            OrTree(())

    def test_common_usages(self, res):
        a, b, c = (res.lookup(n) for n in "ABC")
        tree = OrTree(
            (
                ReservationTable((u(a, 0), u(b, 0))),
                ReservationTable((u(a, 0), u(c, 0))),
            )
        )
        assert tree.common_usages() == frozenset({u(a, 0)})

    def test_usage_pairs_union(self, res):
        a, b = res.lookup("A"), res.lookup("B")
        tree = OrTree(
            (ReservationTable((u(a, 0),)), ReservationTable((u(b, 1),)))
        )
        assert tree.usage_pairs() == frozenset({u(a, 0), u(b, 1)})

    def test_min_time(self, res):
        a, b = res.lookup("A"), res.lookup("B")
        tree = OrTree(
            (ReservationTable((u(a, 2),)), ReservationTable((u(b, -1),)))
        )
        assert tree.min_time() == -1


class TestAndOrTree:
    def test_empty_rejected(self):
        with pytest.raises(MdesError, match="no OR-trees"):
            AndOrTree(())

    def test_option_product_and_total(self, res):
        a, b, c = (res.lookup(n) for n in "ABC")
        t1 = OrTree(
            (ReservationTable((u(a, 0),)), ReservationTable((u(b, 0),)))
        )
        t2 = OrTree(
            (
                ReservationTable((u(c, 1),)),
                ReservationTable((u(c, 2),)),
                ReservationTable((u(c, 3),)),
            )
        )
        tree = AndOrTree((t1, t2))
        assert tree.option_product() == 6
        assert tree.total_options() == 5

    def test_validate_disjoint_rejects_overlap(self, res):
        a = res.lookup("A")
        t1 = OrTree((ReservationTable((u(a, 0),)),))
        t2 = OrTree((ReservationTable((u(a, 0),)),))
        with pytest.raises(MdesError, match="may both reserve"):
            AndOrTree((t1, t2)).validate_disjoint()

    def test_validate_disjoint_allows_same_resource_other_time(self, res):
        a = res.lookup("A")
        t1 = OrTree((ReservationTable((u(a, 0),)),))
        t2 = OrTree((ReservationTable((u(a, 1),)),))
        AndOrTree((t1, t2)).validate_disjoint()
