"""Tests for the MDES query interface."""

import pytest

from repro.lowlevel.compiled import compile_mdes
from repro.lowlevel.query import MdesQuery
from repro.machines import get_machine


@pytest.fixture(scope="module")
def sparc_query():
    machine = get_machine("SuperSPARC")
    return MdesQuery(compile_mdes(machine.build_andor()))


@pytest.fixture(scope="module")
def pa_query():
    machine = get_machine("PA7100")
    return MdesQuery(compile_mdes(machine.build_andor()))


class TestIssueBandwidth:
    def test_supersparc_capacities(self, sparc_query):
        assert sparc_query.issue_bandwidth("load") == 1      # one M unit
        assert sparc_query.issue_bandwidth("ialu_1src") == 2  # two IALUs
        assert sparc_query.issue_bandwidth("branch") == 1
        assert sparc_query.issue_bandwidth("serial") == 1

    def test_pa7100_single_int_pipe(self, pa_query):
        assert pa_query.issue_bandwidth("int") == 1
        assert pa_query.issue_bandwidth("fp_alu") == 1

    def test_bandwidth_cached(self, sparc_query):
        assert sparc_query.issue_bandwidth(
            "load"
        ) == sparc_query.issue_bandwidth("load")


class TestCanIssueTogether:
    def test_int_plus_fp_dual_issue(self, pa_query):
        """The PA7100's defining pairing rule."""
        assert pa_query.can_issue_together(["int", "fp_alu"])
        assert not pa_query.can_issue_together(["int", "int"])
        assert not pa_query.can_issue_together(["int", "load"])
        assert not pa_query.can_issue_together(["fp_alu", "fp_mul"])

    def test_supersparc_triple_issue(self, sparc_query):
        assert sparc_query.can_issue_together(
            ["ialu_1src", "load", "branch"]
        )
        assert not sparc_query.can_issue_together(
            ["ialu_1src", "ialu_1src", "ialu_1src"]
        )

    def test_serial_blocks_everything(self, sparc_query):
        assert not sparc_query.can_issue_together(["serial", "branch"])
        assert not sparc_query.can_issue_together(["serial", "load"])


class TestCycleCapacity:
    def test_prefix_reported(self, sparc_query):
        placed = sparc_query.cycle_capacity(
            ["load", "load", "ialu_1src"]
        )
        assert placed == ["load"]

    def test_full_list_fits(self, sparc_query):
        classes = ["ialu_1src", "ialu_1src", "branch"]
        assert sparc_query.cycle_capacity(classes) == classes


class TestMinIssueDistance:
    def test_pipelined_unit_distance_zero_next_cycle(self, sparc_query):
        # Two loads: second must wait one cycle for the memory unit.
        assert sparc_query.min_issue_distance("load", "load") == 1
        # An IALU op after a load: different resources, same cycle fine
        # (decoders and write ports have spare capacity).
        assert sparc_query.min_issue_distance("load", "ialu_1src") == 0

    def test_divide_serializes(self, sparc_query):
        # The divide unit is busy for 8 cycles (usages at 0..7).
        assert sparc_query.min_issue_distance("idiv", "idiv") == 8

    def test_caching(self, sparc_query):
        first = sparc_query.min_issue_distance("load", "load")
        assert sparc_query.min_issue_distance("load", "load") == first


class TestThroughput:
    def test_pipelined_load_throughput_is_one(self, sparc_query):
        assert sparc_query.steady_state_throughput("load") == 1.0

    def test_divide_throughput_fractional(self, sparc_query):
        throughput = sparc_query.steady_state_throughput("idiv", 32)
        assert throughput <= 0.25

    def test_summary_covers_all_classes(self, sparc_query):
        summary = sparc_query.resource_summary()
        assert set(summary) == set(sparc_query.compiled.constraints)
        assert all(value >= 1 for value in summary.values())
