"""Resource usages: (resource, time) pairs.

A *resource usage* says that a resource is busy at a given time relative to
the operation's issue point.  Following the paper (section 2), time zero is
the first stage of the execution pipeline: decode-stage usages carry
negative times and writeback-stage usages sit near the operation latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.resource import Resource


@dataclass(frozen=True, order=True)
class ResourceUsage:
    """One use of one resource at one relative time.

    The ordering (time-major, then resource bit index) is the canonical
    order used when normalizing reservation tables for structural
    comparison.
    """

    time: int
    resource: Resource

    def shifted(self, delta: int) -> "ResourceUsage":
        """Return the same usage moved by ``delta`` cycles.

        Shifting usages of one resource by a common constant preserves all
        forbidden latencies (section 7), which is what makes the paper's
        usage-time transformation safe.
        """
        return ResourceUsage(self.time + delta, self.resource)

    def __repr__(self) -> str:
        return f"use({self.resource.name}@{self.time})"
