"""The HMDES macro preprocessor.

Two directives, modeled on the generative facilities the paper's MDES
language relies on ("the use of preprocessor directives enumerates the
various OR-tree options", section 5):

* ``$define NAME replacement-text`` -- every later ``$NAME`` occurrence is
  replaced.  Definitions may reference earlier definitions.
* ``$for var in LO..HI { body }`` -- the body is emitted ``HI - LO + 1``
  times with ``$var`` bound to each value.  Loops nest; bounds may be
  ``$define``-d names.

Comments (``// ...`` and ``/* ... */``) are stripped here so directives
inside comments are inert.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.errors import HmdesSyntaxError

_DEFINE_RE = re.compile(r"^\s*\$define\s+([A-Za-z_]\w*)\s+(.*)$")
_FOR_RE = re.compile(
    r"\$for\s+([A-Za-z_]\w*)\s+in\s+(-?\$?\w+)\s*\.\.\s*(-?\$?\w+)\s*\{"
)
_VAR_RE = re.compile(r"\$([A-Za-z_]\w*)")
_LINE_COMMENT_RE = re.compile(r"//[^\n]*")
_BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)


def strip_comments(text: str) -> str:
    """Remove ``//`` and ``/* */`` comments, preserving line structure."""
    def blank_lines(match: "re.Match[str]") -> str:
        return "\n" * match.group(0).count("\n")

    text = _BLOCK_COMMENT_RE.sub(blank_lines, text)
    return _LINE_COMMENT_RE.sub("", text)


def _substitute(text: str, bindings: Dict[str, str], strict: bool = True) -> str:
    """Replace every ``$name`` with its binding.

    With ``strict`` unset, unknown names are left in place -- they may be
    inner ``$for`` variables that a later expansion pass will bind.  The
    final pass runs strict, so genuine typos are still reported.
    """

    def replace(match: "re.Match[str]") -> str:
        name = match.group(1)
        if name in ("define", "for"):
            return match.group(0)
        if name not in bindings:
            if strict:
                raise HmdesSyntaxError(f"undefined macro ${name}")
            return match.group(0)
        return bindings[name]

    return _VAR_RE.sub(replace, text)


def _find_block(text: str, open_index: int) -> int:
    """Index just past the ``}`` matching the ``{`` at ``open_index``."""
    depth = 0
    for index in range(open_index, len(text)):
        if text[index] == "{":
            depth += 1
        elif text[index] == "}":
            depth -= 1
            if depth == 0:
                return index + 1
    raise HmdesSyntaxError("unterminated { block in $for")


def _resolve_bound(token: str, bindings: Dict[str, str]) -> int:
    """Turn a loop bound (integer literal or ``$macro``) into an int."""
    negate = token.startswith("-")
    if negate:
        token = token[1:]
    if token.startswith("$"):
        token = token[1:]
    candidate = bindings.get(token, token)
    if negate:
        candidate = f"-{candidate}"
    try:
        return int(candidate)
    except ValueError:
        raise HmdesSyntaxError(
            f"$for bound {token!r} is not an integer"
        ) from None


def _expand_fors(text: str, bindings: Dict[str, str]) -> str:
    """Expand every ``$for`` loop, innermost-last via recursion."""
    while True:
        match = _FOR_RE.search(text)
        if match is None:
            return text
        var, lo_token, hi_token = match.groups()
        lo = _resolve_bound(lo_token, bindings)
        hi = _resolve_bound(hi_token, bindings)
        if hi < lo:
            raise HmdesSyntaxError(
                f"$for {var}: empty range {lo}..{hi}"
            )
        open_index = match.end() - 1
        end_index = _find_block(text, open_index)
        body = text[open_index + 1 : end_index - 1]
        pieces: List[str] = []
        for value in range(lo, hi + 1):
            iteration = dict(bindings)
            iteration[var] = str(value)
            expanded_body = _expand_fors(
                _substitute(body, iteration, strict=False), iteration
            )
            pieces.append(expanded_body)
        text = text[: match.start()] + "".join(pieces) + text[end_index:]


def preprocess(source: str) -> str:
    """Strip comments, apply ``$define`` bindings, and expand ``$for``."""
    source = strip_comments(source)
    bindings: Dict[str, str] = {}
    output_lines: List[str] = []
    for line in source.split("\n"):
        match = _DEFINE_RE.match(line)
        if match:
            name, replacement = match.groups()
            bindings[name] = _substitute(replacement.strip(), bindings)
            output_lines.append("")
        else:
            output_lines.append(line)
    text = "\n".join(output_lines)
    text = _expand_fors(text, bindings)
    return _substitute(text, bindings)
