"""The HP PA7100 machine description (paper section 4, Tables 2 and 8).

A 2-issue in-order superscalar: one floating-point operation may execute
in parallel with one integer or memory operation, in either slot order.
Branches are modeled as always using the last decoder.  Most operations
therefore have two reservation table options (either slot) and branches
have one (Table 2).

The description was derived from an earlier HP PA description, and during
that retargeting two of the reservation table options for the memory
operations became identical -- the MDES author never noticed, because
correct schedules were still generated (section 5).  We reproduce that
accident: the memory slot OR-tree has three options of which the third
duplicates the second, and dominated-option removal (Table 8) deletes it.
"""

from __future__ import annotations

from repro.ir.operation import Operation
from repro.machines.base import (
    KIND_BRANCH,
    KIND_FP,
    KIND_INT,
    KIND_LOAD,
    KIND_SERIAL,
    KIND_STORE,
    Machine,
    OpcodeSpec,
)

HMDES_SOURCE = """
mdes PA7100;

section resource {
    Slot[0..1];
    IPIPE;
    MEM;
    FPU;
    FMUL;
    FDIVU;
    BRU;
}

section table {
    RT_ipipe  { use IPIPE at 0; }
    RT_mem    { use IPIPE at 0; use MEM at 0; }
    RT_fpu    { use FPU at 0; }
    RT_fpmul  { use FPU at 0; use FMUL at 0; }
    RT_fpdiv  {
        use FPU at 0;
        $for c in 0..7 { use FDIVU at $c; }
    }
}

section ortree {
    OT_slots { $for s in 0..1 { option { use Slot[$s] at -1; } } }

    // Retargeting accident: the third option duplicates the second.
    OT_mem_slots {
        option { use Slot[0] at -1; }
        option { use Slot[1] at -1; }
        option { use Slot[1] at -1; }
    }

    // Dead entries inherited from the earlier HP PA description.
    OT_legacy_slots { $for s in 0..1 { option { use Slot[$s] at -1; } } }
    OT_legacy_fdiv { option { use FDIVU at 0; use FDIVU at 1; } }
}

section andortree {
    AOT_int { ortree RT_ipipe; ortree OT_slots; }
    AOT_mem { ortree RT_mem; ortree OT_mem_slots; }

    // The shift-merge-unit entry was cloned from AOT_int rather than
    // shared (identical structure, private trees).
    AOT_smu {
        ortree { option { use IPIPE at 0; } }
        ortree { $for s in 0..1 { option { use Slot[$s] at -1; } } }
    }

    // Indexed-addressing memory forms: another private clone of the
    // memory entry -- duplicated option included.
    AOT_mem_indexed {
        ortree { option { use IPIPE at 0; use MEM at 0; } }
        ortree {
            option { use Slot[0] at -1; }
            option { use Slot[1] at -1; }
            option { use Slot[1] at -1; }
        }
    }

    // FP entries were copied, not refactored: private slot-tree copies.
    AOT_fp_alu {
        ortree RT_fpu;
        ortree { $for s in 0..1 { option { use Slot[$s] at -1; } } }
    }
    AOT_fp_mul {
        ortree RT_fpmul;
        ortree { $for s in 0..1 { option { use Slot[$s] at -1; } } }
    }
    AOT_fp_div {
        ortree RT_fpdiv;
        ortree { $for s in 0..1 { option { use Slot[$s] at -1; } } }
    }

    AOT_legacy_nullify { ortree OT_legacy_slots; ortree RT_ipipe; }
}

section opclass {
    branch { resv ortree {
        option { use Slot[1] at -1; use IPIPE at 0; use BRU at 0; }
    }; latency 1; }
    // Nullifying branch forms: an exact private copy of the branch
    // entry (a section 5 scar: W004 in the linter).
    branch_n { resv ortree {
        option { use Slot[1] at -1; use IPIPE at 0; use BRU at 0; }
    }; latency 1; }
    int    { resv AOT_int; latency 1; }
    smu    { resv AOT_smu; latency 1; }
    load   { resv AOT_mem; latency 2; }
    load_x { resv AOT_mem_indexed; latency 2; }
    store  { resv AOT_mem; latency 1; }
    store_x { resv AOT_mem_indexed; latency 1; }
    fp_alu { resv AOT_fp_alu; latency 2; }
    fp_mul { resv AOT_fp_mul; latency 2; }
    fp_dbl { resv AOT_fp_mul; latency 3; }
    fp_div { resv AOT_fp_div; latency 8; }
}

section operation {
    BB: branch; BV: branch; ADDBT: branch; BL_CALL: branch;
    COMBT: branch_n; COMBF: branch_n;
    ADD: int; SUB: int; OR: int; AND: int; XOR: int;
    SHLADD: int; LDI: int; COPY: int; COMCLR: int;
    EXTRU: smu; DEPI: smu;
    LDW: load; LDWM: load;
    LDB: load_x; LDH: load_x;
    STW: store; STWM: store;
    STB: store_x; STH: store_x;
    FADD: fp_alu; FSUB: fp_alu; FCMP: fp_alu;
    FMPY: fp_mul; FMPY_D: fp_dbl; FDIV: fp_div;
}
"""

_BASE_CLASS = {
    "BB": "branch", "BV": "branch", "ADDBT": "branch",
    "BL_CALL": "branch",
    "COMBT": "branch_n", "COMBF": "branch_n",
    "ADD": "int", "SUB": "int", "OR": "int", "AND": "int", "XOR": "int",
    "SHLADD": "int", "LDI": "int", "COPY": "int", "COMCLR": "int",
    "EXTRU": "smu", "DEPI": "smu",
    "LDW": "load", "LDWM": "load", "LDB": "load_x", "LDH": "load_x",
    "STW": "store", "STWM": "store", "STB": "store_x", "STH": "store_x",
    "FADD": "fp_alu", "FSUB": "fp_alu", "FCMP": "fp_alu",
    "FMPY": "fp_mul", "FMPY_D": "fp_dbl", "FDIV": "fp_div",
}


def classify(op: Operation, cascaded: bool) -> str:
    """PA7100 class selection is purely static (no cascade feature)."""
    return _BASE_CLASS[op.opcode]


OPCODE_PROFILE = (
    OpcodeSpec("COMBT", 4.5, (2,), False, KIND_BRANCH),
    OpcodeSpec("COMBF", 3.5, (2,), False, KIND_BRANCH),
    OpcodeSpec("BB", 2.0, (1,), False, KIND_BRANCH),
    OpcodeSpec("ADDBT", 1.5, (2,), False, KIND_BRANCH),
    OpcodeSpec("BV", 1.0, (1,), False, KIND_BRANCH),
    OpcodeSpec("BL_CALL", 1.5, (0,), False, KIND_BRANCH),
    OpcodeSpec("ADD", 11.0, (1, 2), True, KIND_INT),
    OpcodeSpec("SUB", 4.5, (1, 2), True, KIND_INT),
    OpcodeSpec("OR", 4.0, (1,), True, KIND_INT),
    OpcodeSpec("AND", 2.5, (1,), True, KIND_INT),
    OpcodeSpec("XOR", 1.0, (2,), True, KIND_INT),
    OpcodeSpec("SHLADD", 3.0, (2,), True, KIND_INT),
    OpcodeSpec("EXTRU", 2.5, (1,), True, KIND_INT),
    OpcodeSpec("DEPI", 1.5, (1,), True, KIND_INT),
    OpcodeSpec("LDI", 5.0, (0,), True, KIND_INT),
    OpcodeSpec("COPY", 4.5, (1,), True, KIND_INT),
    OpcodeSpec("COMCLR", 1.0, (2,), True, KIND_INT),
    OpcodeSpec("LDW", 10.0, (1,), True, KIND_LOAD),
    OpcodeSpec("LDB", 1.5, (1,), True, KIND_LOAD),
    OpcodeSpec("LDH", 1.0, (1,), True, KIND_LOAD),
    OpcodeSpec("LDWM", 0.8, (1,), True, KIND_LOAD),
    OpcodeSpec("STW", 4.5, (2,), False, KIND_STORE),
    OpcodeSpec("STB", 0.8, (2,), False, KIND_STORE),
    OpcodeSpec("STH", 0.5, (2,), False, KIND_STORE),
    OpcodeSpec("FADD", 0.25, (2,), True, KIND_FP),
    OpcodeSpec("FSUB", 0.15, (2,), True, KIND_FP),
    OpcodeSpec("FCMP", 0.1, (2,), True, KIND_FP),
    OpcodeSpec("FMPY", 0.12, (2,), True, KIND_FP),
    OpcodeSpec("FMPY_D", 0.08, (2,), True, KIND_FP),
    OpcodeSpec("FDIV", 0.05, (2,), True, KIND_FP),
)


def build_machine() -> Machine:
    """Construct the PA7100 machine."""
    return Machine(
        name="PA7100",
        hmdes_source=HMDES_SOURCE,
        opcode_profile=OPCODE_PROFILE,
        classifier=classify,
        scheduling_mode="prepass",
        register_pool=128,
        block_size_range=(2, 7),
        flow_probability=0.68,
    )
