"""Table 7: memory after eliminating redundant and unused information."""

from conftest import write_result

from repro.machines import get_machine
from repro.transforms import eliminate_redundancy


def test_table7_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.table7())
    table6 = {row[0]: row for row in suite.table6_rows()}
    for row in suite.table7_rows():
        name = row[0]
        assert row[3] <= table6[name][3]
        assert row[6] <= table6[name][5]
    write_result(results_dir, "table7_redundancy.txt", text)


def test_table7_bench_elimination(benchmark):
    """Time CSE/copy-propagation/dead-code over the K5 description."""
    mdes = get_machine("K5").build_andor()
    result = benchmark(eliminate_redundancy, mdes)
    assert result.unused_trees == {}
