"""Table 5: original scheduling characteristics, OR versus AND/OR."""

import pytest
from conftest import write_result

from repro.machines import MACHINE_NAMES, get_machine
from repro.scheduler import schedule_workload


def test_table5_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.table5())
    rows = {row[0]: row for row in suite.table5_rows()}
    # AND/OR reduces checks sharply for the complex machines only.
    assert rows["SuperSPARC"][6] < rows["SuperSPARC"][4] / 3
    assert rows["K5"][6] < rows["K5"][4] / 3
    assert rows["Pentium"][6] == pytest.approx(rows["Pentium"][4])
    write_result(results_dir, "table5_original_sched.txt", text)


@pytest.mark.parametrize("machine_name", MACHINE_NAMES)
@pytest.mark.parametrize("rep", ["or", "andor"])
def test_table5_bench_scheduling(
    benchmark, kernel_workloads, kernel_compiled, machine_name, rep
):
    """Time original-description scheduling under each representation."""
    machine = get_machine(machine_name)
    compiled = kernel_compiled(machine_name, rep, 0, False)
    blocks = kernel_workloads(machine_name)
    result = benchmark(schedule_workload, machine, compiled, blocks)
    assert result.stats.attempts >= result.total_ops
