"""The MDES-driven multi-platform list scheduler.

The paper validates its transformations by driving a multi-platform list
scheduler from each machine description and counting the constraint-check
work per scheduling attempt.  This scheduler plays that role: it is
operation-driven (each (operation, cycle) trial is one *scheduling
attempt*), supports forward and backward directions, and understands the
SuperSPARC's cascaded-IALU class selection via dependence distances.
"""

from repro.scheduler.priority import compute_heights
from repro.scheduler.schedule import BlockSchedule, RunResult
from repro.scheduler.list_scheduler import ListScheduler, schedule_workload
from repro.scheduler.operation_scheduler import (
    OperationScheduler,
    OperationSchedulerResult,
)

__all__ = [
    "BlockSchedule",
    "ListScheduler",
    "OperationScheduler",
    "OperationSchedulerResult",
    "RunResult",
    "compute_heights",
    "schedule_workload",
]
