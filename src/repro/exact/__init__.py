"""``repro.exact`` -- a provably-optimal scheduler for small blocks.

The paper evaluates its description transforms only against heuristic
schedulers; this package adds the yardstick it lacked: a budget-bounded
branch-and-bound search that minimizes schedule length over the *same*
compiled LMDES resource model, queried through the same
:class:`~repro.engine.base.QueryEngine` protocol.  It is registered as
the ``exact`` backend and doubles as a third independent oracle for
``repro.verify`` -- a heuristic schedule shorter than the proven optimum
is an instant divergence.
"""

from repro.exact.scheduler import (
    REASON_BOUND_MET,
    REASON_NODE_BUDGET,
    REASON_OPTIMAL,
    REASON_OVERSIZE,
    REASON_TIME_BUDGET,
    ExactBlockResult,
    ExactBudget,
    ExactRunResult,
    ExactScheduler,
    schedule_workload_exact,
)

__all__ = [
    "ExactBudget",
    "ExactBlockResult",
    "ExactRunResult",
    "ExactScheduler",
    "schedule_workload_exact",
    "REASON_OPTIMAL",
    "REASON_BOUND_MET",
    "REASON_NODE_BUDGET",
    "REASON_TIME_BUDGET",
    "REASON_OVERSIZE",
]
