"""The description-space sweep driver (``repro.sweep``).

The sweep's contract mirrors the batch service's, lifted to fleet
level:

* **Determinism**: an N-worker sweep is bit-for-bit identical to the
  serial one -- every per-variant row, not just the digest.
* **Isolation**: a poisoned variant becomes a quarantined row with a
  typed error; every other variant's result is unchanged from a clean
  fleet's.
* **Round-trip**: the JSONL report reads back losslessly.
* **Coverage accounting**: distinct compiled descriptions are counted
  by content token, and transform effect columns are present for every
  ok variant.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.machines.synth import fleet_names, machine_name
from repro.sweep import (
    REPORT_VERSION,
    SweepConfig,
    SweepReport,
    VariantResult,
    run_sweep,
)

FAMILY = "vliw-narrow"
SEED = 9
FLEET = 32


@pytest.fixture(scope="module")
def serial_report():
    return run_sweep(SweepConfig(
        family=FAMILY, count=FLEET, seed=SEED, ops=48, workers=1,
    ))


class TestDeterminism:
    def test_serial_equals_four_workers_bit_for_bit(self, serial_report):
        parallel = run_sweep(SweepConfig(
            family=FAMILY, count=FLEET, seed=SEED, ops=48, workers=4,
        ))
        serial_rows = [v.to_dict() for v in serial_report.variants]
        parallel_rows = [v.to_dict() for v in parallel.variants]
        assert parallel_rows == serial_rows
        assert (
            parallel.signature_digest()
            == serial_report.signature_digest()
        )

    def test_clean_fleet_accounting(self, serial_report):
        report = serial_report
        assert report.ok
        assert report.quarantined == 0
        assert report.oracle_failures == 0
        assert report.distinct_descriptions == FLEET
        assert len(report.variants) == FLEET
        for variant in report.variants:
            assert variant.ok
            assert variant.verify_ok is True
            assert variant.digest
            assert variant.content
            assert variant.transforms, variant.name
            assert variant.complexity["stored_options"] > 0
        # The warm cache saw the whole fleet.
        assert report.cache["memory_misses"] > 0

    def test_variant_rows_in_fleet_order(self, serial_report):
        names = fleet_names(FAMILY, SEED, FLEET)
        assert tuple(
            v.name for v in serial_report.variants
        ) == names
        assert [v.index for v in serial_report.variants] == list(
            range(FLEET)
        )


class TestIsolation:
    def test_poisoned_variant_is_quarantined(self, serial_report):
        """One unresolvable name in the fleet: its row is a typed
        quarantine record, and every survivor's row is byte-identical
        to the clean run's."""
        clean_rows = {
            v.name: v.to_dict() for v in serial_report.variants
        }
        names = list(fleet_names(FAMILY, SEED, FLEET))
        poisoned_name = "synth:no-such-family:0:0"
        names.insert(7, poisoned_name)
        report = run_sweep(SweepConfig(
            names=tuple(names), ops=48, workers=4,
        ))
        assert not report.ok
        assert report.quarantined == 1
        bad = report.variants[7]
        assert bad.name == poisoned_name
        assert not bad.ok
        assert bad.error_type == "KeyError"
        assert bad.digest is None
        survivors = [v for v in report.variants if v.ok]
        assert len(survivors) == FLEET
        for variant in survivors:
            row = variant.to_dict()
            pinned = dict(clean_rows[variant.name])
            # The poisoned insertion shifts indices; everything else
            # must be untouched.
            row.pop("index")
            pinned.pop("index")
            assert row == pinned, variant.name

    def test_scheduling_failure_does_not_escape(self):
        """A variant that dies mid-schedule (not just at resolution)
        quarantines too: the driver catches per-variant, not per-run."""
        report = run_sweep(SweepConfig(
            names=(
                machine_name(FAMILY, SEED, 0),
                "synth:vliw-narrow:not-an-int:0",
            ),
            ops=24,
        ))
        assert report.quarantined == 1
        assert report.variants[0].ok
        assert report.variants[1].error_type == "KeyError"


class TestReportSerialization:
    def test_jsonl_round_trip(self, serial_report, tmp_path):
        path = serial_report.write_jsonl(tmp_path / "sweep.jsonl")
        loaded = SweepReport.read_jsonl(path)
        assert [v.to_dict() for v in loaded.variants] == [
            v.to_dict() for v in serial_report.variants
        ]
        assert loaded.signature_digest() == (
            serial_report.signature_digest()
        )
        assert loaded.cache == serial_report.cache
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        assert meta["kind"] == "sweep-meta"
        assert meta["version"] == REPORT_VERSION
        assert len(lines) == FLEET + 1

    def test_version_mismatch_rejected(self, serial_report, tmp_path):
        path = serial_report.write_jsonl(tmp_path / "sweep.jsonl")
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        meta["version"] = REPORT_VERSION + 1
        path.write_text(
            "\n".join([json.dumps(meta)] + lines[1:]) + "\n"
        )
        with pytest.raises(ValueError, match="version"):
            SweepReport.read_jsonl(path)

    def test_summary_surfaces(self, serial_report):
        summary = serial_report.summary_dict()
        assert summary["ok"]
        assert summary["distinct_descriptions"] == FLEET
        assert summary["transform_totals"]
        assert summary["complexity_buckets"]
        table = serial_report.summary_table()
        assert FAMILY in table
        assert "transform" in table

    def test_variant_result_round_trips(self):
        row = VariantResult(
            index=3, name="synth:vliw-narrow:9:3", ok=False,
            error_type="KeyError", error_message="nope",
        )
        assert VariantResult.from_dict(row.to_dict()) == row


class TestConfigValidation:
    def test_bad_family_raises(self):
        with pytest.raises(KeyError):
            SweepConfig(family="no-such-family").validate()

    @pytest.mark.parametrize("kwargs", [
        {"count": 0},
        {"ops": 0},
        {"workers": 0},
        {"stage": 9},
        {"exact_sample": -1},
    ])
    def test_bad_numbers_raise(self, kwargs):
        with pytest.raises(ValueError):
            SweepConfig(**kwargs).validate()

    def test_explicit_names_skip_family_check(self):
        config = SweepConfig(
            family="ignored-entirely",
            names=(machine_name(FAMILY, 1, 0),),
        )
        config.validate()
        assert config.fleet() == (machine_name(FAMILY, 1, 0),)


class TestExactSampling:
    def test_every_nth_variant_gets_a_gap_sample(self):
        report = run_sweep(SweepConfig(
            family=FAMILY, count=6, seed=SEED, ops=24,
            exact_sample=3, exact_ops=12,
        ))
        assert report.ok
        sampled = [v.index for v in report.variants if v.exact]
        assert sampled == [0, 3]
        for variant in report.variants:
            if variant.exact:
                assert variant.exact["ops"] > 0
                assert (
                    variant.exact["gap_cycles"] >= 0
                ), variant.name
        assert "exact" in report.summary_dict()


class TestCli:
    def test_sweep_json_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "sweep.jsonl"
        code = cli_main([
            "sweep", "--family", FAMILY, "--count", "8",
            "--seed", str(SEED), "--workers", "2",
            "--out", str(out_path), "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"]
        assert payload["quarantined"] == 0
        assert payload["oracle_failures"] == 0
        assert payload["distinct_descriptions"] == 8
        loaded = SweepReport.read_jsonl(out_path)
        assert len(loaded.variants) == 8
        assert loaded.signature_digest() == payload["signature"]

    def test_sweep_rejects_unknown_family(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "--family", "no-such-family"])
        assert "invalid choice" in capsys.readouterr().err
