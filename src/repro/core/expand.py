"""AND/OR-tree to OR-tree expansion.

The paper's experiments obtain the traditional OR-tree form of each machine
description by running the AND/OR form through a preprocessor that expands
every AND/OR-tree into the corresponding flat OR-tree (section 4).  This
module is that preprocessor.

Priority is preserved: the cartesian product is enumerated with the *last*
sub-OR-tree varying fastest, so the flat option list ranks a choice in an
earlier OR-tree above any choice in a later one exactly as the AND/OR
checker (which satisfies OR-trees in order, each greedily) would.  Both
representations therefore reserve identical resources and produce identical
schedules, which is the invariant the paper's tables rely on.
"""

from __future__ import annotations

import itertools

from repro.core.tables import AndOrTree, Constraint, OrTree, ReservationTable


def expand_to_or_tree(tree: AndOrTree) -> OrTree:
    """Flatten an AND/OR-tree into the equivalent prioritized OR-tree."""
    option_lists = [or_tree.options for or_tree in tree.or_trees]
    flat_options = []
    for combination in itertools.product(*option_lists):
        usages = tuple(
            usage for option in combination for usage in option.usages
        )
        flat_options.append(ReservationTable(usages))
    return OrTree(tuple(flat_options), name=tree.name)


def as_or_tree(constraint: Constraint) -> OrTree:
    """Return ``constraint`` in flat OR-tree form (expanding if needed)."""
    if isinstance(constraint, AndOrTree):
        return expand_to_or_tree(constraint)
    return constraint
