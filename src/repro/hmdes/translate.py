"""Semantic analysis: HMDES AST -> :class:`~repro.core.mdes.Mdes`.

Name-based sharing is the key property: every reference to a named table,
OR-tree, or AND/OR-tree resolves to one shared object, so the sharing an
MDES writer expresses in the high-level source survives into the low-level
representation (paper section 4: "the common information to be shared is
entirely specified by the external MDES representation").

Named trees that no operation class reaches are collected into
``Mdes.unused_trees`` -- the dead information that section 5's dead-code
removal deletes.
"""

from __future__ import annotations

from typing import Dict, List, Set, Union

from repro.core.mdes import Bypass, Mdes, OperationClass
from repro.core.resource import ResourceTable
from repro.core.tables import AndOrTree, Constraint, OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.errors import HmdesSemanticError
from repro.hmdes import ast
from repro.hmdes.parser import parse_source


class _Translator:
    def __init__(self, node: ast.MdesNode) -> None:
        self._node = node
        self._resources = ResourceTable()
        self._tables: Dict[str, ReservationTable] = {}
        self._or_trees: Dict[str, OrTree] = {}
        self._and_or_trees: Dict[str, AndOrTree] = {}
        self._table_wrappers: Dict[str, OrTree] = {}

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _declare_resources(self) -> None:
        for decl in self._node.resources:
            for name in decl.expanded_names():
                self._resources.declare(name)

    def _check_fresh_name(self, name: str) -> None:
        if (
            name in self._tables
            or name in self._or_trees
            or name in self._and_or_trees
        ):
            raise HmdesSemanticError(f"name {name!r} declared twice")

    def _build_usages(self, nodes: List[ast.UsageNode]) -> ReservationTable:
        usages = []
        for usage_node in nodes:
            resource = self._resources.get(usage_node.resource)
            if resource is None:
                raise HmdesSemanticError(
                    f"line {usage_node.line}: unknown resource "
                    f"{usage_node.resource!r}"
                )
            usages.append(ResourceUsage(usage_node.time, resource))
        return ReservationTable(tuple(usages))

    def _build_tables(self) -> None:
        for table_node in self._node.tables:
            self._check_fresh_name(table_node.name)
            table = self._build_usages(table_node.usages)
            self._tables[table_node.name] = ReservationTable(
                table.usages, name=table_node.name
            )

    def _build_option(self, option_node: ast.OptionNode) -> ReservationTable:
        if option_node.ref is not None:
            table = self._tables.get(option_node.ref)
            if table is None:
                raise HmdesSemanticError(
                    f"line {option_node.line}: option references unknown "
                    f"table {option_node.ref!r}"
                )
            return table
        assert option_node.usages is not None
        return self._build_usages(option_node.usages)

    def _build_or_tree(self, tree_node: ast.OrTreeNode) -> OrTree:
        options = tuple(
            self._build_option(option) for option in tree_node.options
        )
        return OrTree(options, name=tree_node.name)

    def _build_or_trees(self) -> None:
        for tree_node in self._node.or_trees:
            self._check_fresh_name(tree_node.name)
            self._or_trees[tree_node.name] = self._build_or_tree(tree_node)

    def _resolve_or_child(
        self, child: Union[ast.OrTreeRef, ast.OrTreeNode]
    ) -> OrTree:
        if isinstance(child, ast.OrTreeNode):
            return self._build_or_tree(child)
        tree = self._or_trees.get(child.name)
        if tree is not None:
            return tree
        table = self._tables.get(child.name)
        if table is not None:
            # A named table used where an OR-tree is expected becomes a
            # shared one-option OR-tree.
            if child.name not in self._table_wrappers:
                self._table_wrappers[child.name] = OrTree(
                    (table,), name=child.name
                )
            return self._table_wrappers[child.name]
        raise HmdesSemanticError(
            f"line {child.line}: reference to unknown OR-tree {child.name!r}"
        )

    def _build_and_or_tree(self, tree_node: ast.AndOrTreeNode) -> AndOrTree:
        children = tuple(
            self._resolve_or_child(child) for child in tree_node.children
        )
        return AndOrTree(children, name=tree_node.name)

    def _build_and_or_trees(self) -> None:
        for tree_node in self._node.and_or_trees:
            self._check_fresh_name(tree_node.name)
            self._and_or_trees[tree_node.name] = self._build_and_or_tree(
                tree_node
            )

    # ------------------------------------------------------------------
    # Operation classes and opcodes
    # ------------------------------------------------------------------

    def _resolve_constraint(self, expr: ast.ConstraintExpr) -> Constraint:
        if isinstance(expr, ast.AndOrTreeNode):
            return self._build_and_or_tree(expr)
        if isinstance(expr, ast.OrTreeNode):
            return self._build_or_tree(expr)
        if expr.name in self._and_or_trees:
            return self._and_or_trees[expr.name]
        if expr.name in self._or_trees:
            return self._or_trees[expr.name]
        if expr.name in self._tables:
            return OrTree((self._tables[expr.name],), name=expr.name)
        raise HmdesSemanticError(
            f"line {expr.line}: resv references unknown tree {expr.name!r}"
        )

    def _build_op_classes(self) -> Dict[str, OperationClass]:
        op_classes: Dict[str, OperationClass] = {}
        for class_node in self._node.op_classes:
            if class_node.name in op_classes:
                raise HmdesSemanticError(
                    f"operation class {class_node.name!r} declared twice"
                )
            constraint = self._resolve_constraint(class_node.constraint)
            if class_node.latency < 0:
                raise HmdesSemanticError(
                    f"operation class {class_node.name!r} has negative "
                    "latency"
                )
            op_classes[class_node.name] = OperationClass(
                class_node.name,
                constraint,
                class_node.latency,
                class_node.read_time,
            )
        return op_classes

    def _build_bypasses(self) -> Dict:
        bypasses = {}
        for node in self._node.bypasses:
            key = (node.producer, node.consumer)
            if key in bypasses:
                raise HmdesSemanticError(
                    f"line {node.line}: bypass {node.producer}->"
                    f"{node.consumer} declared twice"
                )
            bypasses[key] = Bypass(node.latency, node.substitute)
        return bypasses

    def _build_opcode_map(
        self, op_classes: Dict[str, OperationClass]
    ) -> Dict[str, str]:
        opcode_map: Dict[str, str] = {}
        for operation in self._node.operations:
            if operation.opcode in opcode_map:
                raise HmdesSemanticError(
                    f"line {operation.line}: opcode {operation.opcode!r} "
                    "mapped twice"
                )
            if operation.class_name not in op_classes:
                raise HmdesSemanticError(
                    f"line {operation.line}: opcode {operation.opcode!r} "
                    f"maps to unknown class {operation.class_name!r}"
                )
            opcode_map[operation.opcode] = operation.class_name
        return opcode_map

    # ------------------------------------------------------------------
    # Unused-information accounting
    # ------------------------------------------------------------------

    def _collect_unused(
        self, op_classes: Dict[str, OperationClass]
    ) -> Dict[str, Constraint]:
        """Named items not reachable from any operation class.

        Reachability is computed on the final object graph (by identity),
        so a named OR-tree referenced only by an unused AND/OR-tree is
        itself reported unused.
        """
        reachable: Set[int] = set()

        def mark(constraint: Constraint) -> None:
            reachable.add(id(constraint))
            or_trees = (
                constraint.or_trees
                if isinstance(constraint, AndOrTree)
                else (constraint,)
            )
            for tree in or_trees:
                reachable.add(id(tree))
                for option in tree.options:
                    reachable.add(id(option))

        for op_class in op_classes.values():
            mark(op_class.constraint)

        unused: Dict[str, Constraint] = {}
        for name, and_or in self._and_or_trees.items():
            if id(and_or) not in reachable:
                unused[name] = and_or
        for name, or_tree in self._or_trees.items():
            if id(or_tree) not in reachable:
                unused[name] = or_tree
        for name, table in self._tables.items():
            if id(table) not in reachable:
                unused[name] = self._table_wrappers.get(
                    name, OrTree((table,), name=name)
                )
        return unused

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def translate(self) -> Mdes:
        self._declare_resources()
        self._build_tables()
        self._build_or_trees()
        self._build_and_or_trees()
        op_classes = self._build_op_classes()
        opcode_map = self._build_opcode_map(op_classes)
        mdes = Mdes(
            name=self._node.name,
            resources=self._resources,
            op_classes=op_classes,
            opcode_map=opcode_map,
            unused_trees=self._collect_unused(op_classes),
            bypasses=self._build_bypasses(),
        )
        mdes.validate()
        return mdes


def translate(node: ast.MdesNode) -> Mdes:
    """Translate a parsed HMDES file into a machine description."""
    return _Translator(node).translate()


def load_mdes(source: str) -> Mdes:
    """Preprocess, parse, and translate HMDES source text."""
    from repro import obs

    with obs.span("hmdes:load") as sp:
        node = parse_source(source)
        with obs.span("hmdes:translate"):
            mdes = translate(node)
        if obs.enabled():
            sp.set(
                machine=mdes.name,
                op_classes=len(mdes.op_classes),
                stored_options=mdes.stored_option_count(),
            )
    return mdes
