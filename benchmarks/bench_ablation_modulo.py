"""Ablation: modulo scheduling's demand on the constraint checker.

Section 4 notes that attempts per operation "can increase significantly
with the use of more advanced scheduling techniques such as iterative
modulo scheduling", making the check-cost transformations more valuable.
This bench software pipelines loops of growing pressure and reports
attempts per operation against the list scheduler's ~2.
"""

from conftest import write_result

from repro.transforms.pipeline import staged_mdes
from repro.analysis.reporting import format_table
from repro.lowlevel.compiled import compile_mdes
from repro.machines import get_machine
from repro.modulo import (
    make_recurrence_loop,
    minimum_initiation_interval,
    modulo_schedule,
)


def test_ablation_modulo_regenerate(results_dir, benchmark):
    machine = get_machine("SuperSPARC")
    compiled = compile_mdes(
        staged_mdes(machine.build_andor(), 4), bitvector=True
    )

    def build_rows():
        rows = []
        for chain, parallel in ((2, 2), (3, 4), (4, 8), (2, 12)):
            loop = make_recurrence_loop(machine, chain, parallel)
            res_mii, rec_mii = minimum_initiation_interval(
                loop, machine, compiled
            )
            schedule = modulo_schedule(loop, machine, compiled)
            schedule.validate()
            rows.append(
                (
                    f"chain={chain} parallel={parallel}",
                    len(loop),
                    res_mii,
                    rec_mii,
                    schedule.ii,
                    schedule.evictions,
                    schedule.stats.attempts / len(loop),
                    schedule.stats.checks_per_attempt,
                )
            )
        return rows

    rows = benchmark(build_rows)
    text = format_table(
        (
            "Loop", "Ops", "ResMII", "RecMII", "II",
            "Evictions", "Att/Op", "Chk/Att",
        ),
        rows,
        title=(
            "Ablation: iterative modulo scheduling on reservation "
            "tables (SuperSPARC, fully optimized AND/OR)"
        ),
    )
    write_result(results_dir, "ablation_modulo.txt", text)
    # Modulo scheduling probes many cycles per op: attempts/op well
    # above the list scheduler's ~2.
    assert max(row[6] for row in rows) > 2.0


def test_ablation_bench_pipelining(benchmark):
    """Time one full II search on a mid-size loop."""
    machine = get_machine("SuperSPARC")
    compiled = compile_mdes(
        staged_mdes(machine.build_andor(), 4), bitvector=True
    )
    loop = make_recurrence_loop(machine, 3, 6)
    schedule = benchmark(modulo_schedule, loop, machine, compiled)
    assert schedule.ii >= 1
