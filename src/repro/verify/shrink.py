"""Greedy minimization of a failing fuzz case.

A raw divergence report points at a generated description with a few
dozen operations and a handful of multi-option trees -- too much to eye.
The shrinker applies delta-debugging-style reduction passes, largest
cuts first, re-checking after each candidate that the divergence still
reproduces:

1. drop whole basic blocks,
2. drop operations within a block (indices are renumbered),
3. drop operation classes no remaining operation uses (with their
   opcodes),
4. drop sub-OR-trees of AND/OR constraints,
5. drop OR-tree options,
6. drop individual usages within an option.

Every surviving candidate is re-validated (``Mdes.validate``) and
re-serialized through the HMDES writer, so the final artifact is a
minimal *source-level* reproducer: a small ``.hmdes`` text plus a small
block list, ready to paste into a regression test.

The loop restarts from the first pass after every accepted cut (a
smaller case often unlocks earlier cuts) and is bounded by an attempt
budget so pathological predicates cannot spin forever.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Optional, Tuple

from repro.core.mdes import Mdes, OperationClass
from repro.core.tables import AndOrTree, Constraint, OrTree
from repro.errors import MdesError
from repro.ir.block import BasicBlock

#: Cap on reduction candidates tried per shrink run.
MAX_SHRINK_ATTEMPTS = 600


def _rebuild_case(case, mdes: Mdes, blocks: List[BasicBlock]):
    """A new FuzzCase around a mutated description/workload pair."""
    from repro.verify.fuzz import FuzzCase
    from repro.verify.generate import build_machine

    used = {op.opcode for block in blocks for op in block}
    profile = tuple(
        spec for spec in case.machine.opcode_profile
        if spec.opcode in used and spec.opcode in mdes.opcode_map
    )
    machine = build_machine(mdes, rng=None, profile=profile)
    return FuzzCase(
        seed=case.seed, mdes=mdes, machine=machine, blocks=blocks
    )


def _drop_blocks(case) -> Iterator[Tuple[Mdes, List[BasicBlock]]]:
    for index in range(len(case.blocks)):
        if len(case.blocks) <= 1:
            return
        yield case.mdes, (
            case.blocks[:index] + case.blocks[index + 1:]
        )


def _drop_ops(case) -> Iterator[Tuple[Mdes, List[BasicBlock]]]:
    for block_index, block in enumerate(case.blocks):
        if len(block) <= 1:
            continue
        for op_index in range(len(block.operations)):
            remaining = [
                op for position, op in enumerate(block.operations)
                if position != op_index
            ]
            rebuilt = BasicBlock(block.label, [
                replace(op, index=position)
                for position, op in enumerate(remaining)
            ])
            yield case.mdes, (
                case.blocks[:block_index] + [rebuilt]
                + case.blocks[block_index + 1:]
            )


def _drop_classes(case) -> Iterator[Tuple[Mdes, List[BasicBlock]]]:
    mdes = case.mdes
    used_opcodes = {op.opcode for block in case.blocks for op in block}
    used_classes = {
        mdes.opcode_map[opcode]
        for opcode in used_opcodes if opcode in mdes.opcode_map
    }
    for class_name in mdes.op_classes:
        if class_name in used_classes or len(mdes.op_classes) <= 1:
            continue
        yield Mdes(
            name=mdes.name,
            resources=mdes.resources,
            op_classes={
                name: cls for name, cls in mdes.op_classes.items()
                if name != class_name
            },
            opcode_map={
                opcode: cls for opcode, cls in mdes.opcode_map.items()
                if cls != class_name
            },
            unused_trees=dict(mdes.unused_trees),
            bypasses=dict(mdes.bypasses),
        ), case.blocks
    if mdes.unused_trees:
        yield Mdes(
            name=mdes.name,
            resources=mdes.resources,
            op_classes=dict(mdes.op_classes),
            opcode_map=dict(mdes.opcode_map),
            unused_trees={},
            bypasses=dict(mdes.bypasses),
        ), case.blocks


def _with_constraint(
    mdes: Mdes, class_name: str, constraint: Constraint
) -> Mdes:
    op_classes = dict(mdes.op_classes)
    op_classes[class_name] = op_classes[class_name].with_constraint(
        constraint
    )
    return Mdes(
        name=mdes.name,
        resources=mdes.resources,
        op_classes=op_classes,
        opcode_map=dict(mdes.opcode_map),
        unused_trees=dict(mdes.unused_trees),
        bypasses=dict(mdes.bypasses),
    )


def _constraint_reductions(constraint: Constraint) -> Iterator[Constraint]:
    """Structurally smaller variants of one constraint, biggest first."""
    if isinstance(constraint, AndOrTree):
        # Drop a whole sub-OR-tree.
        if len(constraint.or_trees) > 1:
            for index in range(len(constraint.or_trees)):
                yield AndOrTree(
                    constraint.or_trees[:index]
                    + constraint.or_trees[index + 1:]
                )
        # Recurse into each sub-OR-tree.
        for index, tree in enumerate(constraint.or_trees):
            for smaller in _constraint_reductions(tree):
                yield AndOrTree(
                    constraint.or_trees[:index] + (smaller,)
                    + constraint.or_trees[index + 1:]
                )
        return
    # OR-tree: drop an option, then drop a usage within an option.
    if len(constraint.options) > 1:
        for index in range(len(constraint.options)):
            yield OrTree(
                constraint.options[:index] + constraint.options[index + 1:]
            )
    for index, option in enumerate(constraint.options):
        if len(option.usages) <= 1:
            continue
        for usage_index in range(len(option.usages)):
            smaller = replace(option, usages=(
                option.usages[:usage_index]
                + option.usages[usage_index + 1:]
            ))
            yield OrTree(
                constraint.options[:index] + (smaller,)
                + constraint.options[index + 1:]
            )


def _shrink_constraints(case) -> Iterator[Tuple[Mdes, List[BasicBlock]]]:
    for class_name, op_class in case.mdes.op_classes.items():
        for smaller in _constraint_reductions(op_class.constraint):
            yield _with_constraint(
                case.mdes, class_name, smaller
            ), case.blocks


#: Reduction passes in decreasing cut size.
_PASSES: Tuple[Callable, ...] = (
    _drop_blocks,
    _drop_ops,
    _drop_classes,
    _shrink_constraints,
)


def case_size(case) -> Tuple[int, int, int]:
    """(total ops, stored options, stored usages) -- the shrink metric."""
    ops = sum(len(block) for block in case.blocks)
    options = 0
    usages = 0
    for tree in case.mdes.or_trees():
        for option in tree.options:
            options += 1
            usages += len(option.usages)
    return ops, options, usages


def shrink_case(
    case,
    reproduces: Callable[[object], bool],
    max_attempts: int = MAX_SHRINK_ATTEMPTS,
):
    """Minimize ``case`` while ``reproduces(candidate)`` stays true.

    Returns ``(smallest case, accepted cuts, attempts used)``.  The
    input case is assumed to reproduce already.
    """
    from repro import obs

    accepted = 0
    attempts = 0
    with obs.span("verify:shrink", seed=case.seed) as sp:
        progress = True
        while progress and attempts < max_attempts:
            progress = False
            for reduction_pass in _PASSES:
                for mdes, blocks in reduction_pass(case):
                    if attempts >= max_attempts:
                        break
                    attempts += 1
                    try:
                        mdes.validate()
                        candidate = _rebuild_case(case, mdes, blocks)
                        if not reproduces(candidate):
                            continue
                    except MdesError:
                        continue
                    except Exception:
                        # A candidate the toolchain itself chokes on is
                        # a different bug; keep shrinking the original.
                        continue
                    case = candidate
                    accepted += 1
                    progress = True
                    break
                if progress or attempts >= max_attempts:
                    break
    if obs.enabled():
        sp.set(accepted=accepted, attempts=attempts)
        obs.count(
            "repro_verify_shrink_attempts_total", attempts,
            help="Shrink candidates evaluated.",
        )
    return case, accepted, attempts
