"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def run_cli(capsys):
    def run(*argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    return run


SMALL_HMDES = """
mdes Tiny;
section resource { A; B; }
section ortree { O_dead { option { use A at 3; } } }
section andortree {
    AO { ortree { option { use A at 0; } }
         ortree { option { use B at 1; } option { use B at 2; } } }
}
section opclass { k { resv AO; latency 1; } }
section operation { X: k; }
"""


class TestMachines:
    def test_lists_all_four(self, run_cli):
        code, out, _ = run_cli("machines")
        assert code == 0
        for name in ("PA7100", "Pentium", "SuperSPARC", "K5"):
            assert name in out


class TestTables:
    def test_single_table(self, run_cli):
        code, out, _ = run_cli("tables", "--ops", "400", "--table", "6")
        assert code == 0
        assert "Table 6" in out

    def test_unknown_table(self, run_cli):
        code, _, err = run_cli("tables", "--ops", "400", "--table", "99")
        assert code == 2
        assert "choose 1-15" in err


class TestFigures:
    def test_single_figure(self, run_cli):
        code, out, _ = run_cli("figures", "--ops", "400",
                               "--name", "fig3")
        assert code == 0
        assert "AND/OR-tree" in out

    def test_unknown_figure(self, run_cli):
        code, _, err = run_cli("figures", "--ops", "400",
                               "--name", "fig9")
        assert code == 2


class TestLint:
    def test_lint_machine(self, run_cli):
        code, out, _ = run_cli("lint", "--machine", "SuperSPARC")
        assert code == 0
        assert "W001" in out

    def test_lint_file_strict(self, run_cli, tmp_path):
        path = tmp_path / "tiny.hmdes"
        path.write_text(SMALL_HMDES)
        code, out, _ = run_cli("lint", str(path), "--strict")
        assert code == 1  # the dead tree warning
        assert "O_dead" in out

    def test_lint_requires_target(self, run_cli):
        with pytest.raises(SystemExit):
            run_cli("lint")


class TestOptimizeExpand:
    def test_optimize_writes_parseable_output(self, run_cli, tmp_path):
        source = tmp_path / "tiny.hmdes"
        output = tmp_path / "tiny.opt.hmdes"
        source.write_text(SMALL_HMDES)
        code, out, _ = run_cli("optimize", str(source), "-o", str(output))
        assert code == 0
        assert "smaller" in out
        from repro.hmdes import load_mdes

        optimized = load_mdes(output.read_text())
        assert optimized.unused_trees == {}

    def test_expand(self, run_cli, tmp_path):
        source = tmp_path / "tiny.hmdes"
        output = tmp_path / "tiny.flat.hmdes"
        source.write_text(SMALL_HMDES)
        code, out, _ = run_cli("expand", str(source), "-o", str(output))
        assert code == 0
        from repro.core.tables import OrTree
        from repro.hmdes import load_mdes

        flat = load_mdes(output.read_text())
        assert isinstance(flat.op_class("k").constraint, OrTree)
        assert flat.op_class("k").option_count() == 2


class TestGenerateSchedule:
    def test_generate_then_schedule(self, run_cli, tmp_path):
        trace = tmp_path / "work.trace"
        code, out, _ = run_cli(
            "generate", "--machine", "PA7100", "--ops", "300",
            "-o", str(trace),
        )
        assert code == 0
        assert trace.exists()
        code, out, _ = run_cli("schedule", "--trace", str(trace))
        assert code == 0
        assert "attempts/op" in out
        assert "PA7100" in out

    def test_schedule_synthetic(self, run_cli):
        code, out, _ = run_cli(
            "schedule", "--machine", "K5", "--ops", "400",
            "--rep", "or", "--stage", "0", "--no-bitvector",
        )
        assert code == 0
        assert "K5 (or, stage 0)" in out

    def test_schedule_without_target(self, run_cli):
        code, _, err = run_cli("schedule", "--ops", "100")
        assert code == 2

    @pytest.mark.parametrize(
        "backend",
        ["ortree", "andor", "bitvector", "automata", "eichenberger"],
    )
    def test_schedule_each_backend(self, run_cli, backend):
        code, out, _ = run_cli(
            "schedule", "--machine", "SuperSPARC", "--ops", "300",
            "--backend", backend,
        )
        assert code == 0
        assert f"backend {backend}" in out
        assert "checks/attempt" in out

    def test_backend_stage_too_low(self, run_cli):
        code, _, err = run_cli(
            "schedule", "--machine", "K5", "--ops", "100",
            "--backend", "automata", "--stage", "0",
        )
        assert code == 2
        assert "stage >= 3" in err

    def test_backend_excludes_lmdes(self, run_cli, tmp_path):
        code, _, err = run_cli(
            "schedule", "--machine", "K5", "--ops", "100",
            "--backend", "ortree", "--lmdes", str(tmp_path / "x.json"),
        )
        assert code == 2
        assert "mutually exclusive" in err


class TestEngines:
    def test_lists_registered_backends(self, run_cli):
        code, out, _ = run_cli("engines")
        assert code == 0
        for name in ("ortree", "andor", "bitvector", "automata",
                     "eichenberger"):
            assert name in out


class TestReport:
    def test_report_generation(self, run_cli, tmp_path):
        output = tmp_path / "EXP.md"
        code, out, _ = run_cli(
            "report", "--ops", "600", "-o", str(output)
        )
        assert code == 0
        text = output.read_text()
        assert "# EXPERIMENTS" in text
        assert "Table 15" in text


class TestScheduleBatch:
    def _json_run(self, run_cli, *argv):
        import json

        code, out, err = run_cli("schedule-batch", *argv, "--json")
        assert code == 0, err
        return json.loads(out)

    def test_worker_count_does_not_change_the_answer(self, run_cli):
        runs = [
            self._json_run(
                run_cli, "--machine", "SuperSPARC", "--ops", "300",
                "--workers", str(workers), "--chunk-size", "8",
            )
            for workers in (1, 2)
        ]
        assert runs[0]["workers"] == 1 and runs[1]["workers"] == 2
        for key in ("ops", "cycles", "attempts", "chunks", "blocks",
                    "options_per_attempt", "checks_per_attempt"):
            assert runs[0][key] == runs[1][key], key

    def test_cache_dir_cold_then_warm(self, run_cli, tmp_path):
        cache_dir = str(tmp_path / "mdes-cache")
        cold = self._json_run(
            run_cli, "--machine", "K5", "--ops", "200",
            "--cache-dir", cache_dir,
        )
        assert cold["cache"]["disk_stores"] >= 1
        assert cold["cache"]["disk_hits"] == 0
        warm = self._json_run(
            run_cli, "--machine", "K5", "--ops", "200",
            "--cache-dir", cache_dir,
        )
        assert warm["cache"]["disk_hits"] >= 1
        assert warm["cache"]["disk_misses"] == 0
        assert warm["cache"]["disk_stores"] == 0
        assert warm["attempts"] == cold["attempts"]

    def test_cache_dir_human_output(self, run_cli, tmp_path):
        code, out, _ = run_cli(
            "schedule-batch", "--machine", "K5", "--ops", "100",
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert code == 0
        assert "description cache:" in out
        assert "store(s)" in out

    def test_backend_excludes_lmdes(self, run_cli, tmp_path):
        code, _, err = run_cli(
            "schedule-batch", "--machine", "K5", "--ops", "100",
            "--backend", "andor", "--lmdes", str(tmp_path / "x.json"),
        )
        assert code == 2
        assert "mutually exclusive" in err

    def test_lmdes_batch_path(self, run_cli, tmp_path):
        lmdes = tmp_path / "pentium.lmdes.json"
        code, _, _ = run_cli(
            "compile", "--machine", "Pentium", "-o", str(lmdes)
        )
        assert code == 0
        report = self._json_run(
            run_cli, "--machine", "Pentium", "--ops", "200",
            "--lmdes", str(lmdes), "--workers", "2",
        )
        assert report["backend"] == f"lmdes:{lmdes}"
        assert report["ops"] >= 200

    def test_trace_input(self, run_cli, tmp_path):
        trace = tmp_path / "work.trace"
        code, _, _ = run_cli(
            "generate", "--machine", "PA7100", "--ops", "150",
            "-o", str(trace),
        )
        assert code == 0
        report = self._json_run(run_cli, "--trace", str(trace))
        assert report["machine"] == "PA7100"
        # Generators round the requested total up to whole blocks.
        assert report["ops"] >= 150

    def test_needs_machine_or_trace(self, run_cli):
        code, _, err = run_cli("schedule-batch", "--ops", "100")
        assert code == 2
        assert "--machine or --trace" in err

    def test_invalid_worker_count(self, run_cli):
        code, _, err = run_cli(
            "schedule-batch", "--machine", "K5", "--ops", "50",
            "--workers", "0",
        )
        assert code == 2
        assert "workers" in err


class TestScheduleBatchResilience:
    """The --retries / --chunk-timeout / --on-error surface."""

    @pytest.fixture(autouse=True)
    def _no_leaked_fault_plan(self):
        from repro.service import faults

        faults.clear()
        yield
        faults.clear()

    def _json_run(self, run_cli, *argv):
        import json

        code, out, err = run_cli("schedule-batch", *argv, "--json")
        assert code == 0, err
        return json.loads(out)

    def test_json_report_carries_resilience_section(self, run_cli):
        report = self._json_run(
            run_cli, "--machine", "K5", "--ops", "100",
            "--retries", "2", "--chunk-timeout", "30",
        )
        resilience = report["resilience"]
        assert resilience == {
            "retries": 0, "timeouts": 0, "pool_restarts": 0,
            "degraded": False, "quarantined": 0, "errors": [],
        }

    def test_injected_transient_fault_is_retried(self, run_cli,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "sched@0")
        report = self._json_run(
            run_cli, "--machine", "K5", "--ops", "100", "--retries", "1",
        )
        assert report["resilience"]["retries"] == 1
        assert report["resilience"]["errors"] == []
        monkeypatch.delenv("REPRO_FAULTS")
        clean = self._json_run(
            run_cli, "--machine", "K5", "--ops", "100", "--retries", "1",
        )
        for key in ("ops", "cycles", "attempts", "blocks"):
            assert report[key] == clean[key], key

    def test_human_output_reports_recovery(self, run_cli, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "sched@0")
        code, out, _ = run_cli(
            "schedule-batch", "--machine", "K5", "--ops", "100",
            "--retries", "1",
        )
        assert code == 0
        assert "resilience:" in out
        assert "1 retry(ies)" in out

    def test_worker_crash_recovered_through_cli(self, run_cli,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash@0")
        report = self._json_run(
            run_cli, "--machine", "K5", "--ops", "120",
            "--workers", "2", "--chunk-size", "8",
        )
        assert report["resilience"]["pool_restarts"] >= 1
        assert report["resilience"]["errors"] == []

    def test_on_error_rejects_unknown_mode(self, run_cli, capsys):
        with pytest.raises(SystemExit):
            run_cli(
                "schedule-batch", "--machine", "K5", "--ops", "50",
                "--on-error", "explode",
            )


class TestCompileLmdes:
    def test_compile_machine_to_lmdes(self, run_cli, tmp_path):
        output = tmp_path / "ss.lmdes.json"
        code, out, _ = run_cli(
            "compile", "--machine", "SuperSPARC", "-o", str(output)
        )
        assert code == 0
        assert "compiled constraints" in out
        from repro.lowlevel.serialize import load_lmdes

        loaded = load_lmdes(output.read_text())
        assert loaded.source.name == "SuperSPARC"

    def test_compile_file_to_lmdes(self, run_cli, tmp_path):
        source = tmp_path / "tiny.hmdes"
        output = tmp_path / "tiny.lmdes.json"
        source.write_text(SMALL_HMDES)
        code, _, _ = run_cli("compile", str(source), "-o", str(output))
        assert code == 0

    def test_schedule_against_lmdes(self, run_cli, tmp_path):
        output = tmp_path / "k5.lmdes.json"
        run_cli("compile", "--machine", "K5", "-o", str(output))
        code, out, _ = run_cli(
            "schedule", "--machine", "K5", "--lmdes", str(output),
            "--ops", "300",
        )
        assert code == 0
        assert "checks/attempt" in out

    def test_compile_needs_target(self, run_cli, tmp_path):
        with pytest.raises(SystemExit):
            run_cli("compile", "-o", str(tmp_path / "x.json"))


class TestObsSurfaces:
    """``--json``/``--trace-out`` digests and the stats/trace commands."""

    @pytest.fixture(autouse=True)
    def restore_obs(self):
        from repro import obs

        was_enabled = obs.enabled()
        yield
        obs.enable() if was_enabled else obs.disable()
        obs.reset()

    def test_schedule_json_embeds_phase_and_transform_digest(self, run_cli):
        import json

        code, out, _ = run_cli(
            "schedule", "--machine", "K5", "--ops", "200", "--json"
        )
        assert code == 0
        document = json.loads(out)
        assert document["ops"] > 0
        assert document["wall_seconds"] > 0
        phases = document["obs"]["phases"]
        assert "schedule:list" in phases
        assert "transform:staged" in phases
        transforms = document["obs"]["transforms"]
        stages = [t["stage"] for t in transforms]
        assert "redundancy-elimination" in stages
        assert any("options_delta" in t for t in transforms)

    def test_schedule_batch_json_embeds_obs_digest(self, run_cli):
        import json

        code, out, _ = run_cli(
            "schedule-batch", "--machine", "K5", "--ops", "200",
            "--chunk-size", "4", "--json",
        )
        assert code == 0
        document = json.loads(out)
        phases = document["obs"]["phases"]
        assert "cli:schedule-batch" in phases
        assert "service:batch" in phases
        assert "batch:chunk" in phases
        assert document["wall_seconds"] == phases["cli:schedule-batch"]

    def test_schedule_batch_trace_out_round_trips(self, run_cli, tmp_path):
        from repro.obs import trace_from_jsonl

        out_path = tmp_path / "trace.jsonl"
        code, _, _ = run_cli(
            "schedule-batch", "--machine", "K5", "--ops", "120",
            "--workers", "2", "--chunk-size", "4",
            "--trace-out", str(out_path),
        )
        assert code == 0
        roots = trace_from_jsonl(out_path.read_text())
        names = [s.name for root in roots for s in root.walk()]
        assert "service:batch" in names
        assert names.count("batch:chunk") >= 2  # worker spans grafted

    def test_stats_prints_registry(self, run_cli):
        code, out, _ = run_cli(
            "stats", "--machine", "K5", "--ops", "150"
        )
        assert code == 0
        assert "repro_check_attempts_total" in out
        assert "repro_engine_creations_total" in out

    def test_stats_prom_is_valid_exposition(self, run_cli):
        from repro.obs import parse_prometheus

        code, out, _ = run_cli(
            "stats", "--machine", "K5", "--ops", "150", "--prom"
        )
        assert code == 0
        parsed = parse_prometheus(out)
        assert parsed["types"]["repro_check_attempts_total"] == "counter"
        assert parsed["types"]["repro_schedule_seconds"] == "histogram"
        assert any(
            name == "repro_schedule_seconds_bucket"
            for name, _ in parsed["samples"]
        )

    def test_trace_prints_tree_and_writes_jsonl(self, run_cli, tmp_path):
        from repro.obs import trace_from_jsonl

        out_path = tmp_path / "trace.jsonl"
        code, out, _ = run_cli(
            "trace", "--machine", "K5", "--ops", "150",
            "-o", str(out_path),
        )
        assert code == 0
        assert "schedule:list" in out
        assert "transform:redundancy-elimination" in out
        roots = trace_from_jsonl(out_path.read_text())
        assert roots, "trace file should contain at least one root tree"


class TestTraceProfiling:
    """``repro trace`` profiling views: --hot, --flamegraph, --input."""

    @pytest.fixture(autouse=True)
    def restore_obs(self):
        from repro import obs

        was_enabled = obs.enabled()
        was_memory = obs.memory_enabled()
        yield
        obs.enable() if was_enabled else obs.disable()
        obs.enable_memory() if was_memory else obs.disable_memory()
        obs.reset()

    def test_trace_hot_prints_self_time_table(self, run_cli):
        code, out, _ = run_cli(
            "trace", "--machine", "K5", "--ops", "150", "--hot"
        )
        assert code == 0
        header = out.splitlines()[0].split()
        assert header == ["span", "calls", "self_ms", "incl_ms", "self_%"]
        assert "schedule:list" in out

    def test_trace_flamegraph_is_collapsed_stack(self, run_cli):
        from repro.obs.prof import parse_flamegraph

        code, out, _ = run_cli(
            "trace", "--machine", "K5", "--ops", "150", "--flamegraph"
        )
        assert code == 0
        parsed = parse_flamegraph(out)
        assert parsed  # at least one stack
        assert any("schedule:list" in stack for stack in parsed)
        assert all(count > 0 for count in parsed.values())

    def test_trace_input_replays_a_saved_trace(self, run_cli, tmp_path):
        out_path = tmp_path / "trace.jsonl"
        code, _, _ = run_cli(
            "trace", "--machine", "K5", "--ops", "150",
            "-o", str(out_path),
        )
        assert code == 0
        code, out, _ = run_cli("trace", "--input", str(out_path), "--hot")
        assert code == 0
        assert "schedule:list" in out

    def test_trace_without_machine_or_input_errors(self, run_cli):
        with pytest.raises(SystemExit):
            run_cli("trace", "--hot")

    def test_trace_memory_prints_per_phase_table(self, run_cli):
        code, out, _ = run_cli(
            "trace", "--machine", "K5", "--ops", "150", "--memory"
        )
        assert code == 0
        lines = out.splitlines()
        header = next(
            line for line in lines if line.startswith("span")
        ).split()
        assert header == ["span", "spans", "peak_kib", "net_kib"]
        assert any(line.startswith("schedule:list") for line in lines)
        assert any(line.startswith("engine:create") for line in lines)
        # The span tree above the table carries the raw byte attrs.
        assert "mem_peak_bytes=" in out

    def test_stats_shows_estimated_quantiles(self, run_cli):
        code, out, _ = run_cli(
            "stats", "--machine", "K5", "--ops", "150"
        )
        assert code == 0
        assert "estimated quantiles" in out
        assert "p95" in out


class TestBenchCli:
    """``repro bench``: records, history, baseline, regression gate."""

    @pytest.fixture(autouse=True)
    def restore_obs(self):
        from repro import obs

        was_enabled = obs.enabled()
        was_memory = obs.memory_enabled()
        yield
        obs.enable() if was_enabled else obs.disable()
        obs.enable_memory() if was_memory else obs.disable_memory()
        obs.reset()

    def _paths(self, tmp_path):
        return [
            "--baseline", str(tmp_path / "base.json"),
            "--history", str(tmp_path / "hist.jsonl"),
            "--summary", str(tmp_path / "summary.json"),
        ]

    def test_bench_list_names_kernels_and_metrics(self, run_cli):
        code, out, _ = run_cli("bench", "--list")
        assert code == 0
        assert "compile.pa7100" in out
        assert "compile.pa7100.seconds" in out
        assert "exact.pentium" in out

    def test_bench_run_without_baseline(self, run_cli, tmp_path):
        import json

        code, out, _ = run_cli(
            "bench", "--smoke", "--repeats", "2",
            "--suite", "compile", *self._paths(tmp_path),
        )
        assert code == 0
        assert "no baseline" in out
        assert (tmp_path / "hist.jsonl").exists()
        summary = json.loads((tmp_path / "summary.json").read_text())
        entry = summary["metrics"]["compile.pa7100.seconds"]
        assert entry["value"] > 0
        # No baseline yet, so there is no comparison status.
        assert "status" not in entry
        assert not (tmp_path / "base.json").exists()

    def test_bench_check_without_baseline_exits_2(self, run_cli, tmp_path):
        code, _, err = run_cli(
            "bench", "--smoke", "--repeats", "2", "--check",
            "--suite", "compile", *self._paths(tmp_path),
        )
        assert code == 2
        assert "no baseline" in err

    def test_bench_acceptance_gate(self, run_cli, tmp_path, monkeypatch):
        """Pin a baseline, pass a clean --check, fail an injected one."""
        import json

        paths = self._paths(tmp_path)
        code, _, _ = run_cli(
            "bench", "--smoke", "--repeats", "3", "--update-baseline",
            "--suite", "compile", *paths,
        )
        assert code == 0
        assert (tmp_path / "base.json").exists()

        # Clean re-run against the pinned baseline must pass.
        code, _, err = run_cli(
            "bench", "--smoke", "--repeats", "3", "--check",
            "--suite", "compile", *paths,
        )
        assert code == 0
        assert "bench --check: ok" in err

        # An injected slowdown must be confirmed and fail the gate.
        monkeypatch.setenv("REPRO_BENCH_INJECT", "compile=0.2")
        code, _, err = run_cli(
            "bench", "--smoke", "--repeats", "3", "--check",
            "--suite", "compile", *paths,
        )
        assert code == 1
        assert "REGRESSION compile.pa7100.seconds" in err

        history = [
            json.loads(line)
            for line in (tmp_path / "hist.jsonl").read_text().splitlines()
        ]
        # Three runs appended to the same history file.
        runs = {rec["timestamp"] for rec in history}
        assert len(history) >= 3 and len(runs) == 3

    def test_bench_json_document(self, run_cli, tmp_path):
        import json

        code, out, _ = run_cli(
            "bench", "--smoke", "--repeats", "2", "--json",
            "--suite", "compile", *self._paths(tmp_path),
        )
        assert code == 0
        document = json.loads(out)
        metrics = [r["metric"] for r in document["records"]]
        assert "compile.pa7100.seconds" in metrics
        assert document["regressions"] == 0
        assert document["summary"]["metrics"]
        for record in document["records"]:
            assert record["repeats"] == 2
            assert "git_sha" in record["env"]

    def test_bench_unknown_suite_pattern_errors(self, run_cli, tmp_path):
        with pytest.raises(ValueError):
            run_cli(
                "bench", "--suite", "definitely-missing",
                *self._paths(tmp_path),
            )
