"""Ablation: retuning the usage-time shift for a backward scheduler.

Section 7: "for a backward-scheduling list scheduler, the constants
should be chosen to make the latest usage time zero".  This bench runs
the backward scheduler against descriptions shifted with each heuristic
and shows the matching heuristic minimizes checks -- the same description
source automatically tunes for either scheduler direction.
"""

from conftest import write_result

from repro.analysis.reporting import format_table
from repro.lowlevel.compiled import compile_mdes
from repro.machines import get_machine
from repro.scheduler import schedule_workload
from repro.transforms import (
    eliminate_redundancy,
    remove_dominated_options,
    shift_usage_times,
)
from repro.transforms.usage_sort import sort_usage_checks
from repro.workloads import WorkloadConfig, generate_blocks


def _tuned(mdes, direction):
    cleaned = remove_dominated_options(eliminate_redundancy(mdes))
    shifted = shift_usage_times(cleaned, direction)
    return sort_usage_checks(shifted, preferred_time=0)


#: The four real machines barely show the direction effect: nearly every
#: resource is used at a single time across the whole description, so the
#: earliest- and latest-usage constants coincide.  This synthetic deep
#: pipeline uses a shared writeback bus at different depths per class,
#: which is where the heuristic choice becomes visible.
DEEPPIPE_HMDES = """
mdes DeepPipe;
section resource { ISSUE[0..1]; ALU[0..1]; WB; }
section ortree {
    OT_issue { $for i in 0..1 { option { use ISSUE[$i] at 0; } } }
    OT_alu   { $for a in 0..1 { option { use ALU[$a] at 0; } } }
}
section andortree {
    AOT_short { ortree OT_issue; ortree OT_alu;
                ortree { option { use WB at 0; } } }
    AOT_long  { ortree OT_issue; ortree OT_alu;
                ortree { option { use WB at 3; } } }
}
section opclass {
    short { resv AOT_short; latency 1; }
    long  { resv AOT_long;  latency 4; }
    branch { resv ortree { option { use ISSUE[1] at 0; } }; latency 1; }
}
section operation { ADD: short; MUL: long; BR: branch; }
"""


def _deeppipe_machine():
    from repro.machines.base import Machine, OpcodeSpec

    def classify(op, cascaded):
        return {"ADD": "short", "MUL": "long", "BR": "branch"}[op.opcode]

    return Machine(
        name="DeepPipe",
        hmdes_source=DEEPPIPE_HMDES,
        opcode_profile=(
            OpcodeSpec("ADD", 5.0, (1,)),
            OpcodeSpec("MUL", 5.0, (2,)),
            OpcodeSpec("BR", 1.0, (0,), False, "branch"),
        ),
        classifier=classify,
        block_size_range=(4, 10),
        flow_probability=0.3,
    )


def test_ablation_backward_regenerate(results_dir, benchmark):
    def build_rows():
        rows = []
        machines = [
            get_machine("SuperSPARC"),
            get_machine("PA7100"),
            _deeppipe_machine(),
        ]
        for machine in machines:
            name = machine.name
            blocks = generate_blocks(
                machine, WorkloadConfig(total_ops=3000)
            )
            for direction in ("forward", "backward"):
                signatures = []
                row = [name, direction]
                for shift_direction in ("forward", "backward"):
                    compiled = compile_mdes(
                        _tuned(machine.build_or(), shift_direction),
                        bitvector=True,
                    )
                    result = schedule_workload(
                        machine,
                        compiled,
                        blocks,
                        keep_schedules=True,
                        direction=direction,
                    )
                    signatures.append(result.signature())
                    row.append(result.stats.checks_per_attempt)
                assert signatures[0] == signatures[1]
                rows.append(tuple(row))
        return rows

    rows = benchmark(build_rows)
    text = format_table(
        (
            "MDES", "Scheduler", "Fwd-shift Chk/Att", "Bwd-shift Chk/Att",
        ),
        rows,
        title=(
            "Ablation: usage-time shift heuristic vs scheduler "
            "direction (section 7)"
        ),
    )
    write_result(results_dir, "ablation_backward.txt", text)
    # The matching heuristic should not lose for its own direction.
    by_key = {(r[0], r[1]): (r[2], r[3]) for r in rows}
    for name in ("SuperSPARC", "PA7100", "DeepPipe"):
        fwd_with_fwd, fwd_with_bwd = by_key[(name, "forward")]
        assert fwd_with_fwd <= fwd_with_bwd * 1.05
    # On the deep pipeline the choice visibly matters for the forward
    # scheduler (the backward rows are reported but within noise: which
    # usage conflicts most under backward filling depends on the block's
    # conflict structure, not only on usage depth).
    fwd_with_fwd, fwd_with_bwd = by_key[("DeepPipe", "forward")]
    assert fwd_with_fwd < fwd_with_bwd
