"""Tests for the pluggable query-engine layer (:mod:`repro.engine`)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    AutomatonEngine,
    DescriptionCache,
    EngineSpec,
    GLOBAL_CACHE,
    TableEngine,
    create_engine,
    engine_names,
    get_engine_spec,
    register_engine,
)
from repro.errors import MdesError, SchedulingError
from repro.lowlevel.checker import CheckStats
from repro.machines import MACHINE_NAMES, get_machine
from repro.scheduler import schedule_workload
from repro.workloads import WorkloadConfig, generate_blocks

ALL_BACKENDS = (
    "ortree", "andor", "bitvector", "automata", "eichenberger", "exact",
)


def small_workload(machine, ops=120, seed=3):
    return generate_blocks(
        machine, WorkloadConfig(total_ops=ops, seed=seed)
    )


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert engine_names() == ALL_BACKENDS

    def test_unknown_backend_lists_known(self):
        with pytest.raises(KeyError, match="ortree"):
            get_engine_spec("no-such-backend")

    def test_duplicate_registration_rejected(self):
        spec = get_engine_spec("ortree")
        with pytest.raises(ValueError, match="already registered"):
            register_engine(spec)
        register_engine(spec, replace=True)  # idempotent with replace

    def test_custom_backend_reachable_by_name(self):
        spec = EngineSpec(
            name="ortree-scalar-test",
            rep="or",
            bitvector=False,
            engine_cls=TableEngine,
            description="test-only clone of ortree",
        )
        register_engine(spec)
        try:
            engine = create_engine(
                "ortree-scalar-test", get_machine("K5")
            )
            assert engine.name == "ortree-scalar-test"
            state = engine.new_state()
            class_name = sorted(engine.compiled.constraints)[0]
            assert engine.try_reserve(state, class_name, 0) is not None
        finally:
            from repro.engine import registry

            del registry._REGISTRY["ortree-scalar-test"]

    def test_stage_below_minimum_rejected(self):
        with pytest.raises(MdesError, match="stage >= 3"):
            create_engine("automata", get_machine("K5"), stage=0)


class TestEngineProtocol:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_reserve_block_release_cycle(self, backend):
        engine = create_engine(backend, get_machine("SuperSPARC"))
        state = engine.new_state()
        class_name = sorted(engine.compiled.constraints)[0]
        first = engine.try_reserve(state, class_name, 0)
        assert first is not None and len(first) > 0
        # The same slot cannot be taken twice...
        assert engine.try_reserve(state, class_name, 0) is None
        # ...until the reservation is released.
        engine.release(first)
        assert engine.try_reserve(state, class_name, 0) is not None

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_stats_injection(self, backend):
        shared = CheckStats()
        engine = create_engine(
            backend, get_machine("K5"), stats=shared
        )
        machine = get_machine("K5")
        schedule_workload(
            machine, None, small_workload(machine), engine=engine
        )
        assert engine.stats is shared
        assert shared.attempts > 0

    def test_automaton_memoized_attempts_cost_nothing(self):
        machine = get_machine("SuperSPARC")
        engine = create_engine("automata", machine)
        state = engine.new_state()
        class_name = sorted(engine.compiled.constraints)[0]
        engine.try_reserve(state, class_name, 0)
        cold = engine.stats.resource_checks
        assert cold > 0
        # An identical query on a fresh region hits the transition table.
        engine.try_reserve(engine.new_state(), class_name, 0)
        assert engine.stats.resource_checks == cold
        assert engine.stats.attempts == 2


class TestSchedulerIntegration:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_identical_schedules_across_backends(
        self, machine_name, backend
    ):
        machine = get_machine(machine_name)
        blocks = small_workload(machine)
        reference = schedule_workload(
            machine, None, blocks, keep_schedules=True,
            engine=create_engine("ortree", machine),
        )
        run = schedule_workload(
            machine, None, blocks, keep_schedules=True,
            engine=create_engine(backend, machine),
        )
        assert run.signature() == reference.signature()
        assert run.stats.attempts == reference.stats.attempts

    @given(seed=st.integers(min_value=0, max_value=2**20),
           ops=st.integers(min_value=10, max_value=80))
    @settings(max_examples=12, deadline=None)
    def test_property_backends_agree_on_random_workloads(self, seed, ops):
        """Every registered engine schedules every machine identically."""
        for machine_name in MACHINE_NAMES:
            machine = get_machine(machine_name)
            blocks = generate_blocks(
                machine, WorkloadConfig(total_ops=ops, seed=seed)
            )
            signatures = {
                schedule_workload(
                    machine, None, blocks, keep_schedules=True,
                    engine=create_engine(name, machine),
                ).signature()
                for name in engine_names()
            }
            assert len(signatures) == 1

    def test_operation_scheduler_accepts_engine(self):
        from repro.scheduler.operation_scheduler import OperationScheduler

        machine = get_machine("SuperSPARC")
        blocks = small_workload(machine, ops=60)
        by_table = OperationScheduler(
            machine, engine=create_engine("bitvector", machine)
        )
        by_automaton = OperationScheduler(
            machine, engine=create_engine("automata", machine)
        )
        for block in blocks:
            a = by_table.schedule_block(block)
            b = by_automaton.schedule_block(block)
            assert a.schedule.signature() == b.schedule.signature()
            assert b.stats.attempts == a.stats.attempts

    def test_modulo_scheduler_runs_on_table_backends(self):
        from repro.modulo import make_recurrence_loop, modulo_schedule

        machine = get_machine("SuperSPARC")
        loop = make_recurrence_loop(machine, 3, 2)
        compiled = GLOBAL_CACHE.compiled(machine, "andor", 4, True)
        by_compiled = modulo_schedule(loop, machine, compiled)
        by_engine = modulo_schedule(
            loop, machine, engine=create_engine("bitvector", machine)
        )
        assert by_engine.ii == by_compiled.ii
        assert by_engine.times == by_compiled.times

    def test_modulo_needs_a_source(self):
        from repro.modulo import make_recurrence_loop, modulo_schedule

        machine = get_machine("SuperSPARC")
        with pytest.raises(SchedulingError, match="engine"):
            modulo_schedule(make_recurrence_loop(machine, 2, 1), machine)

    def test_modulo_rejects_non_modulo_backends(self):
        """The section 10 capability gap, surfaced as a typed error."""
        from repro.modulo import make_recurrence_loop, modulo_schedule

        machine = get_machine("SuperSPARC")
        with pytest.raises(SchedulingError, match="modulo"):
            modulo_schedule(
                make_recurrence_loop(machine, 2, 1), machine,
                engine=create_engine("automata", machine),
            )

    def test_cycle_scheduler_engine_backend(self):
        from repro.automata import EngineBackend, TableBackend
        from repro.automata.cycle_scheduler import cycle_schedule_workload

        machine = get_machine("K5")
        blocks = small_workload(machine, ops=80)
        table_run, _ = cycle_schedule_workload(
            machine, TableBackend(
                GLOBAL_CACHE.compiled(machine, "andor", 3, True)
            ), blocks,
        )
        engine_run, _ = cycle_schedule_workload(
            machine,
            EngineBackend(create_engine("automata", machine, stage=3)),
            blocks,
        )
        assert engine_run.signature() == table_run.signature()


class TestStatsFolding:
    def test_iadd_merges_counters(self):
        machine = get_machine("K5")
        blocks = small_workload(machine)
        runs = [
            schedule_workload(
                machine, None, blocks, engine=create_engine(name, machine)
            )
            for name in ("ortree", "andor")
        ]
        total = CheckStats()
        for run in runs:
            total += run.stats
        assert total.attempts == sum(r.stats.attempts for r in runs)
        assert total.resource_checks == sum(
            r.stats.resource_checks for r in runs
        )

    def test_sum_folding(self):
        machine = get_machine("K5")
        blocks = small_workload(machine)
        runs = [
            schedule_workload(
                machine, None, blocks, engine=create_engine(name, machine)
            )
            for name in ("ortree", "bitvector")
        ]
        folded = sum((run.stats for run in runs), CheckStats())
        assert folded.attempts == sum(r.stats.attempts for r in runs)
        plain_sum = sum(run.stats for run in runs)  # __radd__ on 0
        assert plain_sum.attempts == folded.attempts

    def test_since_reports_only_the_delta(self):
        machine = get_machine("K5")
        engine = create_engine("andor", machine)
        schedule_workload(
            machine, None, small_workload(machine), engine=engine
        )
        before = engine.stats.copy()
        second = schedule_workload(
            machine, None, small_workload(machine), engine=engine
        )
        delta = engine.stats.since(before)
        assert delta.attempts == second.stats.attempts
        assert engine.stats.attempts == before.attempts + delta.attempts


class TestDescriptionCache:
    def test_repeated_compiles_hit_the_cache(self):
        cache = DescriptionCache(maxsize=8)
        machine = get_machine("Pentium")
        first = cache.compiled(machine, "andor", 4, True)
        assert cache.stats.misses > 0
        misses = cache.stats.misses
        second = cache.compiled(machine, "andor", 4, True)
        assert second is first
        assert cache.stats.misses == misses
        assert cache.stats.hits >= 1

    def test_repeated_engine_creation_hits_the_cache(self):
        machine = get_machine("PA7100")
        GLOBAL_CACHE.compiled(machine, "or", 4, False)
        hits = GLOBAL_CACHE.stats.hits
        misses = GLOBAL_CACHE.stats.misses
        create_engine("ortree", machine)
        create_engine("ortree", machine)
        assert GLOBAL_CACHE.stats.hits >= hits + 2
        assert GLOBAL_CACHE.stats.misses == misses

    def test_repeated_analysis_suites_share_compilations(self):
        from repro.analysis import ExperimentSuite

        first = ExperimentSuite(total_ops=300)
        first.compiled("K5", "andor", 4, True)
        misses = GLOBAL_CACHE.stats.misses
        hits = GLOBAL_CACHE.stats.hits
        second = ExperimentSuite(total_ops=600)
        second.compiled("K5", "andor", 4, True)
        assert GLOBAL_CACHE.stats.misses == misses
        assert GLOBAL_CACHE.stats.hits > hits

    def test_lru_eviction(self):
        cache = DescriptionCache(maxsize=2)
        machine = get_machine("K5")
        cache.mdes(machine, "or", 0)
        cache.mdes(machine, "or", 1)
        cache.mdes(machine, "andor", 0)  # evicts ("or", 0)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        misses = cache.stats.misses
        cache.mdes(machine, "or", 0)  # rebuilt, not cached
        assert cache.stats.misses == misses + 1

    def test_same_name_different_machine_never_aliases(self):
        cache = DescriptionCache()
        real = get_machine("K5")

        class Impostor:
            name = "K5"

            def build_or(self):
                return real.build_or()

        impostor = Impostor()
        cache.mdes(real, "or", 0)
        cache.mdes(impostor, "or", 0)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_clear_resets_entries_and_counters(self):
        cache = DescriptionCache()
        cache.mdes(get_machine("K5"), "or", 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 0


class TestCapabilities:
    def test_automaton_engine_declares_no_modulo(self):
        engine = create_engine("automata", get_machine("K5"))
        assert isinstance(engine, AutomatonEngine)
        assert engine.supports_modulo is False
        with pytest.raises(SchedulingError, match="modulo"):
            engine.new_state(ii=4)

    @pytest.mark.parametrize(
        "backend", ["ortree", "andor", "bitvector", "eichenberger"]
    )
    def test_table_backends_wrap_modulo_state(self, backend):
        from repro.lowlevel.bitvector import ModuloRUMap

        engine = create_engine(backend, get_machine("K5"))
        assert engine.supports_modulo is True
        state = engine.new_state(ii=3)
        assert isinstance(state, ModuloRUMap)
        state.reserve(7, 0b1)
        assert not state.is_free(1, 0b1)  # 7 mod 3 == 1
