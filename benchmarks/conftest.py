"""Shared fixtures for the benchmark harness.

Every benchmark regenerates its paper table/figure from a shared
:class:`ExperimentSuite` (scale controlled by ``REPRO_BENCH_OPS``,
default 20000 operations per machine) and writes the artifact to
``benchmarks/results/``.  The timed kernels run at a smaller scale so
``pytest benchmarks/ --benchmark-only`` stays fast.
"""

import json
import os
from pathlib import Path

import pytest

from repro.analysis import ExperimentSuite
from repro.engine.cache import GLOBAL_CACHE
from repro.machines import get_machine
from repro.workloads import WorkloadConfig, generate_blocks

#: Smoke mode (REPRO_BENCH_SMOKE=1): the CI regression gate's reduced
#: scale.  Explicit REPRO_BENCH_OPS / REPRO_KERNEL_OPS still win.
_SMOKE = os.environ.get(
    "REPRO_BENCH_SMOKE", ""
).strip().lower() in ("1", "true", "yes", "on")

#: Operations per machine for the reported tables.
BENCH_OPS = int(
    os.environ.get("REPRO_BENCH_OPS", "4000" if _SMOKE else "20000")
)

#: Operations per timed kernel round.
KERNEL_OPS = int(
    os.environ.get("REPRO_KERNEL_OPS", "800" if _SMOKE else "2000")
)

RESULTS_DIR = Path(__file__).parent / "results"

_EMIT_JSON = False


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store_true",
        default=False,
        help=(
            "also write each benchmark's machine-readable payload to "
            "benchmarks/results/BENCH_<name>.json"
        ),
    )


def pytest_configure(config):
    global _EMIT_JSON
    _EMIT_JSON = config.getoption("--json", default=False)


@pytest.fixture(scope="session")
def suite():
    """The shared full-scale experiment suite."""
    return ExperimentSuite(total_ops=BENCH_OPS)


@pytest.fixture(scope="session")
def results_dir():
    """Directory collecting every regenerated table/figure."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir, name, text, payload=None):
    """Persist one artifact and echo it for ``-s`` runs.

    With ``--json`` and a ``payload``, a machine-readable twin is
    written next to the text artifact as ``BENCH_<stem>.json``, and
    the payload's numeric fields are normalized into
    :class:`repro.obs.perf.BenchRecord` rows appended to the shared
    ``BENCH_history.jsonl`` -- every ad-hoc bench script feeds the
    same durable perf trajectory as ``repro bench``.
    """
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    if _EMIT_JSON and payload is not None:
        json_path = results_dir / f"BENCH_{Path(name).stem}.json"
        json_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[json written to {json_path}]")
        from repro.obs import perf

        records = perf.records_from_payload(Path(name).stem, payload)
        if records:
            perf.append_history(
                str(results_dir / "BENCH_history.jsonl"), records
            )


@pytest.fixture(scope="session")
def kernel_workloads():
    """Small per-machine workloads for the timed kernels."""
    cache = {}

    def get(machine_name):
        if machine_name not in cache:
            machine = get_machine(machine_name)
            cache[machine_name] = generate_blocks(
                machine, WorkloadConfig(total_ops=KERNEL_OPS)
            )
        return cache[machine_name]

    return get


@pytest.fixture(scope="session")
def kernel_compiled():
    """Compiled descriptions for the timed kernels, keyed by config.

    Delegates to the process-wide LRU description cache, so kernels
    share compilations with every other consumer in the process.
    """

    def get(machine_name, rep, stage, bitvector):
        return GLOBAL_CACHE.compiled(
            get_machine(machine_name), rep, stage, bitvector
        )

    return get
