#!/usr/bin/env python3
"""The batch-scheduling service through the stable ``repro.api`` facade.

Everything here imports from ``repro.api`` -- the supported public
surface -- and speaks its request/response vocabulary: every entry
point takes one validated request object (``ScheduleRequest`` /
``BatchRequest``) and returns the uniform ``ScheduleResponse``
envelope, the same objects the CLI and the ``repro serve`` network
tier use.  The walk-through:

1. compile a machine to its low-level (LMDES) form with one call;
2. schedule a workload in-process (`api.schedule`);
3. shard the same workload across a process pool with retries, a
   per-chunk timeout, and typed error reporting (`api.schedule_batch`);
4. inject a seeded fault profile and show the recovered run is
   bit-for-bit identical to the clean one.

Run:  python examples/batch_service.py
"""

import tempfile

from repro import api
from repro.service import faults

MACHINE = "SuperSPARC"


def main():
    machine = api.get_machine(MACHINE)
    blocks = tuple(api.generate_blocks(
        machine, api.WorkloadConfig(total_ops=400, seed=7)
    ))

    # 1. The paper's two-tier flow in one call: HMDES -> transforms ->
    #    compiled low-level representation.
    compiled = api.compile_machine(MACHINE)
    print(f"{MACHINE}: compiled LMDES with "
          f"{len(compiled.constraints)} opclass constraints")

    # 2. One in-process run (the single-request path).  The response
    #    is the same JSON-ready envelope the server returns.
    serial = api.schedule(api.ScheduleRequest(
        machine=MACHINE, blocks=blocks, backend="bitvector",
    ))
    print(f"serial: {serial.ops} ops in {serial.cycles} cycles, "
          f"{serial.attempts} attempts (request {serial.request_id})")

    with tempfile.TemporaryDirectory() as cache_dir:
        config = api.BatchConfig(
            backend="bitvector",
            workers=2,
            chunk_size=8,
            cache_dir=cache_dir,
            retry=api.RetryPolicy(retries=2, seed=42),
            timeout=api.TimeoutPolicy(chunk_seconds=30.0),
            on_error="report",
        )
        request = api.BatchRequest(
            machine=MACHINE, blocks=blocks, config=config,
        )

        # 3. The service path: chunked, pooled, disk-cached.
        clean = api.schedule_batch(request)
        print(f"batch:  {clean.ops} ops across "
              f"{clean.result.chunk_count} chunks, "
              f"{clean.cache['disk_stores']} artifact(s) published")
        for failure in clean.errors:  # typed quarantine records
            print(f"  quarantined block {failure.block_index}: "
                  f"{failure.error_type}")

        # 4. Same run under a seeded fault profile: chunk 0 suffers a
        #    transient scheduling error, chunk 1's worker crashes.
        #    (Equivalent to REPRO_FAULTS="sched@0;crash@1" in the env.)
        with faults.injected(faults.parse_faults("sched@0;crash@1")):
            recovered = api.schedule_batch(request)
        print(f"faulted: {recovered.resilience['retries']} retry(ies), "
              f"{recovered.resilience['pool_restarts']} pool restart(s), "
              f"{recovered.resilience['quarantined']} quarantined")

        identical = (
            recovered.signature() == clean.signature()
            and recovered.cycles == clean.cycles
        )
        print(f"recovered output identical to clean run: {identical}")
        assert identical

        # The batch envelope matches the serial one bit-for-bit.
        assert clean.signature() == serial.signature()


if __name__ == "__main__":
    main()
