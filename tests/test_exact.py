"""The branch-and-bound exact scheduler (``repro.exact``).

Four claims under test:

* **soundness** -- every exact schedule passes the independent replay
  oracle, on the paper machines and on randomly generated ones;
* **optimality** -- the exact scheduler never books more cycles than
  any list-scheduler backend, and on a hand-built greedy trap it
  strictly beats the heuristic (proving the option-repair search runs);
* **budget degradation** -- an exhausted budget still returns a valid,
  oracle-clean schedule, honestly flagged ``optimal=False``;
* **the oracle wiring** -- a heuristic "shorter than the proven
  optimum" is reported as an ``"optimality"`` divergence (mutation
  smoke test with fabricated reference lengths).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.core.mdes import Mdes, OperationClass
from repro.core.resource import ResourceTable
from repro.core.tables import OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.engine.registry import create_engine, engine_names, get_engine_spec
from repro.exact import (
    REASON_BOUND_MET,
    REASON_NODE_BUDGET,
    REASON_OPTIMAL,
    REASON_OVERSIZE,
    ExactBudget,
    ExactScheduler,
    schedule_workload_exact,
)
from repro.hmdes import write_mdes
from repro.ir.block import BasicBlock
from repro.ir.operation import Operation
from repro.machines import MACHINE_NAMES, get_machine
from repro.machines.base import KIND_INT, Machine, OpcodeSpec
from repro.scheduler import schedule_workload
from repro.verify import (
    ScheduleOracle,
    differential_runs,
    exact_oracle_divergences,
    generate_case,
)
from tests.conftest import shared_oracle, shared_workload

#: Generous node-only budget: deterministic across hosts, big enough
#: that the small test workloads all close as proven optimal.
PINNED_BUDGET = ExactBudget(max_nodes=200_000, max_seconds=None)


# ----------------------------------------------------------------------
# A hand-built greedy trap: list scheduling is provably suboptimal
# ----------------------------------------------------------------------


def greedy_trap_machine():
    """Two resources, two classes, one wrong greedy choice.

    ``cy`` can issue on R0 or R1 (R0 listed first); ``cx`` only on R0.
    A block of one OPY then one OPX: the greedy list scheduler hands R0
    to OPY and pushes OPX to cycle 1, while the exact search repairs
    OPY onto R1 and fits both in one cycle.  Used at stage 0 -- the
    tree-sort transform is free to reorder options, which would defuse
    the trap at later stages.
    """
    resources = ResourceTable()
    r0, r1 = resources.declare_many(["R0", "R1"])
    cx = OrTree((ReservationTable((ResourceUsage(0, r0),)),), name="OT_x")
    cy = OrTree(
        (
            ReservationTable((ResourceUsage(0, r0),)),
            ReservationTable((ResourceUsage(0, r1),)),
        ),
        name="OT_y",
    )
    mdes = Mdes(
        name="Greedy_trap",
        resources=resources,
        op_classes={
            "cx": OperationClass("cx", cx, latency=1),
            "cy": OperationClass("cy", cy, latency=1),
        },
        opcode_map={"OPX": "cx", "OPY": "cy"},
    )
    mdes.validate()
    return Machine(
        name="Greedy_trap",
        hmdes_source=write_mdes(mdes),
        opcode_profile=(
            OpcodeSpec("OPX", 1.0, src_choices=(0,), has_dest=True,
                       kind=KIND_INT),
            OpcodeSpec("OPY", 1.0, src_choices=(0,), has_dest=True,
                       kind=KIND_INT),
        ),
        classifier=lambda op, cascaded: {"OPX": "cx", "OPY": "cy"}[
            op.opcode
        ],
        wrap_or_trees=True,
    )


def trap_block():
    """OPY before OPX, independent registers (no dependences)."""
    return BasicBlock("trap", [
        Operation(0, "OPY", dests=("a",), srcs=()),
        Operation(1, "OPX", dests=("b",), srcs=()),
    ])


class TestGreedyTrap:
    def test_list_scheduler_walks_into_the_trap(self):
        machine = greedy_trap_machine()
        run = schedule_workload(
            machine, None, [trap_block()], keep_schedules=True,
            engine=create_engine("bitvector", machine, stage=0),
        )
        assert run.schedules[0].length == 2

    def test_exact_escapes_via_option_repair(self):
        machine = greedy_trap_machine()
        scheduler = ExactScheduler(
            machine, engine=create_engine("exact", machine, stage=0)
        )
        result = scheduler.schedule_block(trap_block())
        assert result.heuristic_length == 2
        assert result.length == 1
        assert result.optimal
        assert result.gap == 1
        # The win *requires* reassigning OPY's option: the greedy
        # placement of OPX at cycle 0 fails until repair moves OPY.
        assert result.repairs > 0
        report = ScheduleOracle(machine).verify([result.schedule])
        assert report.ok, report.diagnostics

    def test_zero_budget_degrades_to_the_heuristic_seed(self):
        machine = greedy_trap_machine()
        scheduler = ExactScheduler(
            machine,
            engine=create_engine("exact", machine, stage=0),
            budget=ExactBudget(max_nodes=0),
        )
        result = scheduler.schedule_block(trap_block())
        assert not result.optimal
        assert result.reason == REASON_NODE_BUDGET
        assert result.length == 2          # the seed, still valid
        assert result.lower_bound == 1     # best bound found so far
        report = ScheduleOracle(machine).verify([result.schedule])
        assert report.ok, report.diagnostics


# ----------------------------------------------------------------------
# Paper machines: optimality, budgets, determinism
# ----------------------------------------------------------------------


class TestPaperMachines:
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_exact_at_most_every_list_backend(self, machine_name):
        machine, blocks = shared_workload(machine_name, 48, 20161202)
        run = schedule_workload_exact(
            machine, blocks, budget=PINNED_BUDGET
        )
        report = shared_oracle(machine_name).verify(run.schedules)
        assert report.ok, report.diagnostics
        for backend in engine_names(scheduler="list"):
            stage = max(4, get_engine_spec(backend).min_stage)
            heuristic = schedule_workload(
                machine, None, blocks, keep_schedules=True,
                engine=create_engine(backend, machine, stage=stage),
            )
            for result, schedule in zip(run.results, heuristic.schedules):
                assert result.length <= schedule.length, backend

    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_runs_are_deterministic(self, machine_name):
        machine, blocks = shared_workload(machine_name, 48, 20161202)
        first = schedule_workload_exact(
            machine, blocks, budget=PINNED_BUDGET
        )
        second = schedule_workload_exact(
            machine, blocks, budget=PINNED_BUDGET
        )
        assert first.signature() == second.signature()
        assert [r.reason for r in first.results] == [
            r.reason for r in second.results
        ]
        assert [r.nodes for r in first.results] == [
            r.nodes for r in second.results
        ]

    def test_tiny_budget_flags_and_still_verifies(self):
        machine, blocks = shared_workload("SuperSPARC", 60, 11)
        run = schedule_workload_exact(
            machine, blocks, budget=ExactBudget(max_nodes=0)
        )
        report = shared_oracle("SuperSPARC").verify(run.schedules)
        assert report.ok, report.diagnostics
        for result in run.results:
            assert result.length >= result.lower_bound
            assert result.length <= result.heuristic_length
            if result.reason == REASON_NODE_BUDGET:
                # Honest flag: only a met bound may still claim
                # optimality after the budget tripped.
                assert (
                    not result.optimal
                    or result.length == result.lower_bound
                )
            elif result.reason in (REASON_BOUND_MET, REASON_OPTIMAL):
                assert result.optimal

    def test_oversize_blocks_keep_the_heuristic_schedule(self):
        machine, blocks = shared_workload("K5", 60, 11)
        run = schedule_workload_exact(machine, blocks, max_block_ops=2)
        assert any(
            result.reason == REASON_OVERSIZE for result in run.results
        )
        report = shared_oracle("K5").verify(run.schedules)
        assert report.ok, report.diagnostics


# ----------------------------------------------------------------------
# Registry, API, and CLI-facing surface
# ----------------------------------------------------------------------


class TestSurface:
    def test_registry_capability_flags(self):
        spec = get_engine_spec("exact")
        assert spec.scheduler == "exact"
        assert spec.max_block_ops == 12
        assert "exact" in engine_names()
        assert "exact" in engine_names(scheduler="exact")
        assert "exact" not in engine_names(scheduler="list")

    def test_api_schedule_dispatches_on_backend(self):
        machine, blocks = shared_workload("Pentium", 30, 5)
        response = api.schedule(api.ScheduleRequest(
            machine=machine, blocks=tuple(blocks), backend="exact",
        ))
        assert response.kind == "exact"
        assert response.exact is not None
        assert response.cycles <= response.exact["heuristic_cycles"]
        assert hasattr(response.result, "optimal_blocks")

    def test_api_schedule_exact_rejects_list_backends(self):
        machine, blocks = shared_workload("Pentium", 30, 5)
        with pytest.raises(
            api.RequestError, match="not an exact scheduler"
        ):
            api.schedule_exact(api.ScheduleRequest(
                machine=machine, blocks=tuple(blocks),
                backend="bitvector",
            ))

    def test_api_exact_backend_rejects_backward(self):
        machine, blocks = shared_workload("Pentium", 30, 5)
        with pytest.raises(api.RequestError, match="forward only"):
            api.schedule(api.ScheduleRequest(
                machine=machine, blocks=tuple(blocks), backend="exact",
                direction="backward",
            ))

    def test_empty_block_schedules_to_nothing(self):
        machine = get_machine("K5")
        result = ExactScheduler(machine).schedule_block(
            BasicBlock("empty", [])
        )
        assert result.length == 0
        assert result.optimal


# ----------------------------------------------------------------------
# Differential wiring: exact as a third oracle
# ----------------------------------------------------------------------


class TestDifferentialWiring:
    def test_differential_includes_exact_and_agrees(self):
        machine, blocks = shared_workload("SuperSPARC", 60, 7)
        divergences = differential_runs(
            machine, blocks, backends=("bitvector", "exact")
        )
        assert divergences == []

    def test_non_exact_backend_is_rejected(self):
        machine, blocks = shared_workload("K5", 30, 5)
        with pytest.raises(ValueError, match="not an exact scheduler"):
            exact_oracle_divergences(
                machine, blocks, backend="bitvector"
            )

    def test_fabricated_shorter_heuristic_fires_optimality(self):
        """Mutation smoke test: lie that the heuristic beat a proven
        optimum by one cycle, and the gap check must fire."""
        machine, blocks = shared_workload("Pentium", 40, 9)
        run = schedule_workload_exact(
            machine, blocks, budget=PINNED_BUDGET
        )
        assert any(
            r.optimal and r.length > 0 for r in run.results
        ), "workload produced no proven-optimal block"
        fabricated = [
            r.length - 1 if r.optimal and r.length > 0 else r.length
            for r in run.results
        ]
        divergences = exact_oracle_divergences(
            machine, blocks,
            reference_lengths=fabricated,
            reference_where="stage4/bitvector",
            budget=PINNED_BUDGET,
        )
        assert divergences, "planted shorter-than-optimal not reported"
        assert all(d.kind == "optimality" for d in divergences)
        assert all(d.where == "stage4/bitvector" for d in divergences)
        assert any("proven optimum" in d.detail for d in divergences)

    def test_block_count_mismatch_is_a_divergence(self):
        machine, blocks = shared_workload("K5", 30, 5)
        divergences = exact_oracle_divergences(
            machine, blocks, reference_lengths=[1],
            budget=PINNED_BUDGET,
        )
        assert [d.kind for d in divergences] == ["optimality"]
        assert "block counts differ" in divergences[0].detail


# ----------------------------------------------------------------------
# Property suite over generated machines (hypothesis, marked slow)
# ----------------------------------------------------------------------


@pytest.mark.slow
class TestExactProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2_000))
    def test_exact_sound_and_never_beaten(self, seed):
        case = generate_case(seed)
        budget = ExactBudget(max_nodes=2_000, repair_nodes=4_000)
        run = schedule_workload_exact(
            case.machine, case.blocks, budget=budget
        )
        report = ScheduleOracle(case.machine).verify(run.schedules)
        assert report.ok, report.diagnostics
        heuristic = schedule_workload(
            case.machine, None, case.blocks, keep_schedules=True,
            engine=create_engine("bitvector", case.machine),
        )
        for result, schedule in zip(run.results, heuristic.schedules):
            assert result.length <= schedule.length
            assert result.length >= result.lower_bound

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2_000))
    def test_exhausted_budget_is_flagged_and_clean(self, seed):
        case = generate_case(seed)
        run = schedule_workload_exact(
            case.machine, case.blocks, budget=ExactBudget(max_nodes=0)
        )
        report = ScheduleOracle(case.machine).verify(run.schedules)
        assert report.ok, report.diagnostics
        for result in run.results:
            if result.optimal:
                assert (
                    result.reason in (REASON_BOUND_MET, REASON_OPTIMAL)
                    or result.length == result.lower_bound
                )
            else:
                assert result.length <= result.heuristic_length


# ----------------------------------------------------------------------
# Seeded fuzz with exact in the matrix (marked fuzz, like the others)
# ----------------------------------------------------------------------


@pytest.mark.fuzz
class TestExactFuzz:
    def test_25_seeded_cases_with_exact_in_matrix(self):
        """The acceptance invariant: 25 random machines through the
        heuristic matrix *plus* the exact third oracle -- zero
        divergences of any kind."""
        backends = tuple(engine_names())
        assert "exact" in backends
        for i in range(25):
            case = generate_case(1000 + i)
            divergences = differential_runs(
                case.machine, case.blocks, backends=backends
            )
            assert divergences == [], (case.seed, divergences)
