"""Table 10: checks per attempt before/after bit-vector packing."""

import pytest
from conftest import write_result

from repro.machines import get_machine
from repro.scheduler import schedule_workload


def test_table10_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.table10())
    rows = {row[0]: row for row in suite.table10_rows()}
    for row in rows.values():
        assert row[2] <= row[1] + 1e-9
        assert row[5] <= row[4] + 1e-9
    write_result(results_dir, "table10_bitvector_checks.txt", text)


@pytest.mark.parametrize("bitvector", [False, True],
                         ids=["scalar", "bitvector"])
def test_table10_bench_pentium_scheduling(
    benchmark, kernel_workloads, kernel_compiled, bitvector
):
    """Time Pentium scheduling with and without bit-vector packing."""
    machine = get_machine("Pentium")
    compiled = kernel_compiled("Pentium", "or", 1, bitvector)
    blocks = kernel_workloads("Pentium")
    result = benchmark(schedule_workload, machine, compiled, blocks)
    assert result.total_ops > 0
