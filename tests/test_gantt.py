"""Tests for the schedule rendering helpers."""

import pytest

from repro.analysis.gantt import render_schedule, render_utilization
from repro.ir.block import BasicBlock
from repro.ir.operation import Operation
from repro.lowlevel.compiled import compile_mdes
from repro.machines import get_machine
from repro.scheduler import ListScheduler
from repro.scheduler.schedule import BlockSchedule


@pytest.fixture(scope="module")
def scheduled():
    machine = get_machine("SuperSPARC")
    compiled = compile_mdes(machine.build_andor())
    block = BasicBlock(
        "B7",
        [
            Operation(0, "LD", ("r1",), ("li0",), is_load=True),
            Operation(1, "ADD", ("r2",), ("r1",)),
            Operation(2, "BE", (), ("r2",), is_branch=True),
        ],
    )
    schedule = ListScheduler(machine, compiled).schedule_block(block)
    return machine, compiled, schedule


class TestRenderSchedule:
    def test_header_and_rows(self, scheduled):
        _, _, schedule = scheduled
        text = render_schedule(schedule)
        assert text.startswith("block B7:")
        assert "LD r1=li0" in text
        assert "[load]" in text

    def test_every_cycle_rendered(self, scheduled):
        _, _, schedule = scheduled
        text = render_schedule(schedule)
        # One line per cycle plus the header.
        assert len(text.splitlines()) == schedule.length + 1

    def test_without_classes(self, scheduled):
        _, _, schedule = scheduled
        text = render_schedule(schedule, show_classes=False)
        assert "[load]" not in text

    def test_empty_schedule(self):
        empty = BlockSchedule(BasicBlock("E"))
        assert "empty" in render_schedule(empty)


class TestRenderUtilization:
    def test_resources_listed(self, scheduled):
        machine, compiled, schedule = scheduled
        text = render_utilization(schedule, compiled, machine)
        assert "M" in text          # the memory unit
        assert "Decoder[2]" in text  # the branch decoder

    def test_rejects_inconsistent_schedule(self, scheduled):
        machine, compiled, schedule = scheduled
        broken = BlockSchedule(schedule.block)
        broken.times = dict.fromkeys(schedule.times, 0)  # all in cycle 0
        # Three loads in one cycle cannot share the single memory unit.
        broken.classes = dict.fromkeys(schedule.classes, "load")
        with pytest.raises(ValueError, match="re-simulate"):
            render_utilization(broken, compiled, machine)
