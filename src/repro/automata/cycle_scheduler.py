"""A cycle-driven list scheduler parametric in its constraint backend.

The related-work automata operate cycle by cycle: at each cycle the
scheduler asks "may class c issue now?" and advances.  To compare fairly,
this scheduler runs identically against two backends -- reservation
tables with an RU map, or the scheduling automaton -- and produces the
exact same schedule on both, so only the constraint-check cost differs.

Both backends require non-negative usage times (stage-3+ descriptions);
the table backend would otherwise reserve into already-executed cycles,
exactly the situation the automaton cannot encode at all.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.automata.automaton import SchedulingAutomaton
from repro.engine.base import QueryEngine
from repro.engine.table import TableEngine
from repro.errors import SchedulingError
from repro.ir.block import BasicBlock
from repro.ir.dependence import build_dependence_graph
from repro.lowlevel.checker import CheckStats
from repro.lowlevel.compiled import CompiledMdes
from repro.scheduler.priority import compute_heights
from repro.scheduler.schedule import BlockSchedule, RunResult


class EngineBackend:
    """Any query engine, driven cycle by cycle.

    Adapts the random-access engine protocol to the automaton papers'
    issue/advance interface; with a table engine this reproduces the
    historical ``TableBackend`` behaviour exactly.
    """

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine
        self._state = engine.new_state()
        self._cycle = 0

    def reset(self) -> None:
        """Start a new scheduling region."""
        self._state = self.engine.new_state()
        self._cycle = 0

    def try_issue(self, class_name: str) -> bool:
        """Issue test at the current cycle."""
        return (
            self.engine.try_reserve(self._state, class_name, self._cycle)
            is not None
        )

    def advance(self) -> None:
        """Move to the next cycle."""
        self._cycle += 1

    def advance_many(self, count: int) -> None:
        """Move ``count`` cycles forward in one step (idle gaps)."""
        self._cycle += count

    @property
    def stats(self) -> CheckStats:
        """Constraint-check statistics."""
        return self.engine.stats

    def work_units(self) -> int:
        """Cost measure: individual resource checks."""
        return self.engine.stats.resource_checks


class TableBackend(EngineBackend):
    """Reservation tables + RU map, for the cycle-driven scheduler."""

    def __init__(self, compiled: CompiledMdes) -> None:
        super().__init__(TableEngine(compiled))


class AutomatonBackend:
    """The scheduling automaton, for the cycle-driven scheduler."""

    def __init__(self, compiled: CompiledMdes) -> None:
        self.automaton = SchedulingAutomaton(compiled)
        self._state = self.automaton.start_state

    def reset(self) -> None:
        """Start a new scheduling region."""
        self._state = self.automaton.start_state

    def try_issue(self, class_name: str) -> bool:
        """Issue test at the current cycle (one transition lookup)."""
        result = self.automaton.try_issue(self._state, class_name)
        if result is None:
            return False
        self._state = result[0]
        return True

    def advance(self) -> None:
        """Move to the next cycle."""
        self._state = self.automaton.advance(self._state)

    def advance_many(self, count: int) -> None:
        """Advance ``count`` cycles; each is a real state transition."""
        for _ in range(count):
            self._state = self.automaton.advance(self._state)

    def work_units(self) -> int:
        """Cost measure: transition lookups (hits are O(1))."""
        return self.automaton.stats.lookups


def cycle_schedule_block(
    block: BasicBlock, machine, backend, max_cycles: int = 65536
) -> BlockSchedule:
    """Greedy cycle-by-cycle scheduling of one block."""
    graph = build_dependence_graph(block, machine.latency)
    heights = compute_heights(graph)
    remaining_preds = {
        op.index: len(graph.preds_of(op.index)) for op in block
    }
    earliest: Dict[int, int] = {
        op.index: 0 for op in block if remaining_preds[op.index] == 0
    }
    ops_by_index = {op.index: op for op in block}
    result = BlockSchedule(block)
    unscheduled = set(ops_by_index)

    backend.reset()
    cycle = 0
    while cycle < max_cycles:
        ready = sorted(
            (
                index
                for index in unscheduled
                if remaining_preds[index] == 0
                and earliest.get(index, 0) <= cycle
            ),
            key=lambda index: (-heights[index], index),
        )
        for index in ready:
            op = ops_by_index[index]
            class_name = machine.classify(op, False)
            if not backend.try_issue(class_name):
                continue
            result.times[index] = cycle
            result.classes[index] = class_name
            unscheduled.discard(index)
            for edge in graph.succs_of(index):
                remaining_preds[edge.succ] -= 1
                required = cycle + edge.latency
                if required > earliest.get(edge.succ, 0):
                    earliest[edge.succ] = required
        if not unscheduled:
            return result
        if ready:
            backend.advance()
            cycle += 1
        else:
            # Latency gap: nothing can become ready before the smallest
            # pending earliest-cycle, so fast-forward to it in one step.
            # No issue test is skipped (the cycles in between had no
            # candidates), so stats and schedules are untouched.
            horizon = min(
                (
                    earliest.get(index, 0)
                    for index in unscheduled
                    if remaining_preds[index] == 0
                    and earliest.get(index, 0) > cycle
                ),
                default=cycle + 1,
            )
            step = max(1, min(horizon, max_cycles) - cycle)
            backend.advance_many(step)
            cycle += step
    raise SchedulingError(
        f"cycle scheduler exceeded {max_cycles} cycles on {block!r}"
    )


def cycle_schedule_workload(
    machine, backend, blocks: Iterable[BasicBlock]
) -> Tuple[RunResult, int]:
    """Schedule a workload; returns (result, backend work units)."""
    from repro import obs

    backend_name = (
        getattr(getattr(backend, "engine", None), "name", None)
        or type(backend).__name__
    )
    result = RunResult(machine_name=machine.name, schedules=[])
    with obs.span(
        "schedule:cycle", machine=machine.name, backend=backend_name,
    ) as span:
        for block in blocks:
            schedule = cycle_schedule_block(block, machine, backend)
            result.total_ops += len(block)
            result.total_cycles += schedule.length
            result.schedules.append(schedule)
        if obs.enabled():
            span.set(ops=result.total_ops, cycles=result.total_cycles,
                     work_units=backend.work_units())
    stats = getattr(backend, "stats", None)
    if stats is not None:
        result.stats = stats
    if obs.enabled():
        obs.observe(
            "repro_schedule_seconds", span.seconds,
            help="Wall seconds per workload scheduling run.",
            scheduler="cycle", backend=backend_name,
        )
    return result, backend.work_units()
