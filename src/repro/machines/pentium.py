"""The Intel Pentium machine description (paper section 4, Table 3).

A 2-issue in-order x86: two execution pipelines (U and V) with a detailed
set of pairing rules.  Operations either pair in both pipes (two options)
or are restricted to one pipe / block both (one option) -- Table 3.

Two paper-specific modeling points are reproduced:

* Every option checks several resources in the *same* cycle (pipe, its
  ALU, and any address/shift/branch unit), which is why the Pentium
  benefits most from bit-vector packing (Tables 9 and 10).
* The description uses no AND/OR-trees at all -- the pairing rules have
  no factorable structure -- so its "AND/OR representation" is just each
  OR-tree wrapped in a one-child AND node, making it slightly *larger*
  (Table 6 footnote).  ``Machine.wrap_or_trees`` records this.

Bundling: the compiler bundles each branch with an appropriate
condition-code-setting operation (section 4); the bundle's reservation
table models the resources of both operations and is unbundled after
scheduling.  The ``CMPBR`` opcodes are those bundles.
"""

from __future__ import annotations

from repro.ir.operation import Operation
from repro.machines.base import (
    KIND_BRANCH,
    KIND_FP,
    KIND_INT,
    KIND_LOAD,
    KIND_SERIAL,
    KIND_STORE,
    Machine,
    OpcodeSpec,
)

HMDES_SOURCE = """
mdes Pentium;

section resource {
    U;
    V;
    ISSUE1;
    ISSUE2;
    UALU;
    VALU;
    USHIFT;
    AGU_U;
    AGU_V;
    BR_V;
    CC;
    FPU;
    MULU;
}

section opclass {
    // Pairable ALU operations: either pipe, with its ALU and issue
    // position (the U pipe holds the first slot of a pair, V the
    // second -- the pairing rules are modeled with one resource each).
    alu_uv { resv ortree {
        option { use U at 0; use ISSUE1 at 0; use UALU at 0; }
        option { use V at 0; use ISSUE2 at 0; use VALU at 0; }
    }; latency 1; }

    // A structurally identical private copy (the writer cloned the entry
    // for register-register moves rather than reuse alu_uv).
    mov_uv { resv ortree {
        option { use U at 0; use ISSUE1 at 0; use UALU at 0; }
        option { use V at 0; use ISSUE2 at 0; use VALU at 0; }
    }; latency 1; }

    // Shifts and rotates pair only in the U pipe (PU class).
    shift_u { resv ortree {
        option { use U at 0; use ISSUE1 at 0; use UALU at 0;
                 use USHIFT at 0; }
    }; latency 1; }

    // Memory loads: either pipe, using the pipe's address unit.
    load_uv { resv ortree {
        option { use U at 0; use ISSUE1 at 0; use UALU at 0;
                 use AGU_U at 0; }
        option { use V at 0; use ISSUE2 at 0; use VALU at 0;
                 use AGU_V at 0; }
    }; latency 1; }

    // Stores: cloned from the load entry instead of shared.
    store_uv { resv ortree {
        option { use U at 0; use ISSUE1 at 0; use UALU at 0;
                 use AGU_U at 0; }
        option { use V at 0; use ISSUE2 at 0; use VALU at 0;
                 use AGU_V at 0; }
    }; latency 1; }

    // Non-pairable operations block both pipes.
    np { resv ortree {
        option { use U at 0; use V at 0; use ISSUE1 at 0;
                 use ISSUE2 at 0; use UALU at 0; use VALU at 0; }
    }; latency 1; }

    // Multiply: non-pairable and occupies the multiplier for 4 cycles.
    imul { resv ortree {
        option {
            use U at 0; use V at 0; use ISSUE1 at 0; use ISSUE2 at 0;
            use UALU at 0; use VALU at 0;
            $for c in 0..3 { use MULU at $c; }
        }
    }; latency 4; }

    // Bundled condition-code setter + conditional branch: the cc op may
    // execute in U while the branch pairs in V.
    cmp_br { resv ortree {
        option {
            use U at 0; use ISSUE1 at 0; use UALU at 0; use CC at 0;
            use V at 0; use ISSUE2 at 0; use BR_V at 0;
        }
    }; latency 1; }

    // Unconditional jumps pair only in V.
    jmp_v { resv ortree {
        option { use V at 0; use ISSUE2 at 0; use VALU at 0;
                 use BR_V at 0; }
    }; latency 1; }

    // ALU forms with a memory operand: pairable, 2 cycles; the entry
    // was cloned from the load entry (identical structure).
    alu_mem { resv ortree {
        option { use U at 0; use ISSUE1 at 0; use UALU at 0;
                 use AGU_U at 0; }
        option { use V at 0; use ISSUE2 at 0; use VALU at 0;
                 use AGU_V at 0; }
    }; latency 2; }

    // String/decimal operations: a private copy of the np entry.
    np_string { resv ortree {
        option { use U at 0; use V at 0; use ISSUE1 at 0;
                 use ISSUE2 at 0; use UALU at 0; use VALU at 0; }
    }; latency 1; }

    // FXCH pairs in V alongside a U-pipe FP operation.
    fxch_v { resv ortree {
        option { use V at 0; use ISSUE2 at 0; use FPU at 0; }
    }; latency 1; }

    // Floating point issues through U and holds the FP unit.
    fp { resv ortree {
        option { use U at 0; use ISSUE1 at 0; use FPU at 0;
                 use FPU at 1; use FPU at 2; }
    }; latency 3; }
}

section operation {
    ADD: alu_uv; SUB: alu_uv; AND: alu_uv; OR: alu_uv; XOR: alu_uv;
    INC: alu_uv; DEC: alu_uv; LEA: alu_uv;
    MOV_RR: mov_uv; MOV_RI: mov_uv;
    SHL: shift_u; SHR: shift_u; SAR: shift_u; ROL: shift_u;
    MOV_LOAD: load_uv; MOV_STORE: store_uv;
    PUSH: store_uv; POP: load_uv;
    ADDM: alu_mem; SUBM: alu_mem;
    CBW: np; XCHG: np; ADC: np;
    MOVS: np_string; STOS: np_string;
    IMUL: imul;
    CMPBR: cmp_br; TESTBR: cmp_br;
    JMP: jmp_v; CALL: jmp_v;
    FADD: fp; FMUL: fp; FXCH: fxch_v;
}
"""

_BASE_CLASS = {
    "ADD": "alu_uv", "SUB": "alu_uv", "AND": "alu_uv", "OR": "alu_uv",
    "XOR": "alu_uv", "INC": "alu_uv", "DEC": "alu_uv", "LEA": "alu_uv",
    "MOV_RR": "mov_uv", "MOV_RI": "mov_uv",
    "SHL": "shift_u", "SHR": "shift_u", "SAR": "shift_u", "ROL": "shift_u",
    "MOV_LOAD": "load_uv", "MOV_STORE": "store_uv",
    "PUSH": "store_uv", "POP": "load_uv",
    "CBW": "np", "XCHG": "np", "ADC": "np",
    "ADDM": "alu_mem", "SUBM": "alu_mem",
    "MOVS": "np_string", "STOS": "np_string",
    "IMUL": "imul",
    "CMPBR": "cmp_br", "TESTBR": "cmp_br",
    "JMP": "jmp_v", "CALL": "jmp_v",
    "FADD": "fp", "FMUL": "fp", "FXCH": "fxch_v",
}


def classify(op: Operation, cascaded: bool) -> str:
    """Pentium class selection is purely static."""
    return _BASE_CLASS[op.opcode]


OPCODE_PROFILE = (
    OpcodeSpec("ADD", 4.7, (1, 2), True, KIND_INT),
    OpcodeSpec("ADDM", 0.5, (1,), True, KIND_LOAD),
    OpcodeSpec("SUBM", 0.3, (1,), True, KIND_LOAD),
    OpcodeSpec("SUB", 3.5, (1, 2), True, KIND_INT),
    OpcodeSpec("AND", 2.0, (1,), True, KIND_INT),
    OpcodeSpec("OR", 1.5, (1,), True, KIND_INT),
    OpcodeSpec("XOR", 1.5, (1,), True, KIND_INT),
    OpcodeSpec("INC", 2.0, (1,), True, KIND_INT),
    OpcodeSpec("DEC", 1.0, (1,), True, KIND_INT),
    OpcodeSpec("LEA", 3.5, (1, 2), True, KIND_INT),
    OpcodeSpec("MOV_RR", 4.5, (1,), True, KIND_INT),
    OpcodeSpec("MOV_RI", 4.0, (0,), True, KIND_INT),
    OpcodeSpec("SHL", 3.5, (1,), True, KIND_INT),
    OpcodeSpec("SHR", 1.5, (1,), True, KIND_INT),
    OpcodeSpec("SAR", 1.5, (1,), True, KIND_INT),
    OpcodeSpec("ROL", 0.5, (1,), True, KIND_INT),
    OpcodeSpec("MOV_LOAD", 11.0, (1,), True, KIND_LOAD),
    OpcodeSpec("POP", 2.0, (1,), True, KIND_LOAD),
    OpcodeSpec("MOV_STORE", 6.0, (2,), False, KIND_STORE),
    OpcodeSpec("PUSH", 2.5, (2,), False, KIND_STORE),
    OpcodeSpec("CBW", 1.2, (1,), True, KIND_INT),
    OpcodeSpec("MOVS", 0.25, (2,), True, KIND_INT),
    OpcodeSpec("STOS", 0.15, (2,), False, KIND_STORE),
    OpcodeSpec("XCHG", 1.6, (2,), True, KIND_INT),
    OpcodeSpec("ADC", 1.6, (2,), True, KIND_INT),
    OpcodeSpec("IMUL", 0.8, (2,), True, KIND_SERIAL),
    OpcodeSpec("CMPBR", 12.0, (2,), False, KIND_BRANCH),
    OpcodeSpec("TESTBR", 4.5, (2,), False, KIND_BRANCH),
    OpcodeSpec("JMP", 2.0, (0,), False, KIND_BRANCH),
    OpcodeSpec("CALL", 2.0, (0,), False, KIND_BRANCH),
    OpcodeSpec("FADD", 0.35, (2,), True, KIND_FP),
    OpcodeSpec("FXCH", 0.15, (1,), True, KIND_FP),
    OpcodeSpec("FMUL", 0.3, (2,), True, KIND_FP),
)


def build_machine() -> Machine:
    """Construct the Pentium machine."""
    return Machine(
        name="Pentium",
        hmdes_source=HMDES_SOURCE,
        opcode_profile=OPCODE_PROFILE,
        classifier=classify,
        scheduling_mode="postpass",
        register_pool=8,
        block_size_range=(3, 12),
        flow_probability=0.55,
        wrap_or_trees=True,
    )
