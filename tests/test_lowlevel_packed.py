"""Tests for the numpy-packed layout (:mod:`repro.lowlevel.packed`).

Covers the shadow RU maps (dict source of truth, array mirror), the
packed constraint layout and its vectorized window evaluation, the
eligibility fallback for machines wider than the packed word budget,
and the shared wire format round trip the zero-copy worker path
attaches to.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mdes import Mdes, OperationClass
from repro.core.resource import ResourceTable
from repro.core.tables import OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.engine import create_engine
from repro.errors import SchedulingError
from repro.lowlevel.bitvector import ModuloRUMap, RUMap
from repro.lowlevel.compiled import compile_mdes
from repro.lowlevel.packed import (
    PACKED_WORD_BUDGET,
    ModuloPackedRUMap,
    PackedRUMap,
    compiled_from_shared_buffer,
    compiled_to_shared_bytes,
    evaluate_window,
    join_words,
    numpy_available,
    pack_mdes,
    packed_layout,
    packing_eligible,
    split_mask,
    word_count_for,
)
from repro.machines import MACHINE_NAMES, get_machine

np = pytest.importorskip("numpy")

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="packed layout requires numpy"
)


class TestWordHelpers:
    def test_word_count_for(self):
        assert word_count_for(0) == 1
        assert word_count_for(1) == 1
        assert word_count_for(64) == 1
        assert word_count_for(65) == 2
        assert word_count_for(256) == 4
        assert word_count_for(257) == 5

    def test_split_and_join_round_trip(self):
        mask = (1 << 200) | (1 << 64) | 0b1011
        limbs = split_mask(mask, 4)
        assert len(limbs) == 4
        assert all(0 <= limb < 2**64 for limb in limbs)
        assert join_words(limbs) == mask


class TestPackedRUMap:
    def test_is_a_ru_map(self):
        state = PackedRUMap()
        assert isinstance(state, RUMap)

    def test_negative_cycle_reservations(self):
        state = PackedRUMap()
        state.reserve(-5, 0b11)
        state.reserve(3, 0b100)
        assert not state.is_free(-5, 0b01)
        assert state.is_free(-5, 0b100)
        gathered = state.gather(np.array([[-5], [3], [-7]]))
        assert gathered[0, 0, 0] == 0b11
        assert gathered[1, 0, 0] == 0b100
        assert gathered[2, 0, 0] == 0  # untouched cycle reads as free

    def test_double_reserve_error_message_matches_plain(self):
        plain, packed = RUMap(), PackedRUMap()
        for state in (plain, packed):
            state.reserve(2, 0b110)
        with pytest.raises(SchedulingError) as plain_err:
            plain.reserve(2, 0b010)
        with pytest.raises(SchedulingError) as packed_err:
            packed.reserve(2, 0b010)
        assert str(packed_err.value) == str(plain_err.value)
        assert "double reservation at cycle 2" in str(packed_err.value)

    def test_over_release_error_message_matches_plain(self):
        plain, packed = RUMap(), PackedRUMap()
        for state in (plain, packed):
            state.reserve(0, 0b1)
        with pytest.raises(SchedulingError) as plain_err:
            plain.release(0, 0b11)
        with pytest.raises(SchedulingError) as packed_err:
            packed.release(0, 0b11)
        assert str(packed_err.value) == str(plain_err.value)
        assert "release of unreserved resources" in str(packed_err.value)

    def test_failed_reserve_leaves_shadow_consistent(self):
        state = PackedRUMap()
        state.reserve(1, 0b1)
        with pytest.raises(SchedulingError):
            state.reserve(1, 0b1)
        assert state.gather(np.array([1]))[0, 0] == 0b1

    def test_release_returns_cycle_to_zero(self):
        state = PackedRUMap()
        state.reserve(4, 0b101)
        state.release(4, 0b101)
        assert state.gather(np.array([4]))[0, 0] == 0
        assert state == RUMap()

    def test_copy_is_independent(self):
        state = PackedRUMap()
        state.reserve(0, 0b1)
        clone = state.copy()
        clone.reserve(1, 0b10)
        assert state.is_free(1, 0b10)
        assert not clone.is_free(1, 0b10)
        assert clone.gather(np.array([0]))[0, 0] == 0b1

    def test_clear_resets_shadow(self):
        state = PackedRUMap()
        state.reserve(7, 0b1)
        state.clear()
        assert state == RUMap()
        assert state.gather(np.array([7]))[0, 0] == 0

    def test_multiword_masks(self):
        state = PackedRUMap(words_per_cycle=3)
        mask = (1 << 130) | (1 << 65) | 1
        state.reserve(0, mask)
        row = state.gather(np.array([0]))[0]
        assert join_words(int(w) for w in row) == mask

    def test_equality_with_plain_ru_map(self):
        plain, packed = RUMap(), PackedRUMap()
        for state in (plain, packed):
            state.reserve(0, 0b1)
            state.reserve(9, 0b100)
        assert packed == plain
        assert plain == packed

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-8, max_value=16),
                st.integers(min_value=1, max_value=255),
            ),
            max_size=40,
        )
    )
    def test_shadow_matches_dict_under_random_sequences(self, moves):
        """The array mirror and the dict agree after any op sequence."""
        reference, packed = RUMap(), PackedRUMap()
        for cycle, mask in moves:
            if reference.is_free(cycle, mask):
                reference.reserve(cycle, mask)
                packed.reserve(cycle, mask)
            else:
                # Release whatever overlap is actually held, if the
                # full mask is held; otherwise the op is a no-op.
                held = reference._words.get(cycle, 0)
                if held & mask == mask:
                    reference.release(cycle, mask)
                    packed.release(cycle, mask)
        assert packed == reference
        probe = np.arange(-10, 20)
        gathered = packed.gather(probe)
        for offset, cycle in enumerate(probe.tolist()):
            assert int(gathered[offset, 0]) == \
                reference._words.get(cycle, 0)


class TestModuloPackedRUMap:
    def test_is_a_modulo_ru_map(self):
        state = ModuloPackedRUMap(4)
        assert isinstance(state, ModuloRUMap)
        assert state.ii == 4

    def test_rejects_bad_ii_like_plain(self):
        with pytest.raises(SchedulingError, match="initiation interval"):
            ModuloPackedRUMap(0)

    @pytest.mark.parametrize("ii", [1, 2, 3, 7])
    def test_wrap_parity_with_plain(self, ii):
        plain, packed = ModuloRUMap(ii), ModuloPackedRUMap(ii)
        moves = [(-3, 0b1), (5, 0b10), (ii + 1, 0b100), (2 * ii, 0b1000)]
        for cycle, mask in moves:
            if plain.is_free(cycle, mask):
                plain.reserve(cycle, mask)
                packed.reserve(cycle, mask)
        assert packed == plain
        probe = np.arange(-2 * ii, 3 * ii + 1)
        gathered = packed.gather(probe)
        for offset, cycle in enumerate(probe.tolist()):
            assert int(gathered[offset, 0]) == \
                plain._words.get(cycle % ii, 0)

    def test_gather_wraps_negative_cycles(self):
        state = ModuloPackedRUMap(3)
        state.reserve(0, 0b1)
        gathered = state.gather(np.array([-3, -6, 3, 0]))
        assert all(int(word) == 0b1 for word in gathered[:, 0])


class TestPackedLayout:
    def test_paper_machines_are_eligible(self):
        for name in MACHINE_NAMES:
            compiled = create_engine("bitvector", get_machine(name)) \
                .compiled
            assert packing_eligible(compiled), name
            layout = packed_layout(compiled)
            assert layout is not None
            assert layout.word_count == 1

    def test_layout_is_cached_per_compiled(self):
        compiled = create_engine(
            "bitvector", get_machine("K5")
        ).compiled
        assert packed_layout(compiled) is packed_layout(compiled)

    def test_wide_machine_falls_back_to_scalar(self):
        """A machine past the word budget packs to None everywhere."""
        table = ResourceTable()
        names = [f"r{i}" for i in range(64 * PACKED_WORD_BUDGET + 1)]
        table.declare_many(names)
        wide = table.lookup(names[-1])
        tree = OrTree(
            (ReservationTable((ResourceUsage(0, wide),)),), name="OT"
        )
        mdes = Mdes(
            name="Wide",
            resources=table,
            op_classes={"w": OperationClass("w", tree, latency=1)},
            opcode_map={"W": "w"},
        )
        mdes.validate()
        compiled = compile_mdes(mdes, bitvector=True)
        assert not packing_eligible(compiled)
        assert pack_mdes(compiled) is None
        assert packed_layout(compiled) is None
        # The engine still works -- scalar path, vectorization off.
        from repro.engine.table import TableEngine

        engine = TableEngine(compiled)
        assert not engine.vectorized
        state = engine.new_state()
        handle = engine.try_reserve_many(state, "w", range(0, 4))
        assert handle is not None and handle.cycle == 0

    def test_evaluate_window_matches_scalar_walk(self):
        machine = get_machine("SuperSPARC")
        engine = create_engine("bitvector", machine)
        layout = packed_layout(engine.compiled)
        class_name = next(iter(layout.constraints))
        packed_constraint = layout.constraints[class_name]

        scalar = create_engine("bitvector", machine)
        scalar_state = scalar.new_state()
        state = PackedRUMap(layout.word_count)
        # Dirty both states identically through the scalar path.
        for cycle in (0, 1, 3):
            for target in (scalar_state, state):
                reservation = scalar.try_reserve(
                    target, class_name, cycle
                )
                assert reservation is not None

        cycles = np.arange(-2, 8, dtype=np.int64)
        success, opts, checks, _ = evaluate_window(
            packed_constraint, state, cycles
        )
        for offset, cycle in enumerate(cycles.tolist()):
            probe = scalar.try_reserve(scalar_state, class_name, cycle)
            assert (probe is not None) == bool(success[offset])
            if probe is not None:
                scalar.release(probe)


class TestSharedWireFormat:
    @pytest.mark.parametrize("backend", ["bitvector", "eichenberger"])
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_round_trip_preserves_scheduling_behaviour(
        self, machine_name, backend
    ):
        from repro.engine.table import TableEngine
        from tests.conftest import shared_workload
        from repro.scheduler import schedule_workload

        machine, blocks = shared_workload(machine_name, 80, 5)
        compiled = create_engine(backend, machine, stage=4).compiled
        blob = compiled_to_shared_bytes(compiled)
        clone = compiled_from_shared_buffer(blob)

        original = schedule_workload(
            machine, None, blocks, keep_schedules=True,
            engine=TableEngine(compiled, name=backend),
        )
        rebuilt = schedule_workload(
            machine, None, blocks, keep_schedules=True,
            engine=TableEngine(clone, name=backend),
        )
        assert [s.signature() for s in rebuilt.schedules] == \
            [s.signature() for s in original.schedules]
        assert rebuilt.stats == original.stats

    def test_round_trip_preserves_identity_sharing(self):
        compiled = create_engine(
            "bitvector", get_machine("SuperSPARC")
        ).compiled
        clone = compiled_from_shared_buffer(
            compiled_to_shared_bytes(compiled)
        )

        def unique_options(description):
            seen = set()
            from repro.lowlevel.compiled import CompiledAndOrTree

            for constraint in description.constraints.values():
                trees = (
                    constraint.or_trees
                    if isinstance(constraint, CompiledAndOrTree)
                    else (constraint,)
                )
                for tree in trees:
                    for option in tree.options:
                        seen.add(id(option))
            return len(seen)

        assert unique_options(clone) == unique_options(compiled)

    def test_clone_carries_zero_copy_packed_layout(self):
        compiled = create_engine(
            "bitvector", get_machine("K5")
        ).compiled
        blob = bytearray(compiled_to_shared_bytes(compiled))
        clone = compiled_from_shared_buffer(blob)
        layout = packed_layout(clone)
        assert layout is not None
        # The layout's arrays are views into the buffer, not copies.
        some_tree = next(iter(layout.constraints.values())).trees[0]
        assert some_tree.times.base is not None

    def test_metadata_survives(self):
        compiled = create_engine(
            "bitvector", get_machine("Pentium")
        ).compiled
        clone = compiled_from_shared_buffer(
            compiled_to_shared_bytes(compiled)
        )
        assert clone.bitvector == compiled.bitvector
        assert clone.source.name == compiled.source.name
        assert clone.source.opcode_map == compiled.source.opcode_map
        assert set(clone.constraints) == set(compiled.constraints)
        assert clone.source.resources.names == \
            compiled.source.resources.names
        assert set(clone.source.bypasses) == set(compiled.source.bypasses)
        for key, bypass in compiled.source.bypasses.items():
            assert clone.source.bypasses[key].latency == bypass.latency

    def test_rejects_torn_magic(self):
        compiled = create_engine(
            "bitvector", get_machine("K5")
        ).compiled
        blob = bytearray(compiled_to_shared_bytes(compiled))
        blob[0] ^= 0xFF
        with pytest.raises(ValueError, match="packed shared description"):
            compiled_from_shared_buffer(bytes(blob))
