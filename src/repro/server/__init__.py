"""The long-running scheduling service (``repro serve``).

The paper's premise is compile once, use many times; every CLI
invocation before this package rebuilt the warm caches per process.
``repro.server`` keeps one process up instead: POST a workload +
machine + backend, get a schedule, with every request served out of
one process-wide warm description cache, concurrent requests
micro-batched through the fault-tolerant batch pool, and the
observability/resilience layers wired to ``/metrics`` and
``/healthz``.

The app is a dependency-free ASGI 3 callable::

    from repro.server import ServerConfig, create_app

    app = create_app(ServerConfig(cache_dir=".mdes-cache"))

Host it with the bundled stdlib server (``repro serve`` /
:func:`repro.server.http.serve`) or any external ASGI server.  Tests
drive it in-process with :class:`repro.server.testing.AsgiClient`.

Endpoints:

=======================  ====================================================
``GET  /healthz``        Liveness + admission, pool, cache, resilience state
``GET  /metrics``        Prometheus exposition of the ``repro.obs`` registry
``GET  /v1/machines``    Registered machine names
``GET  /v1/engines``     Registered backends and their capabilities
``POST /v1/schedule``    One workload -> one schedule (micro-batched)
``POST /v1/schedule/batch``  One dedicated fault-tolerant batch run
=======================  ====================================================
"""

from repro.server.app import App, create_app
from repro.server.batcher import MicroBatcher
from repro.server.lifecycle import ServerConfig, ServerState
from repro.server.queue import Admission, QueuePolicy

__all__ = [
    "Admission",
    "App",
    "MicroBatcher",
    "QueuePolicy",
    "ServerConfig",
    "ServerState",
    "create_app",
]
