"""Tests for zero-first usage-check sorting (section 7)."""

from repro.core.tables import ReservationTable
from repro.core.usage import ResourceUsage
from repro.transforms.usage_sort import sort_option_usages, sort_usage_checks


def u(resource, time):
    return ResourceUsage(time, resource)


class TestSortOptionUsages:
    def test_zero_first(self, resources):
        a, b, c = (resources.lookup(n) for n in ("D0", "D1", "M"))
        option = ReservationTable((u(a, 2), u(b, 0), u(c, 1)))
        ordered = sort_option_usages(option)
        assert [usage.time for usage in ordered.usages] == [0, 1, 2]

    def test_stable_within_time(self, resources):
        a, b = resources.lookup("D0"), resources.lookup("D1")
        option = ReservationTable((u(b, 0), u(a, 0)))
        ordered = sort_option_usages(option)
        assert [usage.resource.name for usage in ordered.usages] == [
            "D1", "D0"
        ]

    def test_unchanged_option_is_same_object(self, resources):
        a = resources.lookup("D0")
        option = ReservationTable((u(a, 0), u(a, 1)))
        assert sort_option_usages(option) is option

    def test_custom_preferred_time(self, resources):
        a, b = resources.lookup("D0"), resources.lookup("D1")
        option = ReservationTable((u(a, 0), u(b, 3)))
        ordered = sort_option_usages(option, preferred_time=3)
        assert [usage.time for usage in ordered.usages] == [3, 0]


class TestSortUsageChecks:
    def test_whole_mdes(self, toy_mdes):
        from repro.core.expand import as_or_tree
        from repro.transforms.time_shift import shift_usage_times

        shifted = sort_usage_checks(shift_usage_times(toy_mdes))
        for constraint in shifted.constraints():
            for option in as_or_tree(constraint).options:
                times = [usage.time for usage in option.usages]
                zero_prefix = [t for t in times if t == 0]
                assert times[: len(zero_prefix)] == zero_prefix

    def test_schedule_preserved(self, small_suite):
        assert small_suite.verify_schedule_invariance("K5")
