"""Tests for the VLIW retargeting demo machine (Cydra_lite)."""

import pytest

from repro.transforms.pipeline import staged_mdes
from repro.ir.block import BasicBlock
from repro.ir.operation import Operation
from repro.lowlevel.compiled import compile_mdes
from repro.machines import get_machine
from repro.machines.registry import EXTRA_MACHINE_NAMES
from repro.scheduler import ListScheduler, schedule_workload
from repro.workloads import WorkloadConfig, generate_blocks


@pytest.fixture(scope="module")
def vliw():
    machine = get_machine("Cydra_lite")
    return machine, compile_mdes(machine.build_andor(), bitvector=True)


class TestDescription:
    def test_registered_as_extra(self):
        assert "Cydra_lite" in EXTRA_MACHINE_NAMES

    def test_validates(self, vliw):
        machine, _ = vliw
        machine.build().validate()

    def test_option_counts(self, vliw):
        machine, _ = vliw
        mdes = machine.build()
        assert mdes.op_class("ialu").option_count() == 4 * 2 * 3
        assert mdes.op_class("ialu_fwd").option_count() == 4 * 3
        assert mdes.op_class("load").option_count() == 4 * 3
        assert mdes.op_class("branch").option_count() == 4

    def test_forwarding_bypass_declared(self, vliw):
        machine, _ = vliw
        bypass = machine.build().bypass_for("ialu", "ialu")
        assert bypass is not None
        assert bypass.latency == 0
        assert bypass.substitute_class == "ialu_fwd"


class TestScheduling:
    def test_four_wide_issue(self, vliw):
        machine, compiled = vliw
        ops = [
            Operation(i, "ADD", (f"r{i}",), (f"li{i}",)) for i in range(2)
        ] + [
            Operation(2, "LD", ("r2",), ("li9",), is_load=True),
            Operation(3, "FADD", ("f0",), ("li3", "li4")),
        ]
        schedule = ListScheduler(machine, compiled).schedule_block(
            BasicBlock("B", ops)
        )
        assert len(set(schedule.times.values())) == 1  # all in cycle 0

    def test_writeback_bus_limits_results(self, vliw):
        """Only three results per cycle despite four issue slots."""
        machine, compiled = vliw
        ops = [
            Operation(i, "ADD", (f"r{i}",), (f"li{i}",)) for i in range(4)
        ]
        schedule = ListScheduler(machine, compiled).schedule_block(
            BasicBlock("B", ops)
        )
        # Two ALUs anyway; but even with slots free, at most 3 WBs/cycle:
        from collections import Counter

        per_cycle = Counter(schedule.times.values())
        assert max(per_cycle.values()) <= 3

    def test_forwarded_pair_same_cycle(self, vliw):
        machine, compiled = vliw
        ops = [
            Operation(0, "ADD", ("r1",), ("li0",)),
            Operation(1, "SUB", ("r2",), ("r1",)),
        ]
        schedule = ListScheduler(machine, compiled).schedule_block(
            BasicBlock("B", ops)
        )
        assert schedule.times[1] == schedule.times[0]
        assert schedule.classes[1] == "ialu_fwd"

    def test_address_interlock(self, vliw):
        machine, compiled = vliw
        ops = [
            Operation(0, "ADD", ("r1",), ("li0",)),
            Operation(1, "LD", ("r2",), ("r1",), is_load=True),
        ]
        schedule = ListScheduler(machine, compiled).schedule_block(
            BasicBlock("B", ops)
        )
        assert schedule.times[1] >= schedule.times[0] + 2


class TestToolchain:
    def test_full_pipeline_preserves_schedules(self, vliw):
        machine, _ = vliw
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=500))
        signatures = set()
        for stage, bitvector in ((0, False), (4, True)):
            compiled = compile_mdes(
                staged_mdes(machine.build_andor(), stage),
                bitvector=bitvector,
            )
            run = schedule_workload(machine, compiled, blocks,
                                    keep_schedules=True)
            signatures.add(run.signature())
        assert len(signatures) == 1

    def test_andor_advantage_holds_on_new_target(self, vliw):
        machine, _ = vliw
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=800))
        or_run = schedule_workload(
            machine, compile_mdes(machine.build_or(), bitvector=False),
            blocks,
        )
        andor_run = schedule_workload(
            machine,
            compile_mdes(
                staged_mdes(machine.build_andor(), 4), bitvector=True
            ),
            blocks,
        )
        assert (
            andor_run.stats.checks_per_attempt
            < or_run.stats.checks_per_attempt / 2
        )

    def test_lint_is_clean(self, vliw):
        from repro.hmdes.validator import lint_mdes

        machine, _ = vliw
        warnings = [
            d for d in lint_mdes(machine.build())
            if d.severity == "warning"
        ]
        assert not warnings  # a freshly written description has no scars

    def test_hmdes_roundtrip(self, vliw):
        from repro.hmdes import load_mdes, write_mdes

        machine, _ = vliw
        mdes = machine.build()
        again = load_mdes(write_mdes(mdes))
        assert again.bypasses == mdes.bypasses
        for name in mdes.op_classes:
            assert (
                again.op_class(name).constraint
                == mdes.op_class(name).constraint
            )
