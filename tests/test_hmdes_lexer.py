"""Tests for the HMDES tokenizer."""

import pytest

from repro.errors import HmdesSyntaxError
from repro.hmdes.lexer import EOF, IDENT, INT, PUNCT, TokenStream, tokenize


class TestTokenize:
    def test_kinds(self):
        tokens = tokenize("abc 12 -3 { } ; .. [ ] : ,")
        kinds = [t.kind for t in tokens]
        assert kinds == [IDENT, INT, INT] + [PUNCT] * 8 + [EOF]

    def test_negative_integer_single_token(self):
        tokens = tokenize("-42")
        assert tokens[0].kind == INT
        assert tokens[0].value == "-42"

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 4]

    def test_bad_character_raises_with_line(self):
        with pytest.raises(HmdesSyntaxError, match="line 2"):
            tokenize("ok\n@")

    def test_range_vs_punct(self):
        tokens = tokenize("0..3")
        assert [t.value for t in tokens[:3]] == ["0", "..", "3"]


class TestTokenStream:
    def test_expect_and_accept(self):
        stream = TokenStream(tokenize("a ; b"))
        assert stream.expect(IDENT).value == "a"
        assert stream.accept(PUNCT, ";")
        assert not stream.accept(PUNCT, ";")
        assert stream.at(IDENT, "b")

    def test_expect_mismatch_raises(self):
        stream = TokenStream(tokenize("a"))
        with pytest.raises(HmdesSyntaxError, match="expected"):
            stream.expect(INT)

    def test_eof_is_sticky(self):
        stream = TokenStream(tokenize(""))
        assert stream.advance().kind == EOF
        assert stream.advance().kind == EOF
