"""Span-level profiling: self-time, hot spans, flamegraphs, memory.

The tracer records *inclusive* wall seconds per span -- a parent's time
contains all of its children's.  For "where does the time actually go"
questions the useful figure is **self time** (exclusive seconds): the
span's inclusive time minus the inclusive time of its direct children,
clamped at zero when the clock reads of nested spans overlap by a few
microseconds.  Self time telescopes: summed over a subtree it
reconstructs the root's inclusive time exactly, which is the acceptance
bar `repro trace --hot` is held to.

Three consumers:

* :func:`hot_spans` / :func:`format_hot_spans` -- per-name aggregation
  (calls, inclusive, self) sorted by self time; the ``repro trace
  --hot`` table.
* :func:`flamegraph` -- collapsed-stack export in the de-facto standard
  ``root;child;leaf <count>`` format consumed by flamegraph.pl,
  speedscope, and inferno.  Counts are integer self-time microseconds;
  identical stacks are merged, so the output is invariant under the
  worker-count-invariant span merge of the batch service.
* :func:`memory_phases` -- per-name peak/net ``tracemalloc`` bytes from
  spans opened with ``memory=True`` (see :func:`repro.obs.enable_memory`).

All entry points accept a :class:`~repro.obs.trace.Tracer` or a list of
root :class:`~repro.obs.trace.Span` trees, so they work equally on the
live process trace and on a JSONL trace file read back from disk.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Union

from repro.obs.trace import Span, Tracer

Roots = Union[Tracer, Sequence[Span]]


def _as_roots(roots: Roots) -> List[Span]:
    if isinstance(roots, Tracer):
        return list(roots.roots)
    return list(roots)


def self_seconds(span: Span) -> float:
    """Exclusive seconds: inclusive minus direct children, floored at 0."""
    return max(0.0, span.seconds - sum(c.seconds for c in span.children))


# ----------------------------------------------------------------------
# Hot-span table
# ----------------------------------------------------------------------


class HotSpan:
    """Aggregate of every span sharing one name."""

    __slots__ = ("name", "calls", "inclusive_seconds", "self_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.inclusive_seconds = 0.0
        self.self_seconds = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "calls": self.calls,
            "inclusive_seconds": self.inclusive_seconds,
            "self_seconds": self.self_seconds,
        }


def hot_spans(roots: Roots) -> List[HotSpan]:
    """Per-name (calls, inclusive, self) aggregates, hottest self first.

    Ties break on name so the table is deterministic across runs with
    identical timings (e.g. traces read back from a file).
    """
    table: Dict[str, HotSpan] = {}
    for root in _as_roots(roots):
        for span in root.walk():
            entry = table.get(span.name)
            if entry is None:
                entry = table[span.name] = HotSpan(span.name)
            entry.calls += 1
            entry.inclusive_seconds += span.seconds
            entry.self_seconds += self_seconds(span)
    return sorted(
        table.values(), key=lambda e: (-e.self_seconds, e.name)
    )


def format_hot_spans(roots: Roots, limit: int = 20) -> str:
    """The ``repro trace --hot`` view: an aligned self-time table."""
    entries = hot_spans(roots)[:limit]
    if not entries:
        return "(no spans recorded)"
    rows = [("span", "calls", "self_ms", "incl_ms", "self_%")]
    total_self = sum(e.self_seconds for e in entries) or 1.0
    for e in entries:
        rows.append((
            e.name,
            str(e.calls),
            f"{e.self_seconds * 1000:.3f}",
            f"{e.inclusive_seconds * 1000:.3f}",
            f"{100.0 * e.self_seconds / total_self:.1f}",
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for row in rows:
        lines.append("  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)
        ))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Collapsed-stack flamegraph export
# ----------------------------------------------------------------------


def _frame(name: str) -> str:
    """A span name as a flamegraph frame: the collapsed-stack format
    reserves ``;`` (stack separator) and space (count separator)."""
    return name.replace(";", ":").replace(" ", "_")


def _collapse(span: Span, prefix: str, out: Dict[str, int]) -> None:
    stack = f"{prefix};{_frame(span.name)}" if prefix else _frame(span.name)
    micros = int(round(self_seconds(span) * 1e6))
    if micros > 0:
        out[stack] = out.get(stack, 0) + micros
    for child in span.children:
        _collapse(child, stack, out)


def flamegraph_lines(roots: Roots) -> List[str]:
    """Collapsed stacks (``a;b;c <microseconds>``), one per line.

    Self-time microseconds per unique stack; identical stacks merge, and
    lines are sorted so the export is deterministic.  Zero-weight stacks
    (pure pass-through parents) are dropped, as flamegraph.pl would
    render them with zero width anyway.
    """
    out: Dict[str, int] = {}
    for root in _as_roots(roots):
        _collapse(root, "", out)
    return [f"{stack} {count}" for stack, count in sorted(out.items())]


def flamegraph(roots: Roots) -> str:
    """The full collapsed-stack document for ``repro trace --flamegraph``."""
    return "\n".join(flamegraph_lines(roots))


def parse_flamegraph(text: str) -> Dict[str, int]:
    """Parse collapsed-stack text back to ``{stack: count}``.

    The inverse of :func:`flamegraph`; exists so tests (and tooling)
    hold the export to "parses back", not "looks right".
    """
    stacks: Dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack:
            raise ValueError(f"malformed collapsed-stack line: {line!r}")
        stacks[stack] = stacks.get(stack, 0) + int(count)
    return stacks


# ----------------------------------------------------------------------
# Memory spans
# ----------------------------------------------------------------------


def memory_phases(roots: Roots) -> Dict[str, Dict[str, int]]:
    """Per-name tracemalloc figures from ``memory=True`` spans.

    Returns ``{name: {"spans": n, "peak_bytes": max, "net_bytes": sum}}``
    for every span carrying ``mem_peak_bytes``; empty when memory
    profiling was off (the common case).
    """
    table: Dict[str, Dict[str, int]] = {}
    for root in _as_roots(roots):
        for span in root.walk():
            if "mem_peak_bytes" not in span.attrs:
                continue
            entry = table.setdefault(
                span.name, {"spans": 0, "peak_bytes": 0, "net_bytes": 0}
            )
            entry["spans"] += 1
            entry["peak_bytes"] = max(
                entry["peak_bytes"], int(span.attrs["mem_peak_bytes"])
            )
            entry["net_bytes"] += int(span.attrs.get("mem_net_bytes", 0))
    return table


def format_memory(roots: Roots) -> str:
    """The ``repro trace --memory`` view: per-span-name peak/net bytes."""
    table = memory_phases(roots)
    if not table:
        return (
            "(no memory spans recorded -- enable with REPRO_OBS_MEMORY=1)"
        )
    rows = [("span", "spans", "peak_kib", "net_kib")]
    for name in sorted(table):
        entry = table[name]
        rows.append((
            name,
            str(entry["spans"]),
            f"{entry['peak_bytes'] / 1024:.1f}",
            f"{entry['net_bytes'] / 1024:+.1f}",
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    return "\n".join(
        "  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)
        )
        for row in rows
    )


__all__ = [
    "HotSpan",
    "self_seconds",
    "hot_spans",
    "format_hot_spans",
    "flamegraph",
    "flamegraph_lines",
    "parse_flamegraph",
    "memory_phases",
    "format_memory",
]
