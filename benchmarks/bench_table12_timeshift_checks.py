"""Table 12: checks before/after time shifting + zero-first sorting."""

import pytest
from conftest import write_result

from repro.machines import get_machine
from repro.scheduler import schedule_workload


def test_table12_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.table12())
    for row in suite.table12_rows():
        # Near the ideal of one check per option (paper: 1.01-1.12).
        assert row[4] <= 1.25
        assert row[8] <= 1.25
    write_result(results_dir, "table12_timeshift_checks.txt", text)


@pytest.mark.parametrize("stage", [1, 3], ids=["before", "after"])
def test_table12_bench_supersparc_or(
    benchmark, kernel_workloads, kernel_compiled, stage
):
    """Time SuperSPARC OR-form scheduling before/after the transform."""
    machine = get_machine("SuperSPARC")
    compiled = kernel_compiled("SuperSPARC", "or", stage, True)
    blocks = kernel_workloads("SuperSPARC")
    result = benchmark(schedule_workload, machine, compiled, blocks)
    assert result.total_ops > 0
