"""LMDES files: the serialized low-level representation.

The paper's tooling translates the high-level description once and ships
a low-level file the compiler loads quickly, with all sharing "entirely
specified by the external MDES representation, in order to minimize the
time required to load the MDES into memory" (section 4).  This module is
that file format: JSON with explicit tables of unique options and
OR-trees, referenced by index, so shared structure loads as shared
objects without any interning pass.

``save_lmdes`` serializes a compiled description; ``load_lmdes``
reconstructs an equivalent :class:`CompiledMdes` (including a usable
in-memory :class:`Mdes`).  Check behaviour, sizes, and sharing topology
round-trip exactly; within one merged bit-vector check word the original
textual usage order is canonicalized to bit order.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.core.mdes import Bypass, Mdes, OperationClass
from repro.core.resource import ResourceTable
from repro.core.tables import AndOrTree, OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.errors import MdesError
from repro.lowlevel.compiled import (
    CompiledAndOrTree,
    CompiledMdes,
    CompiledOrTree,
    compile_mdes,
)

#: Format version written into every file.
LMDES_VERSION = 1


def save_lmdes(compiled: CompiledMdes) -> str:
    """Serialize a compiled description to LMDES JSON text."""
    source = compiled.source
    option_index: Dict[int, int] = {}
    options: List[List[Tuple[int, int]]] = []
    or_index: Dict[int, int] = {}
    or_trees: List[List[int]] = []

    def intern_option(option) -> int:
        key = id(option)
        if key not in option_index:
            option_index[key] = len(options)
            options.append([list(pair) for pair in option.checks])
        return option_index[key]

    def intern_or(tree) -> int:
        key = id(tree)
        if key not in or_index:
            members = [intern_option(option) for option in tree.options]
            or_index[key] = len(or_trees)
            or_trees.append(members)
        return or_index[key]

    andor_index: Dict[int, int] = {}
    andor_trees: List[List[int]] = []

    def intern_andor(tree) -> int:
        key = id(tree)
        if key not in andor_index:
            members = [intern_or(child) for child in tree.or_trees]
            andor_index[key] = len(andor_trees)
            andor_trees.append(members)
        return andor_index[key]

    def encode_constraint(constraint) -> dict:
        if isinstance(constraint, CompiledAndOrTree):
            return {"kind": "andor", "tree": intern_andor(constraint)}
        return {"kind": "or", "tree": intern_or(constraint)}

    constraints = {
        class_name: encode_constraint(constraint)
        for class_name, constraint in compiled.constraints.items()
    }
    # Dead information is serialized too: it occupies compiler memory
    # until dead-code removal deletes it (section 5), and the size
    # tables depend on that.
    unused = {
        tree_name: encode_constraint(constraint)
        for tree_name, constraint in compiled.unused.items()
    }

    document = {
        "format": "lmdes",
        "version": LMDES_VERSION,
        "machine": source.name,
        "bitvector": compiled.bitvector,
        "resources": source.resources.names,
        "options": options,
        "or_trees": or_trees,
        "andor_trees": andor_trees,
        "constraints": constraints,
        "unused": unused,
        "latencies": {
            name: op_class.latency
            for name, op_class in source.op_classes.items()
        },
        "read_times": {
            name: op_class.read_time
            for name, op_class in source.op_classes.items()
            if op_class.read_time
        },
        "bypasses": [
            [producer, consumer, bypass.latency, bypass.substitute_class]
            for (producer, consumer), bypass in source.bypasses.items()
        ],
        "opcode_map": dict(source.opcode_map),
    }
    return json.dumps(document, indent=1)


def load_lmdes(text: str) -> CompiledMdes:
    """Load LMDES JSON text into a compiled description."""
    document = json.loads(text)
    if document.get("format") != "lmdes":
        raise MdesError("not an LMDES document")
    if document.get("version") != LMDES_VERSION:
        raise MdesError(
            f"unsupported LMDES version {document.get('version')!r}"
        )

    resources = ResourceTable()
    by_bit = {}
    for name in document["resources"]:
        resource = resources.declare(name)
        by_bit[resource.index] = resource

    def decode_option(pairs) -> ReservationTable:
        usages = []
        for time, mask in pairs:
            bit = 0
            while mask:
                if mask & 1:
                    usages.append(ResourceUsage(time, by_bit[bit]))
                mask >>= 1
                bit += 1
        return ReservationTable(tuple(usages))

    decoded_options = [
        decode_option(pairs) for pairs in document["options"]
    ]
    decoded_trees = [
        OrTree(tuple(decoded_options[index] for index in members))
        for members in document["or_trees"]
    ]

    decoded_andor = [
        AndOrTree(tuple(decoded_trees[index] for index in members))
        for members in document.get("andor_trees", [])
    ]

    latencies = document["latencies"]
    read_times = document.get("read_times", {})
    op_classes: Dict[str, OperationClass] = {}
    for class_name, spec in document["constraints"].items():
        constraint = (
            decoded_andor[spec["tree"]]
            if spec["kind"] == "andor"
            else decoded_trees[spec["tree"]]
        )
        op_classes[class_name] = OperationClass(
            class_name,
            constraint,
            latencies[class_name],
            read_times.get(class_name, 0),
        )

    def decode_constraint(spec):
        if spec["kind"] == "andor":
            return decoded_andor[spec["tree"]]
        return decoded_trees[spec["tree"]]

    mdes = Mdes(
        name=document["machine"],
        resources=resources,
        op_classes=op_classes,
        opcode_map=dict(document["opcode_map"]),
        unused_trees={
            tree_name: decode_constraint(spec)
            for tree_name, spec in document.get("unused", {}).items()
        },
        bypasses={
            (producer, consumer): Bypass(latency, substitute)
            for producer, consumer, latency, substitute
            in document.get("bypasses", [])
        },
    )
    mdes.validate()
    return compile_mdes(mdes, bitvector=document["bitvector"])
