"""The full transformation pipeline, in paper order.

Section 9 evaluates the aggregate effect of every transformation.  The
order used here follows the paper's presentation:

1. redundancy elimination (section 5),
2. dominated-option removal (section 5),
3. usage-time shifting (section 7),
4. usage-check sorting (section 7),
5. common-usage factoring (section 8),
6. AND/OR sub-tree ordering (section 8),
7. a final sharing pass, so OR-trees that factoring rebuilt per-parent
   collapse back to single shared copies.

Bit-vector packing (section 6) is not a tree transformation -- it is a
compilation mode (see :func:`repro.lowlevel.compile_mdes`), so the
pipeline leaves it to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro import obs
from repro.core.mdes import Mdes
from repro.transforms.factor import factor_common_usages
from repro.transforms.option_elim import remove_dominated_options
from repro.transforms.redundancy import eliminate_redundancy
from repro.transforms.time_shift import shift_usage_times
from repro.transforms.tree_sort import sort_and_or_trees
from repro.transforms.usage_sort import sort_usage_checks

#: The pipeline stages, as (name, transform) pairs in application order.
PIPELINE_STAGES: Tuple[Tuple[str, Callable[[Mdes], Mdes]], ...] = (
    ("redundancy-elimination", eliminate_redundancy),
    ("dominated-option-removal", remove_dominated_options),
    ("usage-time-shift", shift_usage_times),
    ("usage-check-sort", sort_usage_checks),
    ("common-usage-factoring", factor_common_usages),
    ("and-or-tree-sort", sort_and_or_trees),
    ("final-sharing", eliminate_redundancy),
)


def mdes_footprint(mdes: Mdes) -> Dict[str, int]:
    """Representation-size counters for one description.

    The same quantities the paper's size tables track: distinct
    constraint trees, stored reservation-table options (Table 6 column),
    and stored resource usages (the dominant term of the byte-level
    layout).  Recorded as span attributes around every transform so each
    compile carries a live reproduction of the Table 7/8/13 effects.
    """
    options = 0
    usages = 0
    for tree in mdes.or_trees():
        for option in tree.options:
            options += 1
            usages += len(option.usages)
    return {
        "trees": mdes.tree_count(),
        "options": options,
        "usages": usages,
    }


def _traced(name: str, transform: Callable[[Mdes], Mdes],
            mdes: Mdes, *args) -> Mdes:
    """Run one transform under a ``transform:<name>`` span.

    The span records the before/after footprint and the deltas; while
    observability is disabled this is the bare transform call plus one
    flag test (no footprint walk).
    """
    if not obs.enabled():
        return transform(mdes, *args)
    before = mdes_footprint(mdes)
    with obs.span(f"transform:{name}") as sp:
        result = transform(mdes, *args)
    after = mdes_footprint(result)
    sp.set(
        options_before=before["options"],
        options_after=after["options"],
        options_delta=after["options"] - before["options"],
        usages_before=before["usages"],
        usages_after=after["usages"],
        usages_delta=after["usages"] - before["usages"],
        trees_before=before["trees"],
        trees_after=after["trees"],
    )
    obs.count(
        "repro_transform_runs_total",
        help="Transformation-stage executions.",
        stage=name,
    )
    obs.observe(
        "repro_transform_seconds",
        sp.seconds,
        help="Wall seconds per transformation stage.",
        stage=name,
    )
    for field in ("options", "usages"):
        obs.set_gauge(
            f"repro_transform_{field}_delta",
            after[field] - before[field],
            help=(
                f"Stored-{field} change of the last run of each "
                "transformation stage."
            ),
            stage=name,
        )
    return result


@dataclass
class PipelineResult:
    """The description after each stage (stage 0 is the input)."""

    stage_names: List[str]
    stages: List[Mdes]

    @property
    def final(self) -> Mdes:
        """The fully optimized description."""
        return self.stages[-1]

    def stage(self, name: str) -> Mdes:
        """The description as it stood after the named stage."""
        return self.stages[self.stage_names.index(name)]


def run_pipeline(
    mdes: Mdes,
    direction: str = "forward",
    stage_hook: Callable[[str, Mdes], None] = None,
) -> PipelineResult:
    """Run every stage, keeping the intermediate descriptions.

    ``direction`` selects the usage-time shift heuristic (section 7): the
    same description is automatically tuned for forward or backward list
    schedulers.

    ``stage_hook`` is called as ``stage_hook(name, result)`` after each
    stage completes; the differential verifier uses it to check, stage
    by stage, that a transform preserved the description's semantics.
    """
    names = ["input"]
    stages = [mdes]
    current = mdes
    with obs.span("transform:pipeline", direction=direction):
        for name, transform in PIPELINE_STAGES:
            if transform is shift_usage_times:
                current = _traced(name, transform, current, direction)
            else:
                current = _traced(name, transform, current)
            if stage_hook is not None:
                stage_hook(name, current)
            names.append(name)
            stages.append(current)
    return PipelineResult(names, stages)


def optimize(mdes: Mdes, direction: str = "forward") -> Mdes:
    """Fully optimize a description (all paper transformations)."""
    return run_pipeline(mdes, direction).final


#: Largest transformation stage of the paper's incremental evaluation.
FINAL_STAGE = 4


def staged_mdes(base: Mdes, stage: int) -> Mdes:
    """Apply the transformations up to ``stage`` (paper's staging).

    ======  ==========================================================
    stage   description
    ======  ==========================================================
    0       original description
    1       + redundancy elimination, dead-code removal, and
            dominated-option removal
    2       stage 1 (bit-vector packing is a compile mode; the stage
            exists so run keys can name it)
    3       + usage-time shifting and zero-first usage sorting
    4       + common-usage factoring and AND/OR-tree ordering
    ======  ==========================================================
    """
    if stage < 0 or stage > FINAL_STAGE:
        raise ValueError(f"stage must be 0..{FINAL_STAGE}, got {stage}")
    mdes = base
    with obs.span("transform:staged", stage=stage):
        if stage >= 1:
            mdes = _traced(
                "redundancy-elimination", eliminate_redundancy, mdes
            )
            mdes = _traced(
                "dominated-option-removal", remove_dominated_options, mdes
            )
        if stage >= 3:
            mdes = _traced("usage-time-shift", shift_usage_times, mdes)
            mdes = _traced("usage-check-sort", sort_usage_checks, mdes)
        if stage >= 4:
            mdes = _traced(
                "common-usage-factoring", factor_common_usages, mdes
            )
            mdes = _traced("and-or-tree-sort", sort_and_or_trees, mdes)
            mdes = _traced("final-sharing", eliminate_redundancy, mdes)
    return mdes
