"""Tests for the list scheduler."""

import pytest

from repro.ir.block import BasicBlock
from repro.ir.dependence import build_dependence_graph
from repro.ir.operation import Operation
from repro.lowlevel.compiled import compile_mdes
from repro.machines import get_machine
from repro.scheduler import ListScheduler, compute_heights, schedule_workload
from repro.scheduler.priority import compute_heights as heights_fn
from repro.workloads import WorkloadConfig, generate_blocks


@pytest.fixture(scope="module")
def sparc():
    machine = get_machine("SuperSPARC")
    return machine, compile_mdes(machine.build_andor())


def sparc_block(*ops):
    return BasicBlock("B", list(ops))


class TestHeights:
    def test_chain_heights(self, sparc):
        machine, _ = sparc
        a = Operation(0, "LD", ("r1",), ("r9",), is_load=True)
        b = Operation(1, "ADD", ("r2",), ("r1",))
        c = Operation(2, "ST", (), ("r2", "r3"), is_store=True)
        graph = build_dependence_graph(sparc_block(a, b, c),
                                       machine.latency)
        heights = heights_fn(graph)
        assert heights[2] == 0
        assert heights[1] > heights[2]
        assert heights[0] > heights[1]


class TestForwardScheduling:
    def test_dependences_respected(self, sparc):
        machine, compiled = sparc
        a = Operation(0, "LD", ("r1",), ("r9",), is_load=True)
        b = Operation(1, "ADD", ("r2",), ("r1",))
        schedule = ListScheduler(machine, compiled).schedule_block(
            sparc_block(a, b)
        )
        assert schedule.times[1] >= schedule.times[0] + 1

    def test_resource_conflict_forces_delay(self, sparc):
        """Two loads cannot share the single memory unit."""
        machine, compiled = sparc
        l1 = Operation(0, "LD", ("r1",), ("a1",), is_load=True)
        l2 = Operation(1, "LD", ("r2",), ("a2",), is_load=True)
        schedule = ListScheduler(machine, compiled).schedule_block(
            sparc_block(l1, l2)
        )
        assert schedule.times[0] != schedule.times[1]

    def test_independent_ialu_ops_pack_two_wide(self, sparc):
        machine, compiled = sparc
        ops = [
            Operation(i, "ADD", (f"r{i}",), (f"li{i}",)) for i in range(2)
        ]
        schedule = ListScheduler(machine, compiled).schedule_block(
            sparc_block(*ops)
        )
        assert schedule.times[0] == schedule.times[1]

    def test_cascaded_ialu_same_cycle(self, sparc):
        """A flow-dependent IALU pair issues in one cycle via cascading."""
        machine, compiled = sparc
        a = Operation(0, "ADD", ("r1",), ("li0",))
        b = Operation(1, "SUB", ("r2",), ("r1",))
        schedule = ListScheduler(machine, compiled).schedule_block(
            sparc_block(a, b)
        )
        assert schedule.times[1] == schedule.times[0]
        assert schedule.classes[1].startswith("cascade")

    def test_cascade_not_used_for_shift_producer(self, sparc):
        machine, compiled = sparc
        a = Operation(0, "SLL", ("r1",), ("li0",))
        b = Operation(1, "ADD", ("r2",), ("r1",))
        schedule = ListScheduler(machine, compiled).schedule_block(
            sparc_block(a, b)
        )
        assert schedule.times[1] > schedule.times[0]
        assert schedule.classes[1].startswith("ialu")

    def test_branch_last_decoder_shares_cycle(self, sparc):
        machine, compiled = sparc
        a = Operation(0, "ADD", ("r1",), ("li0",))
        br = Operation(1, "BE", (), (), is_branch=True)
        schedule = ListScheduler(machine, compiled).schedule_block(
            sparc_block(a, br)
        )
        assert schedule.times[1] >= schedule.times[0]

    def test_schedule_length(self, sparc):
        machine, compiled = sparc
        ops = [Operation(0, "ADD", ("r1",), ("li0",)),
               Operation(1, "BE", (), (), is_branch=True)]
        schedule = ListScheduler(machine, compiled).schedule_block(
            sparc_block(*ops)
        )
        assert schedule.length >= 1


class TestBackwardScheduling:
    def test_backward_respects_dependences(self, sparc):
        machine, compiled = sparc
        a = Operation(0, "LD", ("r1",), ("a0",), is_load=True)
        b = Operation(1, "ADD", ("r2",), ("r1",))
        scheduler = ListScheduler(machine, compiled, direction="backward")
        schedule = scheduler.schedule_block(sparc_block(a, b))
        assert schedule.times[1] >= schedule.times[0] + 1
        assert min(schedule.times.values()) == 0

    def test_backward_resource_constraints(self, sparc):
        machine, compiled = sparc
        loads = [
            Operation(i, "LD", (f"r{i}",), (f"a{i}",), is_load=True)
            for i in range(3)
        ]
        scheduler = ListScheduler(machine, compiled, direction="backward")
        schedule = scheduler.schedule_block(sparc_block(*loads))
        assert len(set(schedule.times.values())) == 3

    def test_unknown_direction_rejected(self, sparc):
        machine, compiled = sparc
        with pytest.raises(Exception, match="direction"):
            ListScheduler(machine, compiled, direction="diagonal")


class TestScheduleWorkload:
    def test_aggregates(self, sparc):
        machine, compiled = sparc
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=300))
        result = schedule_workload(machine, compiled, blocks,
                                   keep_schedules=True)
        assert result.total_ops == sum(len(b) for b in blocks)
        assert result.stats.attempts >= result.total_ops
        assert result.total_cycles > 0
        assert len(result.schedules) == len(blocks)

    def test_signature_requires_schedules(self, sparc):
        machine, compiled = sparc
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=60))
        result = schedule_workload(machine, compiled, blocks)
        with pytest.raises(ValueError):
            result.signature()

    def test_deterministic(self, sparc):
        machine, compiled = sparc
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=200))
        r1 = schedule_workload(machine, compiled, blocks,
                               keep_schedules=True)
        r2 = schedule_workload(machine, compiled, blocks,
                               keep_schedules=True)
        assert r1.signature() == r2.signature()
        assert r1.stats.attempts == r2.stats.attempts
