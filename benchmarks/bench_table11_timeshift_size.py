"""Table 11: memory before/after the usage-time transformation."""

from conftest import write_result


def test_table11_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.table11())
    rows = {row[0]: row for row in suite.table11_rows()}
    for row in rows.values():
        assert row[2] <= row[1]  # OR sizes never grow
        assert row[5] <= row[4]  # AND/OR sizes never grow
    # The OR form benefits more: it has more usages per option to merge.
    sparc = rows["SuperSPARC"]
    or_cut = (sparc[1] - sparc[2]) / sparc[1]
    andor_cut = (sparc[4] - sparc[5]) / sparc[4]
    assert or_cut > andor_cut
    write_result(results_dir, "table11_timeshift_size.txt", text)


def test_table11_bench_staging(benchmark):
    """Time the full stage-3 pipeline on the SuperSPARC AND/OR form."""
    from repro.transforms.pipeline import staged_mdes
    from repro.machines import get_machine

    base = get_machine("SuperSPARC").build_andor()
    staged = benchmark(staged_mdes, base, 3)
    assert staged.unused_trees == {}
