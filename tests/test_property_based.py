"""Property-based tests (hypothesis) on the core machinery.

These check the algebraic properties the paper's whole argument rests on,
over randomly generated constraint trees:

* AND/OR-trees and their flat OR expansions are operationally equivalent
  (same success/failure and same reservations, state by state);
* usage-time shifting preserves every pairwise collision vector;
* the cleanup transformations never change the flat semantics;
* the RU map is a proper reversible resource ledger.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.expand import expand_to_or_tree
from repro.core.resource import ResourceTable
from repro.core.tables import AndOrTree, OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.lowlevel.bitvector import RUMap
from repro.lowlevel.checker import ConstraintChecker
from repro.lowlevel.compiled import CompiledOption, compile_mdes
from repro.transforms.factor import factor_and_or_tree
from repro.transforms.option_elim import prune_or_tree
from repro.transforms.usage_sort import sort_option_usages

pytestmark = pytest.mark.slow

#: One shared resource table: 4 disjoint pools of 4 resources each.
_RESOURCES = ResourceTable()
_RESOURCES.declare_many([f"R{i}" for i in range(16)])
_POOLS = [
    [_RESOURCES.lookup(f"R{i}") for i in range(base, base + 4)]
    for base in (0, 4, 8, 12)
]


@st.composite
def reservation_tables(draw, pool_index=0):
    """A random option over one resource pool."""
    pool = _POOLS[pool_index]
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(-1, 3)),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    usages = tuple(
        ResourceUsage(time, pool[res_index]) for res_index, time in pairs
    )
    return ReservationTable(usages)


@st.composite
def or_trees(draw, pool_index=0):
    """A random OR-tree over one resource pool."""
    options = draw(
        st.lists(reservation_tables(pool_index), min_size=1, max_size=4)
    )
    return OrTree(tuple(options))


@st.composite
def and_or_trees(draw):
    """A random AND/OR-tree with disjoint sibling resource pools."""
    n_trees = draw(st.integers(1, 3))
    children = tuple(
        draw(or_trees(pool_index=i)) for i in range(n_trees)
    )
    return AndOrTree(children)


def make_mdes(constraint):
    from repro.core.mdes import Mdes, OperationClass

    return Mdes(
        "P",
        _RESOURCES,
        op_classes={"k": OperationClass("k", constraint)},
        opcode_map={"OP": "k"},
    )


class TestExpansionEquivalence:
    @given(tree=and_or_trees(), cycles=st.lists(st.integers(0, 3),
                                                max_size=12))
    @settings(max_examples=120, deadline=None)
    def test_andor_equals_expanded_or(self, tree, cycles):
        """State-by-state operational equivalence of both reps."""
        tree.validate_disjoint()
        andor = compile_mdes(make_mdes(tree)).constraints["k"]
        flat = compile_mdes(
            make_mdes(expand_to_or_tree(tree))
        ).constraints["k"]
        ru_a, ru_b = RUMap(), RUMap()
        checker_a, checker_b = ConstraintChecker(), ConstraintChecker()
        for cycle in cycles:
            result_a = checker_a.try_reserve(ru_a, andor, cycle)
            result_b = checker_b.try_reserve(ru_b, flat, cycle)
            assert (result_a is None) == (result_b is None)
            assert ru_a == ru_b

    @given(tree=and_or_trees())
    @settings(max_examples=60, deadline=None)
    def test_flat_option_count_is_product(self, tree):
        assert len(expand_to_or_tree(tree)) == tree.option_product()


class TestTimeShift:
    @given(tree=and_or_trees())
    @settings(max_examples=60, deadline=None)
    def test_collision_vectors_preserved(self, tree):
        from repro.transforms.time_shift import shift_usage_times

        mdes = make_mdes(expand_to_or_tree(tree))
        shifted = shift_usage_times(mdes)
        before = mdes.op_class("k").constraint.options
        after = shifted.op_class("k").constraint.options

        def collisions(a, b):
            return {
                ua.time - ub.time
                for ua in a.usages
                for ub in b.usages
                if ua.resource is ub.resource and ua.time >= ub.time
            }

        for i in range(len(before)):
            for j in range(len(before)):
                assert collisions(before[i], before[j]) == collisions(
                    after[i], after[j]
                )

    @given(tree=and_or_trees())
    @settings(max_examples=60, deadline=None)
    def test_forward_shift_makes_every_resource_start_at_zero(self, tree):
        from repro.transforms.time_shift import shift_usage_times

        shifted = shift_usage_times(make_mdes(tree))
        earliest = {}
        constraint = shifted.op_class("k").constraint
        for or_tree in constraint.or_trees:
            for option in or_tree.options:
                for usage in option.usages:
                    current = earliest.get(usage.resource)
                    if current is None or usage.time < current:
                        earliest[usage.resource] = usage.time
        assert all(time == 0 for time in earliest.values())


class TestCleanupTransforms:
    @given(tree=or_trees())
    @settings(max_examples=100, deadline=None)
    def test_prune_keeps_reachable_behaviour(self, tree):
        """At any resource state, both trees choose the same usages."""
        pruned = prune_or_tree(tree)
        compiled_full = compile_mdes(make_mdes(tree)).constraints["k"]
        compiled_pruned = compile_mdes(make_mdes(pruned)).constraints["k"]
        for busy_mask in range(0, 16):
            ru = RUMap()
            if busy_mask:
                ru.reserve(0, busy_mask)
            ru2 = ru.copy()
            full = ConstraintChecker().try_reserve(ru, compiled_full, 0)
            slim = ConstraintChecker().try_reserve(ru2, compiled_pruned, 0)
            assert (full is None) == (slim is None)
            assert ru == ru2

    @given(tree=and_or_trees())
    @settings(max_examples=80, deadline=None)
    def test_factoring_preserves_flat_semantics(self, tree):
        factored = factor_and_or_tree(tree)
        original = {
            option.usage_set
            for option in expand_to_or_tree(tree).options
        }
        rewritten = {
            option.usage_set
            for option in expand_to_or_tree(factored).options
        }
        assert original == rewritten

    @given(table=reservation_tables())
    @settings(max_examples=80, deadline=None)
    def test_usage_sort_is_permutation(self, table):
        ordered = sort_option_usages(table)
        assert sorted(ordered.usages) == sorted(table.usages)
        times = [usage.time for usage in ordered.usages]
        zeros = [t for t in times if t == 0]
        assert times[: len(zeros)] == zeros


class TestRUMapProperties:
    @given(
        reservations=st.lists(
            st.tuples(st.integers(-2, 5), st.integers(1, 255)),
            max_size=10,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_reserve_release_roundtrip(self, reservations):
        ru = RUMap()
        done = []
        for cycle, mask in reservations:
            if ru.is_free(cycle, mask):
                ru.reserve(cycle, mask)
                done.append((cycle, mask))
        for cycle, mask in reversed(done):
            ru.release(cycle, mask)
        assert not ru

    @given(
        table=reservation_tables(),
        bitvector=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_compiled_reserve_masks_cover_checks(self, table, bitvector):
        option = CompiledOption.from_table(table, bitvector)
        reserve = dict(option.reserve_mask_by_time)
        for time, mask in option.checks:
            assert reserve[time] & mask == mask
