"""Round-trip tests for the HMDES writer."""

import pytest

from repro.hmdes import load_mdes, write_mdes
from repro.machines import MACHINE_NAMES, get_machine


def assert_roundtrip(mdes):
    again = load_mdes(write_mdes(mdes))
    assert again.name == mdes.name
    assert set(again.op_classes) == set(mdes.op_classes)
    assert again.opcode_map == mdes.opcode_map
    for name in mdes.op_classes:
        original = mdes.op_class(name)
        rebuilt = again.op_class(name)
        assert rebuilt.constraint == original.constraint
        assert rebuilt.latency == original.latency


class TestRoundTrip:
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_machine_roundtrips(self, machine_name):
        assert_roundtrip(get_machine(machine_name).build())

    def test_sharing_survives_roundtrip(self):
        mdes = get_machine("SuperSPARC").build()
        again = load_mdes(write_mdes(mdes))
        ialu1 = again.op_class("ialu_1src").constraint
        ialu2 = again.op_class("ialu_2src").constraint
        shared = {id(t) for t in ialu1.or_trees} & {
            id(t) for t in ialu2.or_trees
        }
        # decoder, IALU, and write-port trees are shared; RP trees differ.
        assert len(shared) == 3

    def test_unused_trees_survive_roundtrip(self):
        mdes = get_machine("SuperSPARC").build()
        again = load_mdes(write_mdes(mdes))
        assert len(again.unused_trees) == len(mdes.unused_trees)

    def test_writer_output_is_parseable_text(self, toy_mdes):
        text = write_mdes(toy_mdes)
        assert text.startswith("mdes Toy;")
        assert "section resource" in text
        assert_roundtrip(toy_mdes)


class TestLmdesDigest:
    """Writer round-trips must survive the *whole* two-tier toolchain.

    Equality of the high-level trees (above) is necessary but not
    sufficient: a writer bug that perturbed sharing or usage order could
    still change the translated low-level file.  So: build each paper
    machine, run it through the pipeline and serialize (the reference
    digest), then write -> re-parse -> translate the same way -- the
    LMDES bytes must be identical.
    """

    @staticmethod
    def _digest(mdes):
        import hashlib

        from repro.lowlevel.compiled import compile_mdes
        from repro.lowlevel.serialize import save_lmdes
        from repro.transforms.pipeline import FINAL_STAGE, staged_mdes

        staged = staged_mdes(mdes, FINAL_STAGE)
        text = save_lmdes(compile_mdes(staged, bitvector=True))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_lmdes_digest_survives_write_reparse(self, machine_name):
        mdes = get_machine(machine_name).build()
        reference = self._digest(mdes)
        reparsed = load_mdes(write_mdes(mdes))
        assert self._digest(reparsed) == reference
