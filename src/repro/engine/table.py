"""Reservation-table query engines (the paper's own representations).

One engine class serves three registry backends -- ``ortree``, ``andor``
and ``bitvector`` -- because the differences between them live entirely
in the compiled description handed to the constructor (flat versus
AND/OR constraint trees, scalar versus bit-vector check lists), not in
the check algorithm.  The Eichenberger-Davidson backend is the same
algorithm again over a description whose options were reduced first.

The bit-vector backends additionally carry the *vectorized* batch path:
when the machine fits the packed word budget
(:mod:`repro.lowlevel.packed`), :meth:`TableEngine.new_state` hands out
array-shadowed RU maps and :meth:`TableEngine.try_reserve_many` /
:meth:`TableEngine.probe_window` answer whole candidate windows with one
numpy pass instead of one Python call per cycle.  The vectorized
evaluation reproduces the scalar checker's counters exactly, so the
engine switches freely between paths: a short scalar prefix catches the
common place-almost-immediately case (numpy's fixed per-call overhead
would lose there), then escalating windows amortize that overhead over
the long probe tails where the batch path wins.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.base import QueryEngine, Reservation
from repro.lowlevel import packed
from repro.lowlevel.bitvector import RUMap
from repro.lowlevel.checker import CheckStats, ConstraintChecker
from repro.lowlevel.compiled import CompiledMdes


class TableEngine(QueryEngine):
    """Reservation tables checked against a bit-vector RU map."""

    name = "table"
    supports_vectorized = True

    #: Candidate cycles tried scalar before the first vectorized window.
    #: Most placements succeed within a few cycles of the earliest
    #: feasible one; numpy's fixed setup cost only pays off on tails.
    SCALAR_PREFIX = 8

    #: First vectorized window size, growth factor, and cap.  The
    #: shape is aggressive because window cost is dominated by fixed
    #: per-call overhead, not width: deep scans (congested regions,
    #: modulo II search) want few large windows rather than many small
    #: ones, and overshooting the winner only wastes compute -- the
    #: counters stay exact either way.
    WINDOW_START = 64
    WINDOW_GROWTH = 8
    WINDOW_MAX = 4096

    def __init__(
        self,
        compiled: CompiledMdes,
        stats: Optional[CheckStats] = None,
        name: Optional[str] = None,
        vectorized: Optional[bool] = None,
    ) -> None:
        super().__init__(compiled, stats, name)
        self._checker = ConstraintChecker(self.stats)
        if vectorized is None:
            vectorized = compiled.bitvector
        self._vectorized = bool(vectorized) and packed.packing_eligible(
            compiled
        )
        self._packed = (
            packed.packed_layout(compiled) if self._vectorized else None
        )

    @property
    def vectorized(self) -> bool:
        """Whether this instance serves packed states and bulk probes."""
        return self._vectorized

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------

    def new_state(self, ii: Optional[int] = None) -> RUMap:
        if not self._vectorized:
            return super().new_state(ii)
        if ii is None:
            return packed.PackedRUMap(self._packed.word_count)
        return packed.ModuloPackedRUMap(ii, self._packed.word_count)

    # ------------------------------------------------------------------
    # Scalar query
    # ------------------------------------------------------------------

    def try_reserve(
        self, state: RUMap, class_name: str, cycle: int
    ) -> Optional[Reservation]:
        handle = self._checker.try_reserve(
            state,
            self.compiled.constraint_for_class(class_name),
            cycle,
            class_name,
        )
        if handle is None:
            return None
        return Reservation(state, handle, cycle)

    # ------------------------------------------------------------------
    # Vectorized queries
    # ------------------------------------------------------------------

    def _packed_constraint(self, state, class_name: str):
        """The packed constraint when the bulk path applies, else None."""
        if not self._vectorized:
            return None
        if not isinstance(
            state, (packed.PackedRUMap, packed.ModuloPackedRUMap)
        ):
            return None
        return self._packed.constraints.get(class_name)

    def _record_window(self, opts, checks, wins: int, class_name) -> None:
        """Fold one window's counter arrays into :attr:`stats`.

        ``np.unique`` collapses the options axis to a tiny histogram
        (distinct option counts, not window width), so accounting stays
        O(distinct) instead of O(window).
        """
        values, counts = packed.np.unique(opts, return_counts=True)
        self.stats.record_attempts_folded(
            {int(v): int(n) for v, n in zip(values, counts)},
            int(checks.sum()), wins, class_name,
        )

    def _vector_attempt(
        self, state, class_name: str, constraint, chunk
    ) -> Optional[Reservation]:
        """One vectorized window: account it, reserve on first success."""
        success, opts, checks, chosen = packed.evaluate_window(
            constraint, state, chunk
        )
        if success.any():
            hit = int(success.argmax())
            upto = hit + 1
            wins = 1
        else:
            hit = -1
            upto = chunk.shape[0]
            wins = 0
        # Candidates past the first success were never examined by the
        # scalar loop, so they are not accounted here either.
        self._record_window(opts[:upto], checks[:upto], wins, class_name)
        if hit < 0:
            return None
        cycle = int(chunk[hit])
        pairs = packed.reservation_pairs(constraint, chosen[hit], cycle)
        for abs_cycle, mask in pairs:
            state.reserve(abs_cycle, mask)
        return Reservation(state, pairs, cycle)

    def try_reserve_many(
        self, state: RUMap, class_name: str, cycles
    ) -> Optional[Reservation]:
        constraint = self._packed_constraint(state, class_name)
        try:
            total = len(cycles)
        except TypeError:  # a generator: only the scalar loop can serve it
            constraint = None
            total = 0
        if constraint is None:
            return super().try_reserve_many(state, class_name, cycles)

        prefix = min(self.SCALAR_PREFIX, total)
        for i in range(prefix):
            reservation = self.try_reserve(state, class_name, cycles[i])
            if reservation is not None:
                return reservation
        position = prefix
        window = self.WINDOW_START
        while position < total:
            end = min(total, position + window)
            piece = cycles[position:end]
            if isinstance(piece, range):
                # np.asarray walks a range element by element; arange
                # builds the same chunk at C speed.
                chunk = packed.np.arange(
                    piece.start, piece.stop, piece.step,
                    dtype=packed.np.int64,
                )
            else:
                chunk = packed.np.asarray(piece, dtype=packed.np.int64)
            reservation = self._vector_attempt(
                state, class_name, constraint, chunk
            )
            if reservation is not None:
                return reservation
            position = end
            window = min(window * self.WINDOW_GROWTH, self.WINDOW_MAX)
        return None

    def probe_window(
        self, state: RUMap, class_name: str, lo: int, hi: int
    ) -> int:
        constraint = (
            self._packed_constraint(state, class_name) if hi > lo else None
        )
        if constraint is None:
            return super().probe_window(state, class_name, lo, hi)
        chunk = packed.np.arange(lo, hi, dtype=packed.np.int64)
        success, opts, checks, _ = packed.evaluate_window(
            constraint, state, chunk
        )
        self._record_window(opts, checks, int(success.sum()), class_name)
        bitmask = 0
        for index in packed.np.nonzero(success)[0]:
            bitmask |= 1 << int(index)
        return bitmask


class EichenbergerEngine(TableEngine):
    """Reduced reservation tables (Eichenberger & Davidson, PLDI 1996).

    Identical check algorithm; the registry compiles this backend's
    description through :func:`repro.eichenberger.reduce_mdes_options`
    first, so each option carries a minimum number of usages.
    """

    name = "eichenberger"
