"""Packed (array-backed) layouts for compiled descriptions and RU maps.

The paper's section 6 packs one cycle's resource usages into a single
bit-vector word so that one AND answers a whole check.  This module takes
the next step the paper's machines never needed: laying the *compiled
description itself* out in fixed-width arrays so a whole window of
candidate cycles can be answered with one vectorized pass.

Three layers live here:

* :class:`PackedRUMap` / :class:`ModuloPackedRUMap` -- RU maps that keep
  the exact dict-of-words semantics of :class:`~repro.lowlevel.bitvector.RUMap`
  (they subclass it, so scalar reserve/release/is_free behave and fail
  identically) while mirroring every cycle word into a contiguous numpy
  shadow array that :meth:`gather` can fancy-index in bulk.
* :class:`PackedMdes` -- per-OR-tree ``(options, checks)`` mask/time
  tables padded to rectangles, built once per compiled description by
  :func:`packed_layout` and cached on the :class:`CompiledMdes`.
* :func:`evaluate_window` -- the vectorized constraint check: for a
  window of candidate cycles it reproduces, bit for bit, the counters
  the scalar :class:`~repro.lowlevel.checker.ConstraintChecker` would
  have recorded (options examined, resource checks, short-circuit
  order), which is what lets engines switch freely between the scalar
  and vectorized paths.

A description is *eligible* for packing when its resource count fits the
:data:`PACKED_WORD_BUDGET` (wider machines silently keep the dict/int
fallback) and numpy is importable; everything here degrades to the
scalar path when it is not.

The module also defines the zero-copy wire format
(:func:`compiled_to_shared_bytes` / :func:`compiled_from_shared_buffer`)
the batch service uses to publish a compiled description to pool workers
through one shared-memory segment instead of per-worker LMDES
re-deserialization.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy is a hard dependency of the fast path only.
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the gating tests
    np = None

from repro.core.mdes import Bypass, Mdes, OperationClass
from repro.core.resource import ResourceTable
from repro.errors import SchedulingError
from repro.lowlevel.bitvector import ModuloRUMap, RUMap
from repro.lowlevel.compiled import (
    CompiledAndOrTree,
    CompiledConstraint,
    CompiledMdes,
    CompiledOption,
    CompiledOrTree,
)

#: Maximum 64-bit words per cycle the packed layout will spend.  Machines
#: with more than ``64 * PACKED_WORD_BUDGET`` resources fall back to the
#: dict/int representation (every machine in the registry fits in one).
PACKED_WORD_BUDGET = 4

#: Attribute name used to cache the packed layout on a CompiledMdes.
_LAYOUT_ATTR = "_packed_layout"

#: Magic prefix of the shared-memory wire format (16 bytes, so the
#: 8-byte length word that follows keeps array sections 8-aligned).
SHARED_MAGIC = b"RPRO-PACKED-v01\x00"

_WORD = 0xFFFFFFFFFFFFFFFF


def numpy_available() -> bool:
    """True when numpy imported and the vectorized path can exist."""
    return np is not None


def word_count_for(resource_count: int) -> int:
    """64-bit words needed to hold ``resource_count`` resource bits."""
    return max(1, -(-resource_count // 64))


def split_mask(mask: int, words: int) -> List[int]:
    """Split an arbitrary-width Python int mask into ``words`` u64 limbs."""
    return [(mask >> (64 * i)) & _WORD for i in range(words)]


def join_words(limbs: Sequence[int]) -> int:
    """Inverse of :func:`split_mask`."""
    mask = 0
    for i, limb in enumerate(limbs):
        mask |= int(limb) << (64 * i)
    return mask


# ----------------------------------------------------------------------
# Array-backed RU maps
# ----------------------------------------------------------------------

#: Rows of headroom added beyond the touched cycle when a shadow grows.
_GROW_PAD = 64


def _write_row(shadow, row: int, word: int, words_per_cycle: int) -> None:
    """Write one cycle's combined word into a shadow row."""
    if words_per_cycle == 1:
        shadow[row, 0] = word & _WORD
    else:
        for i in range(words_per_cycle):
            shadow[row, i] = (word >> (64 * i)) & _WORD


class PackedRUMap(RUMap):
    """An RU map with a contiguous numpy shadow for bulk gathers.

    The dict of Python-int words stays the source of truth -- every
    scalar operation (including the double-reserve / over-release error
    paths) is inherited unchanged from :class:`RUMap`, so the scalar hot
    path pays nothing.  Mutations additionally mirror the affected
    cycle's word into a ``(capacity, words_per_cycle)`` uint64 array
    whose base offset slides to cover negative (decode-stage) cycles;
    :meth:`gather` serves the vectorized checker from that array,
    zero-filling out-of-range cycles (idle cycles are free).
    """

    __slots__ = ("words_per_cycle", "_base", "_shadow")

    def __init__(self, words_per_cycle: int = 1) -> None:
        if np is None:  # pragma: no cover - engines gate on numpy first
            raise SchedulingError("packed RU maps require numpy")
        super().__init__()
        self.words_per_cycle = words_per_cycle
        self._base = 0
        self._shadow = np.zeros((0, words_per_cycle), dtype=np.uint64)

    # -- shadow maintenance --------------------------------------------

    def _grow(self, cycle: int) -> None:
        rows = self._shadow.shape[0]
        lo = min(self._base, cycle - _GROW_PAD) if rows else cycle - _GROW_PAD
        hi = (
            max(self._base + rows, cycle + _GROW_PAD + 1)
            if rows
            else cycle + _GROW_PAD + 1
        )
        fresh = np.zeros((hi - lo, self.words_per_cycle), dtype=np.uint64)
        if rows:
            offset = self._base - lo
            fresh[offset : offset + rows] = self._shadow
        self._base = lo
        self._shadow = fresh

    def _sync(self, cycle: int) -> None:
        row = cycle - self._base
        if row < 0 or row >= self._shadow.shape[0]:
            self._grow(cycle)
            row = cycle - self._base
        _write_row(self._shadow, row, self._words.get(cycle, 0),
                   self.words_per_cycle)

    # -- mutators (scalar semantics inherited, shadow kept in sync) ----

    def reserve(self, cycle: int, mask: int) -> None:
        super().reserve(cycle, mask)
        self._sync(cycle)

    def release(self, cycle: int, mask: int) -> None:
        super().release(cycle, mask)
        self._sync(cycle)

    def clear(self) -> None:
        super().clear()
        self._shadow.fill(0)

    def copy(self) -> "PackedRUMap":
        duplicate = PackedRUMap(self.words_per_cycle)
        duplicate._words = dict(self._words)
        duplicate._base = self._base
        duplicate._shadow = self._shadow.copy()
        return duplicate

    # -- bulk access ----------------------------------------------------

    def gather(self, cycles):
        """Busy words for an int64 index array of any shape.

        Returns a uint64 array of shape ``cycles.shape + (W,)``; cycles
        outside the shadow's populated range read as 0 (idle).
        """
        rel = cycles - self._base
        out = np.zeros(cycles.shape + (self.words_per_cycle,),
                       dtype=np.uint64)
        rows = self._shadow.shape[0]
        if rows:
            valid = (rel >= 0) & (rel < rows)
            out[valid] = self._shadow[rel[valid]]
        return out

    def gather_range(self, lo: int, hi: int):
        """Busy words for the contiguous cycle range ``[lo, hi)``.

        Equivalent to ``gather(np.arange(lo, hi))`` but served by two
        plain slices instead of a fancy-indexed scatter, which is what
        makes the contiguous-window fast path of
        :func:`evaluate_window` cheap.
        """
        out = np.zeros((hi - lo, self.words_per_cycle), dtype=np.uint64)
        rows = self._shadow.shape[0]
        a = max(lo, self._base)
        b = min(hi, self._base + rows)
        if a < b:
            out[a - lo : b - lo] = self._shadow[
                a - self._base : b - self._base
            ]
        return out


class ModuloPackedRUMap(ModuloRUMap):
    """A modulo RU map (MRT) with a fixed ``(ii, W)`` numpy shadow.

    Subclasses :class:`ModuloRUMap` so wrap-around semantics, error
    messages, and ``isinstance`` checks are all inherited; only the
    shadow bookkeeping and :meth:`gather` are new.  The shadow has
    exactly ``ii`` rows -- modulo indexing never needs to grow.
    """

    __slots__ = ("words_per_cycle", "_shadow")

    def __init__(self, ii: int, words_per_cycle: int = 1) -> None:
        if np is None:  # pragma: no cover - engines gate on numpy first
            raise SchedulingError("packed RU maps require numpy")
        super().__init__(ii)
        self.words_per_cycle = words_per_cycle
        self._shadow = np.zeros((ii, words_per_cycle), dtype=np.uint64)

    def _sync(self, slot: int) -> None:
        _write_row(self._shadow, slot, self._words.get(slot, 0),
                   self.words_per_cycle)

    def reserve(self, cycle: int, mask: int) -> None:
        super().reserve(cycle, mask)
        self._sync(cycle % self.ii)

    def release(self, cycle: int, mask: int) -> None:
        super().release(cycle, mask)
        self._sync(cycle % self.ii)

    def clear(self) -> None:
        super().clear()
        self._shadow.fill(0)

    def copy(self) -> "ModuloPackedRUMap":
        duplicate = ModuloPackedRUMap(self.ii, self.words_per_cycle)
        duplicate._words = dict(self._words)
        duplicate._shadow = self._shadow.copy()
        return duplicate

    def gather(self, cycles):
        """Busy words for an int64 index array, wrapped modulo ``ii``.

        numpy's ``%`` matches Python's sign convention, so negative
        cycles land on the same slot the scalar path uses.
        """
        return self._shadow[cycles % self.ii]

    def gather_range(self, lo: int, hi: int):
        """Busy words for ``[lo, hi)``, wrapped modulo ``ii``."""
        return self._shadow[np.arange(lo, hi) % self.ii]


# ----------------------------------------------------------------------
# Packed compiled-description layout
# ----------------------------------------------------------------------


class PackedOrTree:
    """One OR-tree's options as rectangular check tables.

    ``times[o, k]`` / ``masks[o, k]`` hold option *o*'s *k*-th check;
    rows are padded to the longest option with ``mask == 0`` entries,
    which can never conflict, and ``kcounts[o]`` remembers the real
    check count so the stats reconstruction stays exact.  ``options``
    keeps the source :class:`CompiledOption` objects (priority order)
    for building reservations once a cycle is chosen.
    """

    __slots__ = ("times", "masks", "kcounts", "options",
                 "time_lo", "time_hi")

    def __init__(self, times, masks, kcounts,
                 options: Tuple[CompiledOption, ...]) -> None:
        self.times = times        # (O, Kmax) int64
        self.masks = masks        # (O, Kmax, W) uint64
        self.kcounts = kcounts    # (O,) int64
        self.options = options
        # Padding rows are (time 0, mask 0); including them can only
        # widen the bounds, never produce a phantom conflict.
        self.time_lo = int(times.min(initial=0))
        self.time_hi = int(times.max(initial=0))

    @property
    def option_count(self) -> int:
        return len(self.options)


class PackedConstraint:
    """A compiled constraint as a tuple of packed OR-trees.

    A plain OR-tree constraint is represented as a single-tree AND --
    the evaluation and the stats it produces are identical.
    """

    __slots__ = ("trees",)

    def __init__(self, trees: Tuple[PackedOrTree, ...]) -> None:
        self.trees = trees


class PackedMdes:
    """Array layout of a whole compiled description."""

    __slots__ = ("word_count", "constraints")

    def __init__(self, word_count: int,
                 constraints: Dict[str, PackedConstraint]) -> None:
        self.word_count = word_count
        self.constraints = constraints


def pack_or_tree(or_tree: CompiledOrTree, word_count: int) -> PackedOrTree:
    """Lay one compiled OR-tree out as padded rectangular arrays."""
    options = or_tree.options
    kmax = max((len(o.checks) for o in options), default=0)
    kmax = max(1, kmax)  # keep the check axis non-degenerate
    n = len(options)
    times = np.zeros((n, kmax), dtype=np.int64)
    masks = np.zeros((n, kmax, word_count), dtype=np.uint64)
    kcounts = np.zeros(n, dtype=np.int64)
    for o, option in enumerate(options):
        kcounts[o] = len(option.checks)
        for k, (time, mask) in enumerate(option.checks):
            times[o, k] = time
            for w, limb in enumerate(split_mask(mask, word_count)):
                masks[o, k, w] = limb
    return PackedOrTree(times, masks, kcounts, options)


def pack_constraint(constraint: CompiledConstraint, word_count: int,
                    cache: Optional[Dict[int, PackedOrTree]] = None
                    ) -> PackedConstraint:
    """Pack a compiled constraint, sharing OR-trees by identity."""
    if cache is None:
        cache = {}

    def packed(tree: CompiledOrTree) -> PackedOrTree:
        hit = cache.get(id(tree))
        if hit is None:
            hit = cache[id(tree)] = pack_or_tree(tree, word_count)
        return hit

    if isinstance(constraint, CompiledAndOrTree):
        return PackedConstraint(tuple(packed(t) for t in constraint.or_trees))
    return PackedConstraint((packed(constraint),))


def pack_mdes(compiled: CompiledMdes) -> Optional[PackedMdes]:
    """Build the packed layout for a compiled description.

    Returns ``None`` when numpy is unavailable or the machine is wider
    than the packed word budget -- callers then stay on the scalar path.
    """
    if np is None:
        return None
    words = word_count_for(len(compiled.source.resources))
    if words > PACKED_WORD_BUDGET:
        return None
    cache: Dict[int, PackedOrTree] = {}
    constraints = {
        name: pack_constraint(constraint, words, cache)
        for name, constraint in compiled.constraints.items()
    }
    return PackedMdes(words, constraints)


def packed_layout(compiled: CompiledMdes) -> Optional[PackedMdes]:
    """The (memoized) packed layout of a compiled description.

    The layout is cached on the ``CompiledMdes`` instance, so every
    engine sharing one compiled description (the description cache hands
    out one object per key) shares one set of arrays.
    """
    hit = getattr(compiled, _LAYOUT_ATTR, False)
    if hit is False:
        hit = pack_mdes(compiled)
        object.__setattr__(compiled, _LAYOUT_ATTR, hit)
    return hit


def packing_eligible(compiled: CompiledMdes) -> bool:
    """True when this description can use the packed fast path."""
    return packed_layout(compiled) is not None


# ----------------------------------------------------------------------
# Vectorized window evaluation
# ----------------------------------------------------------------------


def _evaluate_tree(tree: PackedOrTree, state, cycles, span=None,
                   span_lo: int = 0):
    """Evaluate one OR-tree over a window of candidate cycles.

    Returns ``(avail, chosen, opts, checks)``, each of shape ``(C,)``:
    whether any option is free, the first free option's index, and the
    option/check counters the scalar first-fit walk would have recorded
    (options examined until the first free one; per option, checks
    until the first conflicting one).

    When the caller pre-gathered a contiguous busy-word ``span``
    covering ``[span_lo, span_lo + len(span))`` absolute cycles and the
    window itself is contiguous, the conflict matrix is built from
    strided views into that one span instead of a fancy-indexed gather
    per (cycle, option, check) triple -- same bits, far fewer
    temporaries.
    """
    count = cycles.shape[0]
    n_options = tree.option_count
    if n_options == 0:  # defensive: the compiler never emits empty trees
        zero = np.zeros(count, dtype=np.int64)
        return np.zeros(count, dtype=bool), zero, zero, zero

    if span is not None:
        # sliding[r, :, c] is the busy word of cycle span_lo + r + c,
        # so row (time - (span_lo - cycles[0])) aligns check time
        # offsets with window positions.
        sliding = np.lib.stride_tricks.sliding_window_view(
            span, count, axis=0
        )                                             # (T, W, C)
        rows = tree.times - (span_lo - int(cycles[0]))
        conflict = np.bitwise_and(
            sliding[rows], tree.masks[..., None]
        ).any(axis=2)                                 # (O, K, C)
        conflict = np.moveaxis(conflict, 2, 0)        # (C, O, K)
    else:
        # (C, O, Kmax): does check k of option o conflict at cycle c?
        idx = cycles[:, None, None] + tree.times[None, :, :]
        gathered = state.gather(idx)
        conflict = np.bitwise_and(gathered, tree.masks[None]).any(axis=3)

    conflict_any = conflict.any(axis=2)               # (C, O)
    first_conflict = conflict.argmax(axis=2)          # (C, O)
    # Checks per examined option: stop at the first conflict, or run
    # the option's full (unpadded) check list when it is free.
    ncheck = np.where(conflict_any, first_conflict + 1,
                      tree.kcounts[None, :])

    avail = ~conflict_any                             # (C, O)
    any_avail = avail.any(axis=1)
    if not any_avail.any():
        # Fully-losing window (the common case in congested scans):
        # every option of every cycle was examined, so the counters
        # collapse to row sums -- no per-cycle first-fit math needed.
        opts = np.full(count, n_options, dtype=np.int64)
        return (any_avail, np.zeros(count, dtype=np.int64), opts,
                ncheck.sum(axis=1))
    chosen = avail.argmax(axis=1)
    opts = np.where(any_avail, chosen + 1, n_options)
    cum = np.cumsum(ncheck, axis=1)
    checks = cum[np.arange(count), opts - 1]
    return any_avail, chosen, opts, checks


def evaluate_window(constraint: PackedConstraint, state, cycles):
    """Vectorized constraint check over a window of candidate cycles.

    ``cycles`` is an int64 array of candidate issue cycles (any order).
    Returns ``(success, opts, checks, chosen)`` where ``success`` is the
    per-cycle feasibility, ``opts``/``checks`` are the exact per-cycle
    attempt counters (reproducing the AND-level short-circuit: trees
    after the first one with no free option are not counted), and
    ``chosen[c, t]`` is tree *t*'s selected option index for cycle *c*
    (meaningful only where ``success[c]``).
    """
    trees = constraint.trees
    count = cycles.shape[0]
    n_trees = len(trees)
    if count == 0:
        zero = np.zeros(0, dtype=np.int64)
        return (np.zeros(0, dtype=bool), zero, zero,
                np.zeros((0, n_trees), dtype=np.int64))

    # Contiguous windows (every scheduler scan and probe) share one
    # range gather across all trees and use strided views into it.
    span, span_lo = None, 0
    if count == 1 or bool((cycles[1:] - cycles[:-1] == 1).all()):
        lo = min(tree.time_lo for tree in trees)
        hi = max(tree.time_hi for tree in trees)
        span_lo = int(cycles[0]) + lo
        span = state.gather_range(span_lo, int(cycles[-1]) + hi + 1)

    if n_trees == 1:
        # Single-tree constraints (plain OR-trees) need none of the
        # AND-level folding below; skip its half-dozen array ops.
        avail, chosen1, opts1, checks1 = _evaluate_tree(
            trees[0], state, cycles, span, span_lo
        )
        return avail, opts1, checks1, chosen1[:, None]

    # AND-level short-circuit, vectorized lazily: tree t is evaluated
    # only for the cycles where trees 0..t-1 all had a free option --
    # exactly the cycles whose scalar walk would have examined it, so
    # the counters match by construction and congested windows (where
    # tree 0 kills almost everything) stay cheap.
    opts_total = np.zeros(count, dtype=np.int64)
    checks_total = np.zeros(count, dtype=np.int64)
    chosen = np.zeros((count, n_trees), dtype=np.int64)
    avail, chosen_t, opts_t, checks_t = _evaluate_tree(
        trees[0], state, cycles, span, span_lo
    )
    opts_total += opts_t
    checks_total += checks_t
    chosen[:, 0] = chosen_t
    active = np.nonzero(avail)[0]
    for t in range(1, n_trees):
        if active.size == 0:
            break
        avail, chosen_t, opts_t, checks_t = _evaluate_tree(
            trees[t], state, cycles[active]
        )
        opts_total[active] += opts_t
        checks_total[active] += checks_t
        chosen[active, t] = chosen_t
        active = active[avail]

    success = np.zeros(count, dtype=bool)
    success[active] = True
    return success, opts_total, checks_total, chosen


def reservation_pairs(constraint: PackedConstraint, chosen_row,
                      cycle: int) -> Tuple[Tuple[int, int], ...]:
    """Absolute (cycle, mask) pairs for one successful window hit.

    Mirrors ``ConstraintChecker._reservations``: chosen options in tree
    order, each option's reserve table in time order.
    """
    pairs: List[Tuple[int, int]] = []
    for t, tree in enumerate(constraint.trees):
        option = tree.options[int(chosen_row[t])]
        for time, mask in option.reserve_mask_by_time:
            pairs.append((cycle + time, mask))
    return tuple(pairs)


# ----------------------------------------------------------------------
# Zero-copy shared wire format
# ----------------------------------------------------------------------
#
# Layout:  SHARED_MAGIC | u64 header_len | header JSON | array sections.
# The header carries everything needed to rebuild a CompiledMdes without
# touching load_lmdes (no big JSON parse, no Mdes.validate, no
# compile_mdes): resource names, class metadata, constraint wiring by
# index, and a manifest of (dtype, shape, offset) per array section.
# Array sections are 8-byte aligned so attaching processes can map them
# with np.frombuffer directly -- that view into the shared segment is
# the zero-copy part.


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _collect_compiled(compiled: CompiledMdes):
    """Unique options / or-trees / andor-trees by identity, indexed."""
    options: List[CompiledOption] = []
    or_trees: List[CompiledOrTree] = []
    andor_trees: List[CompiledAndOrTree] = []
    opt_ids: Dict[int, int] = {}
    or_ids: Dict[int, int] = {}
    andor_ids: Dict[int, int] = {}

    def visit_or(tree: CompiledOrTree) -> int:
        key = id(tree)
        if key not in or_ids:
            for option in tree.options:
                if id(option) not in opt_ids:
                    opt_ids[id(option)] = len(options)
                    options.append(option)
            or_ids[key] = len(or_trees)
            or_trees.append(tree)
        return or_ids[key]

    def visit(constraint: CompiledConstraint) -> Tuple[str, int]:
        if isinstance(constraint, CompiledAndOrTree):
            key = id(constraint)
            if key not in andor_ids:
                for tree in constraint.or_trees:
                    visit_or(tree)
                andor_ids[key] = len(andor_trees)
                andor_trees.append(constraint)
            return ("andor", andor_ids[key])
        return ("or", visit_or(constraint))

    wiring = {
        name: visit(constraint)
        for name, constraint in compiled.constraints.items()
    }
    unused_wiring = {
        name: visit(constraint)
        for name, constraint in compiled.unused.items()
    }
    return options, or_trees, andor_trees, opt_ids, or_ids, wiring, \
        unused_wiring


def compiled_to_shared_bytes(compiled: CompiledMdes) -> bytes:
    """Serialize a compiled description into the shared wire format."""
    if np is None:
        raise SchedulingError("shared description format requires numpy")
    source = compiled.source
    words = word_count_for(len(source.resources))
    (options, or_trees, andor_trees, opt_ids, or_ids, wiring,
     unused_wiring) = _collect_compiled(compiled)

    def csr(pair_lists):
        """Flatten lists of (time, mask) pairs into CSR arrays."""
        offsets = np.zeros(len(pair_lists) + 1, dtype=np.int64)
        total = 0
        for i, pairs in enumerate(pair_lists):
            total += len(pairs)
            offsets[i + 1] = total
        times = np.zeros(total, dtype=np.int64)
        masks = np.zeros((total, words), dtype=np.uint64)
        pos = 0
        for pairs in pair_lists:
            for time, mask in pairs:
                times[pos] = time
                for w, limb in enumerate(split_mask(mask, words)):
                    masks[pos, w] = limb
                pos += 1
        return offsets, times, masks

    check_offsets, check_times, check_masks = csr(
        [o.checks for o in options]
    )
    res_offsets, res_times, res_masks = csr(
        [o.reserve_mask_by_time for o in options]
    )

    def membership(parents, child_index):
        offsets = np.zeros(len(parents) + 1, dtype=np.int64)
        members: List[int] = []
        for i, children in enumerate(parents):
            members.extend(child_index[id(child)] for child in children)
            offsets[i + 1] = len(members)
        return offsets, np.asarray(members, dtype=np.int64)

    or_offsets, or_members = membership(
        [t.options for t in or_trees], opt_ids
    )
    andor_offsets, andor_members = membership(
        [t.or_trees for t in andor_trees], or_ids
    )

    # The per-tree rectangular tables the vectorized checker reads are
    # shipped verbatim, so attaching processes get them as views into
    # the segment -- the actual zero-copy hot path.
    tree_arrays = {}
    for t, tree in enumerate(or_trees):
        rect = pack_or_tree(tree, words)
        tree_arrays[f"tree{t}_times"] = rect.times
        tree_arrays[f"tree{t}_masks"] = rect.masks
        tree_arrays[f"tree{t}_kcounts"] = rect.kcounts

    arrays = {
        "check_offsets": check_offsets,
        "check_times": check_times,
        "check_masks": check_masks,
        "res_offsets": res_offsets,
        "res_times": res_times,
        "res_masks": res_masks,
        "or_offsets": or_offsets,
        "or_members": or_members,
        "andor_offsets": andor_offsets,
        "andor_members": andor_members,
        **tree_arrays,
    }

    classes = {
        name: {
            "latency": oc.latency,
            "read_time": oc.read_time,
        }
        for name, oc in source.op_classes.items()
    }
    bypasses = [
        [producer, consumer, bypass.latency, bypass.substitute_class]
        for (producer, consumer), bypass in source.bypasses.items()
    ]

    header = {
        "machine": source.name,
        "bitvector": compiled.bitvector,
        "word_count": words,
        "resources": source.resources.names,
        "opcode_map": source.opcode_map,
        "classes": classes,
        "bypasses": bypasses,
        "constraints": wiring,
        "unused": unused_wiring,
        "manifest": [],  # filled below
    }

    # Lay the sections out after a provisional header to learn offsets;
    # the header length is padded so section offsets are stable.
    manifest = []
    cursor = 0
    blobs = []
    for name, array in arrays.items():
        data = np.ascontiguousarray(array).tobytes()
        manifest.append({
            "name": name,
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "offset": cursor,
            "length": len(data),
        })
        blobs.append(data)
        cursor = _align8(cursor + len(data))
    header["manifest"] = manifest

    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    header_bytes += b" " * (_align8(len(header_bytes)) - len(header_bytes))
    prefix = SHARED_MAGIC + struct.pack("<Q", len(header_bytes))

    out = bytearray(prefix + header_bytes)
    base = len(out)
    for entry, data in zip(manifest, blobs):
        want = base + entry["offset"]
        out.extend(b"\x00" * (want - len(out)))
        out.extend(data)
    return bytes(out)


def compiled_from_shared_buffer(buffer) -> CompiledMdes:
    """Rebuild a CompiledMdes (plus packed layout) from the wire format.

    ``buffer`` is any buffer-protocol object -- typically the ``buf`` of
    an attached shared-memory segment or an mmap.  The numpy arrays of
    the attached packed layout are *views into that buffer*; the caller
    must keep the segment mapped for the description's lifetime.

    The reconstructed ``source`` Mdes carries real resources, classes,
    opcode map, and bypasses, but class constraints are ``None``: the
    high-level trees are never consulted on the scheduling path (the
    scheduler works from the registry machine and the compiled
    constraints), and skipping them is what makes attach cheap.
    """
    if np is None:
        raise SchedulingError("shared description format requires numpy")
    view = memoryview(buffer)
    magic = bytes(view[: len(SHARED_MAGIC)])
    if magic != SHARED_MAGIC:
        raise ValueError("not a packed shared description buffer")
    header_len = struct.unpack_from("<Q", view, len(SHARED_MAGIC))[0]
    header_start = len(SHARED_MAGIC) + 8
    header = json.loads(
        bytes(view[header_start : header_start + header_len]).decode("utf-8")
    )
    base = header_start + header_len

    arrays = {}
    for entry in header["manifest"]:
        start = base + entry["offset"]
        arrays[entry["name"]] = np.frombuffer(
            view, dtype=np.dtype(entry["dtype"]),
            count=int(np.prod(entry["shape"], dtype=np.int64))
            if entry["shape"] else 1,
            offset=start,
        ).reshape(entry["shape"])

    words = header["word_count"]

    def pairs_for(index: int, offsets, times, masks):
        lo, hi = int(offsets[index]), int(offsets[index + 1])
        return tuple(
            (int(times[i]), join_words(masks[i]))
            for i in range(lo, hi)
        )

    n_options = len(arrays["check_offsets"]) - 1
    options = [
        CompiledOption(
            checks=pairs_for(i, arrays["check_offsets"],
                             arrays["check_times"], arrays["check_masks"]),
            reserve_mask_by_time=pairs_for(
                i, arrays["res_offsets"], arrays["res_times"],
                arrays["res_masks"]),
        )
        for i in range(n_options)
    ]

    or_offsets, or_members = arrays["or_offsets"], arrays["or_members"]
    or_trees = [
        CompiledOrTree(options=tuple(
            options[int(or_members[i])]
            for i in range(int(or_offsets[t]), int(or_offsets[t + 1]))
        ))
        for t in range(len(or_offsets) - 1)
    ]
    ao_offsets, ao_members = (arrays["andor_offsets"],
                              arrays["andor_members"])
    andor_trees = [
        CompiledAndOrTree(or_trees=tuple(
            or_trees[int(ao_members[i])]
            for i in range(int(ao_offsets[t]), int(ao_offsets[t + 1]))
        ))
        for t in range(len(ao_offsets) - 1)
    ]

    def wire(ref) -> CompiledConstraint:
        kind, index = ref
        return (andor_trees if kind == "andor" else or_trees)[index]

    constraints = {
        name: wire(ref) for name, ref in header["constraints"].items()
    }
    unused = {name: wire(ref) for name, ref in header["unused"].items()}

    resources = ResourceTable()
    resources.declare_many(header["resources"])
    op_classes = {
        name: OperationClass(
            name=name, constraint=None,
            latency=meta["latency"], read_time=meta["read_time"],
        )
        for name, meta in header["classes"].items()
    }
    bypasses = {
        (producer, consumer): Bypass(latency=latency,
                                     substitute_class=substitute)
        for producer, consumer, latency, substitute in header["bypasses"]
    }
    source = Mdes(
        name=header["machine"],
        resources=resources,
        op_classes=op_classes,
        opcode_map=dict(header["opcode_map"]),
        bypasses=bypasses,
    )
    compiled = CompiledMdes(
        source=source,
        bitvector=header["bitvector"],
        constraints=constraints,
        unused=unused,
    )

    # Attach the packed layout over the buffer views directly: the
    # rectangular per-tree tables the vectorized checker reads never
    # leave the shared segment.
    packed_trees = [
        PackedOrTree(
            arrays[f"tree{t}_times"],
            arrays[f"tree{t}_masks"],
            arrays[f"tree{t}_kcounts"],
            or_trees[t].options,
        )
        for t in range(len(or_trees))
    ]
    tree_index = {id(tree): t for t, tree in enumerate(or_trees)}

    def packed_for(ref) -> PackedConstraint:
        kind, index = ref
        if kind == "andor":
            return PackedConstraint(tuple(
                packed_trees[tree_index[id(tree)]]
                for tree in andor_trees[index].or_trees
            ))
        return PackedConstraint((packed_trees[index],))

    layout = (
        PackedMdes(words, {
            name: packed_for(ref)
            for name, ref in header["constraints"].items()
        })
        if words <= PACKED_WORD_BUDGET
        else None
    )
    object.__setattr__(compiled, _LAYOUT_ATTR, layout)
    return compiled


__all__ = [
    "PACKED_WORD_BUDGET",
    "SHARED_MAGIC",
    "ModuloPackedRUMap",
    "PackedConstraint",
    "PackedMdes",
    "PackedOrTree",
    "PackedRUMap",
    "compiled_from_shared_buffer",
    "compiled_to_shared_bytes",
    "evaluate_window",
    "join_words",
    "numpy_available",
    "pack_constraint",
    "pack_mdes",
    "pack_or_tree",
    "packed_layout",
    "packing_eligible",
    "reservation_pairs",
    "split_mask",
    "word_count_for",
]
