"""Description-space sweep throughput vs. fleet size.

The sweep driver's claim is that scheduling across hundreds of machine
variants is a batch problem, not N independent cold starts: one warm
:class:`~repro.engine.cache.DescriptionCache` serves the whole fleet,
so a second pass over the same fleet is pure cache hits and the cost
per variant falls as the fleet re-visits descriptions.  This benchmark
measures both regimes at increasing fleet sizes -- cold variants/sec
(every description compiles), warm variants/sec (every description
hits), and the warm hit-rate -- and asserts the determinism invariant
(cold and warm passes produce the same per-variant signature digest)
on the timed runs themselves.
"""

from conftest import write_result

from repro.analysis.reporting import format_table
from repro.engine.cache import DescriptionCache
from repro.sweep import SWEEP_CACHE_SIZE, SweepConfig, run_sweep

FAMILY = "superscalar-wide"
SEED = 7
OPS = 32
FLEET_SIZES = (16, 48, 96)


def _timed_sweep(config, cache):
    report = run_sweep(config, cache=cache)
    assert report.ok, (
        f"{report.quarantined} quarantined, "
        f"{report.oracle_failures} oracle failure(s)"
    )
    return report


def test_sweep_throughput_regenerate(results_dir, benchmark):
    def run_all():
        rows = []
        for count in FLEET_SIZES:
            config = SweepConfig(
                family=FAMILY, count=count, seed=SEED, ops=OPS,
                workers=1, verify=False,
            )
            cache = DescriptionCache(
                maxsize=SWEEP_CACHE_SIZE, name="bench-sweep"
            )
            cold = _timed_sweep(config, cache)
            warm = _timed_sweep(config, cache)
            rows.append((count, cold, warm))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table_rows = []
    payload_rows = []
    for count, cold, warm in rows:
        # The timed passes must satisfy the determinism invariant.
        assert warm.signature_digest() == cold.signature_digest()
        cold_rate = (
            count / cold.wall_seconds if cold.wall_seconds else 0.0
        )
        warm_rate = (
            count / warm.wall_seconds if warm.wall_seconds else 0.0
        )
        hits = warm.cache.get("memory_hits", 0)
        misses = warm.cache.get("memory_misses", 0)
        hit_rate = hits / (hits + misses) if (hits + misses) else 0.0
        table_rows.append((
            str(count),
            f"{cold_rate:.1f}",
            f"{warm_rate:.1f}",
            f"{hit_rate * 100:.1f}%",
            str(warm.distinct_descriptions),
        ))
        payload_rows.append({
            "fleet_size": count,
            "cold_variants_per_second": cold_rate,
            "warm_variants_per_second": warm_rate,
            "warm_hit_rate": hit_rate,
            "distinct_descriptions": warm.distinct_descriptions,
            "cold_seconds": cold.wall_seconds,
            "warm_seconds": warm.wall_seconds,
            "signature": warm.signature_digest(),
        })
        # A warm pass recompiles nothing, so the whole fleet must hit.
        assert hit_rate == 1.0
        assert warm.distinct_descriptions == count

    text = format_table(
        (
            "Fleet", "Cold var/s", "Warm var/s",
            "Warm hit-rate", "Distinct",
        ),
        table_rows,
        title=(
            f"Sweep throughput vs. fleet size "
            f"({FAMILY}, seed {SEED}, {OPS} ops/variant)"
        ),
    )
    payload = {
        "family": FAMILY,
        "seed": SEED,
        "ops_per_variant": OPS,
        "fleets": payload_rows,
    }
    write_result(results_dir, "sweep.txt", text, payload=payload)
