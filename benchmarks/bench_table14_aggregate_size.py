"""Table 14: aggregate effect of all transformations on size."""

from conftest import write_result

from repro.machines import get_machine
from repro.transforms import optimize


def test_table14_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.table14())
    rows = {row[0]: row for row in suite.table14_rows()}
    # Paper headline: representations up to ~100x smaller for the K5.
    assert rows["K5"][4] < rows["K5"][1] / 50
    assert rows["SuperSPARC"][4] < rows["SuperSPARC"][1] / 10
    # OR-only transforms alone reach roughly the paper's factor 2-5.
    assert rows["K5"][2] < rows["K5"][1]
    write_result(results_dir, "table14_aggregate_size.txt", text)


def test_table14_bench_full_pipeline(benchmark):
    """Time the entire transformation pipeline on the K5 AND/OR form."""
    mdes = get_machine("K5").build_andor()
    result = benchmark(optimize, mdes)
    assert result.unused_trees == {}
