"""Reservation tables, OR-trees, and AND/OR-trees.

The traditional representation of an operation's resource constraints is a
prioritized list of *reservation table options* -- an OR-tree (paper,
figure 3a).  The paper's new representation is an AND-tree of OR-trees
(figure 3b): every sub-OR-tree must be satisfied, and within each, the
highest-priority available option is chosen.

All three classes are immutable.  Structural equality deliberately ignores
names: the redundancy-elimination transformation (section 5) merges
structurally identical trees regardless of what the MDES writer called
them.  Sharing, as in the paper's internal representation, is expressed by
object *identity*: two operation classes share an OR-tree when they hold
the very same object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Tuple, Union

from repro.core.resource import Resource
from repro.core.usage import ResourceUsage
from repro.errors import MdesError


@dataclass(frozen=True)
class ReservationTable:
    """One reservation table option.

    Attributes:
        usages: The resource usages, in *check order*.  The order is
            semantically irrelevant (all usages must hold) but determines
            how many checks a failing test performs, which is why the
            usage-sorting transformation (section 7) exists.
        name: Optional label from the high-level description.  Not part of
            structural equality.
    """

    usages: Tuple[ResourceUsage, ...]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if len(set(self.usages)) != len(self.usages):
            raise MdesError(
                f"reservation table {self.name or '<anon>'} lists a "
                "duplicate resource usage"
            )

    @property
    def usage_set(self) -> FrozenSet[ResourceUsage]:
        """The usages as a set, for dominance and equivalence tests."""
        return frozenset(self.usages)

    def resources(self) -> FrozenSet[Resource]:
        """Every resource this option touches."""
        return frozenset(usage.resource for usage in self.usages)

    def min_time(self) -> int:
        """Earliest usage time in the option."""
        return min(usage.time for usage in self.usages)

    def max_time(self) -> int:
        """Latest usage time in the option."""
        return max(usage.time for usage in self.usages)

    def normalized(self) -> "ReservationTable":
        """Return a copy with usages in canonical (time, bit) order."""
        return ReservationTable(tuple(sorted(self.usages)), name=self.name)

    def dominates(self, other: "ReservationTable") -> bool:
        """True when ``other`` can never be chosen below this option.

        Per section 5: a lower-priority option whose usages are identical
        to, or a superset of, a higher-priority option's usages is dead --
        whenever the superset is available, so is the subset, and the
        subset wins on priority.
        """
        return self.usage_set <= other.usage_set

    def __len__(self) -> int:
        return len(self.usages)

    def __iter__(self) -> Iterator[ResourceUsage]:
        return iter(self.usages)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        inner = ", ".join(repr(usage) for usage in self.usages)
        return f"ReservationTable{label}[{inner}]"


@dataclass(frozen=True)
class OrTree:
    """A prioritized list of reservation table options.

    Option 0 has the highest priority; the first available option is the
    one the scheduler reserves.
    """

    options: Tuple[ReservationTable, ...]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.options:
            raise MdesError(
                f"OR-tree {self.name or '<anon>'} has no options"
            )

    def resources(self) -> FrozenSet[Resource]:
        """Every resource any option touches."""
        result: FrozenSet[Resource] = frozenset()
        for option in self.options:
            result |= option.resources()
        return result

    def usage_pairs(self) -> FrozenSet[ResourceUsage]:
        """Every (resource, time) pair any option may reserve."""
        result: FrozenSet[ResourceUsage] = frozenset()
        for option in self.options:
            result |= option.usage_set
        return result

    def min_time(self) -> int:
        """Earliest usage time across all options."""
        return min(option.min_time() for option in self.options)

    def common_usages(self) -> FrozenSet[ResourceUsage]:
        """Usages present in *every* option (candidates for factoring)."""
        common = self.options[0].usage_set
        for option in self.options[1:]:
            common &= option.usage_set
        return common

    def __len__(self) -> int:
        return len(self.options)

    def __iter__(self) -> Iterator[ReservationTable]:
        return iter(self.options)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"OrTree{label}({len(self.options)} options)"


@dataclass(frozen=True)
class AndOrTree:
    """An AND of OR-trees (the paper's representation, section 3).

    An operation may be scheduled at a cycle iff every sub-OR-tree has an
    available option at that cycle.  The checker processes the OR-trees in
    order with the plain OR-tree algorithm, so earlier trees should be the
    ones most likely to conflict (the section 8 sorting transformation).
    """

    or_trees: Tuple[OrTree, ...]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.or_trees:
            raise MdesError(
                f"AND/OR-tree {self.name or '<anon>'} has no OR-trees"
            )

    def validate_disjoint(self) -> None:
        """Ensure sibling OR-trees can never reserve the same usage.

        The checker satisfies each sub-OR-tree independently; that is only
        sound when no two siblings can choose the same (resource, time)
        pair.  Every machine description in this library maintains this
        invariant, and the HMDES translator calls this method.
        """
        seen: FrozenSet[ResourceUsage] = frozenset()
        for tree in self.or_trees:
            pairs = tree.usage_pairs()
            overlap = seen & pairs
            if overlap:
                sample = sorted(overlap)[0]
                raise MdesError(
                    f"AND/OR-tree {self.name or '<anon>'}: sibling OR-trees "
                    f"may both reserve {sample!r}"
                )
            seen |= pairs

    def option_product(self) -> int:
        """Number of OR-tree options an equivalent flat OR-tree would need."""
        product = 1
        for tree in self.or_trees:
            product *= len(tree)
        return product

    def total_options(self) -> int:
        """Number of options stored across the sub-OR-trees."""
        return sum(len(tree) for tree in self.or_trees)

    def __len__(self) -> int:
        return len(self.or_trees)

    def __iter__(self) -> Iterator[OrTree]:
        return iter(self.or_trees)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        sizes = "x".join(str(len(tree)) for tree in self.or_trees)
        return f"AndOrTree{label}({sizes})"


#: A resource constraint in either representation.
Constraint = Union[OrTree, AndOrTree]
