"""Common-usage factoring (paper section 8).

A resource usage present in *every* option of an OR-tree can be hoisted
out of the options and placed in a one-option OR-tree of the same AND/OR
tree.  When the common resource is likely to conflict, the conflict is
then detected before any of the option alternatives are examined.

Hoisting can also *increase* the check count, so the paper applies it only
under two heuristics, both implemented here:

1. If the AND/OR-tree already has a one-option OR-tree containing a usage
   with the same usage time, merge the common usage into that option.
   With bit-vectors the merged usage shares the existing check word, so
   this can never hurt.
2. Otherwise, hoist into a *new* one-option OR-tree only when the common
   usage is the only usage at its time in every option -- each option then
   loses one check and only one check is added overall.

The same machinery can build simple AND/OR-trees out of flat OR-tree
descriptions (``convert_or_trees=True``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.mdes import Mdes
from repro.core.tables import AndOrTree, Constraint, OrTree, ReservationTable
from repro.core.usage import ResourceUsage


def _without_usage(tree: OrTree, usage: ResourceUsage) -> OrTree:
    """Remove ``usage`` from every option of ``tree``."""
    options = tuple(
        ReservationTable(
            tuple(u for u in option.usages if u != usage), name=option.name
        )
        for option in tree.options
    )
    return OrTree(options, name=tree.name)


def _with_usage(tree: OrTree, usage: ResourceUsage) -> OrTree:
    """Append ``usage`` to the single option of a one-option ``tree``."""
    option = tree.options[0]
    merged = ReservationTable(option.usages + (usage,), name=option.name)
    return OrTree((merged,), name=tree.name)


def _sole_usage_at_time(tree: OrTree, usage: ResourceUsage) -> bool:
    """True if ``usage`` is the only usage at its time in every option."""
    for option in tree.options:
        at_time = [u for u in option.usages if u.time == usage.time]
        if at_time != [usage]:
            return False
    return True


def factor_and_or_tree(
    tree: AndOrTree, allow_new_trees: bool = True
) -> AndOrTree:
    """Apply common-usage factoring to one AND/OR-tree."""
    or_trees: List[OrTree] = list(tree.or_trees)
    changed = False
    index = 0
    while index < len(or_trees):
        source = or_trees[index]
        if len(source) <= 1:
            index += 1
            continue
        hoisted_any = False
        for usage in sorted(source.common_usages()):
            # Never empty an option by hoisting its last usage.
            if any(len(option) <= 1 for option in or_trees[index].options):
                break
            target_pos = _find_one_option_target(or_trees, index, usage.time)
            if target_pos is not None:
                or_trees[index] = _without_usage(or_trees[index], usage)
                or_trees[target_pos] = _with_usage(
                    or_trees[target_pos], usage
                )
                changed = hoisted_any = True
            elif allow_new_trees and _sole_usage_at_time(
                or_trees[index], usage
            ):
                or_trees[index] = _without_usage(or_trees[index], usage)
                or_trees.append(
                    OrTree((ReservationTable((usage,)),))
                )
                changed = hoisted_any = True
        if not hoisted_any:
            index += 1
        # On a hoist, re-examine the same tree: its common set shrank but
        # other usages may still qualify against the freshly created tree.
    if not changed:
        return tree
    return AndOrTree(tuple(or_trees), name=tree.name)


def _find_one_option_target(
    or_trees: List[OrTree], source_index: int, time: int
) -> Optional[int]:
    """Position of a one-option sibling with a usage at ``time``, if any."""
    for position, candidate in enumerate(or_trees):
        if position == source_index or len(candidate) != 1:
            continue
        if any(usage.time == time for usage in candidate.options[0].usages):
            return position
    return None


def factor_common_usages(
    mdes: Mdes,
    allow_new_trees: bool = True,
    convert_or_trees: bool = False,
) -> Mdes:
    """Apply common-usage factoring to every AND/OR-tree.

    With ``convert_or_trees`` set, flat OR-tree constraints whose options
    share a usage are first wrapped in a single-child AND/OR-tree so the
    factoring can create structure from them.
    """

    def rewrite(constraint: Constraint) -> Constraint:
        if isinstance(constraint, OrTree):
            if not convert_or_trees or len(constraint) <= 1:
                return constraint
            if not constraint.common_usages():
                return constraint
            constraint = AndOrTree((constraint,), name=constraint.name)
        factored = factor_and_or_tree(constraint, allow_new_trees)
        return factored

    return mdes.map_constraints(rewrite)
