"""LRU cache of staged and compiled machine descriptions.

Benchmark and analysis drivers repeatedly ask for "machine M, staged
through transformation stage S, in representation R, compiled with
backend B's options" -- and before this cache every caller re-ran the
transformation pipeline and recompiled the HMDES from scratch.  The
cache keys that tuple, keeps the most recently used entries, and exposes
hit/miss counters so perf tests can assert the re-translation is gone.

Entries are immutable once built (transforms are functional, compiled
trees are frozen dataclasses), so sharing them across engines, suites,
and CLI invocations inside one process is safe.  Keys use a *content
hash* of the machine's description text (:func:`machine_content_token`),
not its object identity: two machine objects built from the same HMDES
source share entries -- including across processes, through the optional
persistent disk tier -- while ad-hoc test machines without source text
get identity tokens and never alias anything.

The disk tier sits below the LRU: a compiled-description miss first
tries ``load_lmdes`` on the cache directory's artifact for the
configuration and only then rebuilds (and re-publishes) it.  Staged
:class:`Mdes` trees are memory-only; the disk format is the compiled
low-level form, exactly as in the paper's shipped-LMDES workflow.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro import obs
from repro.core.mdes import Mdes
from repro.engine.diskcache import (
    DiskDescriptionCache,
    description_digest,
    is_persistent_token,
    machine_content_token,
)
from repro.lowlevel.compiled import CompiledMdes, compile_mdes
from repro.transforms.pipeline import staged_mdes


@dataclass
class CacheStats:
    """Hit/miss accounting for the description cache.

    ``hits``/``misses``/``evictions`` count the in-memory LRU tier;
    the ``disk_*`` fields count the persistent tier underneath it
    (consulted only on LRU misses of compiled descriptions).

    Snapshot semantics -- identical for both tiers:

    * :meth:`copy` freezes every counter, memory *and* disk, so
      ``stats.since(earlier)`` yields the activity (including
      ``disk_*``) between the snapshot and now.
    * :meth:`reset` zeroes every counter in place, including the disk
      tier's.  It does **not** touch the on-disk artifacts themselves:
      after a reset a warm configuration still disk-hits (and counts a
      fresh ``disk_hits``), because reset is bookkeeping, not
      invalidation.  Delete the cache directory to invalidate entries.
    * The disk counters move only on LRU misses of *compiled*
      descriptions for machines with hashable source text; staged
      ``Mdes`` lookups never consult the disk tier, so ``since()``
      windows over mdes-only activity show zero ``disk_*`` deltas.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_stores: int = 0
    disk_quarantined: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Fold another stats object into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.disk_hits += other.disk_hits
        self.disk_misses += other.disk_misses
        self.disk_stores += other.disk_stores
        self.disk_quarantined += other.disk_quarantined

    def __iadd__(self, other: "CacheStats") -> "CacheStats":
        self.merge(other)
        return self

    def __add__(self, other: "CacheStats") -> "CacheStats":
        result = self.copy()
        result.merge(other)
        return result

    def __radd__(self, other) -> "CacheStats":
        # Lets ``sum(stats_list)`` fold runs without a start value.
        if other == 0:
            return self.copy()
        return NotImplemented

    def copy(self) -> "CacheStats":
        """An independent copy (snapshot) of the counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            disk_hits=self.disk_hits,
            disk_misses=self.disk_misses,
            disk_stores=self.disk_stores,
            disk_quarantined=self.disk_quarantined,
        )

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The activity between an earlier :meth:`copy` and now."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            disk_hits=self.disk_hits - earlier.disk_hits,
            disk_misses=self.disk_misses - earlier.disk_misses,
            disk_stores=self.disk_stores - earlier.disk_stores,
            disk_quarantined=(
                self.disk_quarantined - earlier.disk_quarantined
            ),
        )

    def reset(self) -> None:
        """Zero every counter *in place*.

        Callers hold references to a cache's stats object (engines,
        benchmarks, the batch service); rebinding a fresh object on
        clear would leave them silently observing stale counters.
        """
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_stores = 0
        self.disk_quarantined = 0


class DescriptionCache:
    """LRU map from (description content, rep, stage, options) to results.

    ``disk`` attaches a persistent :class:`DiskDescriptionCache` tier
    below the LRU for compiled descriptions.
    """

    def __init__(
        self,
        maxsize: int = 64,
        disk: Optional[DiskDescriptionCache] = None,
        name: str = "default",
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1: {maxsize}")
        self.maxsize = maxsize
        self.disk = disk
        self.name = name
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        self.stats = CacheStats()
        # The stats object doubles as a registry view (weakly held), so
        # `repro stats` / Prometheus exposition see cache activity
        # without a second counting mechanism.
        obs.register_cache_stats(self.stats, cache=name)

    def _lookup(self, key: Tuple, build: Callable[[], Any]) -> Any:
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            obs.count(
                "repro_cache_lookups_total",
                help="DescriptionCache lookups by outcome.",
                cache=self.name, outcome="hit",
            )
            return self._entries[key]
        self.stats.misses += 1
        obs.count(
            "repro_cache_lookups_total",
            help="DescriptionCache lookups by outcome.",
            cache=self.name, outcome="miss",
        )
        value = build()
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return value

    # ------------------------------------------------------------------
    # Public lookups
    # ------------------------------------------------------------------

    def mdes(
        self, machine, rep: str, stage: int, reduce: bool = False
    ) -> Mdes:
        """The machine's staged description in one representation.

        ``reduce`` additionally applies the Eichenberger-Davidson
        per-option usage reduction (flat descriptions only).
        """
        if rep not in ("or", "andor"):
            raise ValueError(f"rep must be 'or' or 'andor': {rep!r}")
        token = machine_content_token(machine)
        key = ("mdes", machine.name, token, rep, stage, reduce)

        def build() -> Mdes:
            base = (
                machine.build_or() if rep == "or" else machine.build_andor()
            )
            staged = staged_mdes(base, stage)
            if reduce:
                from repro.eichenberger import reduce_mdes_options

                staged = reduce_mdes_options(staged)
            return staged

        return self._lookup(key, build)

    def compiled(
        self,
        machine,
        rep: str,
        stage: int,
        bitvector: bool,
        reduce: bool = False,
    ) -> CompiledMdes:
        """The staged description compiled for constraint checking.

        With a disk tier attached, an LRU miss first tries the on-disk
        LMDES artifact for this exact configuration; only when that too
        misses (or is quarantined) is the transformation pipeline re-run
        -- and the rebuilt artifact is published for the next process.
        """
        token = machine_content_token(machine)
        key = ("lmdes", machine.name, token, rep, stage, bitvector, reduce)
        persistent = (
            self.disk is not None and is_persistent_token(token)
        )
        digest = (
            description_digest(token, rep, stage, bitvector, reduce)
            if persistent
            else ""
        )

        def build() -> CompiledMdes:
            if persistent:
                loaded = self.disk.load(machine.name, digest, self.stats)
                if loaded is not None:
                    return loaded
            value = compile_mdes(
                self.mdes(machine, rep, stage, reduce), bitvector=bitvector
            )
            if persistent:
                self.disk.store(machine.name, digest, value, self.stats)
            return value

        return self._lookup(key, build)

    def seed_compiled(
        self,
        machine_name: str,
        token: str,
        rep: str,
        stage: int,
        bitvector: bool,
        reduce: bool,
        compiled: CompiledMdes,
    ) -> None:
        """Insert a compiled description under its exact lookup key.

        Used by pool workers to pre-populate the cache with a
        description attached from a shared-memory segment, so the first
        :meth:`compiled` call memory-hits instead of re-deserializing
        the LMDES artifact.  Seeding is a plain insertion: it touches no
        hit/miss counters and emits no spans, which keeps worker trace
        trees identical to unseeded runs.
        """
        key = ("lmdes", machine_name, token, rep, stage, bitvector, reduce)
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every in-memory entry and zero the counters in place.

        On-disk artifacts survive a clear -- they are the warm-restart
        tier; delete the cache directory to invalidate them.
        """
        self._entries.clear()
        self.stats.reset()


#: The process-wide cache every registry/analysis path routes through.
GLOBAL_CACHE = DescriptionCache(name="global")
