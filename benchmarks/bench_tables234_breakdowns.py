"""Tables 2-4: PA7100, Pentium, and K5 option breakdowns."""

import pytest
from conftest import write_result

from repro.machines import get_machine
from repro.workloads import WorkloadConfig, generate_blocks


@pytest.mark.parametrize(
    "machine_name,expected_rows",
    [
        ("PA7100", [1, 2, 3]),
        ("Pentium", [1, 2]),
        ("K5", [16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 768]),
    ],
)
def test_tables234_regenerate(suite, results_dir, benchmark, machine_name,
                              expected_rows):
    text = benchmark(lambda: suite.table_breakdown(machine_name))
    rows = suite.option_breakdown(machine_name)
    assert [row[0] for row in rows] == expected_rows
    number = {"PA7100": 2, "Pentium": 3, "K5": 4}[machine_name]
    write_result(
        results_dir,
        f"table{number}_{machine_name.lower()}_breakdown.txt",
        text,
    )


def test_tables234_bench_workload_generation(benchmark):
    """Time synthetic workload generation for the K5."""
    machine = get_machine("K5")
    blocks = benchmark(
        generate_blocks, machine, WorkloadConfig(total_ops=2000)
    )
    assert sum(len(b) for b in blocks) >= 2000
