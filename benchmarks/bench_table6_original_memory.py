"""Table 6: original MDES memory requirements."""

from conftest import write_result

from repro.lowlevel.compiled import compile_mdes
from repro.lowlevel.layout import mdes_size_bytes
from repro.machines import get_machine


def test_table6_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.table6())
    rows = {row[0]: row for row in suite.table6_rows()}
    # The K5's flat enumeration explodes; AND/OR stays tiny (98%+ cut).
    assert rows["K5"][5] < rows["K5"][3] / 50
    # The Pentium grows slightly (one-child AND nodes).
    assert rows["Pentium"][5] > rows["Pentium"][3]
    write_result(results_dir, "table6_original_memory.txt", text)


def test_table6_bench_size_accounting(benchmark):
    """Time the layout-model walk over the K5 flat representation."""
    compiled = compile_mdes(get_machine("K5").build_or(), bitvector=False)
    size = benchmark(mdes_size_bytes, compiled)
    assert size > 50_000
