"""Dominated-option removal (paper section 5, Table 8).

An option can be removed from an OR-tree if its resource usages are
identical to, or a superset of, the usages of a higher-priority option:
whenever the dominated option's resources are free, so are the dominating
option's, and priority selects the latter.  Such options arise from
preprocessor enumeration and from description evolution -- the paper's
PA7100 description inherited a duplicated memory-operation option from an
earlier HP PA description without anyone noticing, since schedules stayed
correct.

Removing a dominated option never changes the chosen option at any cycle,
so the schedule is preserved.
"""

from __future__ import annotations

from typing import List

from repro.core.mdes import Mdes
from repro.core.tables import OrTree, ReservationTable
from repro.transforms.base import TreeRewriter


def prune_or_tree(tree: OrTree) -> OrTree:
    """Return ``tree`` without options dominated by a higher priority one."""
    kept: List[ReservationTable] = []
    for option in tree.options:
        if any(higher.dominates(option) for higher in kept):
            continue
        kept.append(option)
    if len(kept) == len(tree.options):
        return tree
    return OrTree(tuple(kept), name=tree.name)


def remove_dominated_options(mdes: Mdes) -> Mdes:
    """Prune every OR-tree of the description."""
    rewriter = TreeRewriter(or_tree_hook=prune_or_tree)
    return rewriter.rewrite_mdes(mdes)
