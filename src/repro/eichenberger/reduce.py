"""Greedy per-option usage minimization preserving collision vectors.

A usage can be deleted from an option when deleting it changes no
pairwise collision vector against any option in the description
(including the option against itself).  Whatever schedules were legal
before remain exactly the legal schedules after -- Eichenberger and
Davidson's equivalence criterion.  Like theirs, this implementation is a
heuristic: it deletes greedily in a fixed order and may miss a true
minimum, but results are near-optimal in practice.

Note the scope of the guarantee: *legality* is preserved, not the
greedy checker's concrete resource choices, so a priority-driven list
scheduler may pick different (equally legal) placements afterwards.
This is weaker than the paper's own transformations, every one of which
preserves the produced schedule bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.mdes import Mdes
from repro.core.tables import OrTree, ReservationTable
from repro.errors import MdesError
from repro.transforms.base import TreeRewriter

#: (resource id, time) pairs -- the working form of an option.
_Pairs = Tuple[Tuple[int, int], ...]


def _collisions(a: Sequence, b: Sequence) -> frozenset:
    return frozenset(
        ua.time - ub.time
        for ua in a
        for ub in b
        if ua.resource is ub.resource and ua.time >= ub.time
    )


def reduce_options(
    options: List[ReservationTable],
) -> List[ReservationTable]:
    """Reduce a closed set of options, preserving pairwise collisions.

    ``options`` must contain every option of the description: a deletion
    is only safe when checked against all of them.
    """
    current: List[List] = [list(option.usages) for option in options]

    def safe_to_drop(index: int, usage_position: int) -> bool:
        candidate = (
            current[index][:usage_position]
            + current[index][usage_position + 1 :]
        )
        if not candidate:
            return False
        original = current[index]
        for other_index, other in enumerate(current):
            if other_index == index:
                if _collisions(candidate, candidate) != _collisions(
                    original, original
                ):
                    return False
                continue
            if _collisions(candidate, other) != _collisions(
                original, other
            ):
                return False
            if _collisions(other, candidate) != _collisions(
                other, original
            ):
                return False
        return True

    changed = True
    while changed:
        changed = False
        for index in range(len(current)):
            position = 0
            while position < len(current[index]):
                if safe_to_drop(index, position):
                    del current[index][position]
                    changed = True
                else:
                    position += 1

    return [
        ReservationTable(tuple(usages), name=options[i].name)
        for i, usages in enumerate(current)
    ]


def reduce_mdes_options(mdes: Mdes) -> Mdes:
    """Apply the reduction to a whole flat (OR-tree) description."""
    for op_class in mdes.op_classes.values():
        if not isinstance(op_class.constraint, OrTree):
            raise MdesError(
                "Eichenberger-Davidson reduction operates on flat OR-tree "
                "descriptions; expand AND/OR-trees first"
            )

    originals: List[ReservationTable] = []
    positions: Dict[int, int] = {}
    for constraint in mdes.constraints():
        for option in constraint.options:
            if id(option) not in positions:
                positions[id(option)] = len(originals)
                originals.append(option)
    for tree in mdes.unused_trees.values():
        for option in tree.options:
            if id(option) not in positions:
                positions[id(option)] = len(originals)
                originals.append(option)

    reduced = reduce_options(originals)

    rewriter = TreeRewriter(
        option_hook=lambda option: reduced[positions[id(option)]]
    )
    return rewriter.rewrite_mdes(mdes)
