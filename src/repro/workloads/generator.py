"""Basic-block generator.

Blocks are built operation by operation:

* opcodes are drawn from the machine's weighted profile (branch-kind
  opcodes are withheld until the block's chosen length is reached, then
  one terminates it -- branches end blocks, as in real assembly);
* each register source points, with the machine's flow probability, at a
  recently defined register (creating a flow dependence with realistic
  locality), otherwise at a live-in register;
* destinations come from a fresh virtual pool in prepass mode or a small
  physical pool in postpass mode (the paper scheduled the x86 machines
  postpass because registers were scarce, which is what creates their
  anti/output dependence density).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.ir.block import BasicBlock
from repro.ir.operation import Operation
from repro.machines.base import (
    KIND_BRANCH,
    KIND_LOAD,
    KIND_STORE,
    Machine,
    OpcodeSpec,
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Generation parameters.

    Attributes:
        total_ops: Approximate number of operations to generate.
        seed: RNG seed; identical configs generate identical workloads.
        recent_window: How far back a flow dependence may reach.
        block_size_range: Overrides the machine's block size range.
        live_in_registers: Names available as dependence-free sources.
    """

    total_ops: int = 20000
    seed: int = 20161202  # MICRO-29's opening day
    recent_window: int = 8
    block_size_range: Optional[Tuple[int, int]] = None
    live_in_registers: int = 12


def _split_profile(
    profile: Sequence[OpcodeSpec],
) -> Tuple[List[OpcodeSpec], List[OpcodeSpec]]:
    branches = [spec for spec in profile if spec.kind == KIND_BRANCH]
    body = [spec for spec in profile if spec.kind != KIND_BRANCH]
    if not branches or not body:
        raise ValueError("profile needs both branch and non-branch opcodes")
    return body, branches


def _pick(rng: random.Random, specs: List[OpcodeSpec]) -> OpcodeSpec:
    weights = [spec.weight for spec in specs]
    return rng.choices(specs, weights=weights, k=1)[0]


class _BlockBuilder:
    """Builds one block, tracking recent definitions for flow locality."""

    def __init__(
        self,
        machine: Machine,
        config: WorkloadConfig,
        rng: random.Random,
        label: str,
    ) -> None:
        self._machine = machine
        self._config = config
        self._rng = rng
        self._block = BasicBlock(label)
        self._recent_defs: List[str] = []
        self._live_ins = [f"li{i}" for i in range(config.live_in_registers)]
        self._next_virtual = 0

    def _source_register(self) -> str:
        rng = self._rng
        if self._recent_defs and rng.random() < self._machine.flow_probability:
            window = self._recent_defs[-self._config.recent_window :]
            return rng.choice(window)
        return rng.choice(self._live_ins)

    def _dest_register(self) -> str:
        rng = self._rng
        if self._machine.scheduling_mode == "postpass":
            return f"r{rng.randrange(self._machine.register_pool)}"
        self._next_virtual += 1
        return f"v{self._block.label}_{self._next_virtual}"

    def add_operation(self, spec: OpcodeSpec) -> None:
        """Append one operation drawn as ``spec``."""
        rng = self._rng
        src_count = rng.choice(spec.src_choices)
        srcs = tuple(self._source_register() for _ in range(src_count))
        dests: Tuple[str, ...] = ()
        if spec.has_dest:
            dests = (self._dest_register(),)
        op = Operation(
            index=len(self._block.operations),
            opcode=spec.opcode,
            dests=dests,
            srcs=srcs,
            is_load=spec.kind == KIND_LOAD,
            is_store=spec.kind == KIND_STORE,
            is_branch=spec.kind == KIND_BRANCH,
        )
        self._block.operations.append(op)
        for dest in dests:
            self._recent_defs.append(dest)

    def finish(self) -> BasicBlock:
        """The completed block."""
        return self._block


def generate_blocks(
    machine: Machine, config: Optional[WorkloadConfig] = None
) -> List[BasicBlock]:
    """Generate a whole workload for one machine."""
    if config is None:
        config = WorkloadConfig()
    rng = random.Random(config.seed)
    body_specs, branch_specs = _split_profile(machine.opcode_profile)
    size_range = config.block_size_range or machine.block_size_range

    blocks: List[BasicBlock] = []
    generated = 0
    while generated < config.total_ops:
        builder = _BlockBuilder(
            machine, config, rng, label=f"B{len(blocks)}"
        )
        body_size = rng.randint(*size_range)
        for _ in range(body_size):
            builder.add_operation(_pick(rng, body_specs))
        builder.add_operation(_pick(rng, branch_specs))
        block = builder.finish()
        blocks.append(block)
        generated += len(block)
    return blocks
