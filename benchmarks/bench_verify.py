"""Verification-layer cost: oracle replay and differential fuzz rate.

The oracle is deliberately naive, so its cost matters only insofar as
it stays cheap enough to run inline (``BatchConfig(verify=True)``, the
golden-corpus check in tier-1).  Two measurements:

* **Oracle replay throughput**: ops/second replaying a real scheduled
  workload on every paper machine, and the oracle:scheduler time
  ratio (replay should cost the same order as scheduling, not more).
* **Fuzz case rate**: seeded differential cases/second -- the number
  that sizes the CI fuzz job's budget.
"""

import statistics
import time

from conftest import KERNEL_OPS, write_result

from repro.analysis.reporting import format_table
from repro.engine.registry import create_engine
from repro.machines import MACHINE_NAMES, get_machine
from repro.scheduler import schedule_workload
from repro.verify import ScheduleOracle, fuzz
from repro.workloads import WorkloadConfig, generate_blocks

STAGE = 4
REPS = 3
FUZZ_CASES = 10


def _median_seconds(fn, reps=REPS):
    samples = []
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


class TestVerifyCost:
    def test_oracle_replay_throughput(self, results_dir):
        rows = []
        payload = {"kernel_ops": KERNEL_OPS, "machines": {}}
        for machine_name in MACHINE_NAMES:
            machine = get_machine(machine_name)
            blocks = generate_blocks(machine, WorkloadConfig(
                total_ops=KERNEL_OPS, seed=7,
            ))
            engine = create_engine("bitvector", machine, stage=STAGE)
            run = schedule_workload(
                machine, None, blocks, keep_schedules=True, engine=engine
            )
            schedule_s = _median_seconds(lambda: schedule_workload(
                machine, None, blocks, keep_schedules=True, engine=engine
            ))
            oracle = ScheduleOracle(machine)
            report = oracle.verify(run.schedules)
            assert report.ok, report.diagnostics
            oracle_s = _median_seconds(
                lambda: oracle.verify(run.schedules)
            )
            ratio = oracle_s / schedule_s if schedule_s else 0.0
            rows.append([
                machine_name,
                f"{run.total_ops / oracle_s:,.0f}",
                f"{oracle_s * 1e3:.1f}",
                f"{ratio:.2f}x",
            ])
            payload["machines"][machine_name] = {
                "ops": run.total_ops,
                "oracle_seconds": oracle_s,
                "schedule_seconds": schedule_s,
                "ratio": ratio,
            }
        text = format_table(
            ["Machine", "replay ops/s", "replay ms", "vs scheduling"],
            rows,
            title=(
                f"Oracle replay cost ({KERNEL_OPS} ops, "
                "bitvector schedules)"
            ),
        )
        write_result(
            results_dir, "verify_oracle.txt", text, payload=payload
        )

    def test_fuzz_case_rate(self, results_dir):
        started = time.perf_counter()
        report = fuzz(seed=42, cases=FUZZ_CASES, shrink=True)
        elapsed = time.perf_counter() - started
        assert report.ok, [f.summary() for f in report.failures]
        rate = FUZZ_CASES / elapsed
        text = format_table(
            ["Cases", "seconds", "cases/s"],
            [[str(FUZZ_CASES), f"{elapsed:.2f}", f"{rate:.1f}"]],
            title=(
                "Differential fuzz rate (seeded, full stage x backend "
                "matrix)"
            ),
        )
        write_result(
            results_dir, "verify_fuzz.txt", text,
            payload={
                "cases": FUZZ_CASES,
                "seconds": elapsed,
                "cases_per_second": rate,
            },
        )
