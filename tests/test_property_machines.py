"""Property-based tests over whole randomly generated machines.

These push the paper's invariants through arbitrary small machine
descriptions and workloads:

* the full transformation pipeline and both representations produce the
  exact same schedule (section 4);
* the HMDES writer round-trips any description;
* LMDES serialization preserves sizes and checker behaviour.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mdes import Mdes, OperationClass
from repro.core.resource import ResourceTable
from repro.core.tables import AndOrTree, OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.ir.block import BasicBlock
from repro.ir.operation import Operation
from repro.lowlevel.compiled import compile_mdes
from repro.lowlevel.layout import mdes_size_bytes
from repro.scheduler import schedule_workload
from repro.transforms import run_pipeline

pytestmark = pytest.mark.slow


@st.composite
def random_mdes(draw):
    """A small random machine: 1-3 classes of disjoint-pool AND/OR-trees."""
    resources = ResourceTable()
    pools = [
        resources.declare_many([f"P{p}_{i}" for i in range(3)])
        for p in range(4)
    ]
    n_classes = draw(st.integers(1, 3))
    op_classes = {}
    opcode_map = {}
    for class_index in range(n_classes):
        n_trees = draw(st.integers(1, 3))
        children = []
        for tree_index in range(n_trees):
            pool = pools[tree_index]
            n_options = draw(st.integers(1, 3))
            options = []
            for _ in range(n_options):
                pairs = draw(
                    st.lists(
                        st.tuples(st.integers(0, 2), st.integers(0, 2)),
                        min_size=1,
                        max_size=3,
                        unique=True,
                    )
                )
                options.append(
                    ReservationTable(
                        tuple(
                            ResourceUsage(time, pool[res])
                            for res, time in pairs
                        )
                    )
                )
            children.append(OrTree(tuple(options)))
        name = f"k{class_index}"
        constraint = AndOrTree(tuple(children), name=name)
        latency = draw(st.integers(1, 3))
        op_classes[name] = OperationClass(name, constraint, latency)
        opcode_map[f"OP{class_index}"] = name
    mdes = Mdes("Rand", resources, op_classes, opcode_map)
    mdes.validate()
    return mdes


@st.composite
def random_block(draw, opcodes):
    """A random basic block over the machine's opcodes."""
    n_ops = draw(st.integers(1, 8))
    operations = []
    for index in range(n_ops):
        opcode = draw(st.sampled_from(opcodes))
        n_srcs = draw(st.integers(0, 2))
        srcs = tuple(
            f"r{draw(st.integers(0, max(0, index)))}" for _ in range(n_srcs)
        )
        operations.append(
            Operation(index, opcode, (f"r{index + 1}",), srcs)
        )
    return BasicBlock("B", operations)


class _RandomMachine:
    """Just enough Machine surface for the list scheduler."""

    def __init__(self, mdes):
        self.name = mdes.name
        self._mdes = mdes

    def build(self):
        return self._mdes

    def classify(self, op, cascaded=False):
        return self._mdes.opcode_map[op.opcode]

    def latency(self, op):
        return self._mdes.latency_for_opcode(op.opcode)

    def flow_latency(self, producer, consumer):
        return self._mdes.flow_latency(
            self.classify(producer), self.classify(consumer)
        )

    def bypass(self, producer, consumer):
        return self._mdes.bypass_for(
            self.classify(producer), self.classify(consumer)
        )

    def cascade_ok(self, producer, consumer):
        return self.bypass(producer, consumer) is not None


class TestPipelineOnRandomMachines:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_schedules_invariant_across_stages_and_reps(self, data):
        mdes = data.draw(random_mdes())
        block = data.draw(random_block(sorted(mdes.opcode_map)))
        machine = _RandomMachine(mdes)
        signatures = set()
        for base in (mdes, mdes.expanded()):
            pipeline = run_pipeline(base)
            for staged in (pipeline.stages[0], pipeline.final):
                for bitvector in (False, True):
                    compiled = compile_mdes(staged, bitvector=bitvector)
                    run = schedule_workload(
                        machine, compiled, [block], keep_schedules=True
                    )
                    signatures.add(run.signature())
        assert len(signatures) == 1

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_cleanup_stages_never_grow_the_representation(self, data):
        """Redundancy elimination and option removal only delete.

        The later stages carry small caveats this suite documents
        elsewhere: usage-time shifting moves resources *independently*
        and can split usages that used to share a cycle (it concentrated
        usages on the paper's machines but is not a guaranteed shrink),
        and common-usage factoring pays a node overhead per hoist.
        """
        mdes = data.draw(random_mdes())
        pipeline = run_pipeline(mdes)
        before = mdes_size_bytes(compile_mdes(mdes, bitvector=True))
        cleaned = pipeline.stage("dominated-option-removal")
        after = mdes_size_bytes(compile_mdes(cleaned, bitvector=True))
        assert after <= before

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_scalar_size_invariant_under_shift_and_sort(self, data):
        """Without bit-vector packing, time shifting and check sorting
        are pure permutations of the same pairs: size cannot change."""
        mdes = data.draw(random_mdes())
        pipeline = run_pipeline(mdes)
        cleaned = mdes_size_bytes(
            compile_mdes(pipeline.stage("dominated-option-removal"),
                         bitvector=False)
        )
        sorted_stage = mdes_size_bytes(
            compile_mdes(pipeline.stage("usage-check-sort"),
                         bitvector=False)
        )
        assert sorted_stage == cleaned

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_factoring_overhead_is_bounded(self, data):
        """Factoring may add at most one small node per hoisted usage."""
        mdes = data.draw(random_mdes())
        pipeline = run_pipeline(mdes)
        pre = mdes_size_bytes(
            compile_mdes(pipeline.stage("usage-check-sort"),
                         bitvector=True)
        )
        post = mdes_size_bytes(
            compile_mdes(pipeline.stage("common-usage-factoring"),
                         bitvector=True)
        )
        # New one-option tree: tree node (12B) + option (16B) + pointer
        # (4B) minus at least one removed pair; bound loosely.
        n_trees = len(mdes.op_classes) * 4
        assert post <= pre + 32 * n_trees


class TestWriterOnRandomMachines:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_hmdes_roundtrip(self, data):
        from repro.hmdes import load_mdes, write_mdes

        mdes = data.draw(random_mdes())
        again = load_mdes(write_mdes(mdes))
        assert set(again.op_classes) == set(mdes.op_classes)
        for name in mdes.op_classes:
            original = mdes.op_class(name)
            recovered = again.op_class(name)
            assert recovered.constraint == original.constraint
            assert recovered.latency == original.latency


class TestLmdesOnRandomMachines:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_lmdes_roundtrip_size(self, data):
        from repro.lowlevel.serialize import load_lmdes, save_lmdes

        mdes = data.draw(random_mdes())
        compiled = compile_mdes(mdes, bitvector=True)
        loaded = load_lmdes(save_lmdes(compiled))
        assert mdes_size_bytes(loaded) == mdes_size_bytes(compiled)
