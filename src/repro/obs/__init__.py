"""``repro.obs`` -- pipeline-wide tracing and metrics.

Every layer of the reproduction -- the HMDES front end, the
transformation pipeline, the query engines and their caches, the four
schedulers, and the batch service -- reports into this one subsystem:

* a process-wide :class:`~repro.obs.registry.MetricsRegistry`
  (:data:`REGISTRY`) of counters, gauges, and fixed-bucket histograms,
* a process-wide :class:`~repro.obs.trace.Tracer` (:data:`TRACER`) of
  hierarchical timing spans,
* exporters (:mod:`repro.obs.export`): Prometheus text exposition,
  JSONL trace files, and the human ``repro stats`` / ``repro trace``
  CLI views.

**Observability is off by default** so the paper-reproduction
benchmarks measure the algorithms, not the bookkeeping.  Enable it with
the ``REPRO_OBS=1`` environment variable or :func:`enable`.  While
disabled, every helper here is a module-flag test followed by an
identity return of a shared no-op object -- no allocation, no clock
read, no registry traffic -- and the hot constraint-check paths are not
instrumented at all (their counters flow through the pre-existing
``CheckStats``/``CacheStats`` objects, which the registry exposes as
pull-time *views* instead; see :mod:`repro.obs.views`).

Typical instrumentation site::

    from repro import obs

    with obs.span("transform:time-shift") as sp:
        after = shift_usage_times(mdes)
    sp.set(options_delta=count(after) - count(mdes))

and a pull site::

    print(obs.to_prometheus(obs.REGISTRY))
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.obs.export import (
    format_metrics,
    format_quantiles,
    format_trace,
    histogram_quantile,
    parse_prometheus,
    to_prometheus,
    trace_from_jsonl,
    trace_to_jsonl,
)
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NULL_CAPTURE, NULL_SPAN, Span, Tracer
from repro.obs.views import StatsViews


def _env_truthy(value: str) -> bool:
    return value.strip().lower() in ("1", "true", "yes", "on")


#: Whether instrumentation records anything (module-level fast path).
_ENABLED = _env_truthy(os.environ.get("REPRO_OBS", ""))

#: Whether ``memory=True`` spans actually run tracemalloc accounting.
#: Doubly opt-in: the site requests it *and* this flag is on, because
#: tracemalloc slows allocation-heavy phases far beyond the 2% obs
#: overhead budget.
_MEMORY = _env_truthy(os.environ.get("REPRO_OBS_MEMORY", ""))

#: The process-wide metrics registry.
REGISTRY = MetricsRegistry()

#: The process-wide tracer.
TRACER = Tracer()

#: The process-wide stats-view table (CheckStats/CacheStats adapters).
VIEWS = StatsViews()


def _memory_samples():
    """Pull-time Prometheus view over the trace's memory spans."""
    from repro.obs.prof import memory_phases

    samples = []
    for name, entry in sorted(memory_phases(TRACER).items()):
        labels = (("span", name),)
        samples.append((
            "repro_span_mem_peak_bytes", labels,
            float(entry["peak_bytes"]), "gauge",
            "Peak tracemalloc bytes over a named memory span.",
        ))
        samples.append((
            "repro_span_mem_net_bytes", labels,
            float(entry["net_bytes"]), "gauge",
            "Net bytes allocated across a named memory span.",
        ))
    return samples


def _install_views() -> None:
    VIEWS.install(REGISTRY)
    REGISTRY.register_view("obs:memory", _memory_samples)


_install_views()


def enabled() -> bool:
    """Whether observability is currently recording."""
    return _ENABLED


def enable() -> None:
    """Turn recording on for this process."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn recording off (existing data is kept until :func:`reset`)."""
    global _ENABLED
    _ENABLED = False


def memory_enabled() -> bool:
    """Whether ``memory=True`` spans record tracemalloc figures."""
    return _MEMORY


def enable_memory() -> None:
    """Turn tracemalloc accounting on for memory-requesting spans."""
    global _MEMORY
    _MEMORY = True


def disable_memory() -> None:
    """Turn tracemalloc accounting off."""
    global _MEMORY
    _MEMORY = False


def reset() -> None:
    """Drop all recorded metrics, views, and spans (between CLI runs)."""
    REGISTRY.reset()
    TRACER.reset()
    VIEWS.clear()
    _install_views()


# ----------------------------------------------------------------------
# Recording helpers (all no-ops while disabled)
# ----------------------------------------------------------------------


def span(name: str, memory: bool = False, **attrs: Any):
    """Open a trace span; the shared no-op span while disabled.

    ``memory=True`` additionally records tracemalloc peak/net bytes
    into the span's attrs -- but only when memory profiling is enabled
    process-wide (:func:`enable_memory` / ``REPRO_OBS_MEMORY=1``).
    """
    if not _ENABLED:
        return NULL_SPAN
    return TRACER.span(name, memory=memory and _MEMORY, **attrs)


def capture():
    """Trace a region detached from the ambient stack (worker chunks)."""
    if not _ENABLED:
        return NULL_CAPTURE
    return TRACER.capture()


def attach(span_dicts: List[Dict[str, Any]]) -> None:
    """Graft captured span dicts under the current span."""
    if _ENABLED and span_dicts:
        TRACER.attach(span_dicts)


def count(name: str, amount: float = 1.0, help: str = "",
          **labels: str) -> None:
    """Increment a counter (created on first use)."""
    if _ENABLED:
        REGISTRY.counter(name, help, **labels).inc(amount)


def set_gauge(name: str, value: float, help: str = "",
              **labels: str) -> None:
    """Set a gauge (created on first use)."""
    if _ENABLED:
        REGISTRY.gauge(name, help, **labels).set(value)


def observe(name: str, value: float, help: str = "",
            buckets=DEFAULT_TIME_BUCKETS, **labels: str) -> None:
    """Record a histogram observation (created on first use)."""
    if _ENABLED:
        REGISTRY.histogram(name, help, buckets=buckets, **labels).observe(
            value
        )


def register_check_stats(stats, **labels: str) -> None:
    """Expose a live ``CheckStats`` through the registry (weakly held).

    Unlike the recording helpers this is *not* gated on
    :func:`enabled`: views cost nothing until someone collects, and
    long-lived objects (the global description cache) register at
    import time, typically before ``enable()`` runs.  Re-registering
    the same object with the same labels is a no-op.
    """
    VIEWS.add_check_stats(stats, **labels)


def register_cache_stats(stats, **labels: str) -> None:
    """Expose a live ``CacheStats`` through the registry (weakly held).

    Same registration semantics as :func:`register_check_stats`.
    """
    VIEWS.add_cache_stats(stats, **labels)


# ----------------------------------------------------------------------
# Read-side helpers
# ----------------------------------------------------------------------


def phase_seconds() -> Dict[str, float]:
    """Total recorded wall seconds per span name."""
    return TRACER.seconds_by_name()


def transform_effects() -> List[Dict[str, Any]]:
    """Per-transform timing and size/option-count deltas, trace order.

    Each entry is one ``transform:*`` span flattened to a dict -- the
    live reproduction of the paper's Table 7/8/13 effect columns for
    whatever compiles ran under the current trace.
    """
    effects: List[Dict[str, Any]] = []
    containers = ("transform:pipeline", "transform:staged")
    for sp in TRACER.walk():
        if sp.name.startswith("transform:") and sp.name not in containers:
            entry: Dict[str, Any] = {
                "stage": sp.name[len("transform:"):],
                "seconds": sp.seconds,
            }
            entry.update(sp.attrs)
            effects.append(entry)
    return effects


def summary() -> Dict[str, Any]:
    """The machine-readable obs digest CLI ``--json`` output embeds."""
    from repro.obs.prof import memory_phases

    digest = {
        "phases": phase_seconds(),
        "transforms": transform_effects(),
    }
    memory = memory_phases(TRACER)
    if memory:
        digest["memory"] = memory
    return digest


__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Span", "Tracer",
    "StatsViews", "REGISTRY", "TRACER", "VIEWS",
    "DEFAULT_TIME_BUCKETS", "NULL_SPAN", "NULL_CAPTURE",
    "enabled", "enable", "disable", "reset",
    "memory_enabled", "enable_memory", "disable_memory",
    "span", "capture", "attach", "count", "set_gauge", "observe",
    "register_check_stats", "register_cache_stats",
    "phase_seconds", "transform_effects", "summary",
    "to_prometheus", "parse_prometheus", "format_metrics", "format_trace",
    "format_quantiles", "histogram_quantile",
    "trace_to_jsonl", "trace_from_jsonl",
]
