"""Exception hierarchy for the MDES reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MdesError(ReproError):
    """An inconsistency in a machine description."""


class HmdesError(MdesError):
    """Base class for high-level MDES language errors."""


class HmdesSyntaxError(HmdesError):
    """A lexical or syntactic error in HMDES source text.

    Carries the 1-based source line so the MDES writer can find the fault.
    """

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class HmdesSemanticError(HmdesError):
    """A well-formed HMDES construct that does not make sense.

    Examples: a reference to an undeclared resource, a duplicate section
    entry, or an operation mapped to a missing operation class.
    """


class SchedulingError(ReproError):
    """The scheduler could not make progress (e.g. an unschedulable op)."""
