"""Dependence-feasibility of one (operation, cycle) placement.

Both forward schedulers -- the greedy list scheduler and the exact
branch-and-bound scheduler (:mod:`repro.exact`) -- ask the same two
questions while placing an operation against already-placed
predecessors:

* what is the earliest cycle its dependences admit, and
* is a *specific* cycle admissible, and if so, does issuing there ride
  a forwarding shortcut (which may substitute the operation class)?

The answers must agree bit for bit between the schedulers (a schedule
the exact scheduler proves optimal has to be one the list scheduler's
dependence model also accepts), so the logic lives here once.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir.dependence import FLOW, DependenceGraph


def earliest_cycle(
    graph: DependenceGraph, times: Dict[int, int], index: int
) -> int:
    """Earliest cycle the placed predecessors admit via shortcuts.

    Uses each edge's ``min_latency`` (the forwarding-shortcut distance
    when one exists), so the result is a valid *lower* bound on the
    issue cycle; individual cycles at or above it still need
    :func:`cycle_feasibility`.
    """
    earliest = 0
    for edge in graph.preds_of(index):
        candidate = times[edge.pred] + edge.min_latency
        if candidate > earliest:
            earliest = candidate
    return earliest


def cycle_feasibility(
    graph: DependenceGraph,
    times: Dict[int, int],
    index: int,
    cycle: int,
) -> Optional[Tuple[bool, str]]:
    """Data-dependence feasibility of placing ``index`` at ``cycle``.

    Returns ``None`` when some placed predecessor forbids the cycle,
    else ``(cascaded, bypass_class)``: whether some flow producer
    completes only via a forwarding shortcut, and the substitute
    operation class the shortcut demands (empty when none does).
    """
    cascaded = False
    bypass_class = ""
    for edge in graph.preds_of(index):
        produced_at = times[edge.pred]
        if cycle >= produced_at + edge.latency:
            continue
        if (
            edge.kind == FLOW
            and edge.is_cascade_eligible
            and cycle == produced_at + edge.min_latency
        ):
            cascaded = True
            if edge.bypass_class:
                bypass_class = edge.bypass_class
            continue
        return None
    return cascaded, bypass_class


def stable_cycle(
    graph: DependenceGraph, times: Dict[int, int], index: int
) -> int:
    """First cycle past which dependence feasibility stops varying.

    Beyond every placed producer's full latency the placement is
    unconditionally admissible and no shortcut applies, so the
    operation class is the static one -- the point where a scalar
    feasibility walk can hand over to a batched resource probe.
    """
    stable = 0
    for edge in graph.preds_of(index):
        candidate = times[edge.pred] + edge.latency
        if candidate > stable:
            stable = candidate
    return stable
