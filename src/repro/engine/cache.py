"""LRU cache of staged and compiled machine descriptions.

Benchmark and analysis drivers repeatedly ask for "machine M, staged
through transformation stage S, in representation R, compiled with
backend B's options" -- and before this cache every caller re-ran the
transformation pipeline and recompiled the HMDES from scratch.  The
cache keys that tuple, keeps the most recently used entries, and exposes
hit/miss counters so perf tests can assert the re-translation is gone.

Entries are immutable once built (transforms are functional, compiled
trees are frozen dataclasses), so sharing them across engines, suites,
and CLI invocations inside one process is safe.  Keys use the machine's
*identity* as well as its name: two distinct machine objects that happen
to share a name (ad-hoc test machines) never alias.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Tuple

from repro.core.mdes import Mdes
from repro.lowlevel.compiled import CompiledMdes, compile_mdes
from repro.transforms.pipeline import staged_mdes


@dataclass
class CacheStats:
    """Hit/miss accounting for the description cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DescriptionCache:
    """LRU map from (machine, rep, stage, compile options) to results."""

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1: {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple, Tuple[Any, Any]]" = OrderedDict()
        self.stats = CacheStats()

    def _lookup(
        self, key: Tuple, machine, build: Callable[[], Any]
    ) -> Any:
        entry = self._entries.get(key)
        if entry is not None and entry[0] is machine:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[1]
        self.stats.misses += 1
        value = build()
        self._entries[key] = (machine, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return value

    # ------------------------------------------------------------------
    # Public lookups
    # ------------------------------------------------------------------

    def mdes(
        self, machine, rep: str, stage: int, reduce: bool = False
    ) -> Mdes:
        """The machine's staged description in one representation.

        ``reduce`` additionally applies the Eichenberger-Davidson
        per-option usage reduction (flat descriptions only).
        """
        if rep not in ("or", "andor"):
            raise ValueError(f"rep must be 'or' or 'andor': {rep!r}")
        key = ("mdes", machine.name, id(machine), rep, stage, reduce)

        def build() -> Mdes:
            base = (
                machine.build_or() if rep == "or" else machine.build_andor()
            )
            staged = staged_mdes(base, stage)
            if reduce:
                from repro.eichenberger import reduce_mdes_options

                staged = reduce_mdes_options(staged)
            return staged

        return self._lookup(key, machine, build)

    def compiled(
        self,
        machine,
        rep: str,
        stage: int,
        bitvector: bool,
        reduce: bool = False,
    ) -> CompiledMdes:
        """The staged description compiled for constraint checking."""
        key = (
            "lmdes", machine.name, id(machine), rep, stage, bitvector,
            reduce,
        )

        def build() -> CompiledMdes:
            return compile_mdes(
                self.mdes(machine, rep, stage, reduce), bitvector=bitvector
            )

        return self._lookup(key, machine, build)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self.stats = CacheStats()


#: The process-wide cache every registry/analysis path routes through.
GLOBAL_CACHE = DescriptionCache()
