#!/usr/bin/env python3
"""Retargeting story: evolve a description to a new processor.

The paper's motivation: compilers need accurate descriptions of rapidly
shipping processors, so descriptions get *evolved*, not rewritten -- and
they accrete duplicated and dead information along the way (section 5).

This example plays the MDES writer: it takes a shipped single-issue core
("Mercury"), derives the dual-issue successor ("Venus") by copy-paste --
leaving behind a dead tree, a duplicated option, and cloned subtrees --
then lets the transformation pipeline clean up the mess and reports what
each step recovered.

Run:  python examples/retarget_new_processor.py
"""

from repro.hmdes import load_mdes, write_mdes
from repro.lowlevel import compile_mdes, mdes_size_bytes
from repro.transforms import (
    eliminate_redundancy,
    remove_dominated_options,
    run_pipeline,
)

# The evolved description, with the classic retargeting scars:
#  * OT_old_issue survives from Mercury but nothing references it;
#  * the memory issue tree gained a duplicated option during the port;
#  * the FP class got a private copy of the issue tree instead of a
#    reference.
VENUS_HMDES = """
mdes Venus;

section resource {
    Issue[0..1];
    ALU[0..1];
    MEM;
    FPU;
}

section ortree {
    OT_issue { $for i in 0..1 { option { use Issue[$i] at 0; } } }

    // Mercury's single-issue tree: dead since the port.
    OT_old_issue { option { use Issue[0] at 0; } }

    // Copy-paste accident: the second and third options are identical.
    OT_mem_issue {
        option { use Issue[0] at 0; }
        option { use Issue[1] at 0; }
        option { use Issue[1] at 0; }
    }
}

section andortree {
    AOT_alu { ortree OT_issue;
              ortree { $for a in 0..1 { option { use ALU[$a] at 0; } } } }
    AOT_mem { ortree OT_mem_issue; ortree { option { use MEM at 0; } } }
    AOT_fp {
        // Cloned instead of referencing OT_issue.
        ortree { $for i in 0..1 { option { use Issue[$i] at 0; } } }
        ortree { option { use FPU at 0; use FPU at 1; } }
    }
}

section opclass {
    alu  { resv AOT_alu; latency 1; }
    load { resv AOT_mem; latency 2; }
    fp   { resv AOT_fp;  latency 2; }
}

section operation { ADD: alu; LD: load; FADD: fp; }
"""


def size_of(mdes):
    return mdes_size_bytes(compile_mdes(mdes, bitvector=True))


def main():
    venus = load_mdes(VENUS_HMDES)
    print(f"Loaded {venus}")
    print(f"  dead trees left over from Mercury: "
          f"{sorted(venus.unused_trees)}")
    print(f"  load options before cleanup: "
          f"{venus.op_class('load').option_count()}")
    print(f"  size as written: {size_of(venus)} bytes")

    cleaned = eliminate_redundancy(venus)
    print("\nAfter redundancy elimination + dead-code removal:")
    print(f"  dead trees: {sorted(cleaned.unused_trees) or 'none'}")
    fp = cleaned.op_class("fp").constraint
    alu = cleaned.op_class("alu").constraint
    shared = {id(t) for t in fp.or_trees} & {id(t) for t in alu.or_trees}
    print(f"  fp and alu now share {len(shared)} issue tree(s)")
    print(f"  size: {size_of(cleaned)} bytes")

    pruned = remove_dominated_options(cleaned)
    print("\nAfter dominated-option removal:")
    print(f"  load options: {pruned.op_class('load').option_count()}")

    final = run_pipeline(venus).final
    print(f"\nFully optimized size: {size_of(final)} bytes "
          f"({size_of(venus) - size_of(final)} bytes recovered)")

    print("\nThe cleaned description, written back as HMDES source:")
    print(write_mdes(final))


if __name__ == "__main__":
    main()
