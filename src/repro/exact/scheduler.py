"""Branch-and-bound exact scheduling of small basic blocks.

The search places operations in program order (dependence edges always
point forward, so this is a topological order) and branches on the issue
cycle of each.  Minimizing the last issue cycle minimizes schedule
length: any feasible schedule shifts down to start at cycle zero
(dependences are relative and an empty RU map is time-invariant), so the
schedule with the smallest maximum cycle starts at zero and has length
``max + 1``.

What keeps the search exact over the greedy query engines:

* **Candidate clamping** -- an operation issuing at cycle *c* forces a
  min-latency successor chain out to ``c + tail``, so candidates beyond
  ``incumbent_max - 1 - tail`` cannot improve on the incumbent.
* **Greedy + repair placement** -- ``engine.try_reserve`` commits the
  first available option per OR-tree, which can fail on cycle
  assignments that a different option choice would admit.  On greedy
  failure the placement is retried with :mod:`repro.exact.assign`: a
  complete backtracking assignment over *all* placed operations'
  compiled options.  This matches the oracle's definition of
  feasibility, so "repair says no" really means infeasible.
* **Dominance memoization** -- two search prefixes with the same
  dependence frontier (times of placed operations that still have
  unplaced successors) and the same multiset of (class, cycle) demands
  admit exactly the same completions; only the one with the smaller
  running maximum needs exploring.
* **Budgets** -- a node budget and an optional wall-clock budget degrade
  the result to "best found + lower bound" with ``optimal=False``
  instead of hanging; a result whose length meets the lower bound is
  proven optimal even when the budget tripped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.engine.base import QueryEngine
from repro.exact.assign import (
    BUDGET,
    SAT,
    constraint_slots,
    find_assignment,
)
from repro.exact.bounds import (
    class_capacity,
    critical_path_bound,
    min_asap,
    min_tails,
    resource_bound,
)
from repro.ir.block import BasicBlock
from repro.ir.dependence import build_dependence_graph
from repro.lowlevel.checker import CheckStats
from repro.lowlevel.compiled import CompiledAndOrTree
from repro.scheduler.feasibility import cycle_feasibility, earliest_cycle
from repro.scheduler.list_scheduler import ListScheduler
from repro.scheduler.schedule import BlockSchedule

#: Search-outcome reasons.
REASON_OPTIMAL = "optimal"
REASON_BOUND_MET = "bound-met"
REASON_NODE_BUDGET = "node-budget"
REASON_TIME_BUDGET = "time-budget"
REASON_OVERSIZE = "oversize"

_GREEDY = 0
_REPAIR = 1


@dataclass(frozen=True)
class ExactBudget:
    """Resource limits for one block's search.

    Attributes:
        max_nodes: Branch-and-bound (operation, cycle) trials before the
            search degrades to best-found; ``None`` is unlimited.
        max_seconds: Wall-clock limit per block; ``None`` is unlimited.
            Leave unset where determinism matters (the golden corpus) --
            a tripped clock truncates the search at a machine-dependent
            point.
        repair_nodes: Option-assignment extension attempts per repair
            invocation (see :func:`repro.exact.assign.find_assignment`).
    """

    max_nodes: Optional[int] = 50_000
    max_seconds: Optional[float] = None
    repair_nodes: int = 20_000


@dataclass
class ExactBlockResult:
    """Outcome of exactly scheduling one basic block.

    Attributes:
        schedule: The best schedule found (optimal when ``optimal``).
        optimal: Whether ``schedule`` is provably minimum-length.
        reason: Why the search ended -- one of the ``REASON_*`` values.
        lower_bound: Proven lower bound on the block's schedule length.
        heuristic_length: The list-scheduler seed's length (the gap
            baseline).
        nodes: (operation, cycle) trials the search performed.
        pruned: Subtrees cut by the dominance memo.
        repairs: Greedy failures retried with the complete assignment.
        seconds: Wall time spent on the block.
    """

    schedule: BlockSchedule
    optimal: bool
    reason: str
    lower_bound: int
    heuristic_length: int
    nodes: int = 0
    pruned: int = 0
    repairs: int = 0
    seconds: float = 0.0

    @property
    def length(self) -> int:
        """Schedule length in cycles."""
        return self.schedule.length

    @property
    def gap(self) -> int:
        """Heuristic minus exact length (>= 0 when ``optimal``)."""
        return self.heuristic_length - self.length


@dataclass
class ExactRunResult:
    """Aggregate outcome of exactly scheduling a workload."""

    machine_name: str
    results: List[ExactBlockResult] = field(default_factory=list)
    stats: CheckStats = field(default_factory=CheckStats)
    total_ops: int = 0
    seconds: float = 0.0

    @property
    def schedules(self) -> List[BlockSchedule]:
        """Per-block schedules, in workload order."""
        return [result.schedule for result in self.results]

    @property
    def total_cycles(self) -> int:
        """Sum of the (best-found) block schedule lengths."""
        return sum(result.length for result in self.results)

    @property
    def heuristic_cycles(self) -> int:
        """Sum of the list-scheduler seed lengths (gap baseline)."""
        return sum(result.heuristic_length for result in self.results)

    @property
    def gap_cycles(self) -> int:
        """Total cycles the heuristic lost to the proven optimum."""
        return self.heuristic_cycles - self.total_cycles

    @property
    def optimal_blocks(self) -> int:
        """Blocks whose schedule is provably optimal."""
        return sum(1 for result in self.results if result.optimal)

    @property
    def all_optimal(self) -> bool:
        """Whether every block was solved to proven optimality."""
        return all(result.optimal for result in self.results)

    @property
    def nodes(self) -> int:
        return sum(result.nodes for result in self.results)

    @property
    def repairs(self) -> int:
        return sum(result.repairs for result in self.results)

    @property
    def pruned(self) -> int:
        return sum(result.pruned for result in self.results)

    @property
    def attempts_per_op(self) -> float:
        """Average engine attempts per operation (seed + search)."""
        return self.stats.attempts / self.total_ops if self.total_ops else 0.0

    def signature(self) -> tuple:
        """Digest of every block schedule (cf. ``RunResult.signature``)."""
        return tuple(
            schedule.signature() for schedule in self.schedules
        )

    def __repr__(self) -> str:
        return (
            f"ExactRunResult({self.machine_name!r}, ops={self.total_ops}, "
            f"cycles={self.total_cycles} (heuristic "
            f"{self.heuristic_cycles}), optimal "
            f"{self.optimal_blocks}/{len(self.results)})"
        )


class ExactScheduler:
    """Provably-minimum-length schedules for small basic blocks.

    Queries resource feasibility through the same :class:`QueryEngine`
    protocol (and therefore the same compiled LMDES) as the heuristic
    schedulers, so a length gap between the two isolates the *search*,
    never the machine model.
    """

    def __init__(
        self,
        machine,
        engine: Optional[QueryEngine] = None,
        budget: Optional[ExactBudget] = None,
        max_block_ops: Optional[int] = None,
    ) -> None:
        if engine is None:
            from repro.engine.registry import create_engine

            engine = create_engine("exact", machine)
        if max_block_ops is None:
            from repro.engine.registry import get_engine_spec

            max_block_ops = get_engine_spec("exact").max_block_ops
        self.machine = machine
        self.engine = engine
        self.budget = budget if budget is not None else ExactBudget()
        self.max_block_ops = max_block_ops

    # ------------------------------------------------------------------
    # Per-block search
    # ------------------------------------------------------------------

    def schedule_block(self, block: BasicBlock) -> ExactBlockResult:
        """Exactly schedule one block (or degrade per the budget)."""
        from repro import obs

        # The perf_counter pair only feeds the result's ``seconds``
        # field (kept for API stability); timing for observability
        # flows through the exact:* spans below.
        start = perf_counter()
        if len(block) == 0:
            return ExactBlockResult(
                schedule=BlockSchedule(block), optimal=True,
                reason=REASON_OPTIMAL, lower_bound=0, heuristic_length=0,
                seconds=perf_counter() - start,
            )

        with obs.span("exact:seed", ops=len(block)) as seed_span:
            seed = ListScheduler(
                self.machine, engine=self.engine
            ).schedule_block(block)
            _normalize(seed)
        seed_span.set(length=seed.length)

        graph = build_dependence_graph(
            block,
            self.machine.latency,
            flow_latency_of=self.machine.flow_latency,
            bypass_of=self.machine.bypass,
        )
        asap = min_asap(graph)
        tails = min_tails(graph)
        lower_max = self._lower_bound(block, graph, asap)
        lower_len = lower_max + 1

        if (
            self.max_block_ops is not None
            and len(block) > self.max_block_ops
        ):
            return ExactBlockResult(
                schedule=seed, optimal=seed.length == lower_len,
                reason=REASON_OVERSIZE, lower_bound=lower_len,
                heuristic_length=seed.length,
                seconds=perf_counter() - start,
            )
        if seed.length == lower_len:
            return ExactBlockResult(
                schedule=seed, optimal=True, reason=REASON_BOUND_MET,
                lower_bound=lower_len, heuristic_length=seed.length,
                seconds=perf_counter() - start,
            )

        search = _BlockSearch(
            self.machine, self.engine, self.budget, block, graph,
            tails, seed,
        )
        with obs.span(
            "exact:search", ops=len(block), lower_bound=lower_len,
            seed_length=seed.length,
        ) as search_span:
            search.run()
        search_span.set(
            nodes=search.nodes, pruned=search.pruned,
            repairs=search.repairs, complete=search.complete,
        )
        best = BlockSchedule(
            block, times=search.best_times, classes=search.best_classes
        )
        _normalize(best)
        reason = search.trip_reason or REASON_OPTIMAL
        optimal = search.complete or best.length == lower_len
        return ExactBlockResult(
            schedule=best, optimal=optimal, reason=reason,
            lower_bound=lower_len, heuristic_length=seed.length,
            nodes=search.nodes, pruned=search.pruned,
            repairs=search.repairs, seconds=perf_counter() - start,
        )

    def _lower_bound(self, block, graph, asap) -> int:
        """Best available lower bound on the block's last issue cycle."""
        tails = min_tails(graph)
        bound = critical_path_bound(asap, tails)
        class_of: Dict[int, Optional[str]] = {}
        capacity_of: Dict[str, Optional[int]] = {}
        for op in block.operations:
            if any(
                edge.is_cascade_eligible
                for edge in graph.preds_of(op.index)
            ):
                # The shortcut substitutes another class; the density
                # argument no longer applies to this operation.
                class_of[op.index] = None
                continue
            class_name = self.machine.classify(op, False)
            class_of[op.index] = class_name
            if class_name not in capacity_of:
                capacity_of[class_name] = class_capacity(
                    self.engine.constraint_for_class(class_name)
                )
        return max(bound, resource_bound(asap, class_of, capacity_of))


class _BlockSearch:
    """The branch-and-bound state for one block."""

    def __init__(
        self, machine, engine, budget, block, graph, tails, seed
    ) -> None:
        self.machine = machine
        self.engine = engine
        self.budget = budget
        self.graph = graph
        self.tails = tails
        self.ops = list(block.operations)
        self.n = len(self.ops)
        self.order = [op.index for op in self.ops]
        position = {index: pos for pos, index in enumerate(self.order)}
        # Latest position still depending on each op: the op stays in
        # the memo key's dependence frontier until that position places.
        self.last_succ_pos = {
            index: max(
                (position[edge.succ] for edge in graph.succs_of(index)),
                default=-1,
            )
            for index in self.order
        }
        self.static_class = {
            op.index: machine.classify(op, False) for op in self.ops
        }
        # Greedy try_reserve is already complete when every OR-tree has
        # at most one option -- no repair can succeed where it failed.
        self.single_option = {
            name: _single_option(engine.constraint_for_class(name))
            for name in set(self.static_class.values())
        }
        self.best_times = dict(seed.times)
        self.best_classes = dict(seed.classes)
        self.best_max = max(seed.times.values())
        self.state = engine.new_state()
        self.times: Dict[int, int] = {}
        self.classes: Dict[int, str] = {}
        self.undo: List[Tuple[int, object]] = []
        self.memo: Dict[tuple, int] = {}
        # Repair outcomes depend only on the (class, cycle) demand
        # multiset, which recurs constantly across the search.
        self.repair_cache: Dict[tuple, Tuple[str, Optional[tuple]]] = {}
        self.nodes = 0
        self.pruned = 0
        self.repairs = 0
        self.complete = True
        self.trip_reason = ""
        self.deadline = (
            perf_counter() + budget.max_seconds
            if budget.max_seconds is not None else None
        )

    def run(self) -> None:
        self._dfs(0, -1)

    # -- budget --------------------------------------------------------

    def _tripped(self) -> bool:
        if self.trip_reason:
            return True
        if (
            self.budget.max_nodes is not None
            and self.nodes >= self.budget.max_nodes
        ):
            self.trip_reason = REASON_NODE_BUDGET
            self.complete = False
            return True
        if self.deadline is not None and perf_counter() > self.deadline:
            self.trip_reason = REASON_TIME_BUDGET
            self.complete = False
            return True
        return False

    # -- placement -----------------------------------------------------

    def _try_place(self, index: int, class_name: str, cycle: int) -> bool:
        reservation = self.engine.try_reserve(
            self.state, class_name, cycle
        )
        if reservation is not None:
            self.undo.append((_GREEDY, reservation))
            return True
        if self.single_option.get(class_name, False) and all(
            self.single_option.get(placed, False)
            for placed in self.classes.values()
        ):
            return False
        # The greedy option commitment may be the only obstacle: retry
        # with a complete assignment over every placed operation.
        demands = tuple(sorted(
            [
                (self.classes[i], self.times[i]) for i in self.times
            ] + [(class_name, cycle)]
        ))
        cached = self.repair_cache.get(demands)
        if cached is None:
            self.repairs += 1
            slots = []
            for demand_class, demand_cycle in demands:
                slots.extend(constraint_slots(
                    self.engine.constraint_for_class(demand_class),
                    demand_cycle,
                ))
            status, chosen, _ = find_assignment(
                slots, self.budget.repair_nodes
            )
            pairs = None
            if status == SAT:
                pairs = tuple(
                    pair for alternative in chosen for pair in alternative
                )
            cached = (status, pairs)
            self.repair_cache[demands] = cached
        status, pairs = cached
        if status == BUDGET:
            # Undecided: treated as infeasible, which forfeits the
            # completeness claim but never produces a bad schedule.
            self.complete = False
            return False
        if status != SAT:
            return False
        snapshot = list(self.state.busy_cycles())
        self.state.clear()
        for abs_cycle, mask in pairs:
            self.state.reserve(abs_cycle, mask)
        self.undo.append((_REPAIR, snapshot))
        return True

    def _unplace(self) -> None:
        kind, payload = self.undo.pop()
        if kind == _GREEDY:
            self.engine.release(payload)
        else:
            self.state.clear()
            for cycle, word in payload:
                self.state.reserve(cycle, word)

    # -- search --------------------------------------------------------

    def _memo_key(
        self, pos: int, index: int, cycle: int, class_name: str
    ) -> tuple:
        """Key of the state *after* placing ``index`` at ``cycle``.

        Computed before the placement is attempted, so a dominance hit
        skips the (possibly repair-priced) feasibility work entirely.
        """
        after = pos + 1
        frontier = [
            (placed, self.times[placed])
            for placed in self.order[:pos]
            if self.last_succ_pos[placed] >= after
        ]
        if self.last_succ_pos[index] >= after:
            frontier.append((index, cycle))
        demands = tuple(sorted(
            [
                (self.classes[placed], self.times[placed])
                for placed in self.order[:pos]
            ] + [(class_name, cycle)]
        ))
        return (after, tuple(frontier), demands)

    def _dfs(self, pos: int, current_max: int) -> None:
        if pos == self.n:
            self.best_times = dict(self.times)
            self.best_classes = dict(self.classes)
            self.best_max = current_max
            return
        op = self.ops[pos]
        index = op.index
        tail = self.tails[index]
        cycle = earliest_cycle(self.graph, self.times, index)
        # The clamp is the dependence-aware bound: an op at cycle c
        # forces a min-latency chain out to c + tail, so candidates
        # beyond incumbent_max - 1 - tail cannot beat the incumbent.
        while cycle <= self.best_max - 1 - tail:
            if self._tripped():
                return
            self.nodes += 1
            feasible = cycle_feasibility(
                self.graph, self.times, index, cycle
            )
            if feasible is not None:
                cascaded, bypass_class = feasible
                if bypass_class:
                    class_name = bypass_class
                else:
                    class_name = (
                        self.machine.classify(op, cascaded)
                        if cascaded else self.static_class[index]
                    )
                new_max = max(current_max, cycle)
                key = self._memo_key(pos, index, cycle, class_name)
                previous = self.memo.get(key)
                if previous is not None and previous <= new_max:
                    self.pruned += 1
                elif self._try_place(index, class_name, cycle):
                    self.times[index] = cycle
                    self.classes[index] = class_name
                    self.memo[key] = new_max
                    self._dfs(pos + 1, new_max)
                    del self.times[index]
                    del self.classes[index]
                    self._unplace()
                    if self.trip_reason:
                        return
            cycle += 1


def _single_option(constraint) -> bool:
    """Whether every OR-tree of the constraint has at most one option."""
    if isinstance(constraint, CompiledAndOrTree):
        return all(
            len(or_tree.options) <= 1 for or_tree in constraint.or_trees
        )
    return len(constraint.options) <= 1


def _normalize(schedule: BlockSchedule) -> None:
    """Shift a schedule so its earliest issue cycle is zero."""
    if not schedule.times:
        return
    base = min(schedule.times.values())
    if base:
        schedule.times = {
            index: cycle - base
            for index, cycle in schedule.times.items()
        }


def schedule_workload_exact(
    machine,
    blocks,
    engine: Optional[QueryEngine] = None,
    budget: Optional[ExactBudget] = None,
    max_block_ops: Optional[int] = None,
) -> ExactRunResult:
    """Exactly schedule every block and aggregate the outcomes.

    The exact counterpart of
    :func:`repro.scheduler.list_scheduler.schedule_workload`; block
    schedules are always kept (they are the point of an exact run).
    """
    from repro import obs

    scheduler = ExactScheduler(
        machine, engine=engine, budget=budget,
        max_block_ops=max_block_ops,
    )
    result = ExactRunResult(machine_name=machine.name)
    before = scheduler.engine.stats.copy()
    with obs.span(
        "schedule:exact", machine=machine.name,
        backend=scheduler.engine.name, memory=True,
    ) as sp:
        for index, block in enumerate(blocks):
            with obs.span(
                "exact:block", index=index, ops=len(block)
            ) as block_span:
                block_result = scheduler.schedule_block(block)
            block_span.set(
                length=block_result.length,
                optimal=block_result.optimal,
                reason=block_result.reason,
                nodes=block_result.nodes,
                pruned=block_result.pruned,
                repairs=block_result.repairs,
            )
            result.results.append(block_result)
            result.total_ops += len(block)
    result.stats = scheduler.engine.stats.since(before)
    result.seconds = sum(r.seconds for r in result.results)
    if obs.enabled():
        sp.set(
            ops=result.total_ops, cycles=result.total_cycles,
            optimal=result.optimal_blocks, nodes=result.nodes,
        )
        _record_exact_run(obs, result)
    return result


def _record_exact_run(obs, result: ExactRunResult) -> None:
    """Fold one exact run's totals into the obs registry."""
    labels = {"scheduler": "exact"}
    obs.count("repro_exact_nodes_total", result.nodes,
              help="Branch-and-bound nodes expanded.", **labels)
    obs.count("repro_exact_pruned_total", result.pruned,
              help="Subtrees cut by the dominance memo.", **labels)
    obs.count("repro_exact_repairs_total", result.repairs,
              help="Greedy failures retried with complete assignment.",
              **labels)
    for optimal in (True, False):
        count = sum(
            1 for r in result.results if r.optimal is optimal
        )
        if count:
            obs.count(
                "repro_exact_blocks_total", count,
                help="Blocks solved, by proof status.",
                optimal="true" if optimal else "false", **labels,
            )
    obs.observe("repro_exact_seconds", result.seconds,
                help="Wall seconds per exact scheduling run.", **labels)


__all__ = [
    "ExactBudget",
    "ExactBlockResult",
    "ExactRunResult",
    "ExactScheduler",
    "schedule_workload_exact",
    "REASON_OPTIMAL",
    "REASON_BOUND_MET",
    "REASON_NODE_BUDGET",
    "REASON_TIME_BUDGET",
    "REASON_OVERSIZE",
]
