"""Zero-copy publication of compiled descriptions to pool workers.

The paper's core workflow is "translate the machine description once,
ship the compact low-level form to every consumer" (section 4).  The
batch service already applies that idea across *time* through the disk
cache; this module applies it across *space*: the parent process
serializes the compiled description into the packed wire format of
:mod:`repro.lowlevel.packed` exactly once, publishes the bytes as a
``multiprocessing.shared_memory`` segment, and every pool worker
*attaches* the segment instead of re-deserializing the LMDES JSON
artifact -- the constraint tables the vectorized query path reads are
``numpy`` views directly over the shared pages, so N workers hold one
physical copy.

Lifecycle rules (the part that has to survive PR-4's fault injection):

* The parent owns every segment it publishes, in a refcounted
  process-local registry.  ``publish`` on a digest already live bumps
  the refcount and returns the existing spec; ``release`` decrements
  and unlinks at zero.  The batch driver brackets each pooled run in
  ``publish``/``release``, so pool restarts inside one run reuse the
  segment and the run's end removes it.
* An ``atexit`` sweeper unlinks anything still registered, so even an
  exception path that skips ``release`` cannot leak ``/dev/shm``
  segments past the parent's lifetime.
* Workers attach read-only and *never* unlink.  CPython's
  ``resource_tracker`` auto-registers attached segments and would
  error (and unlink prematurely) when worker and parent both track the
  name, so the attach path immediately unregisters the worker-side
  tracking -- ownership stays with the parent alone.
* Every failure mode on the worker side -- missing segment, torn
  magic, import error -- degrades to ``None`` and the worker falls
  back to the normal disk-cache path.  Sharing is an optimization,
  never a correctness dependency.
"""

from __future__ import annotations

import atexit
import logging
import os
import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.lowlevel.compiled import CompiledMdes
from repro.lowlevel.packed import (
    SHARED_MAGIC,
    compiled_from_shared_buffer,
    compiled_to_shared_bytes,
    numpy_available,
)

logger = logging.getLogger("repro.engine.shared")

__all__ = [
    "SharedDescriptionSpec",
    "attach",
    "available",
    "publish",
    "release",
]


def available() -> bool:
    """Whether this platform can publish shared descriptions at all."""
    if not numpy_available():
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - platform-dependent
        return False
    return True


@dataclass(frozen=True)
class SharedDescriptionSpec:
    """Everything a worker needs to attach one published description.

    Picklable by construction (plain strings/ints/bools): it rides in
    the pool initializer's arguments.  ``token`` through ``reduce`` are
    the exact cache-key fields, so the worker can seed its
    :class:`~repro.engine.cache.DescriptionCache` under the same key the
    scheduling path looks up.
    """

    segment: str
    digest: str
    machine_name: str
    token: str
    rep: str
    stage: int
    bitvector: bool
    reduce: bool
    size: int


@dataclass
class _Segment:
    """Parent-side registry entry for one live segment."""

    shm: object
    spec: SharedDescriptionSpec
    refcount: int = 1


#: Parent-side registry of published segments, keyed by digest.
_SEGMENTS: Dict[str, _Segment] = {}
_SEGMENTS_LOCK = threading.Lock()
_SWEEPER_INSTALLED = False

#: Worker-side memo of attached segments: segment name ->
#: (shared_memory handle, reconstructed description).  The handle is
#: kept referenced so the mapping (and every numpy view into it) stays
#: valid for the worker's lifetime.
_ATTACHED: Dict[str, tuple] = {}


def _sweep() -> None:
    """Unlink every still-registered segment (atexit safety net)."""
    with _SEGMENTS_LOCK:
        entries = list(_SEGMENTS.values())
        _SEGMENTS.clear()
    for entry in entries:
        _close_and_unlink(entry.shm, entry.spec.segment)


def _install_sweeper() -> None:
    global _SWEEPER_INSTALLED
    if not _SWEEPER_INSTALLED:
        atexit.register(_sweep)
        _SWEEPER_INSTALLED = True


def _close_and_unlink(shm, name: str) -> None:
    try:
        shm.close()
    except OSError:  # pragma: no cover - already-closed mapping
        pass
    try:
        shm.unlink()
    except OSError:
        logger.warning("could not unlink shared segment %s", name)


def publish(
    compiled: CompiledMdes,
    machine_name: str,
    token: str,
    rep: str,
    stage: int,
    bitvector: bool,
    reduce: bool = False,
) -> Optional[SharedDescriptionSpec]:
    """Publish one compiled description; ``None`` when sharing is off.

    Idempotent per configuration: a digest already live bumps its
    refcount and returns the existing spec, so nested or restarted runs
    share one segment.  Callers must pair every successful ``publish``
    with exactly one :func:`release`.
    """
    if not available():
        return None
    from multiprocessing import shared_memory

    from repro.engine.diskcache import description_digest

    digest = description_digest(token, rep, stage, bitvector, reduce)
    with _SEGMENTS_LOCK:
        entry = _SEGMENTS.get(digest)
        if entry is not None:
            entry.refcount += 1
            return entry.spec
    try:
        blob = compiled_to_shared_bytes(compiled)
    except Exception:
        logger.exception(
            "could not serialize %s for shared publication", machine_name
        )
        return None
    base = f"repro_{digest[:16]}_{os.getpid():x}"
    shm = None
    for suffix in range(8):
        name = base if suffix == 0 else f"{base}_{suffix}"
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=len(blob)
            )
            break
        except FileExistsError:
            continue
        except OSError:
            logger.exception("could not create shared segment %s", name)
            return None
    if shm is None:
        logger.warning(
            "could not find a free shared-segment name for %s", base
        )
        return None
    shm.buf[: len(blob)] = blob
    spec = SharedDescriptionSpec(
        segment=shm.name,
        digest=digest,
        machine_name=machine_name,
        token=token,
        rep=rep,
        stage=stage,
        bitvector=bitvector,
        reduce=reduce,
        size=len(blob),
    )
    _install_sweeper()
    with _SEGMENTS_LOCK:
        raced = _SEGMENTS.get(digest)
        if raced is not None:  # pragma: no cover - concurrent publish
            raced.refcount += 1
            spec = raced.spec
        else:
            _SEGMENTS[digest] = _Segment(shm=shm, spec=spec)
            raced = None
    if raced is not None:  # pragma: no cover - concurrent publish
        _close_and_unlink(shm, shm.name)
    return spec


def release(spec: Optional[SharedDescriptionSpec]) -> None:
    """Drop one reference; the last one unlinks the segment."""
    if spec is None:
        return
    with _SEGMENTS_LOCK:
        entry = _SEGMENTS.get(spec.digest)
        if entry is None:
            return
        entry.refcount -= 1
        if entry.refcount > 0:
            return
        del _SEGMENTS[spec.digest]
    _close_and_unlink(entry.shm, entry.spec.segment)


def live_segments() -> int:
    """How many segments this process currently owns (for tests)."""
    with _SEGMENTS_LOCK:
        return len(_SEGMENTS)


def attach(
    spec: Optional[SharedDescriptionSpec],
) -> Optional[CompiledMdes]:
    """Worker-side attach; ``None`` on any failure (fallback to disk).

    Memoized per segment name: a worker that schedules many chunks
    reconstructs the description once and keeps the mapping (and every
    array view into it) alive for its whole lifetime.  Attached
    segments are immediately unregistered from this process's
    ``resource_tracker`` -- the parent alone owns unlinking, and a
    worker exiting must not tear the mapping out from under its
    siblings.
    """
    if spec is None:
        return None
    cached = _ATTACHED.get(spec.segment)
    if cached is not None:
        return cached[1]
    try:
        from multiprocessing import resource_tracker, shared_memory

        # CPython < 3.13 registers attached segments with the resource
        # tracker exactly as if this process had created them; with
        # forked workers all sharing the parent's tracker daemon, those
        # spurious registrations end in premature unlinks and noisy
        # KeyErrors.  Suppress registration for the attach -- the
        # parent alone owns this segment's lifetime.
        original_register = resource_tracker.register

        def _no_register(name, rtype):
            if rtype != "shared_memory":  # pragma: no cover - defensive
                original_register(name, rtype)

        resource_tracker.register = _no_register
        try:
            shm = shared_memory.SharedMemory(
                name=spec.segment, create=False
            )
        finally:
            resource_tracker.register = original_register
        buffer = bytes(shm.buf[: len(SHARED_MAGIC)])
        if buffer != SHARED_MAGIC:
            logger.warning(
                "shared segment %s has a torn header; falling back",
                spec.segment,
            )
            shm.close()
            return None
        compiled = compiled_from_shared_buffer(shm.buf)
    except Exception:
        logger.exception(
            "could not attach shared segment %s; falling back",
            spec.segment,
        )
        return None
    _ATTACHED[spec.segment] = (shm, compiled)
    return compiled
