"""Back-compat shim: the fuzzer's machine generator moved.

The seeded grammar-driven generator the differential fuzzer draws its
cases from now lives in :mod:`repro.machines.synth.grammar`, where it
also backs the first-class synthetic machine fleets
(``synth:<family>:<seed>:<index>`` names, ``repro sweep``).  The move
preserved draw order, so every fuzz seed still produces bit-identical
descriptions.  Import from :mod:`repro.machines.synth` in new code.
"""

from __future__ import annotations

from repro.machines.synth.grammar import (
    DEFAULT_GRAMMAR,
    FuzzGrammar,
    _profile_for,
    _random_constraint,
    _random_option,
    _random_or_tree,
    build_machine,
    generate_mdes,
)

__all__ = [
    "DEFAULT_GRAMMAR",
    "FuzzGrammar",
    "build_machine",
    "generate_mdes",
]
