"""Recursive-descent parser for the HMDES language.

Grammar (after preprocessing)::

    file       := 'mdes' IDENT ';' section*
    section    := 'section' KIND '{' entries '}'
    resource   := NAME ('[' INT '..' INT ']')? ';'
    table      := NAME '{' usage* '}'
    usage      := 'use' resname 'at' INT ';'
    resname    := NAME ('[' INT ']')?
    ortree     := NAME '{' option+ '}'
    option     := 'option' ('{' usage* '}' | NAME ';')
    andortree  := NAME '{' child+ '}'
    child      := 'ortree' (NAME ';' | '{' option+ '}')
    opclass    := NAME '{' 'resv' constraint ';' ('latency' INT ';')? '}'
    constraint := NAME | 'ortree' '{' option+ '}' | 'andortree' '{' child+ '}'
    operation  := OPCODE ':' NAME ';'
"""

from __future__ import annotations

from typing import List, Union

from repro.errors import HmdesSyntaxError
from repro.hmdes import ast
from repro.hmdes.lexer import IDENT, INT, PUNCT, Token, TokenStream, tokenize
from repro.hmdes.preprocess import preprocess

_SECTION_KINDS = (
    "resource",
    "table",
    "ortree",
    "andortree",
    "opclass",
    "operation",
    "bypass",
)


class Parser:
    """Parses one preprocessed HMDES source into an :class:`ast.MdesNode`."""

    def __init__(self, tokens: List[Token]) -> None:
        self._stream = TokenStream(tokens)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_file(self) -> ast.MdesNode:
        """Parse the whole file."""
        stream = self._stream
        stream.expect(IDENT, "mdes")
        name = stream.expect(IDENT).value
        stream.expect(PUNCT, ";")
        node = ast.MdesNode(name=name)
        while not stream.at("EOF"):
            self._parse_section(node)
        return node

    def _parse_section(self, node: ast.MdesNode) -> None:
        stream = self._stream
        stream.expect(IDENT, "section")
        kind_token = stream.expect(IDENT)
        kind = kind_token.value
        if kind not in _SECTION_KINDS:
            raise HmdesSyntaxError(
                f"unknown section kind {kind!r}", kind_token.line
            )
        stream.expect(PUNCT, "{")
        while not stream.accept(PUNCT, "}"):
            if kind == "resource":
                node.resources.append(self._parse_resource_decl())
            elif kind == "table":
                node.tables.append(self._parse_table())
            elif kind == "ortree":
                node.or_trees.append(self._parse_or_tree())
            elif kind == "andortree":
                node.and_or_trees.append(self._parse_and_or_tree())
            elif kind == "opclass":
                node.op_classes.append(self._parse_op_class())
            elif kind == "bypass":
                node.bypasses.append(self._parse_bypass())
            else:
                node.operations.append(self._parse_operation())

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------

    def _parse_resource_decl(self) -> ast.ResourceDecl:
        stream = self._stream
        name = stream.expect(IDENT).value
        low = high = None
        if stream.accept(PUNCT, "["):
            low = int(stream.expect(INT).value)
            if stream.accept(PUNCT, ".."):
                high = int(stream.expect(INT).value)
            else:
                # Single-index declaration, e.g. ``Decoder[0];``
                high = low
            stream.expect(PUNCT, "]")
            if high < low:
                raise HmdesSyntaxError(
                    f"resource range {name}[{low}..{high}] is empty",
                    stream.current.line,
                )
        stream.expect(PUNCT, ";")
        return ast.ResourceDecl(name, low, high)

    def _parse_resource_name(self) -> str:
        stream = self._stream
        name = stream.expect(IDENT).value
        if stream.accept(PUNCT, "["):
            index = int(stream.expect(INT).value)
            stream.expect(PUNCT, "]")
            name = f"{name}[{index}]"
        return name

    def _parse_usage(self) -> ast.UsageNode:
        stream = self._stream
        line = stream.current.line
        stream.expect(IDENT, "use")
        resource = self._parse_resource_name()
        stream.expect(IDENT, "at")
        time = int(stream.expect(INT).value)
        stream.expect(PUNCT, ";")
        return ast.UsageNode(resource, time, line)

    def _parse_usage_block(self) -> List[ast.UsageNode]:
        stream = self._stream
        stream.expect(PUNCT, "{")
        usages: List[ast.UsageNode] = []
        while not stream.accept(PUNCT, "}"):
            usages.append(self._parse_usage())
        return usages

    def _parse_table(self) -> ast.TableNode:
        name = self._stream.expect(IDENT).value
        return ast.TableNode(name, self._parse_usage_block())

    def _parse_option(self) -> ast.OptionNode:
        stream = self._stream
        line = stream.expect(IDENT, "option").line
        if stream.at(PUNCT, "{"):
            return ast.OptionNode(usages=self._parse_usage_block(), line=line)
        ref = stream.expect(IDENT).value
        stream.expect(PUNCT, ";")
        return ast.OptionNode(ref=ref, line=line)

    def _parse_option_block(self, name: str) -> ast.OrTreeNode:
        stream = self._stream
        stream.expect(PUNCT, "{")
        options: List[ast.OptionNode] = []
        while not stream.accept(PUNCT, "}"):
            options.append(self._parse_option())
        return ast.OrTreeNode(name, options)

    def _parse_or_tree(self) -> ast.OrTreeNode:
        name = self._stream.expect(IDENT).value
        return self._parse_option_block(name)

    def _parse_child(self) -> Union[ast.OrTreeRef, ast.OrTreeNode]:
        stream = self._stream
        line = stream.expect(IDENT, "ortree").line
        if stream.at(PUNCT, "{"):
            return self._parse_option_block("")
        name = stream.expect(IDENT).value
        stream.expect(PUNCT, ";")
        return ast.OrTreeRef(name, line)

    def _parse_child_block(self, name: str) -> ast.AndOrTreeNode:
        stream = self._stream
        stream.expect(PUNCT, "{")
        children: List[Union[ast.OrTreeRef, ast.OrTreeNode]] = []
        while not stream.accept(PUNCT, "}"):
            children.append(self._parse_child())
        return ast.AndOrTreeNode(name, children)

    def _parse_and_or_tree(self) -> ast.AndOrTreeNode:
        name = self._stream.expect(IDENT).value
        return self._parse_child_block(name)

    def _parse_constraint(self) -> ast.ConstraintExpr:
        stream = self._stream
        if stream.at(IDENT, "ortree"):
            stream.advance()
            return self._parse_option_block("")
        if stream.at(IDENT, "andortree"):
            stream.advance()
            return self._parse_child_block("")
        token = stream.expect(IDENT)
        return ast.OrTreeRef(token.value, token.line)

    def _parse_op_class(self) -> ast.OpClassNode:
        stream = self._stream
        name = stream.expect(IDENT).value
        stream.expect(PUNCT, "{")
        stream.expect(IDENT, "resv")
        constraint = self._parse_constraint()
        stream.expect(PUNCT, ";")
        latency = 1
        read_time = 0
        while not stream.at(PUNCT, "}"):
            if stream.accept(IDENT, "latency"):
                latency = int(stream.expect(INT).value)
            elif stream.accept(IDENT, "read"):
                read_time = int(stream.expect(INT).value)
            else:
                raise HmdesSyntaxError(
                    f"expected 'latency', 'read', or '}}' in class "
                    f"{name!r}, found {stream.current.value!r}",
                    stream.current.line,
                )
            stream.expect(PUNCT, ";")
        stream.expect(PUNCT, "}")
        return ast.OpClassNode(name, constraint, latency, read_time)

    def _parse_bypass(self) -> ast.BypassNode:
        stream = self._stream
        producer_token = stream.expect(IDENT)
        stream.expect(PUNCT, "->")
        consumer = stream.expect(IDENT).value
        stream.expect(PUNCT, ":")
        stream.expect(IDENT, "latency")
        latency = int(stream.expect(INT).value)
        substitute = ""
        if stream.accept(IDENT, "class"):
            substitute = stream.expect(IDENT).value
        stream.expect(PUNCT, ";")
        return ast.BypassNode(
            producer_token.value, consumer, latency, substitute,
            producer_token.line,
        )

    def _parse_operation(self) -> ast.OperationNode:
        stream = self._stream
        opcode_token = stream.expect(IDENT)
        stream.expect(PUNCT, ":")
        class_name = stream.expect(IDENT).value
        stream.expect(PUNCT, ";")
        return ast.OperationNode(
            opcode_token.value, class_name, opcode_token.line
        )


def parse_source(source: str) -> ast.MdesNode:
    """Preprocess and parse HMDES source text."""
    from repro import obs

    with obs.span("hmdes:preprocess"):
        text = preprocess(source)
    with obs.span("hmdes:lex"):
        tokens = tokenize(text)
    with obs.span("hmdes:parse") as sp:
        sp.set(tokens=len(tokens))
        node = Parser(tokens).parse_file()
    return node
