"""Low-level (compiled) MDES representation.

This subpackage is the "efficient use" half of the paper's two-tier model:

* :class:`~repro.lowlevel.bitvector.RUMap` -- the scheduler's resource
  usage map, one bit-vector word per cycle (section 6).
* :mod:`~repro.lowlevel.compiled` -- compilation of constraint trees into
  flat (time, mask) check lists, with structure sharing.
* :mod:`~repro.lowlevel.checker` -- the resource-constraint check/reserve
  algorithms for both representations, instrumented with the statistics
  the paper's tables report.
* :mod:`~repro.lowlevel.layout` -- the byte-level size model used for the
  memory-requirement tables.
* :mod:`~repro.lowlevel.packed` -- numpy-packed array mirrors of the
  compiled form (vectorized batch probes) and the shared wire format
  zero-copy description sharing attaches to.
"""

from repro.lowlevel.bitvector import ModuloRUMap, RUMap
from repro.lowlevel.compiled import (
    CompiledAndOrTree,
    CompiledMdes,
    CompiledOption,
    CompiledOrTree,
    compile_mdes,
)
from repro.lowlevel.checker import CheckStats, ConstraintChecker
from repro.lowlevel.layout import LayoutModel, mdes_size_bytes
from repro.lowlevel.packed import (
    PACKED_WORD_BUDGET,
    ModuloPackedRUMap,
    PackedMdes,
    PackedRUMap,
    compiled_from_shared_buffer,
    compiled_to_shared_bytes,
    numpy_available,
    pack_mdes,
    packed_layout,
    packing_eligible,
)
from repro.lowlevel.query import MdesQuery

__all__ = [
    "CheckStats",
    "CompiledAndOrTree",
    "CompiledMdes",
    "CompiledOption",
    "CompiledOrTree",
    "ConstraintChecker",
    "LayoutModel",
    "MdesQuery",
    "ModuloPackedRUMap",
    "ModuloRUMap",
    "PACKED_WORD_BUDGET",
    "PackedMdes",
    "PackedRUMap",
    "RUMap",
    "compile_mdes",
    "compiled_from_shared_buffer",
    "compiled_to_shared_bytes",
    "mdes_size_bytes",
    "numpy_available",
    "pack_mdes",
    "packed_layout",
    "packing_eligible",
]
